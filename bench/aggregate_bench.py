#!/usr/bin/env python3
"""Fold every checked-in BENCH_*.json into one BENCH_trajectory.json.

Each bench binary writes a self-checking JSON artifact (BENCH_serve.json,
BENCH_telemetry.json, ...). Some of those are checked in at the repository
root as the performance trajectory of record. This script folds them into a
single deterministic BENCH_trajectory.json — sorted keys, sorted files, no
timestamps or host identifiers introduced — so CI can diff the trajectory as
one artifact, and prints a markdown summary table to stdout.

Exit status is non-zero when any artifact fails to parse or carries
"ok": false: a checked-in artifact that failed its own self-checks should
never ride along silently.

Usage: aggregate_bench.py [--root DIR] [--out FILE]
"""

import argparse
import json
import os
import sys


def headline(content):
    """One short human string per artifact: its largest list field (top level
    or one level down), if any."""
    best_key, best_len = None, -1
    if isinstance(content, dict):
        for key, value in sorted(content.items()):
            if isinstance(value, list) and len(value) > best_len:
                best_key, best_len = key, len(value)
            elif isinstance(value, dict):
                for sub_key, sub in sorted(value.items()):
                    if isinstance(sub, list) and len(sub) > best_len:
                        best_key, best_len = f"{key}.{sub_key}", len(sub)
    if best_key is None:
        return "-"
    return f"{best_len} {best_key} entries"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root,
                        help="directory scanned for BENCH_*.json")
    parser.add_argument("--out", default=None,
                        help="output path (default ROOT/BENCH_trajectory.json)")
    args = parser.parse_args()
    out_path = args.out or os.path.join(args.root, "BENCH_trajectory.json")
    out_name = os.path.basename(out_path)

    names = sorted(
        n for n in os.listdir(args.root)
        if n.startswith("BENCH_") and n.endswith(".json") and n != out_name)
    if not names:
        print(f"aggregate_bench: no BENCH_*.json under {args.root}",
              file=sys.stderr)
        return 1

    failures = 0
    rows = []
    artifacts = {}
    for name in names:
        path = os.path.join(args.root, name)
        try:
            with open(path, encoding="utf-8") as f:
                content = json.load(f)
        except (OSError, ValueError) as err:
            print(f"aggregate_bench: {name}: {err}", file=sys.stderr)
            failures += 1
            continue
        ok = content.get("ok") if isinstance(content, dict) else None
        if ok is False:
            print(f"aggregate_bench: {name}: self-check failed (ok=false)",
                  file=sys.stderr)
            failures += 1
        bench = (content.get("bench")
                 if isinstance(content, dict) else None) or name[6:-5]
        rows.append({
            "file": name,
            "bench": bench,
            "ok": ok,
            "scale_adjust": (content.get("scale_adjust")
                             if isinstance(content, dict) else None),
            "headline": headline(content),
        })
        artifacts[name] = content

    trajectory = {
        "artifacts": artifacts,
        "benches": rows,
        "all_ok": failures == 0 and all(r["ok"] is not False for r in rows),
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"# Bench trajectory ({len(rows)} artifacts)")
    print()
    print("| artifact | bench | ok | scale | headline |")
    print("|---|---|---|---|---|")
    for r in rows:
        ok = {True: "yes", False: "**no**", None: "-"}[r["ok"]]
        scale = "-" if r["scale_adjust"] is None else str(r["scale_adjust"])
        print(f"| {r['file']} | {r['bench']} | {ok} | {scale} "
              f"| {r['headline']} |")
    print()
    print(f"wrote {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
