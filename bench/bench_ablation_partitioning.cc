// Ablation of DESIGN.md's partitioning design choices (paper §6.1.1): on a
// skewed graph at 16 simulated nodes, compares PageRank under
//   - naive 1-D vertex partitioning (equal vertex counts: Giraph/SociaLite),
//   - edge-balanced 1-D partitioning (the native scheme),
//   - 2-D grid partitioning (the matblas/CombBLAS scheme),
// reporting runtime and the per-rank work imbalance that explains it ("2D
// partitioning as in CombBLAS or advanced 1D ... gives better load balancing").
#include "bench/bench_common.h"

#include "core/graph.h"
#include "native/pagerank.h"
#include "rt/partition.h"
#include "util/table.h"

namespace maze::bench {
namespace {

constexpr int kRanks = 16;

// Max-over-ranks / mean-over-ranks of in-edges per rank for a 1-D partition.
double Imbalance1D(const Graph& g, const rt::Partition1D& part) {
  EdgeId max_edges = 0;
  for (int p = 0; p < part.num_parts(); ++p) {
    EdgeId count = 0;
    for (VertexId v = part.Begin(p); v < part.End(p); ++v) {
      count += g.InDegree(v);
    }
    max_edges = std::max(max_edges, count);
  }
  double mean = static_cast<double>(g.num_edges()) / part.num_parts();
  return static_cast<double>(max_edges) / std::max(1.0, mean);
}

void Run() {
  Banner("Partitioning ablation: PageRank load balance at 16 nodes");
  int adjust = ScaleAdjust();
  EdgeList el = LoadGraphDataset("twitter", adjust);  // The most skewed stand-in.
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);

  rt::PageRankOptions opt;
  opt.iterations = 5;
  rt::EngineConfig config;
  config.num_ranks = kRanks;

  TextTable table("Scheme vs runtime and work imbalance (max/mean edges per "
                  "rank)");
  table.SetHeader({"Scheme", "s/iter", "Imbalance"});
  {
    native::NativeOptions naive = native::NativeOptions::AllOn();
    naive.vertex_balanced_partition = true;
    auto r = native::PageRank(g, opt, config, naive);
    table.AddRow({"1-D vertex-balanced (naive)",
                  FormatDouble(r.metrics.elapsed_seconds / 5, 5),
                  FormatDouble(
                      Imbalance1D(g, rt::Partition1D::VertexBalanced(
                                         g.num_vertices(), kRanks)),
                      2)});
  }
  {
    auto r = native::PageRank(g, opt, config, native::NativeOptions::AllOn());
    table.AddRow({"1-D edge-balanced (native)",
                  FormatDouble(r.metrics.elapsed_seconds / 5, 5),
                  FormatDouble(Imbalance1D(g, rt::Partition1D::
                                                  EdgeBalancedFromOffsets(
                                                      g.in_offsets(), kRanks)),
                               2)});
  }
  {
    RunConfig rc;
    rc.num_ranks = kRanks;
    auto r = RunPageRank(EngineKind::kMatblas, el, opt, rc);
    // 2-D tiles split both dimensions; imbalance is bounded by the tile grid.
    table.AddRow({"2-D grid (matblas)",
                  FormatDouble(r.metrics.elapsed_seconds / 5, 5), "~1 by "
                  "construction"});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
