// Beyond the paper: connected components across all engines. The study's
// thesis — the same gaps reappear on any traversal-style workload, driven by
// the same mechanisms (transport class, message buffering, worker caps) — made
// testable on an algorithm the paper did not include.
#include "bench/bench_common.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Beyond the paper: connected components, all engines");
  int adjust = ScaleAdjust();

  SlowdownReport report;
  for (const std::string& name : SingleNodeGraphDatasets()) {
    EdgeList el = LoadGraphDataset(name, adjust);
    el.Symmetrize();
    for (EngineKind engine : AllEngines()) {
      RunConfig config;
      auto warm = RunConnectedComponents(engine, el, {}, config);
      auto result = RunConnectedComponents(engine, el, {}, config);
      double seconds = std::min(warm.metrics.elapsed_seconds,
                                result.metrics.elapsed_seconds);
      report.Add({engine, "cc", name, 1, seconds, result.metrics});
    }
  }
  // A 4-node point on the twitter stand-in.
  {
    EdgeList el = LoadGraphDataset("twitter", adjust);
    el.Symmetrize();
    for (EngineKind engine : MultiNodeEngines()) {
      RunConfig config;
      config.num_ranks = 4;
      auto result = RunConnectedComponents(engine, el, {}, config);
      report.Add({engine, "cc", "twitter", 4, result.metrics.elapsed_seconds,
                  result.metrics});
    }
  }

  std::printf("%s\n",
              report.RenderRuntimeTable("Connected components runtimes")
                  .c_str());
  std::printf("%s\n",
              report
                  .RenderGeomeanTable(
                      "Connected components: slowdowns vs native (geomean)")
                  .c_str());
  std::printf(
      "Expectation: the Table 5/6 ordering carries over — the gaps are\n"
      "properties of the engines, not of the four benchmarked algorithms.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
