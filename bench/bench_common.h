// Shared helpers for the table/figure reproduction binaries.
//
// Every bench accepts the MAZE_SCALE_ADJUST environment variable (default -2):
// it shifts the RMAT scale of every dataset stand-in, so `MAZE_SCALE_ADJUST=0`
// approaches the repository's full stand-in sizes and more negative values give
// quick smoke runs. Benches print the same rows/series as the paper's tables
// and figures; absolute times are this machine's, shapes are what reproduce.
#ifndef MAZE_BENCH_BENCH_COMMON_H_
#define MAZE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_support/report.h"
#include "bench_support/runner.h"
#include "core/datasets.h"
#include "core/ratings_gen.h"
#include "core/rmat.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "rt/sim_clock.h"

namespace maze::bench {

inline int ScaleAdjust(int extra = 0) {
  const char* s = std::getenv("MAZE_SCALE_ADJUST");
  return (s != nullptr ? std::atoi(s) : -2) + extra;
}

// Prints a bench banner tying the binary to its paper artifact, and configures
// the modeled node width: benches charge compute as if each simulated rank were
// one of the paper's 48-hardware-thread Xeon nodes (MAZE_NODE_THREADS
// overrides), so the compute:network balance matches the modeled platform
// whose fabric speeds the CommModels describe.
inline void Banner(const std::string& what) {
  const char* node_env = std::getenv("MAZE_NODE_THREADS");
  rt::SetModeledNodeThreads(node_env != nullptr ? std::atoi(node_env) : 48);
  // MAZE_TRACE=<path> records the whole bench run as a Chrome trace written at
  // exit (load in https://ui.perfetto.dev).
  if (const char* trace_env = std::getenv("MAZE_TRACE");
      trace_env != nullptr && trace_env[0] != '\0') {
    static std::string trace_path;  // atexit handler needs stable storage.
    trace_path = trace_env;
    obs::ResetAll();
    obs::SetEnabled(true);
    std::atexit([] {
      obs::SetEnabled(false);
      Status s = obs::WriteChromeTrace(trace_path);
      if (s.ok()) {
        std::printf("trace: wrote %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      }
    });
  }
  std::printf("==============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf(
      "(scale adjust %d via MAZE_SCALE_ADJUST; modeled node width %d threads "
      "via MAZE_NODE_THREADS)\n",
      ScaleAdjust(), rt::ModeledNodeThreads());
  std::printf("==============================================================\n");
}

// Triangle-counting stand-ins: the paper generates TC inputs with the
// low-triangle RMAT parameters (§4.1.2) and orients them; message volume is
// O(sum deg^2), so TC benches run two scales smaller than the other algorithms.
inline EdgeList TriangleDataset(const std::string& name, int adjust) {
  RmatParams params = RmatParams::TriangleCounting(14 + adjust, 12);
  if (name == "livejournal") params.seed = 313;
  if (name == "facebook") params.seed = 111;
  if (name == "wikipedia") params.seed = 212;
  if (name == "twitter") {
    params.seed = 414;
    params.scale += 2;
  }
  if (name == "rmat") params.seed = 515;
  EdgeList el = GenerateRmat(params);
  el.OrientBySmallerId();
  return el;
}

// --- Measurement wrappers: one table/figure cell each -------------------------
//
// Each cell is measured best-of-`reps`: the first run warms caches and the
// allocator; the fastest run is reported (reduces single-run noise on shared
// machines without changing any shape). Gated benchmarks that compare two
// engines' ratios (bench_gmat_ninja_gap) pass a larger `reps` so scheduler
// noise on either side cannot flip the verdict.

inline Measurement MeasurePageRank(EngineKind engine, const EdgeList& directed,
                                   const std::string& dataset, int ranks,
                                   int iterations = 5, bool trace = false,
                                   int reps = 2) {
  rt::PageRankOptions opt;
  opt.iterations = iterations;
  RunConfig config;
  config.num_ranks = ranks;
  config.trace = trace;
  auto result = RunPageRank(engine, directed, opt, config);
  for (int r = 1; r < reps; ++r) {
    auto again = RunPageRank(engine, directed, opt, config);
    if (again.metrics.elapsed_seconds < result.metrics.elapsed_seconds) {
      result = std::move(again);
    }
  }
  // The paper reports time per iteration for PageRank (Figure 3a).
  return {engine, "pagerank", dataset, ranks,
          result.metrics.elapsed_seconds / iterations, result.metrics};
}

// BFS sources come from the giant component: the highest-degree vertex (a
// low-id source can be isolated in a skewed random graph).
inline VertexId BusiestVertex(const EdgeList& edges) {
  std::vector<uint32_t> degree(edges.num_vertices, 0);
  for (const Edge& e : edges.edges) ++degree[e.src];
  VertexId best = 0;
  for (VertexId v = 1; v < edges.num_vertices; ++v) {
    if (degree[v] > degree[best]) best = v;
  }
  return best;
}

inline Measurement MeasureBfs(EngineKind engine, const EdgeList& undirected,
                              const std::string& dataset, int ranks,
                              bool trace = false, int reps = 2) {
  RunConfig config;
  config.num_ranks = ranks;
  config.trace = trace;
  rt::BfsOptions opt;
  opt.source = BusiestVertex(undirected);
  auto result = RunBfs(engine, undirected, opt, config);
  for (int r = 1; r < reps; ++r) {
    auto again = RunBfs(engine, undirected, opt, config);
    if (again.metrics.elapsed_seconds < result.metrics.elapsed_seconds) {
      result = std::move(again);
    }
  }
  return {engine, "bfs", dataset, ranks, result.metrics.elapsed_seconds,
          result.metrics};
}

inline Measurement MeasureTriangles(EngineKind engine, const EdgeList& oriented,
                                    const std::string& dataset, int ranks,
                                    int bsp_phases_for_tc = 100,
                                    bool trace = false) {
  RunConfig config;
  config.num_ranks = ranks;
  config.trace = trace;
  // §6.1.3: Giraph triangle counting only runs with superstep splitting.
  if (engine == EngineKind::kBspgraph) config.bsp_phases = bsp_phases_for_tc;
  auto warm = RunTriangleCount(engine, oriented, {}, config);
  auto result = RunTriangleCount(engine, oriented, {}, config);
  if (warm.metrics.elapsed_seconds < result.metrics.elapsed_seconds) {
    result = std::move(warm);
  }
  return {engine, "triangles", dataset, ranks, result.metrics.elapsed_seconds,
          result.metrics};
}

inline Measurement MeasureCf(EngineKind engine, const BipartiteGraph& ratings,
                             const std::string& dataset, int ranks,
                             int iterations = 2, int k = 16,
                             bool trace = false) {
  rt::CfOptions opt;
  opt.k = k;
  opt.iterations = iterations;
  // Native/taskflow run SGD; others fall back to GD (§3.2). Either way the
  // paper compares time per iteration (§5.2).
  opt.method = rt::CfMethod::kSgd;
  RunConfig config;
  config.num_ranks = ranks;
  config.trace = trace;
  if (engine == EngineKind::kBspgraph) config.bsp_phases = 10;
  auto warm = RunCf(engine, ratings, opt, config);
  auto result = RunCf(engine, ratings, opt, config);
  if (warm.metrics.elapsed_seconds < result.metrics.elapsed_seconds) {
    result = std::move(warm);
  }
  return {engine, "cf", dataset, ranks,
          result.metrics.elapsed_seconds / iterations, result.metrics};
}

}  // namespace maze::bench

#endif  // MAZE_BENCH_BENCH_COMMON_H_
