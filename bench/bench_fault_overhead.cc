// PR 4 artifact: the modeled cost of fault tolerance. Three series, all
// self-checking (the binary exits non-zero if any invariant fails):
//
//   1. Checkpoint-interval sweep (bspgraph PageRank): modeled elapsed time and
//      recovery stall must increase strictly with checkpoint frequency — the
//      classic Giraph trade-off of paying snapshot I/O every K supersteps.
//   2. Crash recovery: a run that loses a rank mid-computation and restores
//      from its last checkpoint must produce *exactly* the fault-free answers.
//   3. Drop-rate sweep (native PageRank): wire bytes must grow strictly with
//      the drop rate — retransmissions are real traffic in the totals.
//
// Writes BENCH_pr4.json (path via MAZE_BENCH_JSON, default ./BENCH_pr4.json).
// Fault-injection correctness across all engines is asserted by
// tests/fault_injection_test.cc; this binary measures the overhead shapes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "rt/fault.h"
#include "rt/rank_exec.h"

namespace maze::bench {
namespace {

rt::fault::FaultSpec Plan(const std::string& text) {
  auto spec = rt::fault::ParseFaultSpec(text);
  MAZE_CHECK(spec.ok() && "bench_fault_overhead: bad fault plan");
  return std::move(spec).value();
}

struct CkptCell {
  int interval = 0;  // 0 = checkpointing off.
  double elapsed_seconds = 0;
  double recovery_seconds = 0;
  uint64_t checkpoints = 0;
};

struct DropCell {
  double rate = 0;
  uint64_t bytes = 0;
  uint64_t retries = 0;
  double overhead = 1.0;  // bytes / fault-free bytes.
};

int Main() {
  Banner("BENCH_pr4: fault injection & recovery overhead (PR 4 artifact)");
  const int ranks = 8;

  EdgeList directed = GenerateRmat(RmatParams::Graph500(14 + ScaleAdjust(), 16));
  directed.Deduplicate();
  rt::PageRankOptions opt;
  opt.iterations = 5;

  int failures = 0;

  // --- 1. Checkpoint-interval sweep (bspgraph) ------------------------------
  // ckpt_lat=0.05 makes the modeled snapshot stall dominate host compute
  // noise, so the strict monotonicity check is about the model, not the host.
  std::vector<CkptCell> ckpt_cells;
  for (int interval : {0, 8, 4, 2, 1}) {
    RunConfig config;
    config.num_ranks = ranks;
    if (interval > 0) {
      config.faults =
          Plan("ckpt=" + std::to_string(interval) + ",ckpt_lat=0.05");
    }
    auto run = RunPageRank(EngineKind::kBspgraph, directed, opt, config);
    ckpt_cells.push_back({interval, run.metrics.elapsed_seconds,
                          run.metrics.recovery_seconds,
                          run.metrics.checkpoints_written});
  }
  std::printf("\ncheckpoint-interval sweep (bspgraph pagerank, %d ranks)\n",
              ranks);
  std::printf("%9s %12s %12s %12s\n", "interval", "elapsed_s", "recovery_s",
              "checkpoints");
  for (const CkptCell& c : ckpt_cells) {
    std::printf("%9d %12.4f %12.4f %12llu\n", c.interval, c.elapsed_seconds,
                c.recovery_seconds,
                static_cast<unsigned long long>(c.checkpoints));
  }
  // The sweep runs from "off" toward checkpointing every superstep; all three
  // columns must increase strictly with checkpoint frequency.
  for (size_t i = 1; i < ckpt_cells.size(); ++i) {
    if (ckpt_cells[i].checkpoints <= ckpt_cells[i - 1].checkpoints ||
        ckpt_cells[i].recovery_seconds <= ckpt_cells[i - 1].recovery_seconds ||
        ckpt_cells[i].elapsed_seconds <= ckpt_cells[i - 1].elapsed_seconds) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: checkpoint cost not strictly "
                   "increasing between intervals %d and %d\n",
                   ckpt_cells[i - 1].interval, ckpt_cells[i].interval);
      ++failures;
    }
  }

  // --- 2. Crash recovery reproduces the fault-free answers ------------------
  // Serial schedule on both sides: answers are then bit-deterministic, so the
  // recovered run must match the fault-free one exactly, not approximately.
  rt::SetSerialRanks(1);
  RunConfig plain;
  plain.num_ranks = ranks;
  auto baseline = RunPageRank(EngineKind::kBspgraph, directed, opt, plain);
  RunConfig crashed = plain;
  crashed.faults = Plan("crash=1@3,ckpt=2,ckpt_lat=0.05");
  auto recovered = RunPageRank(EngineKind::kBspgraph, directed, opt, crashed);
  rt::SetSerialRanks(-1);
  size_t mismatches = 0;
  for (size_t v = 0; v < baseline.ranks.size(); ++v) {
    mismatches += recovered.ranks[v] != baseline.ranks[v];
  }
  std::printf(
      "\ncrash recovery (bspgraph pagerank, crash rank 1 @ superstep 3, "
      "ckpt=2): restarts=%llu checkpoints=%llu recovery=%.4fs "
      "mismatched_vertices=%zu\n",
      static_cast<unsigned long long>(recovered.metrics.crash_restarts),
      static_cast<unsigned long long>(recovered.metrics.checkpoints_written),
      recovered.metrics.recovery_seconds, mismatches);
  if (mismatches != 0 || recovered.metrics.crash_restarts != 1 ||
      recovered.metrics.recovery_seconds <= 0.0) {
    std::fprintf(stderr,
                 "SELF-CHECK FAILED: crash recovery did not reproduce the "
                 "fault-free run\n");
    ++failures;
  }

  // --- 3. Drop-rate sweep (native) ------------------------------------------
  std::vector<DropCell> drop_cells;
  for (double rate : {0.0, 0.01, 0.05, 0.10}) {
    RunConfig config;
    config.num_ranks = ranks;
    if (rate > 0) {
      char plan[96];
      std::snprintf(plan, sizeof(plan),
                    "seed=4,drop=%.2f,retries=128,timeout=1e-4", rate);
      config.faults = Plan(plan);
    }
    auto run = RunPageRank(EngineKind::kNative, directed, opt, config);
    DropCell cell{rate, run.metrics.bytes_sent, run.metrics.transport_retries,
                  1.0};
    if (!drop_cells.empty() && drop_cells[0].bytes > 0) {
      cell.overhead = static_cast<double>(cell.bytes) /
                      static_cast<double>(drop_cells[0].bytes);
    }
    drop_cells.push_back(cell);
  }
  std::printf("\ndrop-rate sweep (native pagerank, %d ranks)\n", ranks);
  std::printf("%6s %14s %10s %9s\n", "drop", "bytes", "retries", "overhead");
  for (const DropCell& c : drop_cells) {
    std::printf("%6.2f %14llu %10llu %8.3fx\n", c.rate,
                static_cast<unsigned long long>(c.bytes),
                static_cast<unsigned long long>(c.retries), c.overhead);
  }
  for (size_t i = 1; i < drop_cells.size(); ++i) {
    if (drop_cells[i].bytes <= drop_cells[i - 1].bytes ||
        drop_cells[i].retries <= drop_cells[i - 1].retries) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: wire overhead not strictly increasing "
                   "between drop rates %.2f and %.2f\n",
                   drop_cells[i - 1].rate, drop_cells[i].rate);
      ++failures;
    }
  }

  // --- JSON artifact ---------------------------------------------------------
  const char* out_env = std::getenv("MAZE_BENCH_JSON");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_pr4.json";
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fault_overhead\",\n");
  std::fprintf(f, "  \"scale_adjust\": %d,\n", ScaleAdjust());
  std::fprintf(f, "  \"ranks\": %d,\n", ranks);
  std::fprintf(f, "  \"checkpoint_sweep\": [\n");
  for (size_t i = 0; i < ckpt_cells.size(); ++i) {
    const CkptCell& c = ckpt_cells[i];
    std::fprintf(f,
                 "    {\"interval\": %d, \"elapsed_seconds\": %.6f, "
                 "\"recovery_seconds\": %.6f, \"checkpoints\": %llu}%s\n",
                 c.interval, c.elapsed_seconds, c.recovery_seconds,
                 static_cast<unsigned long long>(c.checkpoints),
                 i + 1 < ckpt_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"crash_recovery\": {\"restarts\": %llu, \"checkpoints\": "
               "%llu, \"recovery_seconds\": %.6f, \"mismatched_vertices\": "
               "%zu},\n",
               static_cast<unsigned long long>(recovered.metrics.crash_restarts),
               static_cast<unsigned long long>(
                   recovered.metrics.checkpoints_written),
               recovered.metrics.recovery_seconds, mismatches);
  std::fprintf(f, "  \"drop_sweep\": [\n");
  for (size_t i = 0; i < drop_cells.size(); ++i) {
    const DropCell& c = drop_cells[i];
    std::fprintf(f,
                 "    {\"drop_rate\": %.2f, \"bytes_sent\": %llu, "
                 "\"transport_retries\": %llu, \"byte_overhead\": %.4f}%s\n",
                 c.rate, static_cast<unsigned long long>(c.bytes),
                 static_cast<unsigned long long>(c.retries), c.overhead,
                 i + 1 < drop_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"self_check_failures\": %d\n", failures);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (failures != 0) {
    std::fprintf(stderr, "%d self-check(s) failed\n", failures);
    return 1;
  }
  std::printf("all self-checks passed\n");
  return 0;
}

}  // namespace
}  // namespace maze::bench

int main() { return maze::bench::Main(); }
