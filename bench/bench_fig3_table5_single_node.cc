// Reproduces Figure 3 (a-d) and Table 5: single-node runtimes of all four
// algorithms on all six engines over the real-world stand-ins plus the RMAT
// synthetic, and the per-algorithm geomean slowdowns vs native.
#include "bench/bench_common.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Figure 3 / Table 5: single-node performance, all engines");
  int adjust = ScaleAdjust();

  SlowdownReport pagerank;
  SlowdownReport bfs;
  SlowdownReport triangles;
  SlowdownReport cf;
  SlowdownReport all;

  for (const std::string& name : SingleNodeGraphDatasets()) {
    EdgeList directed = LoadGraphDataset(name, adjust);
    EdgeList undirected = directed;
    undirected.Symmetrize();
    EdgeList oriented = TriangleDataset(name, adjust);
    for (EngineKind engine : AllEngines()) {
      Measurement pr = MeasurePageRank(engine, directed, name, 1);
      Measurement bf = MeasureBfs(engine, undirected, name, 1);
      Measurement tc = MeasureTriangles(engine, oriented, name, 1);
      pagerank.Add(pr);
      bfs.Add(bf);
      triangles.Add(tc);
      all.Add(pr);
      all.Add(bf);
      all.Add(tc);
    }
  }
  for (const std::string& name : {std::string("netflix"),
                                  std::string("rmat_cf")}) {
    BipartiteGraph ratings = LoadRatingsDataset(name, adjust).ToGraph();
    for (EngineKind engine : AllEngines()) {
      Measurement m = MeasureCf(engine, ratings, name, 1);
      cf.Add(m);
      all.Add(m);
    }
  }

  std::printf("%s\n", pagerank
                          .RenderRuntimeTable(
                              "Figure 3(a): PageRank time per iteration")
                          .c_str());
  std::printf("%s\n",
              bfs.RenderRuntimeTable("Figure 3(b): BFS overall time").c_str());
  std::printf("%s\n", cf.RenderRuntimeTable(
                            "Figure 3(c): Collaborative Filtering time per "
                            "iteration")
                          .c_str());
  std::printf("%s\n", triangles
                          .RenderRuntimeTable(
                              "Figure 3(d): Triangle Counting overall time")
                          .c_str());
  std::printf("%s\n", all.RenderGeomeanTable(
                            "Table 5: single-node slowdowns vs native "
                            "(geomean over datasets)")
                          .c_str());
  std::printf(
      "Paper shape: taskflow ~1.1-2.5x, matblas/datalite low single digits,\n"
      "vertexlab mid single digits, bspgraph orders of magnitude slower.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
