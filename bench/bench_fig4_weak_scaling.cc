// Reproduces Figure 4 (a-d): weak scaling on synthetic graphs — the per-rank
// data volume stays constant while rank count grows, so flat lines mean perfect
// scaling. Rank counts follow the paper (1..64); matblas runs on the nearest
// square (its CombBLAS-style 2-D grid constraint).
#include "bench/bench_common.h"

#include "core/rmat.h"

namespace maze::bench {
namespace {

// Per-rank shares (paper: 128M/128M/250M/32M per node; scaled down so that a
// 64-rank run stays laptop-sized, preserving the shape). The per-rank share
// must keep per-rank compute above the per-message fabric latency or the
// simulated scaling curves become latency artifacts.
constexpr int kBaseScale = 15;  // 2^15 vertices per rank at adjust 0.

EdgeList WeakScalingGraph(int ranks, int adjust, bool symmetric) {
  int scale = kBaseScale + adjust;
  int r = ranks;
  while (r > 1) {
    ++scale;
    r /= 2;
  }
  EdgeList el = GenerateRmat(RmatParams::Graph500(scale, 16, 900 + ranks));
  el.Deduplicate();
  if (symmetric) el.Symmetrize();
  return el;
}

EdgeList WeakScalingTriangles(int ranks, int adjust) {
  int scale = kBaseScale - 2 + adjust;
  int r = ranks;
  while (r > 1) {
    ++scale;
    r /= 2;
  }
  EdgeList el = GenerateRmat(RmatParams::TriangleCounting(scale, 12, 700 + ranks));
  el.OrientBySmallerId();
  return el;
}

RatingsDataset WeakScalingRatings(int ranks, int adjust) {
  RatingsParams params;
  params.scale = kBaseScale + adjust;
  int r = ranks;
  while (r > 1) {
    ++params.scale;
    r /= 2;
  }
  params.edge_factor = 8;
  params.num_items = 512;
  params.seed = 800 + ranks;
  return GenerateRatings(params);
}

void Run() {
  Banner("Figure 4: weak scaling on synthetic graphs (1-64 simulated nodes)");
  int adjust = ScaleAdjust();
  const std::vector<int> rank_counts = {1, 4, 16, 64};

  SlowdownReport pagerank;
  SlowdownReport bfs;
  SlowdownReport triangles;
  SlowdownReport cf;
  for (int ranks : rank_counts) {
    EdgeList directed = WeakScalingGraph(ranks, adjust, false);
    EdgeList undirected = WeakScalingGraph(ranks, adjust, true);
    EdgeList oriented = WeakScalingTriangles(ranks, adjust);
    BipartiteGraph ratings = WeakScalingRatings(ranks, adjust).ToGraph();
    for (EngineKind engine : MultiNodeEngines()) {
      pagerank.Add(MeasurePageRank(engine, directed, "rmat-weak", ranks));
      bfs.Add(MeasureBfs(engine, undirected, "rmat-weak", ranks));
      triangles.Add(MeasureTriangles(engine, oriented, "rmat-weak", ranks));
      cf.Add(MeasureCf(engine, ratings, "rmat-weak", ranks));
    }
  }

  std::printf("%s\n", pagerank
                          .RenderRuntimeTable(
                              "Figure 4(a): PageRank weak scaling (s/iter; "
                              "flat = perfect)")
                          .c_str());
  std::printf("%s\n", bfs.RenderRuntimeTable("Figure 4(b): BFS weak scaling")
                          .c_str());
  std::printf("%s\n",
              cf.RenderRuntimeTable("Figure 4(c): CF weak scaling (s/iter)")
                  .c_str());
  std::printf("%s\n", triangles
                          .RenderRuntimeTable(
                              "Figure 4(d): Triangle Counting weak scaling")
                          .c_str());
  std::printf(
      "Paper shape: native flattest; bspgraph worst throughout; vertexlab\n"
      "drops off with rank count on PageRank (network bound on sockets).\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
