// Reproduces Figure 5: the large real-world runs — Twitter (PageRank and BFS on
// 4 nodes, Triangle Counting on 16 nodes) and Yahoo Music (CF on 4 nodes) —
// using the twitter/yahoomusic stand-ins.
#include "bench/bench_common.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Figure 5: large real-world graphs on multiple nodes");
  int adjust = ScaleAdjust();

  SlowdownReport report;

  EdgeList twitter = LoadGraphDataset("twitter", adjust);
  EdgeList twitter_sym = twitter;
  twitter_sym.Symmetrize();
  EdgeList twitter_tc = TriangleDataset("twitter", adjust);
  BipartiteGraph yahoo = LoadRatingsDataset("yahoomusic", adjust).ToGraph();

  for (EngineKind engine : MultiNodeEngines()) {
    report.Add(MeasurePageRank(engine, twitter, "twitter-pr", 4));
    report.Add(MeasureBfs(engine, twitter_sym, "twitter-bfs", 4));
    report.Add(MeasureCf(engine, yahoo, "yahoomusic-cf", 4));
    // matblas ran out of memory on Twitter triangle counting in the paper; we
    // run it anyway and let the memory metric tell that story.
    report.Add(MeasureTriangles(engine, twitter_tc, "twitter-tc", 16));
  }

  std::printf("%s\n", report
                          .RenderRuntimeTable(
                              "Figure 5: runtimes (PR/CF per iteration; "
                              "BFS/TC overall)")
                          .c_str());

  // Memory side-note for the matblas expressibility problem.
  RunConfig config16;
  config16.num_ranks = 16;
  auto matblas_tc = RunTriangleCount(EngineKind::kMatblas, twitter_tc, {},
                                     config16);
  auto native_tc = RunTriangleCount(EngineKind::kNative, twitter_tc, {},
                                    config16);
  std::printf(
      "matblas TC memory footprint: %.1f MB vs native %.1f MB (the A^2\n"
      "materialization that OOMs CombBLAS on real Twitter, Section 5.2)\n",
      matblas_tc.metrics.memory_peak_bytes / 1e6,
      native_tc.metrics.memory_peak_bytes / 1e6);
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
