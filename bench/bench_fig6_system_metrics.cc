// Reproduces Figure 6 (a-d): CPU utilization, peak achieved network bandwidth,
// memory footprint, and network bytes sent per node for 4-node runs of every
// algorithm, normalized as in the paper's caption. Also prints the Section 5.4
// sanity analysis: slowdown predicted from (bytes sent / peak BW) vs measured.
#include "bench/bench_common.h"

#include "util/table.h"

namespace maze::bench {
namespace {

void PredictVsMeasured(const std::vector<Measurement>& rows) {
  // §5.4: "network bytes sent / peak network bandwidth" predicts the framework
  // slowdowns for network-bound PageRank within ~2.5x.
  const Measurement* native = nullptr;
  for (const Measurement& m : rows) {
    if (m.engine == EngineKind::kNative) native = &m;
  }
  if (native == nullptr) return;
  double native_wire = native->metrics.BytesPerRank(native->ranks) /
                       std::max(1.0, native->metrics.peak_network_bw);
  TextTable table(
      "Section 5.4: slowdown predicted from network metrics vs measured "
      "(PageRank, 4 nodes)");
  table.SetHeader({"Engine", "Predicted", "Measured", "Ratio"});
  for (const Measurement& m : rows) {
    if (m.engine == EngineKind::kNative) continue;
    double wire = m.metrics.BytesPerRank(m.ranks) /
                  std::max(1.0, m.metrics.peak_network_bw);
    double predicted = wire / std::max(1e-12, native_wire);
    double measured = m.seconds / std::max(1e-12, native->seconds);
    table.AddRow({EngineName(m.engine), FormatDouble(predicted, 1) + "x",
                  FormatDouble(measured, 1) + "x",
                  FormatDouble(measured / std::max(1e-12, predicted), 2)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void Run() {
  Banner("Figure 6: system-level metrics on 4-node runs");
  int adjust = ScaleAdjust();
  Fig6Normalization norm;

  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();
  EdgeList oriented = TriangleDataset("rmat", adjust);
  BipartiteGraph ratings = LoadRatingsDataset("netflix", adjust).ToGraph();

  std::vector<Measurement> pr;
  std::vector<Measurement> bfs;
  std::vector<Measurement> cf;
  std::vector<Measurement> tc;
  for (EngineKind engine : MultiNodeEngines()) {
    pr.push_back(MeasurePageRank(engine, directed, "rmat", 4));
    bfs.push_back(MeasureBfs(engine, undirected, "rmat", 4));
    cf.push_back(MeasureCf(engine, ratings, "netflix", 4));
    tc.push_back(MeasureTriangles(engine, oriented, "rmat", 4));
  }

  std::printf("%s\n", RenderSystemMetrics("Figure 6(a): PageRank", pr, norm)
                          .c_str());
  std::printf("%s\n", RenderSystemMetrics("Figure 6(b): BFS", bfs, norm)
                          .c_str());
  std::printf("%s\n",
              RenderSystemMetrics("Figure 6(c): Collaborative Filtering", cf,
                                  norm)
                  .c_str());
  std::printf("%s\n",
              RenderSystemMetrics("Figure 6(d): Triangle Counting", tc, norm)
                  .c_str());
  PredictVsMeasured(pr);
  std::printf(
      "Paper shape: native/matblas reach the highest peak BW (MPI class),\n"
      "datalite ~2x vertexlab's socket rate, bspgraph lowest BW and CPU\n"
      "utilization, and bspgraph the largest memory and byte volumes.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
