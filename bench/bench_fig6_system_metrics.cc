// Reproduces Figure 6 (a-d): CPU utilization, peak achieved network bandwidth,
// memory footprint, and network bytes sent per node for 4-node runs of every
// algorithm, normalized as in the paper's caption. Also prints the Section 5.4
// sanity analysis: slowdown predicted from (bytes sent / peak BW) vs measured,
// the unified resource report, and self-checks of the paper's qualitative
// ordering (exit 1 on violation): bspgraph's footprint exceeds vertexlab's and
// native's, every utilization fraction lands in [0, 1], and the per-(step,
// rank) bandwidth buckets partition each run's wire totals exactly.
#include "bench/bench_common.h"

#include "obs/json.h"
#include "obs/resource.h"
#include "rt/metrics.h"
#include "util/table.h"

namespace maze::bench {
namespace {

void PredictVsMeasured(const std::vector<Measurement>& rows) {
  // §5.4: "network bytes sent / peak network bandwidth" predicts the framework
  // slowdowns for network-bound PageRank within ~2.5x.
  const Measurement* native = nullptr;
  for (const Measurement& m : rows) {
    if (m.engine == EngineKind::kNative) native = &m;
  }
  if (native == nullptr) return;
  double native_wire = native->metrics.BytesPerRank(native->ranks) /
                       std::max(1.0, native->metrics.peak_network_bw);
  TextTable table(
      "Section 5.4: slowdown predicted from network metrics vs measured "
      "(PageRank, 4 nodes)");
  table.SetHeader({"Engine", "Predicted", "Measured", "Ratio"});
  for (const Measurement& m : rows) {
    if (m.engine == EngineKind::kNative) continue;
    double wire = m.metrics.BytesPerRank(m.ranks) /
                  std::max(1.0, m.metrics.peak_network_bw);
    double predicted = wire / std::max(1e-12, native_wire);
    double measured = m.seconds / std::max(1e-12, native->seconds);
    table.AddRow({EngineName(m.engine), FormatDouble(predicted, 1) + "x",
                  FormatDouble(measured, 1) + "x",
                  FormatDouble(measured / std::max(1e-12, predicted), 2)});
  }
  std::printf("%s\n", table.Render().c_str());
}

// Finds an algorithm panel's row for `engine` (null when absent).
const Measurement* RowFor(const std::vector<Measurement>& rows,
                          EngineKind engine) {
  for (const Measurement& m : rows) {
    if (m.engine == engine) return &m;
  }
  return nullptr;
}

// Self-checks of the quantities behind Figure 6. Appends one line per
// violation so a CI run fails loudly instead of shipping bogus panels.
void CheckInvariants(const std::vector<Measurement>& all,
                     const std::vector<Measurement>& pr,
                     std::vector<std::string>* violations) {
  // (1) The Giraph-like engine's boxed, fully buffered messaging dominates the
  // footprint ordering on PageRank (§6.1.3 / Figure 6).
  const Measurement* bsp = RowFor(pr, EngineKind::kBspgraph);
  const Measurement* vertex = RowFor(pr, EngineKind::kVertexlab);
  const Measurement* native = RowFor(pr, EngineKind::kNative);
  if (bsp == nullptr || vertex == nullptr || native == nullptr) {
    violations->push_back("pagerank panel is missing an engine row");
  } else {
    if (bsp->metrics.memory_peak_bytes <= vertex->metrics.memory_peak_bytes) {
      violations->push_back("bspgraph pagerank footprint <= vertexlab");
    }
    if (bsp->metrics.memory_peak_bytes <= native->metrics.memory_peak_bytes) {
      violations->push_back("bspgraph pagerank footprint <= native");
    }
  }
  for (const Measurement& m : all) {
    obs::ResourceRow row = ResourceRowFrom(m);
    const std::string cell =
        std::string(EngineName(m.engine)) + "/" + m.algorithm;
    // (2) Every utilization fraction is a fraction.
    auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0 + 1e-9; };
    if (!in_unit(row.cpu_utilization)) {
      violations->push_back(cell + ": cpu_utilization outside [0, 1]");
    }
    if (!in_unit(row.peak_bw_utilization)) {
      violations->push_back(cell + ": peak_bw_utilization outside [0, 1]");
    }
    if (!in_unit(row.avg_bw_utilization)) {
      violations->push_back(cell + ": avg_bw_utilization outside [0, 1]");
    }
    // (3) The utilization timeline partitions the run's wire totals: per-rank
    // bucket bytes sum back to exactly the bytes the clock charged, and every
    // bucket's fractions are fractions.
    uint64_t bucket_bytes = 0;
    for (const rt::UtilizationBucket& b : rt::UtilizationTimeline(m.metrics)) {
      bucket_bytes += b.bytes;
      if (!in_unit(b.cpu_busy) || !in_unit(b.bw_utilization)) {
        violations->push_back(cell + ": timeline bucket fraction outside "
                                     "[0, 1]");
        break;
      }
    }
    if (bucket_bytes != m.metrics.bytes_sent) {
      violations->push_back(
          cell + ": timeline buckets sum to " + std::to_string(bucket_bytes) +
          " bytes, clock charged " + std::to_string(m.metrics.bytes_sent));
    }
  }
}

void WriteBenchJson(const obs::ResourceReport& report,
                    const std::vector<std::string>& violations) {
  const char* env = std::getenv("MAZE_BENCH_JSON");
  std::string path = (env != nullptr && env[0] != '\0') ? env : "BENCH_pr3.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n\"resource\": %s,\n\"violations\": [",
               report.ToJson().c_str());
  for (size_t i = 0; i < violations.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 obs::JsonEscape(violations[i]).c_str());
  }
  std::fprintf(f, "],\n\"ok\": %s\n}\n", violations.empty() ? "true" : "false");
  std::fclose(f);
  std::printf("bench json: wrote %s\n", path.c_str());
}

int Run() {
  Banner("Figure 6: system-level metrics on 4-node runs");
  int adjust = ScaleAdjust();
  Fig6Normalization norm;

  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();
  EdgeList oriented = TriangleDataset("rmat", adjust);
  BipartiteGraph ratings = LoadRatingsDataset("netflix", adjust).ToGraph();

  // Traced runs: the per-step timeline feeds the utilization buckets, the
  // bucket-sum self-check, and the report's step-time percentiles.
  std::vector<Measurement> pr;
  std::vector<Measurement> bfs;
  std::vector<Measurement> cf;
  std::vector<Measurement> tc;
  for (EngineKind engine : MultiNodeEngines()) {
    pr.push_back(MeasurePageRank(engine, directed, "rmat", 4,
                                 /*iterations=*/5, /*trace=*/true));
    bfs.push_back(MeasureBfs(engine, undirected, "rmat", 4, /*trace=*/true));
    cf.push_back(MeasureCf(engine, ratings, "netflix", 4, /*iterations=*/2,
                           /*k=*/16, /*trace=*/true));
    tc.push_back(MeasureTriangles(engine, oriented, "rmat", 4,
                                  /*bsp_phases_for_tc=*/100, /*trace=*/true));
  }

  std::printf("%s\n", RenderSystemMetrics("Figure 6(a): PageRank", pr, norm)
                          .c_str());
  std::printf("%s\n", RenderSystemMetrics("Figure 6(b): BFS", bfs, norm)
                          .c_str());
  std::printf("%s\n",
              RenderSystemMetrics("Figure 6(c): Collaborative Filtering", cf,
                                  norm)
                  .c_str());
  std::printf("%s\n",
              RenderSystemMetrics("Figure 6(d): Triangle Counting", tc, norm)
                  .c_str());
  PredictVsMeasured(pr);

  std::vector<Measurement> all;
  for (const auto* panel : {&pr, &bfs, &cf, &tc}) {
    all.insert(all.end(), panel->begin(), panel->end());
  }
  obs::ResourceReport report;
  for (const Measurement& m : all) report.Add(ResourceRowFrom(m));
  std::printf("%s", report.ToMarkdown().c_str());

  std::vector<std::string> violations;
  CheckInvariants(all, pr, &violations);
  WriteBenchJson(report, violations);
  for (const std::string& v : violations) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
  }
  std::printf(
      "Paper shape: native/matblas reach the highest peak BW (MPI class),\n"
      "datalite ~2x vertexlab's socket rate, bspgraph lowest BW and CPU\n"
      "utilization, and bspgraph the largest memory and byte volumes.\n");
  return violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace maze::bench

int main() { return maze::bench::Run(); }
