// Reproduces Figure 7: the effect of the native-code optimizations on PageRank
// and BFS, applied cumulatively — software prefetching, then message
// compression, then computation/communication overlap, then (BFS only) the
// bitvector data structure. Bars are speedups over the all-off baseline on a
// 4-rank run, matching the paper's presentation.
#include "bench/bench_common.h"

#include "core/graph.h"
#include "native/bfs.h"
#include "native/options.h"
#include "native/pagerank.h"
#include "util/table.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Figure 7: native optimization ablation (PageRank & BFS, 4 nodes)");
  int adjust = ScaleAdjust();

  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();
  Graph pr_graph = Graph::FromEdges(directed, GraphDirections::kBoth);
  Graph bfs_graph = Graph::FromEdges(undirected, GraphDirections::kOutOnly);

  rt::EngineConfig config;
  config.num_ranks = 4;

  struct Stage {
    const char* label;
    native::NativeOptions options;
  };
  auto stages = [](bool with_bitvector) {
    std::vector<Stage> v;
    native::NativeOptions o = native::NativeOptions::AllOff();
    v.push_back({"baseline (all off)", o});
    o.software_prefetch = true;
    v.push_back({"+ s/w prefetching", o});
    o.compress_messages = true;
    v.push_back({"+ compression", o});
    o.overlap_comm = true;
    v.push_back({"+ overlap comp. and comm.", o});
    if (with_bitvector) {
      o.use_bitvector = true;
      v.push_back({"+ data structure opt (bitvector)", o});
    }
    return v;
  };

  {
    TextTable table("PageRank: cumulative speedup over unoptimized native");
    table.SetHeader({"Optimizations", "s/iter", "Speedup"});
    rt::PageRankOptions opt;
    opt.iterations = 5;
    double base = 0;
    for (const Stage& s : stages(false)) {
      auto r = native::PageRank(pr_graph, opt, config, s.options);
      double t = r.metrics.elapsed_seconds / opt.iterations;
      if (base == 0) base = t;
      table.AddRow({s.label, FormatDouble(t, 5), FormatDouble(base / t, 2) + "x"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  {
    TextTable table("BFS: cumulative speedup over unoptimized native");
    table.SetHeader({"Optimizations", "seconds", "Speedup"});
    double base = 0;
    for (const Stage& s : stages(true)) {
      auto r = native::Bfs(bfs_graph, rt::BfsOptions{0}, config, s.options);
      double t = r.metrics.elapsed_seconds;
      if (base == 0) base = t;
      table.AddRow({s.label, FormatDouble(t, 5), FormatDouble(base / t, 2) + "x"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Paper shape: prefetching is the largest single win; compression helps\n"
      "the network-bound runs ~2-3x; overlap adds 1.2-2x; the BFS bitvector\n"
      "adds ~2x on top.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
