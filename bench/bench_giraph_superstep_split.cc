// Reproduces the §6.1.3 Giraph experiment: splitting each superstep into many
// mini-supersteps bounds the buffered-message memory (the paper needed 100
// phases to run Triangle Counting at all, and used the same trick for CF).
// Sweeps the phase count and reports peak memory and simulated runtime.
#include "bench/bench_common.h"

#include "util/table.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("bspgraph superstep splitting (Section 6.1.3)");
  int adjust = ScaleAdjust();

  EdgeList oriented = TriangleDataset("rmat", adjust);
  BipartiteGraph ratings = LoadRatingsDataset("netflix", adjust - 1).ToGraph();

  {
    TextTable table("Triangle counting, 4 nodes: phases vs memory/runtime");
    table.SetHeader({"Phases", "Peak memory (MB)", "Simulated time (s)",
                     "Triangles"});
    for (int phases : {1, 10, 100}) {
      RunConfig config;
      config.num_ranks = 4;
      config.bsp_phases = phases;
      auto r = RunTriangleCount(EngineKind::kBspgraph, oriented, {}, config);
      table.AddRow({std::to_string(phases),
                    FormatDouble(r.metrics.memory_peak_bytes / 1e6, 1),
                    FormatDouble(r.metrics.elapsed_seconds, 4),
                    std::to_string(r.triangles)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  {
    TextTable table("Collaborative filtering (GD), 4 nodes: phases vs memory");
    table.SetHeader({"Phases", "Peak memory (MB)", "Simulated time/iter (s)"});
    for (int phases : {1, 10, 100}) {
      rt::CfOptions opt;
      opt.k = 16;
      opt.iterations = 2;
      opt.method = rt::CfMethod::kGd;
      RunConfig config;
      config.num_ranks = 4;
      config.bsp_phases = phases;
      auto r = RunCf(EngineKind::kBspgraph, ratings, opt, config);
      table.AddRow({std::to_string(phases),
                    FormatDouble(r.metrics.memory_peak_bytes / 1e6, 1),
                    FormatDouble(r.metrics.elapsed_seconds / 2, 4)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Paper shape: memory falls roughly with the phase count (only ~1/phases\n"
      "of messages live at once) at the cost of finer-grained synchronization.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
