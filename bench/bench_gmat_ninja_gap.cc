// ROADMAP item 1 artifact: the GraphMat claim, measured. The gmat engine
// compiles vertex programs down to semiring SpMV over the 2-D tiling; if the
// compilation is worth anything, its modeled time must land within a small
// constant of native's what-if lower bound (the "ninja gap" closed), while the
// interpreted vertexlab engine stays further out.
//
// Gates (exit 1 and "ok": false on violation):
//   1. at 1 rank, gmat elapsed <= MAZE_GMAT_TOL (default 1.2) x native's
//      best-case what-if bound, for PageRank and BFS;
//   2. gmat's gap is strictly smaller than vertexlab's on both algorithms
//      (compilation beats interpretation);
//   3. answers are exact: byte-identical PageRank vectors and BFS distance
//      arrays against the native runs at 1 rank.
// A 4-rank sweep is reported for context but not gated (wire time enters and
// the bound chases a different regime).
//
// Writes BENCH_gmat.json (path via MAZE_BENCH_JSON, default ./BENCH_gmat.json).
#include "bench/bench_common.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/attrib.h"
#include "obs/json.h"

namespace maze::bench {
namespace {

double Tolerance() {
  const char* env = std::getenv("MAZE_GMAT_TOL");
  if (env != nullptr && env[0] != '\0') return std::atof(env);
  return 1.2;
}

struct GapRow {
  std::string algorithm;
  int ranks = 1;
  double native_elapsed = 0;
  double native_best_case = 0;
  double gmat_elapsed = 0;
  double vertexlab_elapsed = 0;
  double gmat_gap = 0;       // gmat elapsed / native best-case bound.
  double vertexlab_gap = 0;  // same denominator, the interpreter's distance.
  bool gated = false;
};

GapRow MakeRow(const Measurement& native, const Measurement& gmat,
               const Measurement& vlab, bool gated) {
  GapRow row;
  row.algorithm = native.algorithm;
  row.ranks = native.ranks;
  row.native_elapsed = native.metrics.elapsed_seconds;
  row.native_best_case =
      obs::attrib::Attribute(native.metrics).bounds.best_case_seconds;
  row.gmat_elapsed = gmat.metrics.elapsed_seconds;
  row.vertexlab_elapsed = vlab.metrics.elapsed_seconds;
  row.gmat_gap = row.gmat_elapsed / row.native_best_case;
  row.vertexlab_gap = row.vertexlab_elapsed / row.native_best_case;
  row.gated = gated;
  return row;
}

void WriteBenchJson(const std::vector<GapRow>& rows,
                    const std::vector<std::string>& violations) {
  const char* env = std::getenv("MAZE_BENCH_JSON");
  std::string path =
      (env != nullptr && env[0] != '\0') ? env : "BENCH_gmat.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n\"bench\": \"gmat\",\n\"scale_adjust\": %d,\n"
               "\"tolerance\": %.3f,\n\"rows\": [\n",
               ScaleAdjust(), Tolerance());
  for (size_t i = 0; i < rows.size(); ++i) {
    const GapRow& r = rows[i];
    std::fprintf(f,
                 "%s{\"algorithm\": \"%s\", \"ranks\": %d, "
                 "\"native_elapsed_seconds\": %.9g, "
                 "\"native_best_case_seconds\": %.9g, "
                 "\"gmat_elapsed_seconds\": %.9g, "
                 "\"vertexlab_elapsed_seconds\": %.9g, "
                 "\"gmat_gap\": %.6g, \"vertexlab_gap\": %.6g, "
                 "\"gated\": %s}",
                 i == 0 ? "" : ",\n", r.algorithm.c_str(), r.ranks,
                 r.native_elapsed, r.native_best_case, r.gmat_elapsed,
                 r.vertexlab_elapsed, r.gmat_gap, r.vertexlab_gap,
                 r.gated ? "true" : "false");
  }
  std::fprintf(f, "\n],\n\"violations\": [");
  for (size_t i = 0; i < violations.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 obs::JsonEscape(violations[i]).c_str());
  }
  std::fprintf(f, "],\n\"ok\": %s\n}\n", violations.empty() ? "true" : "false");
  std::fclose(f);
  std::printf("bench json: wrote %s\n", path.c_str());
}

int Run() {
  Banner("ROADMAP 1: gmat ninja gap vs native what-if bound (PR + BFS)");
  const int adjust = ScaleAdjust();
  const double tol = Tolerance();

  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();

  std::vector<GapRow> rows;
  std::vector<std::string> violations;
  auto fail = [&](const std::string& what) { violations.push_back(what); };

  for (int ranks : {1, 4}) {
    const bool gated = ranks == 1;  // Multi-rank is report-only (wire regime).
    // Gated rows compare two engines' best-case ratio, so both sides get
    // extra repetitions: one noisy scheduler hiccup in a ~2ms denominator
    // must not decide pass/fail.
    const int reps = gated ? 5 : 2;
    rows.push_back(MakeRow(
        MeasurePageRank(EngineKind::kNative, directed, "rmat", ranks,
                        /*iterations=*/5, /*trace=*/true, reps),
        MeasurePageRank(EngineKind::kGmat, directed, "rmat", ranks,
                        /*iterations=*/5, /*trace=*/true, reps),
        MeasurePageRank(EngineKind::kVertexlab, directed, "rmat", ranks,
                        /*iterations=*/5, /*trace=*/true, reps),
        gated));
    rows.push_back(
        MakeRow(MeasureBfs(EngineKind::kNative, undirected, "rmat", ranks,
                           /*trace=*/true, reps),
                MeasureBfs(EngineKind::kGmat, undirected, "rmat", ranks,
                           /*trace=*/true, reps),
                MeasureBfs(EngineKind::kVertexlab, undirected, "rmat", ranks,
                           /*trace=*/true, reps),
                gated));
  }

  for (const GapRow& r : rows) {
    std::printf(
        "%-9s ranks=%d  native=%.6fs  bound=%.6fs  gmat=%.6fs (%.3fx)  "
        "vertexlab=%.6fs (%.3fx)%s\n",
        r.algorithm.c_str(), r.ranks, r.native_elapsed, r.native_best_case,
        r.gmat_elapsed, r.gmat_gap, r.vertexlab_elapsed, r.vertexlab_gap,
        r.gated ? "" : "  [report-only]");
    if (!r.gated) continue;
    if (!(r.native_best_case > 0)) {
      fail(r.algorithm + ": native best-case bound is not positive");
      continue;
    }
    if (r.gmat_gap > tol) {
      fail(r.algorithm + ": gmat gap " + std::to_string(r.gmat_gap) +
           " exceeds tolerance " + std::to_string(tol));
    }
    if (!(r.gmat_gap < r.vertexlab_gap)) {
      fail(r.algorithm + ": gmat gap " + std::to_string(r.gmat_gap) +
           " does not beat the interpreter's " +
           std::to_string(r.vertexlab_gap));
    }
  }

  // Exactness gate: the compiled engine must return the *same bytes* as
  // native at one rank, where both fold per-destination in ascending source
  // order — no "close enough" tolerance hiding a lowering bug.
  {
    rt::PageRankOptions opt;
    opt.iterations = 5;
    RunConfig config;
    config.num_ranks = 1;
    auto native = RunPageRank(EngineKind::kNative, directed, opt, config);
    auto gmat = RunPageRank(EngineKind::kGmat, directed, opt, config);
    if (native.ranks != gmat.ranks) {
      fail("pagerank: gmat ranks vector is not byte-identical to native");
    }
    rt::BfsOptions bopt;
    bopt.source = BusiestVertex(undirected);
    auto nbfs = RunBfs(EngineKind::kNative, undirected, bopt, config);
    auto gbfs = RunBfs(EngineKind::kGmat, undirected, bopt, config);
    if (nbfs.distance != gbfs.distance) {
      fail("bfs: gmat distance vector differs from native");
    }
  }

  WriteBenchJson(rows, violations);
  for (const std::string& v : violations) {
    std::fprintf(stderr, "GATE VIOLATION: %s\n", v.c_str());
  }
  std::printf(
      "Paper shape (GraphMat, §6): compiling the vertex program to semiring\n"
      "SpMV closes most of the ninja gap — gmat tracks native's what-if bound\n"
      "within ~%.1fx while the interpreted engine pays the abstraction tax.\n",
      tol);
  return violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace maze::bench

int main() { return maze::bench::Run(); }
