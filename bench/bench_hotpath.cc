// PR 7 artifact: measured (host wall-clock) before/after for the hot-path
// work of DESIGN.md §4f, with a regression gate.
//
//   1. Boxed-message churn: heap unique_ptr-per-message vs the
//      util::FreeListPool arena, ns/message.
//   2. bspgraph PageRank end-to-end with MAZE_BSP_ARENA off/on — wall seconds
//      plus the allocation counters (the arena must collapse per-message heap
//      allocations by >= 10x), with byte-identical results.
//   3. Native PageRank and matblas SpMV with MAZE_NATIVE_OPT off/on — ns/edge
//      for the cache-blocked/branch-lean kernels, with byte-identical results.
//
// Writes BENCH_hotpath.json (MAZE_BENCH_JSON overrides the path) and exits
// non-zero if any equality self-check fails, the allocation ratio is < 10, or
// an opt variant regresses past MAZE_HOTPATH_TOL (default 1.10: "opt may not
// be more than 10% slower than base" — improvement is the expected reading,
// the tolerance absorbs timer noise on small CI inputs).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bsp/algorithms.h"
#include "core/graph.h"
#include "matrix/algorithms.h"
#include "native/blocked_gather.h"
#include "native/options.h"
#include "native/pagerank.h"
#include "util/freelist.h"
#include "util/timer.h"

namespace maze::bench {
namespace {

struct Variant {
  std::string name;
  double base_ns = 0;   // ns per unit (message or edge), baseline.
  double opt_ns = 0;    // ns per unit, optimized path.
  const char* unit = "edge";
  // Gated variants must satisfy opt <= base * tol. The raw allocator
  // primitive is reported but not gated: single-threaded, glibc's tcache
  // (no atomics) legitimately beats a striped spinlocked pool on primitive
  // cost — the arena's win is the end-to-end engine behavior (locality +
  // batch recycling), which IS gated below.
  bool gated = true;
  double Speedup() const { return opt_ns > 0 ? base_ns / opt_ns : 0; }
};

// Best-of-N wall time: the host is shared and single-run numbers are noisy.
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double s = t.Seconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// --- 1. Boxed-message churn ---------------------------------------------------

Variant ChurnVariant() {
  constexpr int kBatch = 1 << 15;
  constexpr int kRounds = 16;
  const double total = static_cast<double>(kBatch) * kRounds;
  std::vector<util::PoolPtr<double>> box;
  box.reserve(kBatch);

  Variant v{"allocator_primitive"};
  v.unit = "message";
  v.gated = false;
  v.base_ns = 1e9 / total * BestSeconds(3, [&] {
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        box.push_back(util::HeapBoxed<double>(i * 0.5));
      }
      box.clear();
    }
  });
  util::FreeListPool<double> pool;
  v.opt_ns = 1e9 / total * BestSeconds(3, [&] {
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        box.push_back(pool.Make(i * 0.5));
      }
      box.clear();
    }
  });
  return v;
}

int Main() {
  Banner("BENCH_hotpath: arena allocator + cache-blocked kernels (PR 7 gate)");
  const unsigned host_cores = std::thread::hardware_concurrency();
  const size_t window = native::GatherWindowVertices(sizeof(double));
  const int scale = 21 + ScaleAdjust();
  const int bsp_scale = 16 + ScaleAdjust(2);  // Boxed messages are expensive.
  const char* tol_env = std::getenv("MAZE_HOTPATH_TOL");
  const double tol = tol_env != nullptr ? std::atof(tol_env) : 1.10;
  bool ok = true;
  std::vector<std::string> failures;
  auto fail = [&](const std::string& why) {
    ok = false;
    failures.push_back(why);
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
  };

  std::vector<Variant> variants;
  variants.push_back(ChurnVariant());

  // --- 2. bspgraph PageRank, arena off/on ------------------------------------
  EdgeList bsp_edges = GenerateRmat(RmatParams::Graph500(bsp_scale, 16));
  bsp_edges.Deduplicate();
  Graph bsp_graph = Graph::FromEdges(bsp_edges, GraphDirections::kOutOnly);
  rt::PageRankOptions bsp_opt;
  bsp_opt.iterations = 4;
  rt::EngineConfig bsp_config;
  bsp_config.num_ranks = 4;
  bsp_config.comm = bsp::DefaultComm();
  const double bsp_messages =
      static_cast<double>(bsp_graph.num_edges()) * (bsp_opt.iterations + 1);

  rt::PageRankResult heap_result, arena_result;
  bsp::SetArenaEnabled(0);
  bsp::ResetArenaCounters();
  Variant bsp_v{"bsp_message_churn"};  // End-to-end bspgraph PageRank.
  bsp_v.unit = "message";
  bsp_v.base_ns = 1e9 / bsp_messages * BestSeconds(2, [&] {
    heap_result = bsp::PageRank(bsp_graph, bsp_opt, bsp_config);
  });
  bsp::ArenaCounters heap_counters = bsp::GetArenaCounters();
  bsp::SetArenaEnabled(1);
  bsp::ResetArenaCounters();
  bsp_v.opt_ns = 1e9 / bsp_messages * BestSeconds(2, [&] {
    arena_result = bsp::PageRank(bsp_graph, bsp_opt, bsp_config);
  });
  bsp::ArenaCounters arena_counters = bsp::GetArenaCounters();
  bsp::SetArenaEnabled(-1);
  variants.push_back(bsp_v);

  if (!BitIdentical(heap_result.ranks, arena_result.ranks)) {
    fail("bspgraph PageRank results differ between arena off/on");
  }
  if (heap_result.metrics.bytes_sent != arena_result.metrics.bytes_sent ||
      heap_result.metrics.memory_msgbuf_bytes !=
          arena_result.metrics.memory_msgbuf_bytes) {
    fail("bspgraph modeled costs differ between arena off/on");
  }
  if (heap_counters.heap_boxed == 0) {
    fail("arena-off run recorded no heap boxes (counter plumbing broken)");
  }
  double alloc_ratio =
      arena_counters.pool_slab_allocations > 0
          ? static_cast<double>(arena_counters.boxed_requests) /
                static_cast<double>(arena_counters.pool_slab_allocations)
          : 0;
  if (alloc_ratio < 10.0) {
    fail("arena allocation-collapse ratio < 10x");
  }

  // --- 3. Native PageRank + matblas SpMV, opt off/on --------------------------
  EdgeList edges = GenerateRmat(RmatParams::Graph500(scale, 16));
  edges.Deduplicate();
  Graph graph = Graph::FromEdges(edges, GraphDirections::kBoth);
  rt::PageRankOptions pr_opt;
  pr_opt.iterations = 5;
  rt::EngineConfig native_config;  // 1 rank: the pure kernel measurement.
  const double native_edges =
      static_cast<double>(graph.num_edges()) * pr_opt.iterations;

  rt::PageRankResult native_base, native_fast;
  native::SetNativeOptForTesting(0);
  Variant native_v{"native_pagerank"};
  native_v.base_ns = 1e9 / native_edges * BestSeconds(3, [&] {
    native_base = native::PageRank(graph, pr_opt, native_config,
                                   native::NativeOptions::AllOn());
  });
  native::SetNativeOptForTesting(1);
  native_v.opt_ns = 1e9 / native_edges * BestSeconds(3, [&] {
    native_fast = native::PageRank(graph, pr_opt, native_config,
                                   native::NativeOptions::AllOn());
  });
  variants.push_back(native_v);
  if (!BitIdentical(native_base.ranks, native_fast.ranks)) {
    fail("native PageRank results differ between opt off/on");
  }

  rt::PageRankResult matrix_base, matrix_fast;
  rt::EngineConfig matrix_config;
  matrix_config.num_ranks = 4;
  matrix_config.comm = matrix::DefaultComm();
  native::SetNativeOptForTesting(0);
  Variant matrix_v{"matrix_spmv_pagerank"};
  matrix_v.base_ns = 1e9 / native_edges * BestSeconds(3, [&] {
    matrix_base = matrix::PageRank(edges, pr_opt, matrix_config);
  });
  native::SetNativeOptForTesting(1);
  matrix_v.opt_ns = 1e9 / native_edges * BestSeconds(3, [&] {
    matrix_fast = matrix::PageRank(edges, pr_opt, matrix_config);
  });
  native::SetNativeOptForTesting(-1);
  variants.push_back(matrix_v);
  if (!BitIdentical(matrix_base.ranks, matrix_fast.ranks)) {
    fail("matblas SpMV PageRank results differ between opt off/on");
  }

  // --- Regression gate --------------------------------------------------------
  for (const Variant& v : variants) {
    if (v.gated && v.opt_ns > v.base_ns * tol) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s regressed: opt %.2f ns/%s vs base %.2f (tol %.2fx)",
                    v.name.c_str(), v.opt_ns, v.unit, v.base_ns, tol);
      fail(buf);
    }
  }

  std::printf("host cores %u, gather window %zu vertices, tol %.2fx\n",
              host_cores, window, tol);
  std::printf("%-22s %12s %12s %9s\n", "variant", "base", "opt", "speedup");
  for (const Variant& v : variants) {
    std::printf("%-22s %9.2f/%-3s %9.2f/%-3s %8.2fx\n", v.name.c_str(),
                v.base_ns, v.unit, v.opt_ns, v.unit, v.Speedup());
  }
  std::printf("arena: %llu boxed requests, %llu slab allocations (%.0fx), "
              "%llu reused, %llu heap-boxed when off\n",
              static_cast<unsigned long long>(arena_counters.boxed_requests),
              static_cast<unsigned long long>(
                  arena_counters.pool_slab_allocations),
              alloc_ratio,
              static_cast<unsigned long long>(arena_counters.pool_reused),
              static_cast<unsigned long long>(heap_counters.heap_boxed));

  const char* out_env = std::getenv("MAZE_BENCH_JSON");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_hotpath.json";
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hotpath\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"gather_window_vertices\": %zu,\n", window);
  std::fprintf(f, "  \"scale_adjust\": %d,\n", ScaleAdjust());
  std::fprintf(f, "  \"tolerance\": %.3f,\n", tol);
  std::fprintf(f, "  \"variants\": [\n");
  for (size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", \"gated\": %s, "
                 "\"base_ns\": %.3f, \"opt_ns\": %.3f, \"speedup\": %.3f}%s\n",
                 v.name.c_str(), v.unit, v.gated ? "true" : "false",
                 v.base_ns, v.opt_ns, v.Speedup(),
                 i + 1 < variants.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"arena\": {\n");
  std::fprintf(f, "    \"boxed_requests\": %llu,\n",
               static_cast<unsigned long long>(arena_counters.boxed_requests));
  std::fprintf(f, "    \"pool_slab_allocations\": %llu,\n",
               static_cast<unsigned long long>(
                   arena_counters.pool_slab_allocations));
  std::fprintf(f, "    \"pool_slab_bytes\": %llu,\n",
               static_cast<unsigned long long>(arena_counters.pool_slab_bytes));
  std::fprintf(f, "    \"pool_reused\": %llu,\n",
               static_cast<unsigned long long>(arena_counters.pool_reused));
  std::fprintf(f, "    \"heap_boxed_when_off\": %llu,\n",
               static_cast<unsigned long long>(heap_counters.heap_boxed));
  std::fprintf(f, "    \"alloc_collapse_ratio\": %.1f\n", alloc_ratio);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"ok\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  if (!ok) {
    for (const std::string& why : failures) {
      std::fprintf(stderr, "hotpath gate: %s\n", why.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace maze::bench

int main() { return maze::bench::Main(); }
