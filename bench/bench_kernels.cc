// google-benchmark microbenchmarks for the performance-critical substrate
// pieces: CSR construction, the visited-set primitives, the message codecs, the
// cuckoo set, and one native PageRank iteration. These are the building blocks
// whose costs the paper's §6.1.1 optimization discussion is about.
#include <benchmark/benchmark.h>

#include "core/graph.h"
#include "core/ratings_gen.h"
#include "core/rmat.h"
#include "core/weighted_graph.h"
#include "datalog/table.h"
#include "matrix/dist_matrix.h"
#include "native/bfs.h"
#include "native/cf.h"
#include "native/pagerank.h"
#include "native/sssp.h"
#include "native/triangle.h"
#include "task/algorithms.h"
#include "util/bitvector.h"
#include "util/codec.h"
#include "util/cuckoo_set.h"
#include "util/prng.h"

namespace maze {
namespace {

EdgeList BenchEdges() {
  static EdgeList* edges = [] {
    auto* el = new EdgeList(GenerateRmat(RmatParams::Graph500(14, 8, 7)));
    el->Deduplicate();
    return el;
  }();
  return *edges;
}

void BM_CsrBuild(benchmark::State& state) {
  EdgeList el = BenchEdges();
  for (auto _ : state) {
    Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(el.edges.size()));
}
BENCHMARK(BM_CsrBuild);

void BM_RmatGenerate(benchmark::State& state) {
  for (auto _ : state) {
    EdgeList el = GenerateRmat(RmatParams::Graph500(12, 8, 5));
    benchmark::DoNotOptimize(el.edges.data());
  }
}
BENCHMARK(BM_RmatGenerate);

void BM_BitvectorTestAndSet(benchmark::State& state) {
  Bitvector bv(1 << 20);
  Xorshift64Star rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bv.TestAndSetAtomic(rng.NextBounded(1 << 20)));
  }
}
BENCHMARK(BM_BitvectorTestAndSet);

void BM_CuckooInsertContains(benchmark::State& state) {
  Xorshift64Star rng(5);
  for (auto _ : state) {
    CuckooSet set(256);
    for (int i = 0; i < 256; ++i) set.Insert(static_cast<uint32_t>(rng.Next()));
    benchmark::DoNotOptimize(set.Contains(42));
  }
}
BENCHMARK(BM_CuckooInsertContains);

void BM_DeltaEncodeIds(benchmark::State& state) {
  Xorshift64Star rng(9);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(static_cast<uint32_t>(rng.NextBounded(1 << 22)));
  }
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    DeltaEncodeIds(ids, &buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DeltaEncodeIds);

void BM_EncodeIdsBestDense(benchmark::State& state) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 4096; i += 2) ids.push_back(100000 + i);
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    EncodeIdsBest(ids, &buf);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_EncodeIdsBestDense);

void BM_NativePageRankIteration(benchmark::State& state) {
  EdgeList el = BenchEdges();
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 1;
  for (auto _ : state) {
    auto result = native::PageRank(g, opt, rt::EngineConfig{});
    benchmark::DoNotOptimize(result.ranks.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_NativePageRankIteration);

void BM_NativeBfs(benchmark::State& state) {
  EdgeList el = BenchEdges();
  el.Symmetrize();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  for (auto _ : state) {
    auto result = native::Bfs(g, rt::BfsOptions{0}, rt::EngineConfig{});
    benchmark::DoNotOptimize(result.distance.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_NativeBfs);

void BM_SortedIntersection(benchmark::State& state) {
  // The triangle-counting inner loop on two power-law adjacency lists.
  EdgeList el = GenerateRmat(RmatParams::TriangleCounting(12, 12, 7));
  el.OrientBySmallerId();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  for (auto _ : state) {
    auto result = native::TriangleCount(g, {}, rt::EngineConfig{});
    benchmark::DoNotOptimize(result.triangles);
  }
}
BENCHMARK(BM_SortedIntersection);

void BM_SgdBlockPass(benchmark::State& state) {
  RatingsParams params;
  params.scale = 12;
  params.num_items = 256;
  BipartiteGraph g = GenerateRatings(params).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kSgd;
  opt.k = 16;
  opt.iterations = 1;
  for (auto _ : state) {
    auto result = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
    benchmark::DoNotOptimize(result.final_rmse);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_ratings()));
}
BENCHMARK(BM_SgdBlockPass);

void BM_DatalogTailNest(benchmark::State& state) {
  EdgeList el = BenchEdges();
  for (auto _ : state) {
    datalog::Table t("EDGE", 2, 0);
    for (const Edge& e : el.edges) {
      int64_t row[2] = {e.src, e.dst};
      t.AppendRow(row);
    }
    t.TailNest(el.num_vertices);
    benchmark::DoNotOptimize(t.num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(el.edges.size()));
}
BENCHMARK(BM_DatalogTailNest);

void BM_DistMatrixBuild(benchmark::State& state) {
  EdgeList el = BenchEdges();
  for (auto _ : state) {
    matrix::DistMatrix m = matrix::DistMatrix::FromEdges(el, 16);
    benchmark::DoNotOptimize(m.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(el.edges.size()));
}
BENCHMARK(BM_DistMatrixBuild);

void BM_DijkstraReference(benchmark::State& state) {
  EdgeList el = BenchEdges();
  el.Symmetrize();
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 8.0f, 3);
  for (auto _ : state) {
    auto dist = native::ReferenceDijkstra(g, 0);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_DijkstraReference);

void BM_TaskflowDeltaStepping(benchmark::State& state) {
  EdgeList el = BenchEdges();
  el.Symmetrize();
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 8.0f, 3);
  for (auto _ : state) {
    auto result = task::Sssp(g, rt::SsspOptions{0, 0}, rt::EngineConfig{});
    benchmark::DoNotOptimize(result.distance.data());
  }
}
BENCHMARK(BM_TaskflowDeltaStepping);

}  // namespace
}  // namespace maze

BENCHMARK_MAIN();
