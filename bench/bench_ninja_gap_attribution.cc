// PR 5 artifact: critical-path time attribution for every engine x
// {PageRank, BFS} — the quantitative version of the paper's §5.4 narrative.
// For each traced run, obs::attrib decomposes the modeled elapsed time into
// critical-compute / critical-wire / imbalance-idle / fault-recovery and
// recomputes what-if lower bounds (infinite bandwidth, perfect balance, zero
// faults, all three) from the same step records; actual/bound is the "ninja
// gap" each framework could still close (GraphMat's framing).
//
// Self-checks (exit 1 and "ok": false on violation):
//   1. the four components sum to the run's elapsed_seconds (<= 1e-9 rel.);
//   2. every what-if bound is <= the actual elapsed time, and the best-case
//      bound is <= each single-counterfactual bound;
//   3. per step, the component split sums back to that step's barrier time;
//   4. imbalance factors are >= 1 and per-rank slack is >= 0.
//
// Writes BENCH_pr5.json (path via MAZE_BENCH_JSON, default ./BENCH_pr5.json).
// Schedule invariance (serial vs rank-parallel byte-identical output) is
// asserted by tests/attrib_differential_test.cc; this binary checks the
// decomposition algebra on real engine runs and prints the report.
#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/attrib.h"
#include "obs/json.h"
#include "rt/metrics.h"

namespace maze::bench {
namespace {

bool RelClose(double a, double b, double rel) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1e-30});
  return std::fabs(a - b) <= rel * scale;
}

// Tolerant one-sided comparison for the bound checks: a <= b up to rounding.
bool AtMost(double a, double b) { return a <= b * (1.0 + 1e-9) + 1e-30; }

void CheckRun(const Measurement& m, const obs::attrib::Attribution& a,
              std::vector<std::string>* violations) {
  std::string tag = std::string(EngineName(m.engine)) + "/" + m.algorithm;
  auto fail = [&](const std::string& what) {
    violations->push_back(tag + ": " + what);
  };

  if (!a.available) {
    fail("attribution unavailable for a traced run");
    return;
  }
  if (!RelClose(a.ComponentSum(), m.metrics.elapsed_seconds, 1e-9)) {
    fail("components sum " + std::to_string(a.ComponentSum()) +
         " != elapsed " + std::to_string(m.metrics.elapsed_seconds));
  }
  if (!RelClose(a.elapsed_seconds, m.metrics.elapsed_seconds, 1e-9)) {
    fail("recomputed elapsed diverges from RunMetrics::elapsed_seconds");
  }

  const obs::attrib::WhatIfBounds& b = a.bounds;
  double actual = a.elapsed_seconds;
  if (!AtMost(b.infinite_bandwidth_seconds, actual)) {
    fail("infinite-bandwidth bound exceeds actual");
  }
  if (!AtMost(b.perfect_balance_seconds, actual)) {
    fail("perfect-balance bound exceeds actual");
  }
  if (!AtMost(b.zero_fault_seconds, actual)) {
    fail("zero-fault bound exceeds actual");
  }
  if (!AtMost(b.best_case_seconds, actual)) {
    fail("best-case bound exceeds actual");
  }
  if (!AtMost(b.best_case_seconds, b.infinite_bandwidth_seconds) ||
      !AtMost(b.best_case_seconds, b.perfect_balance_seconds) ||
      !AtMost(b.best_case_seconds, b.zero_fault_seconds)) {
    fail("best-case bound exceeds a single-counterfactual bound");
  }

  if (a.max_imbalance_factor < 1.0 || a.mean_imbalance_factor < 1.0) {
    fail("imbalance factor below 1");
  }
  if (!AtMost(a.mean_imbalance_factor, a.max_imbalance_factor)) {
    fail("mean imbalance factor exceeds the max");
  }
  for (double s : a.rank_slack_seconds) {
    if (s < 0) fail("negative per-rank slack");
  }
  for (const obs::attrib::StepAttribution& s : a.steps) {
    double sum = s.compute_seconds + s.wire_seconds + s.imbalance_seconds +
                 s.fault_seconds;
    if (!RelClose(sum, s.step_seconds, 1e-9)) {
      fail("step " + std::to_string(s.step) +
           " component split does not sum to the barrier time");
    }
    if (s.compute_seconds < 0 || s.wire_seconds < 0 ||
        s.imbalance_seconds < 0 || s.fault_seconds < 0) {
      fail("step " + std::to_string(s.step) + " has a negative component");
    }
  }
}

void WriteBenchJson(const obs::attrib::AttributionReport& report,
                    const std::vector<std::string>& violations) {
  const char* env = std::getenv("MAZE_BENCH_JSON");
  std::string path = (env != nullptr && env[0] != '\0') ? env : "BENCH_pr5.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n\"attribution\": %s,\n\"violations\": [",
               report.ToJson().c_str());
  for (size_t i = 0; i < violations.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 obs::JsonEscape(violations[i]).c_str());
  }
  std::fprintf(f, "],\n\"ok\": %s\n}\n", violations.empty() ? "true" : "false");
  std::fclose(f);
  std::printf("bench json: wrote %s\n", path.c_str());
}

int Run() {
  Banner("PR 5: critical-path attribution & ninja gap (all engines, PR + BFS)");
  int adjust = ScaleAdjust();

  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();

  obs::attrib::AttributionReport report;
  std::vector<std::string> violations;
  for (EngineKind engine : AllEngines()) {
    // taskflow is the single-node family; everything else runs 4 ranks like
    // the paper's multi-node comparison.
    int ranks = engine == EngineKind::kTaskflow ? 1 : 4;
    for (const Measurement& m :
         {MeasurePageRank(engine, directed, "rmat", ranks, /*iterations=*/5,
                          /*trace=*/true),
          MeasureBfs(engine, undirected, "rmat", ranks, /*trace=*/true)}) {
      obs::attrib::AttributionRow row;
      row.engine = EngineName(m.engine);
      row.algorithm = m.algorithm;
      row.dataset = m.dataset;
      row.ranks = m.ranks;
      row.attribution = obs::attrib::Attribute(m.metrics);
      CheckRun(m, row.attribution, &violations);
      report.Add(std::move(row));
    }
  }

  std::printf("%s\n", report.ToMarkdown().c_str());
  WriteBenchJson(report, violations);
  for (const std::string& v : violations) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
  }
  std::printf(
      "Paper shape (§5.4): the framework engines spend most of their barrier\n"
      "time on the wire (network-bound), native keeps the largest compute\n"
      "share, and the bsp engine adds the widest imbalance-idle slice — the\n"
      "what-if columns quantify how much each gap is worth.\n");
  return violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace maze::bench

int main() { return maze::bench::Run(); }
