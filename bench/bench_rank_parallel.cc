// PR 2 artifact: host wall-clock of the rank-parallel schedule vs the serial
// one-rank-at-a-time schedule, per engine, at 16 and 64 simulated ranks.
// Writes BENCH_pr2.json (path via MAZE_BENCH_JSON, default ./BENCH_pr2.json)
// with the raw seconds, the speedups, and the host's core count — the speedup
// is bounded by the cores available, so a 1-core host honestly reports ~1x.
//
// Correctness of the comparison (identical answers and identical modeled wire
// totals between schedules) is asserted by tests/rank_parallel_test.cc; this
// binary only measures wall time.
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "rt/rank_exec.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::bench {
namespace {

struct Cell {
  std::string engine;
  std::string algo;
  int ranks = 0;
  double serial_seconds = 0;
  double parallel_seconds = 0;
};

double TimeRun(int forced_serial, const std::function<void()>& run) {
  rt::SetSerialRanks(forced_serial);
  Timer t;
  run();
  double s = t.Seconds();
  rt::SetSerialRanks(-1);
  return s;
}

int Main() {
  Banner(
      "BENCH_pr2: rank-parallel vs serial schedule wall-clock "
      "(PR 2 tentpole artifact)");
  const unsigned host_cores = std::thread::hardware_concurrency();
  const unsigned pool_threads = ThreadPool::Default().num_threads();

  EdgeList directed = GenerateRmat(RmatParams::Graph500(14 + ScaleAdjust(), 16));
  directed.Deduplicate();
  EdgeList undirected = directed;
  undirected.Symmetrize();

  rt::PageRankOptions pr_opt;
  pr_opt.iterations = 8;
  rt::BfsOptions bfs_opt{0};

  std::vector<Cell> cells;
  for (int ranks : {16, 64}) {
    for (EngineKind engine : MultiNodeEngines()) {
      RunConfig config;
      config.num_ranks = ranks;
      {
        Cell c{EngineName(engine), "pagerank", ranks, 0, 0};
        c.serial_seconds = TimeRun(1, [&] {
          RunPageRank(engine, directed, pr_opt, config);
        });
        c.parallel_seconds = TimeRun(0, [&] {
          RunPageRank(engine, directed, pr_opt, config);
        });
        cells.push_back(c);
      }
      {
        Cell c{EngineName(engine), "bfs", ranks, 0, 0};
        c.serial_seconds = TimeRun(1, [&] {
          RunBfs(engine, undirected, bfs_opt, config);
        });
        c.parallel_seconds = TimeRun(0, [&] {
          RunBfs(engine, undirected, bfs_opt, config);
        });
        cells.push_back(c);
      }
    }
  }

  std::printf("host cores %u, pool threads %u\n", host_cores, pool_threads);
  std::printf("%-10s %-9s %6s %12s %12s %8s\n", "engine", "algo", "ranks",
              "serial_s", "parallel_s", "speedup");
  for (const Cell& c : cells) {
    double speedup =
        c.parallel_seconds > 0 ? c.serial_seconds / c.parallel_seconds : 0;
    std::printf("%-10s %-9s %6d %12.4f %12.4f %7.2fx\n", c.engine.c_str(),
                c.algo.c_str(), c.ranks, c.serial_seconds, c.parallel_seconds,
                speedup);
  }

  const char* out_env = std::getenv("MAZE_BENCH_JSON");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_pr2.json";
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"rank_parallel_vs_serial\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"pool_threads\": %u,\n", pool_threads);
  std::fprintf(f, "  \"scale_adjust\": %d,\n", ScaleAdjust());
  std::fprintf(f, "  \"note\": \"speedup is bounded by host cores; on a 1-core host the schedules tie by construction\",\n");
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    double speedup =
        c.parallel_seconds > 0 ? c.serial_seconds / c.parallel_seconds : 0;
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"algo\": \"%s\", \"ranks\": %d, "
                 "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 c.engine.c_str(), c.algo.c_str(), c.ranks, c.serial_seconds,
                 c.parallel_seconds, speedup,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace maze::bench

int main() { return maze::bench::Main(); }
