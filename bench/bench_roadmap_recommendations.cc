// Section 6.2 made executable: the paper closes with a per-framework roadmap of
// changes ("incorporate MPI", "boost network bandwidth by 10x", "run more
// workers per node", "use bitvectors for BFS compression"). This bench applies
// each recommendation to the corresponding engine and reports before/after
// slowdowns vs native on 8-node runs — the quantitative version of the paper's
// qualitative predictions (e.g. "should allow GraphLab to be within 5x").
#include "bench/bench_common.h"

#include "bsp/algorithms.h"
#include "core/graph.h"
#include "matrix/algorithms.h"
#include "util/table.h"

namespace maze::bench {
namespace {

constexpr int kRanks = 8;

double NativePrSeconds(const EdgeList& directed) {
  return MeasurePageRank(EngineKind::kNative, directed, "rmat", kRanks).seconds;
}

void Run() {
  Banner("Section 6.2 roadmap: recommended fixes, applied and measured");
  int adjust = ScaleAdjust();
  EdgeList directed = LoadGraphDataset("twitter", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();

  double native_pr = NativePrSeconds(directed);

  TextTable table("PageRank (8 nodes): slowdown vs native, before -> after");
  table.SetHeader({"Engine", "Recommendation", "Before", "After"});

  {
    // vertexlab: "this 4-5x [network] gap can be minimized by incorporating
    // MPI, or at least by using multiple sockets between pairs of nodes".
    rt::PageRankOptions opt;
    opt.iterations = 5;
    RunConfig base;
    base.num_ranks = kRanks;
    auto before = RunPageRank(EngineKind::kVertexlab, directed, opt, base);
    RunConfig multi = base;
    multi.comm_override = rt::CommModel::MultiSocket();
    auto mid = RunPageRank(EngineKind::kVertexlab, directed, opt, multi);
    RunConfig mpi = base;
    mpi.comm_override = rt::CommModel::Mpi();
    auto after = RunPageRank(EngineKind::kVertexlab, directed, opt, mpi);
    table.AddRow({"vertexlab", "multi-socket transport",
                  FormatDouble(before.metrics.elapsed_seconds / 5 / native_pr,
                               1) + "x",
                  FormatDouble(mid.metrics.elapsed_seconds / 5 / native_pr, 1) +
                      "x"});
    table.AddRow({"vertexlab", "MPI transport", "",
                  FormatDouble(after.metrics.elapsed_seconds / 5 / native_pr,
                               1) + "x"});
  }
  {
    // bspgraph: "boosting network bandwidth by 10x" and "run more workers per
    // node, thereby improving CPU utilization".
    Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
    rt::PageRankOptions opt;
    opt.iterations = 5;
    rt::EngineConfig config;
    config.num_ranks = kRanks;
    config.comm = bsp::DefaultComm();
    auto before = bsp::PageRank(g, opt, config, bsp::BspOptions{});

    rt::EngineConfig fast_net = config;
    fast_net.comm = rt::CommModel::Mpi();  // ~12x netty's bandwidth.
    auto mid = bsp::PageRank(g, opt, fast_net, bsp::BspOptions{});

    bsp::BspOptions full_workers;
    full_workers.workers_per_node = bsp::BspOptions::kHardwareThreadsPerNode;
    auto after = bsp::PageRank(g, opt, fast_net, full_workers);
    table.AddRow({"bspgraph", "10x network (netty -> mpi)",
                  FormatDouble(before.metrics.elapsed_seconds / 5 / native_pr,
                               1) + "x",
                  FormatDouble(mid.metrics.elapsed_seconds / 5 / native_pr, 1) +
                      "x"});
    table.AddRow({"bspgraph", "+ 24 workers/node (util " +
                      FormatDouble(before.metrics.cpu_utilization * 100, 0) +
                      "% -> " +
                      FormatDouble(after.metrics.cpu_utilization * 100, 0) +
                      "%)",
                  "",
                  FormatDouble(after.metrics.elapsed_seconds / 5 / native_pr,
                               1) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  {
    // matblas: "needs to use data structures such as bitvectors for
    // compression in order to improve BFS performance". The direct engine call
    // keeps CombBLAS's square-grid constraint: nearest square <= kRanks.
    rt::EngineConfig config;
    config.num_ranks = MatblasRanks(kRanks);
    config.comm = matrix::DefaultComm();
    auto before = matrix::Bfs(undirected, rt::BfsOptions{0}, config,
                              matrix::MatblasOptions{});
    matrix::MatblasOptions compressed;
    compressed.compress_frontier = true;
    auto after = matrix::Bfs(undirected, rt::BfsOptions{0}, config, compressed);
    TextTable t2("matblas BFS (8 nodes): frontier compression recommendation");
    t2.SetHeader({"Config", "Seconds", "Net bytes"});
    t2.AddRow({"raw (id, parent) frontier",
               FormatDouble(before.metrics.elapsed_seconds, 5),
               std::to_string(before.metrics.bytes_sent)});
    t2.AddRow({"bitvector/delta compressed",
               FormatDouble(after.metrics.elapsed_seconds, 5),
               std::to_string(after.metrics.bytes_sent)});
    std::printf("%s\n", t2.Render().c_str());
  }
  std::printf(
      "Paper's predictions: GraphLab within ~5x of native once off sockets;\n"
      "Giraph 'very competitive' with a 10x network boost plus more workers.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
