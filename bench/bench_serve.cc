// PR 6 artifact: closed-loop load generation against maze::serve::Service.
//
// A sweep of client counts (1..16 closed-loop threads, each waiting for its
// response before sending the next request) drives a fixed mix of 8 distinct
// query keys — pagerank/bfs/cc/triangles across three engines — through one
// service. Between sweeps the snapshot epoch is bumped, so every sweep starts
// cache-cold and re-exercises admission, dedup, execution, and caching.
// Reported per client count: throughput, p50/p99 latency, and hit/dedup rates.
//
// Self-checking (non-zero exit on violation):
//   1. Byte identity — every successful response payload equals the payload an
//      isolated fresh service produced for the same request. Dedup'd and
//      cached responses must be indistinguishable from solo executions.
//   2. No spurious backpressure — the closed-loop phase bounds outstanding
//      requests by the client count, which is below the queue depth, so
//      rejections must be zero.
//   3. Exact backpressure — with dispatch paused and the queue filled to its
//      bound with distinct keys, further distinct submissions are rejected
//      (kUnavailable) while identical ones still join in-flight work: rejects
//      happen iff the queue is at its bound.
//   4. Bill conservation — after the full concurrent sweep (plus a faulted
//      tail), the per-request bills sum exactly back to the engine-run flight
//      costs: integers exactly, seconds to <= 1e-9 relative (serve/bill.h).
//   5. SLO-trip forensic determinism — the same serialized request sequence,
//      run once under the serial and once under the rank-parallel schedule,
//      trips the watchdog into byte-identical bills dumps (canonical fields
//      only; the dump names the same top-cost request ids either way).
//
// Writes BENCH_serve.json (path via MAZE_BENCH_JSON, default
// ./BENCH_serve.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/counters.h"
#include "obs/openmetrics.h"
#include "obs/telemetry.h"
#include "rt/rank_exec.h"
#include "serve/bill.h"
#include "serve/service.h"
#include "serve/slo.h"

namespace maze::bench {
namespace {

using serve::QueryKind;
using serve::Request;
using serve::Response;
using serve::Service;
using serve::ServiceOptions;
using serve::ServiceStats;

// The fixed request mix: 8 distinct execution keys over three cheap engines.
std::vector<Request> RequestMix() {
  std::vector<Request> mix;
  auto add = [&](const std::string& algo, const std::string& engine,
                 int iterations, VertexId source) {
    Request r;
    r.snapshot = "g";
    r.algo = algo;
    r.engine = engine;
    r.iterations = iterations;
    r.source = source;
    mix.push_back(r);
  };
  add("pagerank", "native", 3, 0);
  add("pagerank", "native", 5, 0);
  add("pagerank", "vertexlab", 3, 0);
  add("pagerank", "matblas", 3, 0);
  add("bfs", "native", 10, 0);
  add("bfs", "native", 10, 1);
  add("cc", "native", 10, 0);
  add("triangles", "native", 10, 0);
  return mix;
}

// Parameter signature independent of snapshot epoch: the graph source is
// deterministic, so expected payloads hold across bumps.
std::string VariantKey(const Request& r) {
  return r.algo + "/" + r.engine + "/it=" + std::to_string(r.iterations) +
         "/src=" + std::to_string(r.source);
}

EdgeList ServeGraph() {
  auto loaded = TryLoadGraphDataset("facebook", ScaleAdjust(-2));
  MAZE_CHECK(loaded.ok());
  return std::move(loaded).value();
}

struct SweepRow {
  int clients = 0;
  uint64_t requests = 0;
  double seconds = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  double dedup_rate = 0;
  uint64_t rejected = 0;
};

double PercentileMs(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0;
  size_t idx = static_cast<size_t>(q * (sorted_seconds.size() - 1));
  return sorted_seconds[idx] * 1e3;
}

std::string Slurp(const std::string& path) {
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

// Check 5 driver: a fixed serialized request sequence under a forced rank
// schedule (1 = serial, 0 = rank-parallel), with the watchdog armed to trip
// at its single scrape and dump forensics to `dump_path`. Returns the dump
// bytes. The process-global serve counters are reset and a baseline scrape
// taken before arming, so the evaluation window holds exactly this sequence.
std::string SloTripDumpForSchedule(int forced_serial,
                                   const std::string& dump_path) {
  rt::SetSerialRanks(forced_serial);
  obs::ResetCountersAndHistograms();
  Service service(ServiceOptions{});
  service.registry().Install("g", ServeGraph());
  obs::TelemetryRegistry telemetry;
  telemetry.ScrapeOnce();  // Baseline window before arming.

  serve::SloOptions slo;
  slo.p99_target_ms = 1e-3;  // 1 us: every execution lands over target.
  slo.dump_top_k = 3;
  slo.dump_path = dump_path;
  serve::SloWatchdog watchdog(slo, &telemetry, &service, nullptr);

  // Serialized calls so request ids and the amortization order are schedule
  // independent; ranks=2 gives the rank-parallel schedule real work, and the
  // faulted straggler must top the canonical cost ranking in both dumps.
  for (int it : {2, 4}) {
    Request r;
    r.snapshot = "g";
    r.algo = "pagerank";
    r.engine = "native";
    r.iterations = it;
    r.ranks = 2;
    Response resp = service.Call(r);
    if (!resp.status.ok()) {
      std::fprintf(stderr, "FAIL: slo-trip sequence: %s\n",
                   resp.status.ToString().c_str());
    }
    if (it == 2) service.Call(r);  // A cache hit rides along at zero cost.
  }
  Request straggler;
  straggler.snapshot = "g";
  straggler.algo = "pagerank";
  straggler.engine = "native";
  straggler.iterations = 3;
  straggler.ranks = 2;
  straggler.faults = "seed=7,straggle=0x64";
  service.Call(straggler);

  telemetry.ScrapeOnce();  // Trips the watchdog; writes the dump.
  rt::SetSerialRanks(-1);
  return Slurp(dump_path);
}

int Main() {
  Banner("BENCH_serve: concurrent query service under closed-loop load "
         "(PR 6 artifact)");
  int failures = 0;

  const std::vector<Request> mix = RequestMix();

  // Expected payload per variant, from an isolated service: the byte-identity
  // reference every concurrent response is checked against.
  std::map<std::string, std::string> expected;
  {
    Service solo(ServiceOptions{});
    solo.registry().Install("g", ServeGraph());
    for (const Request& r : mix) {
      Response resp = solo.Call(r);
      if (!resp.status.ok()) {
        std::fprintf(stderr, "FAIL: solo %s: %s\n", VariantKey(r).c_str(),
                     resp.status.ToString().c_str());
        ++failures;
        continue;
      }
      expected[VariantKey(r)] = resp.payload;
    }
  }

  // --- Closed-loop client sweep --------------------------------------------
  const std::vector<int> client_counts = {1, 2, 4, 8, 16};
  constexpr int kRequestsPerClient = 32;
  // Outstanding requests never exceed the client count in a closed loop, so
  // a queue deeper than max(clients) makes rejections impossible (check 2).
  ServiceOptions options;
  options.workers = 3;
  options.queue_depth = 32;
  Service service(options);
  service.registry().Install("g", ServeGraph());

  std::vector<SweepRow> rows;
  uint64_t identity_mismatches = 0;
  uint64_t closed_loop_rejects = 0;
  for (int clients : client_counts) {
    // Cache-cold start for every sweep; answers stay identical (check 1).
    service.registry().Install("g", ServeGraph());
    ServiceStats before = service.Stats();

    std::mutex mu;
    std::vector<double> latencies;
    uint64_t mismatches = 0, errors = 0;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const Request& r = mix[(c + i) % mix.size()];
          Response resp = service.Call(r);
          std::lock_guard<std::mutex> lock(mu);
          if (!resp.status.ok()) {
            ++errors;
            std::fprintf(stderr, "FAIL: clients=%d %s: %s\n", clients,
                         VariantKey(r).c_str(),
                         resp.status.ToString().c_str());
          } else if (resp.payload != expected[VariantKey(r)]) {
            ++mismatches;
            std::fprintf(stderr,
                         "FAIL: clients=%d %s: payload diverges from solo run "
                         "(hit=%d dedup=%d epoch=%llu)\n",
                         clients, VariantKey(r).c_str(), resp.cache_hit,
                         resp.deduped,
                         static_cast<unsigned long long>(resp.epoch));
          }
          latencies.push_back(resp.latency_seconds);
        }
      });
    }
    for (auto& t : threads) t.join();
    service.Drain();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    ServiceStats after = service.Stats();

    SweepRow row;
    row.clients = clients;
    row.requests = static_cast<uint64_t>(clients) * kRequestsPerClient;
    row.seconds = seconds;
    row.throughput_rps = seconds > 0 ? row.requests / seconds : 0;
    std::sort(latencies.begin(), latencies.end());
    row.p50_ms = PercentileMs(latencies, 0.50);
    row.p99_ms = PercentileMs(latencies, 0.99);
    row.hit_rate =
        static_cast<double>(after.cache_hits - before.cache_hits) /
        row.requests;
    row.dedup_rate =
        static_cast<double>(after.dedup_joined - before.dedup_joined) /
        row.requests;
    row.rejected = after.rejected - before.rejected;
    rows.push_back(row);

    identity_mismatches += mismatches;
    closed_loop_rejects += row.rejected;
    failures += static_cast<int>(mismatches + errors);
    if (row.rejected != 0) {
      std::fprintf(stderr,
                   "FAIL: clients=%d: %llu rejections in a closed loop whose "
                   "queue depth exceeds the client count\n",
                   clients, static_cast<unsigned long long>(row.rejected));
      ++failures;
    }
    std::printf(
        "clients=%2d  %6llu req  %7.1f req/s  p50 %7.3f ms  p99 %7.3f ms  "
        "hit %4.2f  dedup %4.2f  rejected %llu\n",
        clients, static_cast<unsigned long long>(row.requests),
        row.throughput_rps, row.p50_ms, row.p99_ms, row.hit_rate,
        row.dedup_rate, static_cast<unsigned long long>(row.rejected));
  }

  // --- Exact backpressure: rejects iff the queue is at its bound -----------
  uint64_t paused_rejects = 0, paused_admitted = 0, paused_dedup = 0;
  bool admission_exact = true;
  {
    ServiceOptions small;
    small.workers = 2;
    small.queue_depth = 4;
    Service gate(small);
    gate.registry().Install("g", ServeGraph());
    gate.Pause();
    std::vector<std::shared_future<Response>> admitted;
    // Fill the queue to its bound with distinct keys.
    for (int it = 1; it <= 4; ++it) {
      Request r = mix[0];
      r.iterations = 10 + it;
      admitted.push_back(gate.Submit(r));
    }
    // Identical key: must join in-flight work, not be rejected.
    {
      Request r = mix[0];
      r.iterations = 11;
      admitted.push_back(gate.Submit(r));
    }
    // Distinct keys past the bound: every one must be rejected.
    std::vector<std::shared_future<Response>> overflow;
    for (int it = 1; it <= 3; ++it) {
      Request r = mix[0];
      r.iterations = 20 + it;
      overflow.push_back(gate.Submit(r));
    }
    gate.Resume();
    gate.Drain();
    for (auto& f : overflow) {
      if (f.get().status.code() != StatusCode::kUnavailable) {
        admission_exact = false;
      }
    }
    for (auto& f : admitted) {
      if (!f.get().status.ok()) admission_exact = false;
    }
    ServiceStats s = gate.Stats();
    paused_rejects = s.rejected;
    paused_admitted = s.admitted;
    paused_dedup = s.dedup_joined;
    if (s.rejected != 3 || s.admitted != 4 || s.dedup_joined != 1) {
      admission_exact = false;
    }
    if (!admission_exact) {
      std::fprintf(stderr,
                   "FAIL: admission not exact: admitted=%llu rejected=%llu "
                   "dedup=%llu (want 4/3/1)\n",
                   static_cast<unsigned long long>(s.admitted),
                   static_cast<unsigned long long>(s.rejected),
                   static_cast<unsigned long long>(s.dedup_joined));
      ++failures;
    }
  }

  // --- Bill conservation over the whole concurrent run (check 4) -----------
  // Tail the sweep with faulted flights so fault seconds are on the ledger
  // too, then require both sides to agree.
  for (int seed : {3, 7}) {
    Request r = mix[0];
    r.iterations = 30 + seed;
    r.faults = "seed=" + std::to_string(seed) + ",straggle=0x64";
    Response resp = service.Call(r);
    if (!resp.status.ok()) {
      std::fprintf(stderr, "FAIL: faulted tail: %s\n",
                   resp.status.ToString().c_str());
      ++failures;
    }
  }
  service.Drain();
  serve::BillLedger ledger = service.Bills();
  const bool bills_conserve =
      serve::BillsConserve(ledger.flights, ledger.billed);
  if (!bills_conserve) {
    std::fprintf(stderr,
                 "FAIL: bill conservation: flights %s\n  vs billed %s\n",
                 ledger.flights.ToJson().c_str(),
                 ledger.billed.ToJson().c_str());
    ++failures;
  }

  // --- SLO-trip forensic determinism (check 5) ------------------------------
  const std::string dump_serial = "bench_serve_slo_dump_serial.json";
  const std::string dump_parallel = "bench_serve_slo_dump_parallel.json";
  std::string serial_dump = SloTripDumpForSchedule(1, dump_serial);
  std::string parallel_dump = SloTripDumpForSchedule(0, dump_parallel);
  const bool dump_stable =
      !serial_dump.empty() && serial_dump == parallel_dump;
  const bool dump_names_culprit =
      serial_dump.find("\"top\"") != std::string::npos &&
      serial_dump.find("\"faults_injected\"") != std::string::npos;
  if (!dump_stable) {
    std::fprintf(stderr,
                 "FAIL: SLO-trip dump differs across schedules "
                 "(%zu vs %zu bytes); kept %s / %s for diffing\n",
                 serial_dump.size(), parallel_dump.size(),
                 dump_serial.c_str(), dump_parallel.c_str());
    ++failures;
  } else {
    std::remove(dump_serial.c_str());
    std::remove(dump_parallel.c_str());
  }
  if (!dump_names_culprit) {
    std::fprintf(stderr, "FAIL: SLO-trip dump names no culprits\n");
    ++failures;
  }

  std::printf("self-check: identity %s, closed-loop rejects %s, "
              "admission bound %s, bill conservation %s, slo dump %s\n",
              identity_mismatches == 0 ? "ok" : "FAILED",
              closed_loop_rejects == 0 ? "ok" : "FAILED",
              admission_exact ? "ok" : "FAILED",
              bills_conserve ? "ok" : "FAILED",
              dump_stable && dump_names_culprit ? "ok" : "FAILED");

  // --- BENCH_serve.json ----------------------------------------------------
  const char* out_env = std::getenv("MAZE_BENCH_JSON");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_serve.json";
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"scale_adjust\": %d,\n", ScaleAdjust());
  std::fprintf(f, "  \"request_mix\": %zu,\n", mix.size());
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"requests\": %llu, \"seconds\": %.6f, "
                 "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": "
                 "%.3f, \"hit_rate\": %.4f, \"dedup_rate\": %.4f, "
                 "\"rejected\": %llu}%s\n",
                 r.clients, static_cast<unsigned long long>(r.requests),
                 r.seconds, r.throughput_rps, r.p50_ms, r.p99_ms, r.hit_rate,
                 r.dedup_rate, static_cast<unsigned long long>(r.rejected),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"admission_check\": {\"admitted\": %llu, \"rejected\": "
               "%llu, \"dedup_joined\": %llu, \"exact\": %s},\n",
               static_cast<unsigned long long>(paused_admitted),
               static_cast<unsigned long long>(paused_rejects),
               static_cast<unsigned long long>(paused_dedup),
               admission_exact ? "true" : "false");
  std::fprintf(f, "  \"identity_mismatches\": %llu,\n",
               static_cast<unsigned long long>(identity_mismatches));
  std::fprintf(f,
               "  \"bill_conservation\": {\"flights\": %s, \"billed\": %s, "
               "\"conserved\": %s},\n",
               ledger.flights.ToJson().c_str(),
               ledger.billed.ToJson().c_str(),
               bills_conserve ? "true" : "false");
  std::fprintf(f, "  \"slo_dump_stable\": %s,\n",
               dump_stable && dump_names_culprit ? "true" : "false");
  std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (failures != 0) {
    std::fprintf(stderr, "bench_serve: %d self-check failure(s)\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace maze::bench

int main() {
  // MAZE_TELEMETRY="listen=PORT,interval=S" exposes /metrics for the whole
  // run, so CI can curl a live scrape mid-bench (telemetry.yml).
  auto live = maze::obs::StartTelemetryFromEnv();
  if (!live.ok()) {
    std::fprintf(stderr, "MAZE_TELEMETRY: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }
  if (live.value().endpoint != nullptr) {
    std::printf("telemetry: listening on 127.0.0.1:%d\n",
                live.value().endpoint->port());
  }
  return maze::bench::Main();
}
