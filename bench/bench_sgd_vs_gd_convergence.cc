// Reproduces the §3.2/§5.2 convergence observation: "for the Netflix dataset,
// given a fixed convergence criterion, SGD converges in about 40x fewer
// iterations than GD", while per-iteration times are comparable in native code —
// the reason the paper compares CF frameworks by time per iteration.
//
// Like the paper ("we did do a coarse sweep over these parameters to obtain
// best convergence"), each method gets a coarse learning-rate sweep and its
// best configuration is reported. GD's gradient magnitude scales with vertex
// degree, so its stable step sizes — and therefore its convergence — are far
// behind SGD's on a skewed ratings matrix: that is the mechanism behind the
// paper's 40x.
#include <cmath>

#include "bench/bench_common.h"

#include "native/cf.h"
#include "util/table.h"

namespace maze::bench {
namespace {

struct SweepResult {
  int iterations = -1;        // Iterations to reach the target (-1: never).
  double learning_rate = 0;   // The sweep winner.
  double per_iter_seconds = 0;
};

SweepResult SweepToTarget(const BipartiteGraph& g, rt::CfMethod method,
                          const std::vector<double>& rates, double target,
                          int max_iters) {
  SweepResult best;
  for (double lr : rates) {
    rt::CfOptions opt;
    opt.method = method;
    opt.k = 16;
    opt.iterations = max_iters;
    opt.learning_rate = lr;
    opt.step_decay = method == rt::CfMethod::kSgd ? 0.98 : 1.0;
    auto result = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
    for (size_t i = 0; i < result.rmse_per_iteration.size(); ++i) {
      double rmse = result.rmse_per_iteration[i];
      if (std::isnan(rmse) || rmse > 1e6) break;  // Diverged: next rate.
      if (rmse <= target) {
        int iters = static_cast<int>(i) + 1;
        if (best.iterations < 0 || iters < best.iterations) {
          best.iterations = iters;
          best.learning_rate = lr;
          best.per_iter_seconds =
              result.metrics.elapsed_seconds / max_iters;
        }
        break;
      }
    }
  }
  return best;
}

void Run() {
  Banner("SGD vs GD convergence (native CF, netflix stand-in)");
  int adjust = ScaleAdjust();
  BipartiteGraph g = LoadRatingsDataset("netflix", adjust).ToGraph();

  // Target: the RMSE SGD reaches after two iterations at its default rate.
  rt::CfOptions probe;
  probe.method = rt::CfMethod::kSgd;
  probe.k = 16;
  probe.iterations = 5;
  probe.learning_rate = 0.01;
  auto sgd_probe = native::CollaborativeFiltering(g, probe, rt::EngineConfig{});
  double target = sgd_probe.rmse_per_iteration[1];

  SweepResult sgd = SweepToTarget(g, rt::CfMethod::kSgd,
                                  {0.003, 0.01, 0.03}, target, 50);
  SweepResult gd = SweepToTarget(g, rt::CfMethod::kGd,
                                 {1e-4, 3e-4, 1e-3, 2e-3}, target, 400);

  TextTable table("Iterations to reach RMSE " + FormatDouble(target, 4) +
                  " (best over a coarse learning-rate sweep)");
  table.SetHeader({"Method", "Iterations", "Best lr", "s/iter"});
  table.AddRow({"SGD (native/taskflow only)",
                sgd.iterations < 0 ? ">50" : std::to_string(sgd.iterations),
                FormatDouble(sgd.learning_rate, 4),
                FormatDouble(sgd.per_iter_seconds, 6)});
  table.AddRow({"GD (what the other engines express)",
                gd.iterations < 0 ? ">400" : std::to_string(gd.iterations),
                FormatDouble(gd.learning_rate, 4),
                FormatDouble(gd.per_iter_seconds, 6)});
  std::printf("%s\n", table.Render().c_str());
  if (sgd.iterations > 0 && gd.iterations > 0) {
    std::printf("GD needs %.0fx the iterations of SGD (paper: ~40x), at "
                "similar per-iteration cost.\n",
                static_cast<double>(gd.iterations) / sgd.iterations);
  } else {
    std::printf("GD did not reach the SGD target within 400 iterations "
                "(paper: ~40x more iterations needed).\n");
  }
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
