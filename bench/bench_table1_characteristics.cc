// Reproduces Tables 1 and 2: the algorithm-characteristics and framework-
// comparison matrices. Table 1's message-size column is *measured* from the
// vertex-programming engine (whose semantics the table describes) on an RMAT
// graph rather than restated from the paper.
#include "bench/bench_common.h"

#include "core/rmat.h"
#include "util/table.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Tables 1 & 2: algorithm characteristics and framework traits");
  int adjust = ScaleAdjust();

  EdgeList directed = GenerateRmat(RmatParams::Graph500(12 + adjust, 8, 3));
  directed.Deduplicate();
  EdgeList undirected = directed;
  undirected.Symmetrize();
  EdgeList oriented = TriangleDataset("rmat", adjust - 1);
  RatingsParams rp;
  rp.scale = 11 + adjust;
  rp.num_items = 256;
  BipartiteGraph ratings = GenerateRatings(rp).ToGraph();

  // Measured bytes/edge from the vertex-programming engine at 2 ranks (the
  // model Table 1 describes); every message crosses an edge once per active
  // iteration.
  auto pr = MeasurePageRank(EngineKind::kBspgraph, directed, "rmat", 2, 3);
  auto bfs = MeasureBfs(EngineKind::kBspgraph, undirected, "rmat", 2);
  auto tc = MeasureTriangles(EngineKind::kBspgraph, oriented, "rmat", 2);
  auto cf = MeasureCf(EngineKind::kBspgraph, ratings, "rmat", 2, 2, 16);

  auto per_edge = [](const Measurement& m, uint64_t edges, int rounds) {
    return static_cast<double>(m.metrics.bytes_sent) /
           (static_cast<double>(edges) * rounds);
  };

  TextTable t1("Table 1: diversity in the chosen graph algorithms (measured)");
  t1.SetHeader({"Algorithm", "Graph type", "Vertex property", "Access",
                "Measured bytes/edge", "Active vertices"});
  t1.AddRow({"PageRank", "directed", "double (rank)", "streaming",
             FormatDouble(per_edge(pr, directed.edges.size(), 3), 1),
             "all iterations"});
  t1.AddRow({"BFS", "undirected", "int (distance)", "random",
             FormatDouble(per_edge(bfs, undirected.edges.size(), 1), 1),
             "some iterations"});
  t1.AddRow({"Coll. Filtering", "bipartite weighted", "array<double>[k]",
             "streaming",
             FormatDouble(per_edge(cf, ratings.num_ratings() * 2, 2 + 1), 1),
             "all iterations"});
  t1.AddRow({"Triangle Counting", "directed acyclic", "long (count)",
             "streaming",
             FormatDouble(per_edge(tc, oriented.edges.size(), 1), 1),
             "non-iterative"});
  std::printf("%s\n", t1.Render().c_str());

  TextTable t2("Table 2: high-level comparison of the engines");
  t2.SetHeader({"Engine", "Programming model", "Multi node", "Partitioning",
                "Comm layer"});
  t2.AddRow({"native", "hand-optimized C++", "yes", "1-D (edge-balanced)",
             "mpi"});
  t2.AddRow({"vertexlab", "vertex programs", "yes", "1-D", "socket"});
  t2.AddRow({"matblas", "sparse matrix semirings", "yes", "2-D", "mpi"});
  t2.AddRow({"datalite", "Datalog", "yes", "1-D (sharded tables)",
             "multi-socket"});
  t2.AddRow({"taskflow", "task/worklist", "no", "flexible", "-"});
  t2.AddRow({"bspgraph", "vertex programs (BSP)", "yes", "1-D", "netty"});
  std::printf("%s\n", t2.Render().c_str());
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
