// Reproduces Table 3: the dataset inventory. For each paper dataset, prints the
// real-world size alongside the generated stand-in's size and skew statistics,
// validating that the generators deliver the power-law shape §4.1 requires.
#include "bench/bench_common.h"

#include "core/degree.h"
#include "core/graph.h"
#include "util/table.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Table 3: Real-world and synthetic datasets (stand-ins)");
  int adjust = ScaleAdjust();

  TextTable table("Datasets: paper size vs generated stand-in");
  table.SetHeader({"Dataset", "Paper |V|", "Paper |E|", "Standin |V|",
                   "Standin |E|", "Max deg", "Top1% edge share", "PL exponent"});
  for (const DatasetInfo& info : AllDatasets()) {
    std::string v = "-";
    std::string e = "-";
    std::string maxdeg = "-";
    std::string share = "-";
    std::string alpha = "-";
    if (info.is_ratings) {
      RatingsDataset ds = LoadRatingsDataset(info.name, adjust);
      v = std::to_string(ds.num_users + ds.num_items);
      e = std::to_string(ds.ratings.size());
    } else {
      EdgeList el = LoadGraphDataset(info.name, adjust);
      Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
      DegreeStats stats = ComputeOutDegreeStats(g);
      v = std::to_string(el.num_vertices);
      e = std::to_string(el.edges.size());
      maxdeg = std::to_string(stats.max_degree);
      share = FormatDouble(stats.top1pct_edge_share, 3);
      alpha = FormatDouble(stats.power_law_exponent, 2);
    }
    table.AddRow({info.name, std::to_string(info.paper_vertices),
                  std::to_string(info.paper_edges), v, e, maxdeg, share, alpha});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
