// Reproduces Table 4: efficiency achieved by the native implementations against
// hardware ceilings, in two honestly-separated parts.
//
// Part 1 (single node): achieved memory bandwidth = analytic kernel traffic /
// *host-measured* time, compared against a STREAM-style triad peak measured on
// this host right before the kernels run. No modeled-node rescaling — both
// numerator and ceiling come from the same machine.
//
// Part 2 (4 nodes): which resource limits each algorithm on the modeled
// cluster — the wire share of simulated elapsed time and the network demand as
// a fraction of the fabric, under the modeled-node normalization.
#include "bench/bench_common.h"

#include "core/graph.h"
#include "native/bfs.h"
#include "native/cf.h"
#include "native/pagerank.h"
#include "native/triangle.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::bench {
namespace {

// STREAM-style triad over a buffer much larger than cache: the host's
// achievable memory bandwidth (bytes moved per second, read+read+write).
double MeasureHostPeakMemoryBw() {
  constexpr size_t kN = 16 << 20;  // 3 x 128 MB of doubles.
  std::vector<double> a(kN, 1.0);
  std::vector<double> b(kN, 2.0);
  std::vector<double> c(kN, 0.0);
  double best = 0;
  for (int round = 0; round < 3; ++round) {
    Timer t;
    ParallelFor(kN, 1 << 16, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) c[i] = a[i] + 1.5 * b[i];
    });
    double seconds = t.Seconds();
    best = std::max(best, static_cast<double>(kN) * 24.0 / seconds);
  }
  return best;
}

void Run() {
  // Part 1 runs unnormalized: host-vs-host comparison.
  rt::SetModeledNodeThreads(0);
  int adjust = ScaleAdjust();
  std::printf("==============================================================\n");
  std::printf("Table 4: native implementation efficiency vs hardware limits\n");
  std::printf("==============================================================\n");

  double host_peak = MeasureHostPeakMemoryBw();
  std::printf("Host STREAM-triad peak: %.1f GB/s\n\n", host_peak / 1e9);

  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();
  RatingsDataset cf_data = LoadRatingsDataset("netflix", adjust);
  BipartiteGraph ratings = cf_data.ToGraph();

  Graph pr_graph = Graph::FromEdges(directed, GraphDirections::kBoth);
  Graph bfs_graph = Graph::FromEdges(undirected, GraphDirections::kOutOnly);

  {
    TextTable table("Single node: achieved memory bandwidth (host-measured)");
    table.SetHeader({"Algorithm", "H/W limitation", "Achieved", "Efficiency"});
    {
      rt::PageRankOptions opt;
      opt.iterations = 5;
      auto r = native::PageRank(pr_graph, opt, rt::EngineConfig{});
      double bw = native::PageRankBytesPerIteration(pr_graph.num_vertices(),
                                                    pr_graph.num_edges()) /
                  (r.metrics.elapsed_seconds / opt.iterations);
      table.AddRow({"PageRank", "Memory BW",
                    FormatDouble(bw / 1e9, 1) + " GBps",
                    FormatDouble(bw / host_peak * 100, 0) + "%"});
    }
    {
      rt::BfsOptions opt;
      opt.source = BusiestVertex(undirected);
      auto r = native::Bfs(bfs_graph, opt, rt::EngineConfig{});
      double bw = native::BfsTotalBytes(bfs_graph.num_vertices(),
                                        bfs_graph.num_edges()) /
                  r.metrics.elapsed_seconds;
      table.AddRow({"BFS", "Memory BW", FormatDouble(bw / 1e9, 1) + " GBps",
                    FormatDouble(bw / host_peak * 100, 0) + "%"});
    }
    {
      rt::CfOptions opt;
      opt.k = 16;
      opt.iterations = 2;
      opt.method = rt::CfMethod::kSgd;
      auto r = native::CollaborativeFiltering(ratings, opt, rt::EngineConfig{});
      double traffic = static_cast<double>(ratings.num_ratings()) *
                       (2.0 * opt.k + 1.0) * 8.0;
      double bw = traffic / (r.metrics.elapsed_seconds / opt.iterations);
      table.AddRow({"Coll. Filtering", "Memory BW",
                    FormatDouble(bw / 1e9, 1) + " GBps",
                    FormatDouble(bw / host_peak * 100, 0) + "%"});
    }
    {
      EdgeList oriented = TriangleDataset("rmat", adjust);
      Graph tc_graph = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
      auto r = native::TriangleCount(tc_graph, {}, rt::EngineConfig{});
      double traffic = 0;
      for (VertexId u = 0; u < tc_graph.num_vertices(); ++u) {
        for (VertexId v : tc_graph.OutNeighbors(u)) {
          traffic += 4.0 * static_cast<double>(tc_graph.OutDegree(u) +
                                               tc_graph.OutDegree(v));
        }
      }
      double bw = traffic / r.metrics.elapsed_seconds;
      table.AddRow({"Triangle Count.", "Memory BW",
                    FormatDouble(bw / 1e9, 1) + " GBps",
                    FormatDouble(bw / host_peak * 100, 0) + "%"});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // Part 2: modeled 4-node bottleneck analysis.
  const char* node_env = std::getenv("MAZE_NODE_THREADS");
  rt::SetModeledNodeThreads(node_env != nullptr ? std::atoi(node_env) : 48);
  {
    TextTable table(
        "4 modeled nodes: wire share of simulated time and network demand");
    table.SetHeader({"Algorithm", "Wire share", "Net demand (% of 5.5GB/s)",
                     "Bottleneck"});
    rt::EngineConfig config;
    config.num_ranks = 4;
    auto add = [&](const char* name, const rt::RunMetrics& m, int steps) {
      // Wire share: 1 - (per-step max compute) / elapsed, approximated with
      // total compute spread over ranks.
      double compute_share =
          m.total_compute_seconds / config.num_ranks /
          std::max(1e-12, m.elapsed_seconds);
      double wire_share = std::max(0.0, 1.0 - compute_share);
      double demand = m.BytesPerRank(config.num_ranks) /
                      std::max(1e-12, m.elapsed_seconds) / 5.5e9;
      table.AddRow({name, FormatDouble(wire_share * 100, 0) + "%",
                    FormatDouble(demand * 100, 0) + "%",
                    wire_share > 0.5 ? "Network BW" : "Memory BW"});
      (void)steps;
    };
    {
      rt::PageRankOptions opt;
      opt.iterations = 5;
      auto r = native::PageRank(pr_graph, opt, config);
      add("PageRank", r.metrics, opt.iterations);
    }
    {
      rt::BfsOptions opt;
      opt.source = BusiestVertex(undirected);
      auto r = native::Bfs(bfs_graph, opt, config);
      add("BFS", r.metrics, r.levels);
    }
    {
      rt::CfOptions opt;
      opt.k = 16;
      opt.iterations = 2;
      opt.method = rt::CfMethod::kSgd;
      auto r = native::CollaborativeFiltering(ratings, opt, config);
      add("Coll. Filtering", r.metrics, opt.iterations);
    }
    {
      EdgeList oriented = TriangleDataset("rmat", adjust);
      Graph tc_graph = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
      auto r = native::TriangleCount(tc_graph, {}, config);
      add("Triangle Count.", r.metrics, 1);
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Paper shape: single node memory-BW bound everywhere (52-92%% of peak);\n"
      "at 4 nodes PageRank and Triangle Counting become network bound.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
