// Reproduces Table 6: multi-node slowdown geomeans vs native, combining the
// synthetic weak-scaling points with the large "real-world" stand-ins, as the
// paper's table does.
#include "bench/bench_common.h"

#include "core/rmat.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Table 6: multi-node slowdowns vs native (geomean)");
  int adjust = ScaleAdjust();

  SlowdownReport report;

  // Synthetic points at 4 and 16 ranks. Sizes track the Figure 3 stand-ins so
  // per-rank compute stays well above the fabric's per-message latency.
  for (int ranks : {4, 16}) {
    EdgeList directed = GenerateRmat(
        RmatParams::Graph500(16 + adjust + (ranks == 16 ? 2 : 0), 16,
                             900 + ranks));
    directed.Deduplicate();
    EdgeList undirected = directed;
    undirected.Symmetrize();
    EdgeList oriented = TriangleDataset("rmat", adjust + (ranks == 16 ? 2 : 0));
    RatingsParams rp;
    rp.scale = 15 + adjust + (ranks == 16 ? 2 : 0);
    rp.num_items = 512;
    rp.seed = 800 + ranks;
    BipartiteGraph ratings = GenerateRatings(rp).ToGraph();
    std::string tag = "rmat" + std::to_string(ranks);
    for (EngineKind engine : MultiNodeEngines()) {
      report.Add(MeasurePageRank(engine, directed, tag, ranks));
      report.Add(MeasureBfs(engine, undirected, tag, ranks));
      report.Add(MeasureTriangles(engine, oriented, tag, ranks));
      report.Add(MeasureCf(engine, ratings, tag, ranks));
    }
  }

  // Large "real-world" stand-ins at 4 ranks.
  {
    EdgeList twitter = LoadGraphDataset("twitter", adjust);
    EdgeList twitter_sym = twitter;
    twitter_sym.Symmetrize();
    BipartiteGraph yahoo = LoadRatingsDataset("yahoomusic", adjust).ToGraph();
    for (EngineKind engine : MultiNodeEngines()) {
      report.Add(MeasurePageRank(engine, twitter, "twitter", 4));
      report.Add(MeasureBfs(engine, twitter_sym, "twitter", 4));
      report.Add(MeasureCf(engine, yahoo, "yahoomusic", 4));
    }
  }

  std::printf("%s\n", report
                          .RenderGeomeanTable(
                              "Table 6: multi-node slowdown factors vs native")
                          .c_str());
  std::printf(
      "Paper shape (Table 6): matblas 2.5-13x, vertexlab 3.6-29x, datalite\n"
      "1.5-19x (best on triangle counting), bspgraph 54-494x.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
