// Reproduces Table 7: the SociaLite network optimizations of §6.1.3 — multiple
// sockets per node pair plus batched communication — measured as before/after
// runtimes for the two network-bound algorithms (PageRank and Triangle
// Counting) on 4 nodes. The paper measured 2.4x and 1.6x.
#include "bench/bench_common.h"

#include "util/table.h"

namespace maze::bench {
namespace {

double RunPr(const EdgeList& directed, bool as_published) {
  rt::PageRankOptions opt;
  opt.iterations = 5;
  RunConfig config;
  config.num_ranks = 4;
  config.datalite_as_published = as_published;
  auto r = RunPageRank(EngineKind::kDatalite, directed, opt, config);
  return r.metrics.elapsed_seconds / opt.iterations;
}

double RunTc(const EdgeList& oriented, bool as_published) {
  RunConfig config;
  config.num_ranks = 4;
  config.datalite_as_published = as_published;
  auto r = RunTriangleCount(EngineKind::kDatalite, oriented, {}, config);
  return r.metrics.elapsed_seconds;
}

void Run() {
  Banner("Table 7: datalite (SociaLite) network optimizations, 4 nodes");
  int adjust = ScaleAdjust();
  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList oriented = TriangleDataset("rmat", adjust);

  TextTable table("Before (single socket, per-tuple) vs after (multi-socket, "
                  "batched)");
  table.SetHeader({"Algorithm", "Before (s)", "After (s)", "Speedup"});
  {
    double before = RunPr(directed, true);
    double after = RunPr(directed, false);
    table.AddRow({"PageRank (per iter)", FormatDouble(before, 5),
                  FormatDouble(after, 5),
                  FormatDouble(before / after, 2) + "x"});
  }
  {
    double before = RunTc(oriented, true);
    double after = RunTc(oriented, false);
    table.AddRow({"Triangle Counting", FormatDouble(before, 5),
                  FormatDouble(after, 5),
                  FormatDouble(before / after, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper measured: PageRank 2.4x, Triangle Counting 1.6x.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
