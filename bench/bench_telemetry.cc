// PR 8 artifact: closed-loop gate for the live telemetry plane (DESIGN.MD §4g).
//
// Phase 1 — live scrape under load. Client threads drive maze::serve through a
// fixed request mix while the main thread pulls /metrics from a MetricsEndpoint
// mid-run. Every exposition must parse under tests/openmetrics_checker.h, and
// consecutive pulls must be monotone (counters and histogram counts never step
// backwards, even while Record races the scrape). After Drain(), the scraped
// maze_serve_* counters must reconcile EXACTLY with ServiceReport accounting:
// the live plane and the post-hoc report are two views of one set of atomics,
// so any divergence is a bug, not noise. (slo_requests == completed -
// cache_hits: cache hits reuse a paid execution and are excluded from SLO
// accounting.)
//
// Phase 2 — SLO watchdog spike/recovery, run twice: once under the serial
// one-rank-at-a-time schedule and once rank-parallel. A clean probe sets the
// p99 target well above clean modeled time; an injected straggler fault plan
// (faults=seed=1,straggle=0x4096) dilates modeled time far past it. The
// watchdog must trip to level 2 on the spike window, shed a fresh execution
// while still serving cache hits, then recover hysteretically over idle
// windows. Because the watchdog judges exact modeled-time counter deltas, its
// structured JSON event log must be BYTE-IDENTICAL across the two schedules —
// and the straggled payload must equal the clean payload (faults dilate the
// modeled clock, never the answer).
//
// Writes BENCH_telemetry.json (path via MAZE_BENCH_JSON).
//
// Also: `bench_telemetry --check FILE` validates an OpenMetrics exposition
// file and exits 0/1 — CI uses it to vet a curl'd /metrics scrape.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/openmetrics.h"
#include "obs/telemetry.h"
#include "rt/rank_exec.h"
#include "serve/service.h"
#include "serve/slo.h"
#include "tests/json_checker.h"
#include "tests/openmetrics_checker.h"

namespace maze::bench {
namespace {

using serve::Request;
using serve::Response;
using serve::Service;
using serve::ServiceOptions;
using serve::ServiceStats;
using serve::SloOptions;
using serve::SloWatchdog;
using testutil::OpenMetricsChecker;

EdgeList BenchGraph() {
  auto loaded = TryLoadGraphDataset("facebook", ScaleAdjust(-4));
  MAZE_CHECK(loaded.ok());
  return std::move(loaded).value();
}

Request MakeRequest(const std::string& algo, int iterations, VertexId source,
                    int ranks = 1, const std::string& faults = "") {
  Request r;
  r.snapshot = "g";
  r.algo = algo;
  r.engine = "native";
  r.iterations = iterations;
  r.source = source;
  r.ranks = ranks;
  r.faults = faults;
  return r;
}

// --- Phase 1: mid-run scrapes + exact counter reconciliation -----------------

struct ScrapeGate {
  int pulls = 0;
  bool valid = true;
  bool monotonic = true;
  bool exemplars_seen = false;
  bool reconciled = true;
  std::vector<std::string> mismatches;
};

// One exact equality; records the mismatch instead of aborting so the JSON
// artifact shows every divergent counter at once.
void MustEqual(ScrapeGate* gate, const std::string& what, uint64_t scraped,
               uint64_t stats) {
  if (scraped == stats) return;
  gate->reconciled = false;
  std::ostringstream os;
  os << what << ": scraped " << scraped << " != stats " << stats;
  gate->mismatches.push_back(os.str());
  std::fprintf(stderr, "FAIL: reconcile %s\n", os.str().c_str());
}

ScrapeGate RunScrapeGate(int* failures) {
  ScrapeGate gate;
  obs::ResetCountersAndHistograms();
  obs::ResetExemplars();

  ServiceOptions options;
  options.workers = 3;
  options.queue_depth = 64;
  Service service(options);
  service.registry().Install("g", BenchGraph());

  obs::TelemetryRegistry telemetry;
  obs::MetricsEndpoint endpoint(&telemetry);
  endpoint.SetReport([&service] { return service.Report().ToJson(); });
  MAZE_CHECK(endpoint.Start(0).ok());

  // 4 closed-loop clients over a 6-key mix, 3 passes each: the repeats force
  // cache hits and dedup joins so every accounting counter moves.
  const std::vector<Request> mix = {
      MakeRequest("pagerank", 2, 0), MakeRequest("pagerank", 3, 0),
      MakeRequest("bfs", 10, 0),     MakeRequest("bfs", 10, 1),
      MakeRequest("cc", 10, 0),      MakeRequest("triangles", 10, 0),
  };
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 18;
  std::mutex mu;
  uint64_t errors = 0;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Response resp = service.Call(mix[(c + i) % mix.size()]);
        if (!resp.status.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          ++errors;
          std::fprintf(stderr, "FAIL: serve error: %s\n",
                       resp.status.ToString().c_str());
        }
      }
    });
  }

  // Mid-run pulls: each is a fresh ScrapeOnce racing live Record()s.
  std::string prev_body;
  auto pull = [&](const char* when) {
    auto body = obs::HttpGet(endpoint.port(), "/metrics");
    if (!body.ok()) {
      gate.valid = false;
      std::fprintf(stderr, "FAIL: %s pull: %s\n", when,
                   body.status().ToString().c_str());
      return std::string();
    }
    ++gate.pulls;
    OpenMetricsChecker checker(body.value());
    if (!checker.Valid()) {
      gate.valid = false;
      std::fprintf(stderr, "FAIL: %s pull invalid: %s\n", when,
                   checker.error().c_str());
    }
    if (!prev_body.empty()) {
      std::string why;
      if (!OpenMetricsChecker::CheckMonotonic(OpenMetricsChecker(prev_body),
                                              checker, &why)) {
        gate.monotonic = false;
        std::fprintf(stderr, "FAIL: %s pull not monotone: %s\n", when,
                     why.c_str());
      }
    }
    prev_body = body.value();
    return body.value();
  };
  for (int p = 0; p < 3; ++p) {
    pull("mid-run");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  for (auto& t : clients) t.join();
  service.Drain();
  const std::string final_body = pull("post-drain");
  endpoint.Stop();
  *failures += static_cast<int>(errors);
  if (final_body.empty()) {
    ++*failures;
    return gate;
  }
  gate.exemplars_seen =
      final_body.find("# {request_id=\"") != std::string::npos;
  if (!gate.exemplars_seen) {
    std::fprintf(stderr, "FAIL: no request-id exemplars in final scrape\n");
  }

  // Exact reconciliation against the post-Drain report. The scrape is
  // cumulative and this process ran exactly one Service since the reset, so
  // every number must match to the unit.
  const ServiceStats stats = service.Stats();
  OpenMetricsChecker checker(final_body);
  MAZE_CHECK(checker.Valid());
  const auto& counters = checker.counters();
  auto scraped = [&](const std::string& family) -> uint64_t {
    auto it = counters.find(family);
    if (it == counters.end()) {
      gate.reconciled = false;
      gate.mismatches.push_back(family + ": missing from exposition");
      return ~uint64_t{0};
    }
    return it->second;
  };
  MustEqual(&gate, "submitted", scraped("maze_serve_submitted"),
            stats.submitted);
  MustEqual(&gate, "rejected", scraped("maze_serve_rejected"), stats.rejected);
  MustEqual(&gate, "shed", scraped("maze_serve_shed"), stats.shed);
  MustEqual(&gate, "invalid", scraped("maze_serve_invalid"), stats.invalid);
  MustEqual(&gate, "cache_hit", scraped("maze_serve_cache_hit"),
            stats.cache_hits);
  MustEqual(&gate, "dedup_joined", scraped("maze_serve_dedup_joined"),
            stats.dedup_joined);
  MustEqual(&gate, "admitted", scraped("maze_serve_admitted"), stats.admitted);
  MustEqual(&gate, "executed", scraped("maze_serve_executed"), stats.executed);
  MustEqual(&gate, "exec_failed", scraped("maze_serve_exec_failed"),
            stats.exec_failed);
  MustEqual(&gate, "completed", scraped("maze_serve_completed"),
            stats.completed);
  MustEqual(&gate, "failed", scraped("maze_serve_failed"), stats.failed);
  MustEqual(&gate, "expired", scraped("maze_serve_expired"), stats.expired);
  // SLO accounting covers paid work only: cache hits are excluded.
  MustEqual(&gate, "slo_requests", scraped("maze_serve_slo_requests"),
            stats.completed - stats.cache_hits);
  MustEqual(&gate, "slo_over_target (unarmed)",
            scraped("maze_serve_slo_over_target"), 0);
  // Latency is recorded for every answered request; modeled time only for
  // paid executions.
  const auto& hists = checker.histograms();
  auto hist_count = [&](const std::string& family) -> uint64_t {
    auto it = hists.find(family);
    if (it == hists.end() || !it->second.has_count) {
      gate.reconciled = false;
      gate.mismatches.push_back(family + ": missing histogram _count");
      return ~uint64_t{0};
    }
    return it->second.count;
  };
  MustEqual(&gate, "latency_us count", hist_count("maze_serve_latency_us"),
            stats.completed + stats.failed + stats.expired);
  MustEqual(&gate, "modeled_us count", hist_count("maze_serve_modeled_us"),
            stats.completed - stats.cache_hits);

  if (!gate.valid || !gate.monotonic || !gate.exemplars_seen ||
      !gate.reconciled) {
    ++*failures;
  }
  std::printf(
      "scrape gate: %d pulls, valid %s, monotone %s, exemplars %s, "
      "reconciled %s (%llu submitted, %llu cache hits, %llu dedup)\n",
      gate.pulls, gate.valid ? "ok" : "FAILED",
      gate.monotonic ? "ok" : "FAILED", gate.exemplars_seen ? "ok" : "FAILED",
      gate.reconciled ? "ok" : "FAILED",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.dedup_joined));
  return gate;
}

// --- Phase 2: watchdog spike/shed/recovery, serial vs rank-parallel ----------

struct WatchdogRun {
  bool ok = true;
  double target_ms = 0;
  std::vector<std::string> events;
  uint64_t shed = 0;
  uint64_t windows = 0;
  int peak_level = 0;
  int final_level = 0;
  bool payload_stable = true;   // Straggled payload == clean payload.
  bool shed_then_served = true; // Level 2 sheds misses, serves hits, recovers.
};

constexpr char kSpikeFaults[] = "seed=1,straggle=0x4096";

WatchdogRun RunWatchdogScenario(bool serial) {
  rt::SetSerialRanks(serial ? 1 : 0);
  WatchdogRun run;

  ServiceOptions options;
  options.workers = 1;
  options.queue_depth = 8;
  Service service(options);
  service.registry().Install("g", BenchGraph());

  // Clean probe fixes the target: 8x clean modeled time leaves every clean
  // request (up to iterations=5 below) under target, while the x4096 rank-0
  // straggler dilates modeled time orders of magnitude past it. The target is
  // a pure function of the deterministic modeled clock, so both schedules
  // derive the identical value — a precondition for byte-stable event logs.
  Response probe = service.Call(MakeRequest("pagerank", 2, 0, /*ranks=*/4));
  if (!probe.status.ok()) {
    std::fprintf(stderr, "FAIL: probe: %s\n", probe.status.ToString().c_str());
    run.ok = false;
    return run;
  }
  run.target_ms = probe.modeled_seconds * 1e3 * 8;
  service.Drain();

  obs::TelemetryRegistry telemetry;
  telemetry.ScrapeOnce();  // Baseline: absorbs all prior cumulative counts.

  std::ostringstream log;
  SloOptions slo;
  slo.p99_target_ms = run.target_ms;
  slo.burn_threshold = 2.0;
  slo.error_budget = 0.01;
  slo.recover_windows = 2;
  slo.min_window_requests = 1;
  SloWatchdog watchdog(slo, &telemetry, &service, &log);

  auto call = [&](int iterations, const std::string& faults) {
    return service.Call(
        MakeRequest("pagerank", iterations, 0, /*ranks=*/4, faults));
  };

  // Window 1 — healthy: three clean executions, all under target.
  std::map<int, std::string> clean_payloads;
  for (int it : {3, 4, 5}) {
    Response r = call(it, "");
    if (!r.status.ok()) run.ok = false;
    clean_payloads[it] = r.payload;
  }
  telemetry.ScrapeOnce();
  if (watchdog.level() != 0) {
    std::fprintf(stderr, "FAIL: degraded on clean window (level %d)\n",
                 watchdog.level());
    run.ok = false;
  }

  // Window 2 — spike: the same three requests under a straggler fault plan.
  // Distinct execution keys (faults are keyed), identical payloads, dilated
  // modeled clock: burn = (3/3)/0.01 = 100 >= 2x threshold, straight to 2.
  for (int it : {3, 4, 5}) {
    Response r = call(it, kSpikeFaults);
    if (!r.status.ok()) run.ok = false;
    if (r.payload != clean_payloads[it]) {
      run.payload_stable = false;
      std::fprintf(stderr,
                   "FAIL: straggled payload diverges from clean (it=%d)\n", it);
    }
    if (r.modeled_seconds * 1e3 <= run.target_ms) {
      std::fprintf(stderr,
                   "FAIL: straggled modeled time %.3f ms under target %.3f ms\n",
                   r.modeled_seconds * 1e3, run.target_ms);
      run.ok = false;
    }
  }
  telemetry.ScrapeOnce();
  run.peak_level = watchdog.level();
  if (run.peak_level != 2) {
    std::fprintf(stderr, "FAIL: spike window left level %d, want 2\n",
                 run.peak_level);
    run.ok = false;
  }

  // Window 3 — degraded service: a fresh key is shed, a cached key is served.
  {
    Response miss = call(9, "");
    Response hit = call(3, "");
    if (miss.status.code() != StatusCode::kUnavailable || !hit.status.ok() ||
        !hit.cache_hit) {
      run.shed_then_served = false;
      std::fprintf(stderr, "FAIL: level 2 must shed misses and serve hits\n");
    }
  }
  // Windows 3..6 — idle (shed and cache-hit traffic is excluded from SLO
  // accounting), so four healthy windows walk 2 -> 1 -> 0 at two per step.
  for (int w = 0; w < 4; ++w) telemetry.ScrapeOnce();
  run.final_level = watchdog.level();
  if (run.final_level != 0) {
    std::fprintf(stderr, "FAIL: recovery stalled at level %d\n",
                 run.final_level);
    run.ok = false;
  }
  {
    Response after = call(9, "");
    if (!after.status.ok()) {
      run.shed_then_served = false;
      std::fprintf(stderr, "FAIL: recovered service still shedding\n");
    }
  }

  run.events = watchdog.EventLines();
  run.windows = watchdog.windows_evaluated();
  run.shed = service.Stats().shed;
  for (const std::string& e : run.events) {
    if (!testutil::JsonChecker(e).Valid()) {
      std::fprintf(stderr, "FAIL: event not valid JSON: %s\n", e.c_str());
      run.ok = false;
    }
  }
  if (run.shed == 0) {
    std::fprintf(stderr, "FAIL: no requests shed during degradation\n");
    run.ok = false;
  }
  if (!run.payload_stable || !run.shed_then_served) run.ok = false;
  return run;
}

std::string JsonStringArray(const std::vector<std::string>& lines,
                            const std::string& indent) {
  // Event lines are themselves JSON objects; embed them raw.
  std::ostringstream os;
  os << "[\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    os << indent << "  " << lines[i] << (i + 1 < lines.size() ? "," : "")
       << "\n";
  }
  os << indent << "]";
  return os.str();
}

int CheckExpositionFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_telemetry --check: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream body;
  body << in.rdbuf();
  OpenMetricsChecker checker(body.str());
  if (!checker.Valid()) {
    std::fprintf(stderr, "bench_telemetry --check: %s: %s\n", path,
                 checker.error().c_str());
    return 1;
  }
  std::printf("bench_telemetry --check: %s ok (%zu counter families, "
              "%zu histogram families)\n",
              path, checker.counters().size(), checker.histograms().size());
  return 0;
}

int Main() {
  Banner("BENCH_telemetry: live scrape gate + SLO watchdog spike/recovery "
         "(PR 8 artifact)");
  int failures = 0;

  const ScrapeGate gate = RunScrapeGate(&failures);

  const WatchdogRun serial = RunWatchdogScenario(/*serial=*/true);
  const WatchdogRun parallel = RunWatchdogScenario(/*serial=*/false);
  rt::SetSerialRanks(-1);
  if (!serial.ok || !parallel.ok) ++failures;
  const bool byte_stable = serial.events == parallel.events;
  if (!byte_stable) {
    std::fprintf(stderr,
                 "FAIL: watchdog events diverge between schedules "
                 "(%zu serial vs %zu parallel lines)\n",
                 serial.events.size(), parallel.events.size());
    for (const std::string& e : serial.events) {
      std::fprintf(stderr, "  serial:   %s\n", e.c_str());
    }
    for (const std::string& e : parallel.events) {
      std::fprintf(stderr, "  parallel: %s\n", e.c_str());
    }
    ++failures;
  }
  std::printf(
      "watchdog: target %.3f ms, peak level %d, final level %d, %llu shed, "
      "%llu windows, %zu events, byte-stable %s\n",
      serial.target_ms, serial.peak_level, serial.final_level,
      static_cast<unsigned long long>(serial.shed),
      static_cast<unsigned long long>(serial.windows), serial.events.size(),
      byte_stable ? "ok" : "FAILED");
  for (const std::string& e : serial.events) std::printf("  %s\n", e.c_str());

  const char* out_env = std::getenv("MAZE_BENCH_JSON");
  std::string out_path =
      out_env != nullptr ? out_env : "BENCH_telemetry.json";
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"telemetry\",\n");
  std::fprintf(f, "  \"scale_adjust\": %d,\n", ScaleAdjust());
  std::fprintf(f,
               "  \"scrape_gate\": {\"pulls\": %d, \"valid\": %s, "
               "\"monotonic\": %s, \"exemplars_seen\": %s, "
               "\"reconciled\": %s},\n",
               gate.pulls, gate.valid ? "true" : "false",
               gate.monotonic ? "true" : "false",
               gate.exemplars_seen ? "true" : "false",
               gate.reconciled ? "true" : "false");
  std::fprintf(f, "  \"watchdog\": {\n");
  std::fprintf(f, "    \"spike_faults\": \"%s\",\n", kSpikeFaults);
  std::fprintf(f, "    \"peak_level\": %d,\n", serial.peak_level);
  std::fprintf(f, "    \"final_level\": %d,\n", serial.final_level);
  std::fprintf(f, "    \"shed\": %llu,\n",
               static_cast<unsigned long long>(serial.shed));
  std::fprintf(f, "    \"windows\": %llu,\n",
               static_cast<unsigned long long>(serial.windows));
  std::fprintf(f, "    \"payload_stable_under_faults\": %s,\n",
               serial.payload_stable && parallel.payload_stable ? "true"
                                                                : "false");
  std::fprintf(f, "    \"byte_stable_across_schedules\": %s,\n",
               byte_stable ? "true" : "false");
  std::fprintf(f, "    \"events\": %s\n",
               JsonStringArray(serial.events, "    ").c_str());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"ok\": %s\n", failures == 0 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (failures != 0) {
    std::fprintf(stderr, "bench_telemetry: %d self-check failure(s)\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace maze::bench

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--check") {
    if (argc != 3) {
      std::fprintf(stderr, "usage: bench_telemetry --check FILE\n");
      return 1;
    }
    return maze::bench::CheckExpositionFile(argv[2]);
  }
  return maze::bench::Main();
}
