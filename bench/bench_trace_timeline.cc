// Per-step timelines (extension): the sar/sysstat-style view behind Figure 6,
// at step granularity instead of run aggregates. Prints CSV timelines of BFS
// levels (frontier growth and decay in both compute and wire time) and PageRank
// iterations on a 4-node run of the native engine, plus the bspgraph superstep
// timeline for contrast.
#include "bench/bench_common.h"

#include "bsp/algorithms.h"
#include "core/graph.h"
#include "native/bfs.h"
#include "native/pagerank.h"
#include "rt/metrics.h"

namespace maze::bench {
namespace {

void Run() {
  Banner("Per-step timelines (CSV; plot step vs compute/wire seconds)");
  int adjust = ScaleAdjust();
  EdgeList directed = LoadGraphDataset("rmat", adjust);
  EdgeList undirected = directed;
  undirected.Symmetrize();

  {
    rt::BfsOptions opt;
    opt.source = BusiestVertex(undirected);
    rt::EngineConfig ec;
    ec.num_ranks = 4;
    ec.trace = true;
    Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
    auto r = native::Bfs(g, opt, ec);
    std::printf("# native BFS, 4 nodes: one row per level\n%s\n",
                rt::StepTraceCsv(r.metrics.steps).c_str());
  }
  {
    rt::PageRankOptions opt;
    opt.iterations = 5;
    rt::EngineConfig ec;
    ec.num_ranks = 4;
    ec.trace = true;
    Graph g = Graph::FromEdges(directed, GraphDirections::kBoth);
    auto r = native::PageRank(g, opt, ec);
    std::printf("# native PageRank, 4 nodes: one row per iteration\n%s\n",
                rt::StepTraceCsv(r.metrics.steps).c_str());
  }
  {
    rt::PageRankOptions opt;
    opt.iterations = 5;
    rt::EngineConfig ec;
    ec.num_ranks = 4;
    ec.comm = bsp::DefaultComm();
    ec.trace = true;
    Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
    auto r = bsp::PageRank(g, opt, ec, bsp::BspOptions{});
    std::printf("# bspgraph PageRank, 4 nodes (contrast: wire dominates)\n%s\n",
                rt::StepTraceCsv(r.metrics.steps).c_str());
  }
  std::printf(
      "Reading: BFS wire bytes peak at the fat middle levels; PageRank steps\n"
      "are uniform; bspgraph's wire column dwarfs its compute column.\n");
}

}  // namespace
}  // namespace maze::bench

int main() {
  maze::bench::Run();
  return 0;
}
