file(REMOVE_RECURSE
  "../bench/bench_beyond_paper_cc"
  "../bench/bench_beyond_paper_cc.pdb"
  "CMakeFiles/bench_beyond_paper_cc.dir/bench_beyond_paper_cc.cc.o"
  "CMakeFiles/bench_beyond_paper_cc.dir/bench_beyond_paper_cc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beyond_paper_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
