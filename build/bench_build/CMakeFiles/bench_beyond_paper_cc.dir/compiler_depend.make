# Empty compiler generated dependencies file for bench_beyond_paper_cc.
# This may be replaced when dependencies are built.
