file(REMOVE_RECURSE
  "../bench/bench_fig3_table5_single_node"
  "../bench/bench_fig3_table5_single_node.pdb"
  "CMakeFiles/bench_fig3_table5_single_node.dir/bench_fig3_table5_single_node.cc.o"
  "CMakeFiles/bench_fig3_table5_single_node.dir/bench_fig3_table5_single_node.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_table5_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
