# Empty dependencies file for bench_fig3_table5_single_node.
# This may be replaced when dependencies are built.
