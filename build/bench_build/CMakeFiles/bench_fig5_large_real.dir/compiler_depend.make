# Empty compiler generated dependencies file for bench_fig5_large_real.
# This may be replaced when dependencies are built.
