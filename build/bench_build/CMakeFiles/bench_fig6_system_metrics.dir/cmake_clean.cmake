file(REMOVE_RECURSE
  "../bench/bench_fig6_system_metrics"
  "../bench/bench_fig6_system_metrics.pdb"
  "CMakeFiles/bench_fig6_system_metrics.dir/bench_fig6_system_metrics.cc.o"
  "CMakeFiles/bench_fig6_system_metrics.dir/bench_fig6_system_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_system_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
