# Empty dependencies file for bench_fig6_system_metrics.
# This may be replaced when dependencies are built.
