file(REMOVE_RECURSE
  "../bench/bench_fig7_native_opts"
  "../bench/bench_fig7_native_opts.pdb"
  "CMakeFiles/bench_fig7_native_opts.dir/bench_fig7_native_opts.cc.o"
  "CMakeFiles/bench_fig7_native_opts.dir/bench_fig7_native_opts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_native_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
