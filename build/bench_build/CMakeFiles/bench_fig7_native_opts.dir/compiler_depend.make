# Empty compiler generated dependencies file for bench_fig7_native_opts.
# This may be replaced when dependencies are built.
