file(REMOVE_RECURSE
  "../bench/bench_giraph_superstep_split"
  "../bench/bench_giraph_superstep_split.pdb"
  "CMakeFiles/bench_giraph_superstep_split.dir/bench_giraph_superstep_split.cc.o"
  "CMakeFiles/bench_giraph_superstep_split.dir/bench_giraph_superstep_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_giraph_superstep_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
