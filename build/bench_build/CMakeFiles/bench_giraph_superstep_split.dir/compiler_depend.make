# Empty compiler generated dependencies file for bench_giraph_superstep_split.
# This may be replaced when dependencies are built.
