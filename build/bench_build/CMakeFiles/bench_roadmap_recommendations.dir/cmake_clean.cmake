file(REMOVE_RECURSE
  "../bench/bench_roadmap_recommendations"
  "../bench/bench_roadmap_recommendations.pdb"
  "CMakeFiles/bench_roadmap_recommendations.dir/bench_roadmap_recommendations.cc.o"
  "CMakeFiles/bench_roadmap_recommendations.dir/bench_roadmap_recommendations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roadmap_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
