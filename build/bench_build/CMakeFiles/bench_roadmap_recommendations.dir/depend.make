# Empty dependencies file for bench_roadmap_recommendations.
# This may be replaced when dependencies are built.
