file(REMOVE_RECURSE
  "../bench/bench_sgd_vs_gd_convergence"
  "../bench/bench_sgd_vs_gd_convergence.pdb"
  "CMakeFiles/bench_sgd_vs_gd_convergence.dir/bench_sgd_vs_gd_convergence.cc.o"
  "CMakeFiles/bench_sgd_vs_gd_convergence.dir/bench_sgd_vs_gd_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sgd_vs_gd_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
