# Empty compiler generated dependencies file for bench_sgd_vs_gd_convergence.
# This may be replaced when dependencies are built.
