
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_datasets.cc" "bench_build/CMakeFiles/bench_table3_datasets.dir/bench_table3_datasets.cc.o" "gcc" "bench_build/CMakeFiles/bench_table3_datasets.dir/bench_table3_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/maze_benchsup.dir/DependInfo.cmake"
  "/root/repo/build/src/bsp/CMakeFiles/maze_bsp.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/maze_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/maze_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/maze_task.dir/DependInfo.cmake"
  "/root/repo/build/src/vertex/CMakeFiles/maze_vertex.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/maze_native.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/maze_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/maze_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
