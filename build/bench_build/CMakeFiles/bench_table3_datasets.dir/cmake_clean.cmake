file(REMOVE_RECURSE
  "../bench/bench_table3_datasets"
  "../bench/bench_table3_datasets.pdb"
  "CMakeFiles/bench_table3_datasets.dir/bench_table3_datasets.cc.o"
  "CMakeFiles/bench_table3_datasets.dir/bench_table3_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
