file(REMOVE_RECURSE
  "../bench/bench_table4_native_efficiency"
  "../bench/bench_table4_native_efficiency.pdb"
  "CMakeFiles/bench_table4_native_efficiency.dir/bench_table4_native_efficiency.cc.o"
  "CMakeFiles/bench_table4_native_efficiency.dir/bench_table4_native_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_native_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
