# Empty dependencies file for bench_table4_native_efficiency.
# This may be replaced when dependencies are built.
