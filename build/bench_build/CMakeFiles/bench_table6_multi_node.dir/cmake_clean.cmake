file(REMOVE_RECURSE
  "../bench/bench_table6_multi_node"
  "../bench/bench_table6_multi_node.pdb"
  "CMakeFiles/bench_table6_multi_node.dir/bench_table6_multi_node.cc.o"
  "CMakeFiles/bench_table6_multi_node.dir/bench_table6_multi_node.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_multi_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
