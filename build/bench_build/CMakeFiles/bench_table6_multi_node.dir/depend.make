# Empty dependencies file for bench_table6_multi_node.
# This may be replaced when dependencies are built.
