file(REMOVE_RECURSE
  "../bench/bench_table7_socialite_opt"
  "../bench/bench_table7_socialite_opt.pdb"
  "CMakeFiles/bench_table7_socialite_opt.dir/bench_table7_socialite_opt.cc.o"
  "CMakeFiles/bench_table7_socialite_opt.dir/bench_table7_socialite_opt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_socialite_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
