# Empty compiler generated dependencies file for bench_table7_socialite_opt.
# This may be replaced when dependencies are built.
