file(REMOVE_RECURSE
  "../bench/bench_trace_timeline"
  "../bench/bench_trace_timeline.pdb"
  "CMakeFiles/bench_trace_timeline.dir/bench_trace_timeline.cc.o"
  "CMakeFiles/bench_trace_timeline.dir/bench_trace_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
