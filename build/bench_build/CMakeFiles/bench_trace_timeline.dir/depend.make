# Empty dependencies file for bench_trace_timeline.
# This may be replaced when dependencies are built.
