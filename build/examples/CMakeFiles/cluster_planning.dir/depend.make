# Empty dependencies file for cluster_planning.
# This may be replaced when dependencies are built.
