file(REMOVE_RECURSE
  "CMakeFiles/custom_semiring.dir/custom_semiring.cpp.o"
  "CMakeFiles/custom_semiring.dir/custom_semiring.cpp.o.d"
  "custom_semiring"
  "custom_semiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_semiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
