# Empty dependencies file for custom_semiring.
# This may be replaced when dependencies are built.
