file(REMOVE_RECURSE
  "CMakeFiles/maze_cli.dir/maze_cli.cpp.o"
  "CMakeFiles/maze_cli.dir/maze_cli.cpp.o.d"
  "maze_cli"
  "maze_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
