# Empty dependencies file for maze_cli.
# This may be replaced when dependencies are built.
