file(REMOVE_RECURSE
  "CMakeFiles/maze_benchsup.dir/report.cc.o"
  "CMakeFiles/maze_benchsup.dir/report.cc.o.d"
  "CMakeFiles/maze_benchsup.dir/runner.cc.o"
  "CMakeFiles/maze_benchsup.dir/runner.cc.o.d"
  "libmaze_benchsup.a"
  "libmaze_benchsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_benchsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
