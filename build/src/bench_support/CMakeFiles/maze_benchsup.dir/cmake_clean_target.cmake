file(REMOVE_RECURSE
  "libmaze_benchsup.a"
)
