# Empty dependencies file for maze_benchsup.
# This may be replaced when dependencies are built.
