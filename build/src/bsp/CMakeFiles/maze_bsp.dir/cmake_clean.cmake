file(REMOVE_RECURSE
  "CMakeFiles/maze_bsp.dir/algorithms.cc.o"
  "CMakeFiles/maze_bsp.dir/algorithms.cc.o.d"
  "libmaze_bsp.a"
  "libmaze_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
