file(REMOVE_RECURSE
  "libmaze_bsp.a"
)
