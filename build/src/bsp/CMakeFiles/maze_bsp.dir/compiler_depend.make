# Empty compiler generated dependencies file for maze_bsp.
# This may be replaced when dependencies are built.
