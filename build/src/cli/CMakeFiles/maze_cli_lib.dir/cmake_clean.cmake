file(REMOVE_RECURSE
  "CMakeFiles/maze_cli_lib.dir/cli.cc.o"
  "CMakeFiles/maze_cli_lib.dir/cli.cc.o.d"
  "libmaze_cli_lib.a"
  "libmaze_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
