file(REMOVE_RECURSE
  "libmaze_cli_lib.a"
)
