# Empty compiler generated dependencies file for maze_cli_lib.
# This may be replaced when dependencies are built.
