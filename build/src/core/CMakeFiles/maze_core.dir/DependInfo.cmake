
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bipartite.cc" "src/core/CMakeFiles/maze_core.dir/bipartite.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/bipartite.cc.o.d"
  "/root/repo/src/core/datasets.cc" "src/core/CMakeFiles/maze_core.dir/datasets.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/datasets.cc.o.d"
  "/root/repo/src/core/degree.cc" "src/core/CMakeFiles/maze_core.dir/degree.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/degree.cc.o.d"
  "/root/repo/src/core/edge_list.cc" "src/core/CMakeFiles/maze_core.dir/edge_list.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/edge_list.cc.o.d"
  "/root/repo/src/core/graph.cc" "src/core/CMakeFiles/maze_core.dir/graph.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/graph.cc.o.d"
  "/root/repo/src/core/io.cc" "src/core/CMakeFiles/maze_core.dir/io.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/io.cc.o.d"
  "/root/repo/src/core/ratings_gen.cc" "src/core/CMakeFiles/maze_core.dir/ratings_gen.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/ratings_gen.cc.o.d"
  "/root/repo/src/core/rmat.cc" "src/core/CMakeFiles/maze_core.dir/rmat.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/rmat.cc.o.d"
  "/root/repo/src/core/weighted_graph.cc" "src/core/CMakeFiles/maze_core.dir/weighted_graph.cc.o" "gcc" "src/core/CMakeFiles/maze_core.dir/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/maze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
