file(REMOVE_RECURSE
  "CMakeFiles/maze_core.dir/bipartite.cc.o"
  "CMakeFiles/maze_core.dir/bipartite.cc.o.d"
  "CMakeFiles/maze_core.dir/datasets.cc.o"
  "CMakeFiles/maze_core.dir/datasets.cc.o.d"
  "CMakeFiles/maze_core.dir/degree.cc.o"
  "CMakeFiles/maze_core.dir/degree.cc.o.d"
  "CMakeFiles/maze_core.dir/edge_list.cc.o"
  "CMakeFiles/maze_core.dir/edge_list.cc.o.d"
  "CMakeFiles/maze_core.dir/graph.cc.o"
  "CMakeFiles/maze_core.dir/graph.cc.o.d"
  "CMakeFiles/maze_core.dir/io.cc.o"
  "CMakeFiles/maze_core.dir/io.cc.o.d"
  "CMakeFiles/maze_core.dir/ratings_gen.cc.o"
  "CMakeFiles/maze_core.dir/ratings_gen.cc.o.d"
  "CMakeFiles/maze_core.dir/rmat.cc.o"
  "CMakeFiles/maze_core.dir/rmat.cc.o.d"
  "CMakeFiles/maze_core.dir/weighted_graph.cc.o"
  "CMakeFiles/maze_core.dir/weighted_graph.cc.o.d"
  "libmaze_core.a"
  "libmaze_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
