file(REMOVE_RECURSE
  "libmaze_core.a"
)
