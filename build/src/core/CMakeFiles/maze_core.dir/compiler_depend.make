# Empty compiler generated dependencies file for maze_core.
# This may be replaced when dependencies are built.
