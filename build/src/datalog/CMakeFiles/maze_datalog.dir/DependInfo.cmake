
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/algorithms.cc" "src/datalog/CMakeFiles/maze_datalog.dir/algorithms.cc.o" "gcc" "src/datalog/CMakeFiles/maze_datalog.dir/algorithms.cc.o.d"
  "/root/repo/src/datalog/table.cc" "src/datalog/CMakeFiles/maze_datalog.dir/table.cc.o" "gcc" "src/datalog/CMakeFiles/maze_datalog.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maze_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/maze_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maze_util.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/maze_native.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
