file(REMOVE_RECURSE
  "CMakeFiles/maze_datalog.dir/algorithms.cc.o"
  "CMakeFiles/maze_datalog.dir/algorithms.cc.o.d"
  "CMakeFiles/maze_datalog.dir/table.cc.o"
  "CMakeFiles/maze_datalog.dir/table.cc.o.d"
  "libmaze_datalog.a"
  "libmaze_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
