file(REMOVE_RECURSE
  "libmaze_datalog.a"
)
