# Empty dependencies file for maze_datalog.
# This may be replaced when dependencies are built.
