file(REMOVE_RECURSE
  "CMakeFiles/maze_matrix.dir/algorithms.cc.o"
  "CMakeFiles/maze_matrix.dir/algorithms.cc.o.d"
  "CMakeFiles/maze_matrix.dir/dist_matrix.cc.o"
  "CMakeFiles/maze_matrix.dir/dist_matrix.cc.o.d"
  "libmaze_matrix.a"
  "libmaze_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
