file(REMOVE_RECURSE
  "libmaze_matrix.a"
)
