# Empty dependencies file for maze_matrix.
# This may be replaced when dependencies are built.
