
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/native/bfs.cc" "src/native/CMakeFiles/maze_native.dir/bfs.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/bfs.cc.o.d"
  "/root/repo/src/native/cc.cc" "src/native/CMakeFiles/maze_native.dir/cc.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/cc.cc.o.d"
  "/root/repo/src/native/cf.cc" "src/native/CMakeFiles/maze_native.dir/cf.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/cf.cc.o.d"
  "/root/repo/src/native/pagerank.cc" "src/native/CMakeFiles/maze_native.dir/pagerank.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/pagerank.cc.o.d"
  "/root/repo/src/native/reference.cc" "src/native/CMakeFiles/maze_native.dir/reference.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/reference.cc.o.d"
  "/root/repo/src/native/sssp.cc" "src/native/CMakeFiles/maze_native.dir/sssp.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/sssp.cc.o.d"
  "/root/repo/src/native/triangle.cc" "src/native/CMakeFiles/maze_native.dir/triangle.cc.o" "gcc" "src/native/CMakeFiles/maze_native.dir/triangle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maze_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/maze_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
