file(REMOVE_RECURSE
  "CMakeFiles/maze_native.dir/bfs.cc.o"
  "CMakeFiles/maze_native.dir/bfs.cc.o.d"
  "CMakeFiles/maze_native.dir/cc.cc.o"
  "CMakeFiles/maze_native.dir/cc.cc.o.d"
  "CMakeFiles/maze_native.dir/cf.cc.o"
  "CMakeFiles/maze_native.dir/cf.cc.o.d"
  "CMakeFiles/maze_native.dir/pagerank.cc.o"
  "CMakeFiles/maze_native.dir/pagerank.cc.o.d"
  "CMakeFiles/maze_native.dir/reference.cc.o"
  "CMakeFiles/maze_native.dir/reference.cc.o.d"
  "CMakeFiles/maze_native.dir/sssp.cc.o"
  "CMakeFiles/maze_native.dir/sssp.cc.o.d"
  "CMakeFiles/maze_native.dir/triangle.cc.o"
  "CMakeFiles/maze_native.dir/triangle.cc.o.d"
  "libmaze_native.a"
  "libmaze_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
