file(REMOVE_RECURSE
  "libmaze_native.a"
)
