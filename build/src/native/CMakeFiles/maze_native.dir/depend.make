# Empty dependencies file for maze_native.
# This may be replaced when dependencies are built.
