
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/metrics.cc" "src/rt/CMakeFiles/maze_rt.dir/metrics.cc.o" "gcc" "src/rt/CMakeFiles/maze_rt.dir/metrics.cc.o.d"
  "/root/repo/src/rt/partition.cc" "src/rt/CMakeFiles/maze_rt.dir/partition.cc.o" "gcc" "src/rt/CMakeFiles/maze_rt.dir/partition.cc.o.d"
  "/root/repo/src/rt/sim_clock.cc" "src/rt/CMakeFiles/maze_rt.dir/sim_clock.cc.o" "gcc" "src/rt/CMakeFiles/maze_rt.dir/sim_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maze_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
