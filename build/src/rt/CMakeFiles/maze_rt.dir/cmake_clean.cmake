file(REMOVE_RECURSE
  "CMakeFiles/maze_rt.dir/metrics.cc.o"
  "CMakeFiles/maze_rt.dir/metrics.cc.o.d"
  "CMakeFiles/maze_rt.dir/partition.cc.o"
  "CMakeFiles/maze_rt.dir/partition.cc.o.d"
  "CMakeFiles/maze_rt.dir/sim_clock.cc.o"
  "CMakeFiles/maze_rt.dir/sim_clock.cc.o.d"
  "libmaze_rt.a"
  "libmaze_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
