file(REMOVE_RECURSE
  "libmaze_rt.a"
)
