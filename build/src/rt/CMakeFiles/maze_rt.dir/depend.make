# Empty dependencies file for maze_rt.
# This may be replaced when dependencies are built.
