file(REMOVE_RECURSE
  "CMakeFiles/maze_task.dir/algorithms.cc.o"
  "CMakeFiles/maze_task.dir/algorithms.cc.o.d"
  "libmaze_task.a"
  "libmaze_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
