file(REMOVE_RECURSE
  "libmaze_task.a"
)
