# Empty dependencies file for maze_task.
# This may be replaced when dependencies are built.
