file(REMOVE_RECURSE
  "CMakeFiles/maze_util.dir/bitvector.cc.o"
  "CMakeFiles/maze_util.dir/bitvector.cc.o.d"
  "CMakeFiles/maze_util.dir/codec.cc.o"
  "CMakeFiles/maze_util.dir/codec.cc.o.d"
  "CMakeFiles/maze_util.dir/stats.cc.o"
  "CMakeFiles/maze_util.dir/stats.cc.o.d"
  "CMakeFiles/maze_util.dir/status.cc.o"
  "CMakeFiles/maze_util.dir/status.cc.o.d"
  "CMakeFiles/maze_util.dir/table.cc.o"
  "CMakeFiles/maze_util.dir/table.cc.o.d"
  "CMakeFiles/maze_util.dir/thread_pool.cc.o"
  "CMakeFiles/maze_util.dir/thread_pool.cc.o.d"
  "libmaze_util.a"
  "libmaze_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
