file(REMOVE_RECURSE
  "libmaze_util.a"
)
