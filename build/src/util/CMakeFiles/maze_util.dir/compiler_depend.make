# Empty compiler generated dependencies file for maze_util.
# This may be replaced when dependencies are built.
