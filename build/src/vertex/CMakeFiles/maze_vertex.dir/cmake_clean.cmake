file(REMOVE_RECURSE
  "CMakeFiles/maze_vertex.dir/algorithms.cc.o"
  "CMakeFiles/maze_vertex.dir/algorithms.cc.o.d"
  "libmaze_vertex.a"
  "libmaze_vertex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_vertex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
