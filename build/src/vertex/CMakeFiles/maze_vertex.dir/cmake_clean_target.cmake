file(REMOVE_RECURSE
  "libmaze_vertex.a"
)
