# Empty dependencies file for maze_vertex.
# This may be replaced when dependencies are built.
