file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/bipartite_test.cc.o"
  "CMakeFiles/core_test.dir/bipartite_test.cc.o.d"
  "CMakeFiles/core_test.dir/datasets_test.cc.o"
  "CMakeFiles/core_test.dir/datasets_test.cc.o.d"
  "CMakeFiles/core_test.dir/degree_test.cc.o"
  "CMakeFiles/core_test.dir/degree_test.cc.o.d"
  "CMakeFiles/core_test.dir/edge_list_test.cc.o"
  "CMakeFiles/core_test.dir/edge_list_test.cc.o.d"
  "CMakeFiles/core_test.dir/graph_test.cc.o"
  "CMakeFiles/core_test.dir/graph_test.cc.o.d"
  "CMakeFiles/core_test.dir/io_test.cc.o"
  "CMakeFiles/core_test.dir/io_test.cc.o.d"
  "CMakeFiles/core_test.dir/ratings_gen_test.cc.o"
  "CMakeFiles/core_test.dir/ratings_gen_test.cc.o.d"
  "CMakeFiles/core_test.dir/rmat_test.cc.o"
  "CMakeFiles/core_test.dir/rmat_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
