file(REMOVE_RECURSE
  "CMakeFiles/engine_internals_test.dir/engine_internals_test.cc.o"
  "CMakeFiles/engine_internals_test.dir/engine_internals_test.cc.o.d"
  "engine_internals_test"
  "engine_internals_test.pdb"
  "engine_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
