file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/bitvector_test.cc.o"
  "CMakeFiles/util_test.dir/bitvector_test.cc.o.d"
  "CMakeFiles/util_test.dir/codec_test.cc.o"
  "CMakeFiles/util_test.dir/codec_test.cc.o.d"
  "CMakeFiles/util_test.dir/cuckoo_set_test.cc.o"
  "CMakeFiles/util_test.dir/cuckoo_set_test.cc.o.d"
  "CMakeFiles/util_test.dir/prng_test.cc.o"
  "CMakeFiles/util_test.dir/prng_test.cc.o.d"
  "CMakeFiles/util_test.dir/stats_test.cc.o"
  "CMakeFiles/util_test.dir/stats_test.cc.o.d"
  "CMakeFiles/util_test.dir/status_test.cc.o"
  "CMakeFiles/util_test.dir/status_test.cc.o.d"
  "CMakeFiles/util_test.dir/table_test.cc.o"
  "CMakeFiles/util_test.dir/table_test.cc.o.d"
  "CMakeFiles/util_test.dir/thread_pool_test.cc.o"
  "CMakeFiles/util_test.dir/thread_pool_test.cc.o.d"
  "util_test"
  "util_test.pdb"
  "util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
