file(REMOVE_RECURSE
  "CMakeFiles/vertex_test.dir/vertex_engine_test.cc.o"
  "CMakeFiles/vertex_test.dir/vertex_engine_test.cc.o.d"
  "vertex_test"
  "vertex_test.pdb"
  "vertex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
