# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/native_test[1]_include.cmake")
include("/root/repo/build/tests/vertex_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/bsp_test[1]_include.cmake")
include("/root/repo/build/tests/cross_engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/sssp_test[1]_include.cmake")
include("/root/repo/build/tests/engine_internals_test[1]_include.cmake")
include("/root/repo/build/tests/async_engine_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_consistency_test[1]_include.cmake")
