// Cluster planning: use the simulated runtime to answer a deployment question —
// "how does my PageRank workload scale with node count, and how much does the
// interconnect matter?" Sweeps rank counts and communication layers with the
// native engine, the experiment behind the paper's §6 recommendation that
// frameworks adopt MPI-class transports.
//
//   ./cluster_planning [scale]
#include <cstdio>
#include <cstdlib>

#include "core/graph.h"
#include "core/rmat.h"
#include "native/pagerank.h"
#include "rt/comm_model.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace maze;
  int scale = argc > 1 ? std::atoi(argv[1]) : 15;

  EdgeList edges = GenerateRmat(RmatParams::Graph500(scale, 16, 7));
  edges.Deduplicate();
  Graph g = Graph::FromEdges(edges, GraphDirections::kBoth);
  std::printf("PageRank capacity planning on %u vertices / %llu edges\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  rt::PageRankOptions opt;
  opt.iterations = 10;

  TextTable table("Simulated time per iteration (s) by cluster size and fabric");
  table.SetHeader({"Nodes", "mpi (5.5GB/s)", "multi-socket (2GB/s)",
                   "socket (0.8GB/s)", "netty (0.45GB/s)"});
  for (int ranks : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row = {std::to_string(ranks)};
    for (const rt::CommModel& comm :
         {rt::CommModel::Mpi(), rt::CommModel::MultiSocket(),
          rt::CommModel::Socket(), rt::CommModel::Netty()}) {
      rt::EngineConfig config;
      config.num_ranks = ranks;
      config.comm = comm;
      auto r = native::PageRank(g, opt, config);
      row.push_back(FormatDouble(r.metrics.elapsed_seconds / opt.iterations, 5));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Takeaway (paper §6.2): once the workload is network bound, the\n"
      "transport class dominates — a socket-based framework cannot scale a\n"
      "communication-heavy algorithm no matter how fast its compute is.\n");
  return 0;
}
