// Custom semiring: CombBLAS's pitch is that graph algorithms are sparse linear
// algebra "using arbitrary user-defined semirings". This example uses the
// matblas engine's tiles directly with the tropical (min, +) semiring to
// compute single-source shortest hop counts — an algorithm the packaged
// entry points do not ship — demonstrating the extension point.
//
//   ./custom_semiring [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/graph.h"
#include "core/rmat.h"
#include "matrix/dist_matrix.h"
#include "matrix/semiring.h"
#include "native/reference.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace maze;
  using SR = matrix::MinPlus<uint32_t>;
  int scale = argc > 1 ? std::atoi(argv[1]) : 12;

  EdgeList edges = GenerateRmat(RmatParams::Graph500(scale, 8, 11));
  edges.Deduplicate();
  edges.Symmetrize();
  matrix::DistMatrix m = matrix::DistMatrix::FromEdges(edges, /*ranks=*/4);

  // Iterate x = A^T x (+) x over (min, +) until fixpoint: Bellman-Ford with
  // unit weights, expressed purely through the semiring.
  const VertexId n = m.num_vertices();
  std::vector<uint32_t> x(n, SR::Zero());
  x[0] = 0;
  bool changed = true;
  int rounds = 0;
  while (changed) {
    changed = false;
    ++rounds;
    std::vector<uint32_t> y = x;
    for (int rank = 0; rank < m.num_ranks(); ++rank) {
      const matrix::Tile& tile = m.tile(rank);
      for (VertexId r = 0; r < tile.num_rows(); ++r) {
        uint32_t acc = y[tile.row_begin + r];
        for (EdgeId e = tile.offsets[r]; e < tile.offsets[r + 1]; ++e) {
          acc = SR::Add(acc, SR::Multiply(x[tile.sources[e]], 1u));
        }
        if (acc != y[tile.row_begin + r]) {
          y[tile.row_begin + r] = acc;
          changed = true;
        }
      }
    }
    x = std::move(y);
  }

  // Validate against the reference BFS (unit weights => same distances).
  Graph g = Graph::FromEdges(edges, GraphDirections::kOutOnly);
  std::vector<uint32_t> expected = native::ReferenceBfs(g, 0);
  uint64_t mismatches = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint32_t semiring_dist = x[v] == SR::Zero() ? kInfiniteDistance : x[v];
    if (semiring_dist != expected[v]) ++mismatches;
  }

  uint64_t reached = 0;
  uint32_t ecc = 0;
  for (uint32_t d : expected) {
    if (d != kInfiniteDistance) {
      ++reached;
      ecc = std::max(ecc, d);
    }
  }
  std::printf("(min,+) semiring SSSP on %u vertices: fixpoint after %d rounds\n",
              n, rounds);
  std::printf("reached %llu vertices, eccentricity %u, mismatches vs BFS: %llu\n",
              static_cast<unsigned long long>(reached), ecc,
              static_cast<unsigned long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
