// Framework shootout: the paper's end-user question made executable — "which
// engine should I use for this algorithm on my data?" Runs one algorithm on a
// chosen dataset stand-in across all six engines and prints runtimes, slowdowns
// vs native, and the system metrics that explain them.
//
//   ./framework_shootout [pagerank|bfs|triangles|cf] [dataset] [ranks]
//
// Defaults: pagerank on the livejournal stand-in, 4 simulated nodes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_support/report.h"
#include "bench_support/runner.h"
#include "core/datasets.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace maze;
  using namespace maze::bench;

  std::string algorithm = argc > 1 ? argv[1] : "pagerank";
  std::string dataset = argc > 2 ? argv[2] : "livejournal";
  int ranks = argc > 3 ? std::atoi(argv[3]) : 4;
  int adjust = -2;  // Stand-ins at quick-run scale.

  std::printf("Shootout: %s on '%s' with %d simulated node(s)\n\n",
              algorithm.c_str(), dataset.c_str(), ranks);

  TextTable table("Results (simulated elapsed; lower is better)");
  table.SetHeader({"Engine", "Seconds", "vs native", "Net MB", "Peak mem MB",
                   "CPU util"});
  double native_seconds = 0;

  auto engines = ranks > 1 ? MultiNodeEngines() : AllEngines();
  for (EngineKind engine : engines) {
    RunConfig config;
    config.num_ranks = ranks;
    double seconds = 0;
    rt::RunMetrics metrics;
    if (algorithm == "pagerank") {
      EdgeList el = LoadGraphDataset(dataset, adjust);
      rt::PageRankOptions opt;
      opt.iterations = 10;
      auto r = RunPageRank(engine, el, opt, config);
      seconds = r.metrics.elapsed_seconds;
      metrics = r.metrics;
    } else if (algorithm == "bfs") {
      EdgeList el = LoadGraphDataset(dataset, adjust);
      el.Symmetrize();
      auto r = RunBfs(engine, el, rt::BfsOptions{0}, config);
      seconds = r.metrics.elapsed_seconds;
      metrics = r.metrics;
    } else if (algorithm == "triangles") {
      EdgeList el = LoadGraphDataset(dataset, adjust - 2);
      el.OrientBySmallerId();
      if (engine == EngineKind::kBspgraph) config.bsp_phases = 100;
      auto r = RunTriangleCount(engine, el, {}, config);
      seconds = r.metrics.elapsed_seconds;
      metrics = r.metrics;
    } else if (algorithm == "cf") {
      BipartiteGraph g = LoadRatingsDataset(
                             dataset == "livejournal" ? "netflix" : dataset,
                             adjust)
                             .ToGraph();
      rt::CfOptions opt;
      opt.k = 16;
      opt.iterations = 3;
      opt.method = rt::CfMethod::kSgd;
      if (engine == EngineKind::kBspgraph) config.bsp_phases = 10;
      auto r = RunCf(engine, g, opt, config);
      seconds = r.metrics.elapsed_seconds;
      metrics = r.metrics;
    } else {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
      return 1;
    }
    if (engine == EngineKind::kNative) native_seconds = seconds;
    table.AddRow({EngineName(engine), FormatDouble(seconds, 4),
                  native_seconds > 0
                      ? FormatDouble(seconds / native_seconds, 1) + "x"
                      : "-",
                  FormatDouble(metrics.BytesPerRank(ranks) / 1e6, 1),
                  FormatDouble(metrics.memory_peak_bytes / 1e6, 1),
                  FormatDouble(metrics.cpu_utilization * 100, 0) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading the table the paper's way: a big 'vs native' factor with low\n"
      "CPU utilization and low peak bandwidth points at the communication\n"
      "layer; a big memory column points at message buffering.\n");
  return 0;
}
