// Thin wrapper around the cli library: the user-facing maze_cli binary.
#include "cli/cli.h"

int main(int argc, char** argv) { return maze::cli::Main(argc, argv); }
