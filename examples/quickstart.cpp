// Quickstart: generate a Graph500 RMAT graph and run all four study algorithms
// with the hand-optimized native engine.
//
//   ./quickstart [scale]
//
// This touches the core public API end to end: generators -> EdgeList
// preprocessing -> CSR Graph -> native kernels -> results + run metrics.
#include <cstdio>
#include <cstdlib>

#include "core/graph.h"
#include "core/ratings_gen.h"
#include "core/rmat.h"
#include "native/bfs.h"
#include "native/cf.h"
#include "native/pagerank.h"
#include "native/cc.h"
#include "native/triangle.h"
#include "core/weighted_graph.h"
#include "task/algorithms.h"

int main(int argc, char** argv) {
  using namespace maze;
  int scale = argc > 1 ? std::atoi(argv[1]) : 14;

  std::printf("Generating RMAT graph at scale %d (Graph500 parameters)...\n",
              scale);
  EdgeList directed = GenerateRmat(RmatParams::Graph500(scale, 16, /*seed=*/42));
  directed.Deduplicate();
  std::printf("  %u vertices, %zu edges after dedup\n", directed.num_vertices,
              directed.size());

  // PageRank wants in-edges in CSR plus out-degrees.
  Graph pr_graph = Graph::FromEdges(directed, GraphDirections::kBoth);
  rt::PageRankOptions pr_opt;
  pr_opt.iterations = 10;
  auto pr = native::PageRank(pr_graph, pr_opt, rt::EngineConfig{});
  VertexId top = 0;
  for (VertexId v = 1; v < pr_graph.num_vertices(); ++v) {
    if (pr.ranks[v] > pr.ranks[top]) top = v;
  }
  std::printf("PageRank: 10 iterations in %.3fs; top vertex %u (rank %.2f)\n",
              pr.metrics.elapsed_seconds, top, pr.ranks[top]);

  // BFS over the symmetrized graph.
  EdgeList undirected = directed;
  undirected.Symmetrize();
  Graph bfs_graph = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
  auto bfs = native::Bfs(bfs_graph, rt::BfsOptions{0}, rt::EngineConfig{});
  uint64_t reached = 0;
  for (uint32_t d : bfs.distance) reached += d != kInfiniteDistance;
  std::printf("BFS: reached %llu vertices in %d levels (%.3fs)\n",
              static_cast<unsigned long long>(reached), bfs.levels,
              bfs.metrics.elapsed_seconds);

  // Triangle counting over the oriented low-triangle RMAT variant.
  EdgeList oriented = GenerateRmat(RmatParams::TriangleCounting(scale, 8, 42));
  oriented.OrientBySmallerId();
  Graph tc_graph = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
  auto tc = native::TriangleCount(tc_graph, {}, rt::EngineConfig{});
  std::printf("Triangle counting: %llu triangles (%.3fs)\n",
              static_cast<unsigned long long>(tc.triangles),
              tc.metrics.elapsed_seconds);

  // Collaborative filtering on a power-law ratings matrix (SGD).
  RatingsParams rp;
  rp.scale = scale - 2;
  rp.num_items = 512;
  BipartiteGraph ratings = GenerateRatings(rp).ToGraph();
  rt::CfOptions cf_opt;
  cf_opt.method = rt::CfMethod::kSgd;
  cf_opt.k = 16;
  cf_opt.iterations = 5;
  cf_opt.learning_rate = 0.01;
  auto cf = native::CollaborativeFiltering(ratings, cf_opt, rt::EngineConfig{});
  std::printf("CF (SGD, k=16): RMSE %.4f -> %.4f over 5 iterations (%.3fs)\n",
              cf.rmse_per_iteration.front(), cf.final_rmse,
              cf.metrics.elapsed_seconds);

  // Extension algorithms: connected components and weighted SSSP.
  auto cc = native::ConnectedComponents(bfs_graph, {}, rt::EngineConfig{});
  std::printf("Connected components: %llu components in %d rounds (%.3fs)\n",
              static_cast<unsigned long long>(cc.num_components),
              cc.iterations, cc.metrics.elapsed_seconds);

  WeightedGraph weighted =
      WeightedGraph::FromEdgesWithRandomWeights(undirected, 8.0f, 42);
  auto sssp = task::Sssp(weighted, rt::SsspOptions{0, 0}, rt::EngineConfig{});
  double max_dist = 0;
  for (float d : sssp.distance) {
    if (d != rt::SsspResult::kUnreachable && d > max_dist) max_dist = d;
  }
  std::printf("SSSP (delta-stepping): weighted eccentricity %.2f over %d "
              "bucket drains (%.3fs)\n",
              max_dist, sssp.rounds, sssp.metrics.elapsed_seconds);
  return 0;
}
