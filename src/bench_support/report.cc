#include "bench_support/report.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/stats.h"
#include "util/table.h"

namespace maze::bench {
namespace {

std::string RanksLabel(int ranks) {
  return ranks == 1 ? "1 node" : std::to_string(ranks) + " nodes";
}

// Exact nearest-rank quantile of a sorted sample (the reference the obs
// histogram approximations are tested against).
double NearestRankQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(std::ceil(q * sorted.size()));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

std::string SlowdownReport::RenderGeomeanTable(const std::string& title) const {
  // native time per (algorithm, dataset, ranks).
  std::map<std::string, double> native_time;
  for (const Measurement& m : rows_) {
    if (m.engine == EngineKind::kNative) {
      native_time[m.algorithm + "|" + m.dataset + "|" +
                  std::to_string(m.ranks)] = m.seconds;
    }
  }
  // Slowdowns per (algorithm, engine).
  std::map<std::string, std::map<EngineKind, std::vector<double>>> slowdowns;
  std::vector<std::string> algo_order;
  for (const Measurement& m : rows_) {
    if (m.engine == EngineKind::kNative) continue;
    auto it = native_time.find(m.algorithm + "|" + m.dataset + "|" +
                               std::to_string(m.ranks));
    if (it == native_time.end() || it->second <= 0 || m.seconds <= 0) continue;
    if (slowdowns.find(m.algorithm) == slowdowns.end()) {
      algo_order.push_back(m.algorithm);
    }
    slowdowns[m.algorithm][m.engine].push_back(m.seconds / it->second);
  }

  std::vector<EngineKind> engines;
  for (EngineKind e : AllEngines()) {
    if (e != EngineKind::kNative) engines.push_back(e);
  }

  TextTable table(title);
  std::vector<std::string> header = {"Algorithm"};
  for (EngineKind e : engines) header.push_back(EngineName(e));
  table.SetHeader(header);
  for (const std::string& algo : algo_order) {
    std::vector<std::string> row = {algo};
    for (EngineKind e : engines) {
      auto it = slowdowns[algo].find(e);
      row.push_back(it == slowdowns[algo].end() || it->second.empty()
                        ? "-"
                        : FormatDouble(GeometricMean(it->second), 1) + "x");
    }
    table.AddRow(row);
  }
  return table.Render();
}

std::string SlowdownReport::RenderRuntimeTable(const std::string& title) const {
  // Columns: engines; rows: (dataset, ranks).
  std::vector<EngineKind> engines = AllEngines();
  std::map<std::string, std::map<EngineKind, double>> cells;
  std::vector<std::string> row_order;
  for (const Measurement& m : rows_) {
    std::string key = m.dataset + " (" + RanksLabel(m.ranks) + ")";
    if (cells.find(key) == cells.end()) row_order.push_back(key);
    cells[key][m.engine] = m.seconds;
  }

  TextTable table(title);
  std::vector<std::string> header = {"Dataset"};
  for (EngineKind e : engines) header.push_back(EngineName(e));
  table.SetHeader(header);
  for (const std::string& key : row_order) {
    std::vector<std::string> row = {key};
    for (EngineKind e : engines) {
      auto it = cells[key].find(e);
      row.push_back(it == cells[key].end() ? "-"
                                           : FormatDouble(it->second, 4) + "s");
    }
    table.AddRow(row);
  }
  return table.Render();
}

std::string RenderSystemMetrics(const std::string& title,
                                const std::vector<Measurement>& rows,
                                const Fig6Normalization& norm) {
  // Normalize bytes sent per node against bspgraph's volume (Figure 6 caption).
  double bsp_bytes = 0;
  for (const Measurement& m : rows) {
    if (m.engine == EngineKind::kBspgraph) {
      bsp_bytes = m.metrics.BytesPerRank(m.ranks);
    }
  }
  TextTable table(title);
  table.SetHeader({"Engine", "CPU util (%)", "Peak net BW (% of 5.5GB/s)",
                   "Memory (% of 64GB)", "Net bytes (% of bspgraph)"});
  for (const Measurement& m : rows) {
    double bytes_per_rank = m.metrics.BytesPerRank(m.ranks);
    table.AddRow(
        {EngineName(m.engine), FormatDouble(m.metrics.cpu_utilization * 100, 1),
         FormatDouble(
             m.metrics.peak_network_bw / norm.network_limit_bytes_per_sec * 100,
             1),
         FormatDouble(static_cast<double>(m.metrics.memory_peak_bytes) /
                          static_cast<double>(norm.memory_capacity_bytes) * 100,
                      2),
         bsp_bytes > 0 ? FormatDouble(bytes_per_rank / bsp_bytes * 100, 1)
                       : "-"});
  }
  return table.Render();
}

obs::ResourceRow ResourceRowFrom(const Measurement& m) {
  obs::ResourceRow row;
  row.engine = EngineName(m.engine);
  row.algorithm = m.algorithm;
  row.dataset = m.dataset;
  row.ranks = m.ranks;
  row.elapsed_seconds = m.metrics.elapsed_seconds;
  row.cpu_utilization = m.metrics.cpu_utilization;
  row.footprint_bytes = m.metrics.memory_peak_bytes;
  row.graph_bytes = m.metrics.memory_graph_bytes;
  row.state_bytes = m.metrics.memory_state_bytes;
  row.msg_buffer_bytes = m.metrics.memory_msgbuf_bytes;
  row.wire_bytes = m.metrics.bytes_sent;
  row.wire_messages = m.metrics.messages_sent;
  if (m.metrics.modeled_peak_bw > 0) {
    row.peak_bw_utilization =
        m.metrics.peak_network_bw / m.metrics.modeled_peak_bw;
    if (m.metrics.elapsed_seconds > 0 && m.ranks > 0) {
      row.avg_bw_utilization =
          m.metrics.BytesPerRank(m.ranks) /
          (m.metrics.elapsed_seconds * m.metrics.modeled_peak_bw);
    }
  }
  if (!m.metrics.steps.empty()) {
    std::vector<double> step_seconds;
    step_seconds.reserve(m.metrics.steps.size());
    for (const rt::StepRecord& s : m.metrics.steps) {
      step_seconds.push_back(s.StepSeconds());
    }
    std::sort(step_seconds.begin(), step_seconds.end());
    row.step_p50_us = NearestRankQuantile(step_seconds, 0.5) * 1e6;
    row.step_p99_us = NearestRankQuantile(step_seconds, 0.99) * 1e6;
  }
  return row;
}

}  // namespace maze::bench
