// Report helpers: slowdown aggregation (Tables 5/6 style) and Figure 6 metric
// normalization shared by the bench binaries.
#ifndef MAZE_BENCH_SUPPORT_REPORT_H_
#define MAZE_BENCH_SUPPORT_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "bench_support/runner.h"
#include "obs/resource.h"
#include "rt/metrics.h"

namespace maze::bench {

// One measured cell.
struct Measurement {
  EngineKind engine;
  std::string algorithm;
  std::string dataset;
  int ranks = 1;
  double seconds = 0;  // Simulated elapsed (per iteration where applicable).
  rt::RunMetrics metrics;
};

// Collects measurements and renders slowdown-vs-native tables.
class SlowdownReport {
 public:
  void Add(const Measurement& m) { rows_.push_back(m); }

  // Geomean over datasets of engine_time / native_time per (algorithm, engine):
  // the aggregation of Tables 5 and 6. Rows missing a native counterpart are
  // skipped.
  std::string RenderGeomeanTable(const std::string& title) const;

  // Raw per-dataset runtimes (Figure 3/4/5 series).
  std::string RenderRuntimeTable(const std::string& title) const;

  const std::vector<Measurement>& rows() const { return rows_; }

 private:
  std::vector<Measurement> rows_;
};

// Figure 6 normalization constants (the figure's caption).
struct Fig6Normalization {
  double network_limit_bytes_per_sec = 5.5e9;
  uint64_t memory_capacity_bytes = 64ull << 30;
};

// Renders one Figure 6 panel: CPU utilization, peak network BW, memory
// footprint, and bytes sent per node, normalized as in the paper (bytes sent are
// relative to bspgraph's volume).
std::string RenderSystemMetrics(const std::string& title,
                                const std::vector<Measurement>& rows,
                                const Fig6Normalization& norm);

// Converts a measurement into a resource-report row: utilization fractions
// against the run's modeled bandwidth, the phase-attributed footprint split,
// and (for traced runs) exact nearest-rank step-time percentiles.
obs::ResourceRow ResourceRowFrom(const Measurement& m);

}  // namespace maze::bench

#endif  // MAZE_BENCH_SUPPORT_REPORT_H_
