#include "bench_support/runner.h"

#include <cmath>

#include "bsp/algorithms.h"
#include "core/graph.h"
#include "datalog/algorithms.h"
#include "gmat/algorithms.h"
#include "matrix/algorithms.h"
#include "native/sssp.h"
#include "native/bfs.h"
#include "native/cc.h"
#include "native/cf.h"
#include "native/pagerank.h"
#include "native/triangle.h"
#include "task/algorithms.h"
#include "util/check.h"
#include "vertex/algorithms.h"

namespace maze::bench {
namespace {

// The single engine registry. Everything that enumerates engines — names,
// AllEngines(), MultiNodeEngines(), CLI/serve `--engine` parsing — derives
// from this table, so a new engine added here is automatically picked up by
// `--engine all` and by every test that sweeps the engine list.
struct EngineInfo {
  EngineKind kind;
  const char* name;
  bool multi_node;
};

constexpr EngineInfo kEngineRegistry[] = {
    {EngineKind::kNative, "native", true},
    {EngineKind::kMatblas, "matblas", true},
    {EngineKind::kVertexlab, "vertexlab", true},
    {EngineKind::kDatalite, "datalite", true},
    {EngineKind::kBspgraph, "bspgraph", true},
    {EngineKind::kGmat, "gmat", true},
    {EngineKind::kTaskflow, "taskflow", false},
};

rt::CommModel DefaultCommFor(EngineKind engine, const RunConfig& config) {
  if (config.comm_override.has_value()) return *config.comm_override;
  switch (engine) {
    case EngineKind::kNative:
      return rt::CommModel::Mpi();
    case EngineKind::kVertexlab:
      return vertex::DefaultComm();
    case EngineKind::kMatblas:
      return matrix::DefaultComm();
    case EngineKind::kDatalite:
      return config.datalite_as_published
                 ? datalog::DataliteOptions::AsPublished().Comm()
                 : datalog::DataliteOptions::Optimized().Comm();
    case EngineKind::kTaskflow:
      return rt::CommModel::Mpi();  // Single node: unused.
    case EngineKind::kBspgraph:
      return bsp::DefaultComm();
    case EngineKind::kGmat:
      return gmat::DefaultComm();
  }
  return rt::CommModel::Mpi();
}

rt::EngineConfig MakeConfig(EngineKind engine, const RunConfig& config) {
  rt::EngineConfig ec;
  // The 2-D engines need a perfect-square process grid.
  ec.num_ranks =
      engine == EngineKind::kMatblas || engine == EngineKind::kGmat
          ? MatblasRanks(config.num_ranks)
          : config.num_ranks;
  if (engine == EngineKind::kTaskflow) ec.num_ranks = 1;
  ec.comm = DefaultCommFor(engine, config);
  ec.trace = config.trace;
  ec.faults = config.faults;
  return ec;
}

datalog::DataliteOptions DataliteFor(const RunConfig& config) {
  return config.datalite_as_published ? datalog::DataliteOptions::AsPublished()
                                      : datalog::DataliteOptions::Optimized();
}

bsp::BspOptions BspFor(const RunConfig& config) {
  bsp::BspOptions options;
  options.superstep_phases = config.bsp_phases;
  return options;
}

}  // namespace

const char* EngineName(EngineKind kind) {
  for (const EngineInfo& e : kEngineRegistry) {
    if (e.kind == kind) return e.name;
  }
  return "?";
}

std::vector<EngineKind> AllEngines() {
  std::vector<EngineKind> out;
  for (const EngineInfo& e : kEngineRegistry) out.push_back(e.kind);
  return out;
}

std::vector<EngineKind> MultiNodeEngines() {
  std::vector<EngineKind> out;
  for (const EngineInfo& e : kEngineRegistry) {
    if (e.multi_node) out.push_back(e.kind);
  }
  return out;
}

std::string EngineNameList() {
  std::string out;
  for (const EngineInfo& e : kEngineRegistry) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

StatusOr<EngineKind> EngineByName(const std::string& name) {
  for (const EngineInfo& e : kEngineRegistry) {
    if (name == e.name) return e.kind;
  }
  return Status::InvalidArgument("unknown engine '" + name +
                                 "'; valid engines: " + EngineNameList());
}

int MatblasRanks(int requested) {
  int side = static_cast<int>(std::sqrt(static_cast<double>(requested)));
  while (side * side > requested) --side;
  return std::max(1, side * side);
}

rt::PageRankResult RunPageRank(EngineKind engine, const EdgeList& directed,
                               const rt::PageRankOptions& options,
                               const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kBoth);
      return native::PageRank(g, options, ec);
    }
    case EngineKind::kVertexlab: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
      return vertex::PageRank(g, options, ec);
    }
    case EngineKind::kMatblas:
      return matrix::PageRank(directed, options, ec);
    case EngineKind::kDatalite: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
      return datalog::PageRank(g, options, ec, DataliteFor(config));
    }
    case EngineKind::kTaskflow: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kBoth);
      return task::PageRank(g, options, ec);
    }
    case EngineKind::kBspgraph: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
      return bsp::PageRank(g, options, ec, BspFor(config));
    }
    case EngineKind::kGmat:
      return gmat::PageRank(directed, options, ec);
  }
  MAZE_CHECK(false);
  return {};
}

rt::BfsResult RunBfs(EngineKind engine, const EdgeList& undirected,
                     const rt::BfsOptions& options, const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return native::Bfs(g, options, ec);
    }
    case EngineKind::kVertexlab: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return vertex::Bfs(g, options, ec);
    }
    case EngineKind::kMatblas:
      return matrix::Bfs(undirected, options, ec);
    case EngineKind::kDatalite: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return datalog::Bfs(g, options, ec, DataliteFor(config));
    }
    case EngineKind::kTaskflow: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return task::Bfs(g, options, ec);
    }
    case EngineKind::kBspgraph: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return bsp::Bfs(g, options, ec, BspFor(config));
    }
    case EngineKind::kGmat:
      return gmat::Bfs(undirected, options, ec);
  }
  MAZE_CHECK(false);
  return {};
}

rt::TriangleCountResult RunTriangleCount(EngineKind engine,
                                         const EdgeList& oriented,
                                         const rt::TriangleCountOptions& options,
                                         const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  Graph g = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
  switch (engine) {
    case EngineKind::kNative:
      return native::TriangleCount(g, options, ec);
    case EngineKind::kVertexlab:
      return vertex::TriangleCount(g, options, ec);
    case EngineKind::kMatblas:
      return matrix::TriangleCount(g, options, ec);
    case EngineKind::kDatalite:
      return datalog::TriangleCount(g, options, ec, DataliteFor(config));
    case EngineKind::kTaskflow:
      return task::TriangleCount(g, options, ec);
    case EngineKind::kBspgraph:
      return bsp::TriangleCount(g, options, ec, BspFor(config));
    case EngineKind::kGmat:
      return gmat::TriangleCount(oriented, options, ec);
  }
  MAZE_CHECK(false);
  return {};
}

rt::CfResult RunCf(EngineKind engine, const BipartiteGraph& ratings,
                   const rt::CfOptions& options, const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  rt::CfOptions opt = options;
  if (engine != EngineKind::kNative && engine != EngineKind::kTaskflow) {
    opt.method = rt::CfMethod::kGd;  // §3.2: only native/Galois express SGD.
  }
  switch (engine) {
    case EngineKind::kNative:
      return native::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kVertexlab:
      return vertex::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kMatblas:
      return matrix::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kDatalite:
      return datalog::CollaborativeFiltering(ratings, opt, ec,
                                             DataliteFor(config));
    case EngineKind::kTaskflow:
      return task::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kBspgraph:
      return bsp::CollaborativeFiltering(ratings, opt, ec, BspFor(config));
    case EngineKind::kGmat:
      return gmat::CollaborativeFiltering(ratings, opt, ec);
  }
  MAZE_CHECK(false);
  return {};
}

rt::ConnectedComponentsResult RunConnectedComponents(
    EngineKind engine, const EdgeList& undirected,
    const rt::ConnectedComponentsOptions& options, const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return native::ConnectedComponents(g, options, ec);
    }
    case EngineKind::kVertexlab: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return vertex::ConnectedComponents(g, options, ec);
    }
    case EngineKind::kMatblas:
      return matrix::ConnectedComponents(undirected, options, ec);
    case EngineKind::kDatalite: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return datalog::ConnectedComponents(g, options, ec, DataliteFor(config));
    }
    case EngineKind::kTaskflow: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return task::ConnectedComponents(g, options, ec);
    }
    case EngineKind::kBspgraph: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return bsp::ConnectedComponents(g, options, ec, BspFor(config));
    }
    case EngineKind::kGmat:
      return gmat::ConnectedComponents(undirected, options, ec);
  }
  MAZE_CHECK(false);
  return {};
}

bool EngineSupportsSssp(EngineKind engine) {
  return engine == EngineKind::kNative || engine == EngineKind::kTaskflow ||
         engine == EngineKind::kGmat;
}

rt::SsspResult RunSssp(EngineKind engine, const WeightedGraph& g,
                       const rt::SsspOptions& options,
                       const RunConfig& config) {
  MAZE_CHECK(EngineSupportsSssp(engine));
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative:
      return native::Sssp(g, options, ec);
    case EngineKind::kTaskflow:
      return task::Sssp(g, options, ec);
    case EngineKind::kGmat:
      return gmat::Sssp(g, options, ec);
    default:
      break;
  }
  MAZE_CHECK(false);
  return {};
}

}  // namespace maze::bench
