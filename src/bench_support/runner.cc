#include "bench_support/runner.h"

#include <cmath>

#include "bsp/algorithms.h"
#include "core/graph.h"
#include "datalog/algorithms.h"
#include "matrix/algorithms.h"
#include "native/bfs.h"
#include "native/cc.h"
#include "native/cf.h"
#include "native/pagerank.h"
#include "native/triangle.h"
#include "task/algorithms.h"
#include "util/check.h"
#include "vertex/algorithms.h"

namespace maze::bench {
namespace {

rt::CommModel DefaultCommFor(EngineKind engine, const RunConfig& config) {
  if (config.comm_override.has_value()) return *config.comm_override;
  switch (engine) {
    case EngineKind::kNative:
      return rt::CommModel::Mpi();
    case EngineKind::kVertexlab:
      return vertex::DefaultComm();
    case EngineKind::kMatblas:
      return matrix::DefaultComm();
    case EngineKind::kDatalite:
      return config.datalite_as_published
                 ? datalog::DataliteOptions::AsPublished().Comm()
                 : datalog::DataliteOptions::Optimized().Comm();
    case EngineKind::kTaskflow:
      return rt::CommModel::Mpi();  // Single node: unused.
    case EngineKind::kBspgraph:
      return bsp::DefaultComm();
  }
  return rt::CommModel::Mpi();
}

rt::EngineConfig MakeConfig(EngineKind engine, const RunConfig& config) {
  rt::EngineConfig ec;
  ec.num_ranks = engine == EngineKind::kMatblas ? MatblasRanks(config.num_ranks)
                                                : config.num_ranks;
  if (engine == EngineKind::kTaskflow) ec.num_ranks = 1;
  ec.comm = DefaultCommFor(engine, config);
  ec.trace = config.trace;
  ec.faults = config.faults;
  return ec;
}

datalog::DataliteOptions DataliteFor(const RunConfig& config) {
  return config.datalite_as_published ? datalog::DataliteOptions::AsPublished()
                                      : datalog::DataliteOptions::Optimized();
}

bsp::BspOptions BspFor(const RunConfig& config) {
  bsp::BspOptions options;
  options.superstep_phases = config.bsp_phases;
  return options;
}

}  // namespace

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNative:
      return "native";
    case EngineKind::kVertexlab:
      return "vertexlab";
    case EngineKind::kMatblas:
      return "matblas";
    case EngineKind::kDatalite:
      return "datalite";
    case EngineKind::kTaskflow:
      return "taskflow";
    case EngineKind::kBspgraph:
      return "bspgraph";
  }
  return "?";
}

std::vector<EngineKind> AllEngines() {
  return {EngineKind::kNative,   EngineKind::kMatblas,  EngineKind::kVertexlab,
          EngineKind::kDatalite, EngineKind::kBspgraph, EngineKind::kTaskflow};
}

std::vector<EngineKind> MultiNodeEngines() {
  return {EngineKind::kNative, EngineKind::kMatblas, EngineKind::kVertexlab,
          EngineKind::kDatalite, EngineKind::kBspgraph};
}

int MatblasRanks(int requested) {
  int side = static_cast<int>(std::sqrt(static_cast<double>(requested)));
  while (side * side > requested) --side;
  return std::max(1, side * side);
}

rt::PageRankResult RunPageRank(EngineKind engine, const EdgeList& directed,
                               const rt::PageRankOptions& options,
                               const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kBoth);
      return native::PageRank(g, options, ec);
    }
    case EngineKind::kVertexlab: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
      return vertex::PageRank(g, options, ec);
    }
    case EngineKind::kMatblas:
      return matrix::PageRank(directed, options, ec);
    case EngineKind::kDatalite: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
      return datalog::PageRank(g, options, ec, DataliteFor(config));
    }
    case EngineKind::kTaskflow: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kBoth);
      return task::PageRank(g, options, ec);
    }
    case EngineKind::kBspgraph: {
      Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
      return bsp::PageRank(g, options, ec, BspFor(config));
    }
  }
  MAZE_CHECK(false);
  return {};
}

rt::BfsResult RunBfs(EngineKind engine, const EdgeList& undirected,
                     const rt::BfsOptions& options, const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return native::Bfs(g, options, ec);
    }
    case EngineKind::kVertexlab: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return vertex::Bfs(g, options, ec);
    }
    case EngineKind::kMatblas:
      return matrix::Bfs(undirected, options, ec);
    case EngineKind::kDatalite: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return datalog::Bfs(g, options, ec, DataliteFor(config));
    }
    case EngineKind::kTaskflow: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return task::Bfs(g, options, ec);
    }
    case EngineKind::kBspgraph: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return bsp::Bfs(g, options, ec, BspFor(config));
    }
  }
  MAZE_CHECK(false);
  return {};
}

rt::TriangleCountResult RunTriangleCount(EngineKind engine,
                                         const EdgeList& oriented,
                                         const rt::TriangleCountOptions& options,
                                         const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  Graph g = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
  switch (engine) {
    case EngineKind::kNative:
      return native::TriangleCount(g, options, ec);
    case EngineKind::kVertexlab:
      return vertex::TriangleCount(g, options, ec);
    case EngineKind::kMatblas:
      return matrix::TriangleCount(g, options, ec);
    case EngineKind::kDatalite:
      return datalog::TriangleCount(g, options, ec, DataliteFor(config));
    case EngineKind::kTaskflow:
      return task::TriangleCount(g, options, ec);
    case EngineKind::kBspgraph:
      return bsp::TriangleCount(g, options, ec, BspFor(config));
  }
  MAZE_CHECK(false);
  return {};
}

rt::CfResult RunCf(EngineKind engine, const BipartiteGraph& ratings,
                   const rt::CfOptions& options, const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  rt::CfOptions opt = options;
  if (engine != EngineKind::kNative && engine != EngineKind::kTaskflow) {
    opt.method = rt::CfMethod::kGd;  // §3.2: only native/Galois express SGD.
  }
  switch (engine) {
    case EngineKind::kNative:
      return native::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kVertexlab:
      return vertex::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kMatblas:
      return matrix::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kDatalite:
      return datalog::CollaborativeFiltering(ratings, opt, ec,
                                             DataliteFor(config));
    case EngineKind::kTaskflow:
      return task::CollaborativeFiltering(ratings, opt, ec);
    case EngineKind::kBspgraph:
      return bsp::CollaborativeFiltering(ratings, opt, ec, BspFor(config));
  }
  MAZE_CHECK(false);
  return {};
}

rt::ConnectedComponentsResult RunConnectedComponents(
    EngineKind engine, const EdgeList& undirected,
    const rt::ConnectedComponentsOptions& options, const RunConfig& config) {
  rt::EngineConfig ec = MakeConfig(engine, config);
  switch (engine) {
    case EngineKind::kNative: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return native::ConnectedComponents(g, options, ec);
    }
    case EngineKind::kVertexlab: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return vertex::ConnectedComponents(g, options, ec);
    }
    case EngineKind::kMatblas:
      return matrix::ConnectedComponents(undirected, options, ec);
    case EngineKind::kDatalite: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return datalog::ConnectedComponents(g, options, ec, DataliteFor(config));
    }
    case EngineKind::kTaskflow: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return task::ConnectedComponents(g, options, ec);
    }
    case EngineKind::kBspgraph: {
      Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
      return bsp::ConnectedComponents(g, options, ec, BspFor(config));
    }
  }
  MAZE_CHECK(false);
  return {};
}

}  // namespace maze::bench
