// Uniform engine dispatch for the benchmark harness: every (engine, algorithm,
// dataset, rank-count) cell of the paper's tables and figures runs through these
// entry points. Each engine gets its own graph representation and its default
// communication layer (Table 2), unless the run config overrides them.
#ifndef MAZE_BENCH_SUPPORT_RUNNER_H_
#define MAZE_BENCH_SUPPORT_RUNNER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/bipartite.h"
#include "core/edge_list.h"
#include "core/weighted_graph.h"
#include "rt/algo.h"
#include "util/status.h"

namespace maze::bench {

// The six execution substrates of the study, plus gmat (the GraphMat-style
// compiling engine, ROADMAP item 1).
enum class EngineKind {
  kNative,     // Hand-optimized C++ (the reference point).
  kVertexlab,  // GraphLab-like vertex programs.
  kMatblas,    // CombBLAS-like sparse linear algebra.
  kDatalite,   // SociaLite-like Datalog.
  kTaskflow,   // Galois-like task/worklist (single node only).
  kBspgraph,   // Giraph-like BSP.
  kGmat,       // GraphMat-like vertex→matrix compilation over 2-D tiles.
};

// All of the below derive from one registry table in runner.cc: adding an
// engine there enrolls it in AllEngines(), name lookup, the CLI/serve
// `--engine` parsers, and every differential/fault test that sweeps the list.
const char* EngineName(EngineKind kind);
std::vector<EngineKind> AllEngines();
std::vector<EngineKind> MultiNodeEngines();  // All but taskflow.

// Case-sensitive name → engine lookup; the error message enumerates the valid
// names so `maze_cli run --engine <typo>` is actionable.
StatusOr<EngineKind> EngineByName(const std::string& name);
// "native, matblas, ..." — for help text and error messages.
std::string EngineNameList();

struct RunConfig {
  int num_ranks = 1;
  // bspgraph superstep splitting (§6.1.3); used by TC/CF benches.
  int bsp_phases = 1;
  // datalite network optimizations off = the Table 7 "Before" configuration.
  bool datalite_as_published = false;
  // Override the engine's default communication layer (nullopt = Table 2).
  std::optional<rt::CommModel> comm_override;
  // Record the per-step timeline (rt::RunMetrics::steps) for the run; needed
  // for utilization timelines and step-time percentiles.
  bool trace = false;
  // Fault plan for the run (defaults to MAZE_FAULTS; disabled when unset).
  rt::fault::FaultSpec faults = rt::fault::SpecFromEnv();
};

// matblas and gmat require a perfect-square rank count (the 2-D process grid);
// returns the count those engines will actually use for `requested`.
int MatblasRanks(int requested);

// `directed` is the deduplicated directed edge list; engines build their own
// representation (in-CSR for native, tiles for matblas, tables for datalite).
rt::PageRankResult RunPageRank(EngineKind engine, const EdgeList& directed,
                               const rt::PageRankOptions& options,
                               const RunConfig& config);

// `undirected` must be symmetric.
rt::BfsResult RunBfs(EngineKind engine, const EdgeList& undirected,
                     const rt::BfsOptions& options, const RunConfig& config);

// `oriented` must satisfy src < dst (§4.1.2 preprocessing).
rt::TriangleCountResult RunTriangleCount(EngineKind engine,
                                         const EdgeList& oriented,
                                         const rt::TriangleCountOptions& options,
                                         const RunConfig& config);

// Native/taskflow run the requested method; the other engines always run GD
// (they cannot express SGD, §3.2) regardless of options.method.
rt::CfResult RunCf(EngineKind engine, const BipartiteGraph& ratings,
                   const rt::CfOptions& options, const RunConfig& config);

// Connected components (extension algorithm). `undirected` must be symmetric.
rt::ConnectedComponentsResult RunConnectedComponents(
    EngineKind engine, const EdgeList& undirected,
    const rt::ConnectedComponentsOptions& options, const RunConfig& config);

// SSSP (extension algorithm; weighted graphs). Only the engines for which
// EngineSupportsSssp() returns true have an implementation: native (Bellman-
// Ford), taskflow (delta-stepping), gmat (MinPlus semiring SpMSpV).
bool EngineSupportsSssp(EngineKind engine);
rt::SsspResult RunSssp(EngineKind engine, const WeightedGraph& g,
                       const rt::SsspOptions& options, const RunConfig& config);

}  // namespace maze::bench

#endif  // MAZE_BENCH_SUPPORT_RUNNER_H_
