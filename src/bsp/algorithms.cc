#include "bsp/algorithms.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "native/cc.h"
#include "native/cf.h"
#include "util/check.h"

namespace maze::bsp {

namespace {

// -1 = follow MAZE_BSP_ARENA (default on); 0/1 = forced by SetArenaEnabled.
std::atomic<int> g_arena_force{-1};

std::atomic<uint64_t> g_boxed_requests{0};
std::atomic<uint64_t> g_pool_reused{0};
std::atomic<uint64_t> g_pool_slab_allocations{0};
std::atomic<uint64_t> g_pool_slab_bytes{0};
std::atomic<uint64_t> g_heap_boxed{0};

}  // namespace

bool ArenaEnabled() {
  int force = g_arena_force.load(std::memory_order_relaxed);
  if (force >= 0) return force != 0;
  const char* env = std::getenv("MAZE_BSP_ARENA");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

void SetArenaEnabled(int force) {
  g_arena_force.store(force < 0 ? -1 : (force != 0 ? 1 : 0),
                      std::memory_order_relaxed);
}

void ResetArenaCounters() {
  g_boxed_requests.store(0, std::memory_order_relaxed);
  g_pool_reused.store(0, std::memory_order_relaxed);
  g_pool_slab_allocations.store(0, std::memory_order_relaxed);
  g_pool_slab_bytes.store(0, std::memory_order_relaxed);
  g_heap_boxed.store(0, std::memory_order_relaxed);
}

ArenaCounters GetArenaCounters() {
  ArenaCounters c;
  c.boxed_requests = g_boxed_requests.load(std::memory_order_relaxed);
  c.pool_reused = g_pool_reused.load(std::memory_order_relaxed);
  c.pool_slab_allocations =
      g_pool_slab_allocations.load(std::memory_order_relaxed);
  c.pool_slab_bytes = g_pool_slab_bytes.load(std::memory_order_relaxed);
  c.heap_boxed = g_heap_boxed.load(std::memory_order_relaxed);
  return c;
}

namespace internal {
void AccumulateArenaCounters(const ArenaCounters& c) {
  g_boxed_requests.fetch_add(c.boxed_requests, std::memory_order_relaxed);
  g_pool_reused.fetch_add(c.pool_reused, std::memory_order_relaxed);
  g_pool_slab_allocations.fetch_add(c.pool_slab_allocations,
                                    std::memory_order_relaxed);
  g_pool_slab_bytes.fetch_add(c.pool_slab_bytes, std::memory_order_relaxed);
  g_heap_boxed.fetch_add(c.heap_boxed, std::memory_order_relaxed);
}
}  // namespace internal

namespace {

// --- PageRank (Algorithm 1) ---------------------------------------------------

struct PrValue {
  double pr = 1.0;
  double partial = 0.0;
};

class PageRankBsp : public BspProgram<PrValue, double> {
 public:
  PageRankBsp(const Graph& g, const rt::PageRankOptions& options)
      : g_(g), options_(options) {}

  void Init(VertexId, const Graph&, PrValue* value) override {
    *value = PrValue{};
  }

  void Fold(VertexId, PrValue* value,
            const std::vector<Boxed<double>>& batch) override {
    for (const auto& m : batch) value->partial += *m;
  }

  bool Compute(BspContext<double>* ctx, VertexId v, PrValue* value) override {
    if (ctx->superstep() > 0) {
      value->pr = options_.jump + (1.0 - options_.jump) * value->partial;
      value->partial = 0.0;
    }
    if (ctx->superstep() < options_.iterations) {
      EdgeId deg = g_.OutDegree(v);
      if (deg > 0) {
        ctx->SendToOutNeighbors(value->pr / static_cast<double>(deg));
      }
      return true;
    }
    return false;
  }

 private:
  const Graph& g_;
  rt::PageRankOptions options_;
};

// --- BFS (Algorithm 2) ----------------------------------------------------------

struct BfsValue {
  uint32_t dist = kInfiniteDistance;
  uint32_t candidate = kInfiniteDistance;
};

class BfsBsp : public BspProgram<BfsValue, uint32_t> {
 public:
  explicit BfsBsp(VertexId source) : source_(source) {}

  void Init(VertexId v, const Graph&, BfsValue* value) override {
    value->dist = v == source_ ? 0 : kInfiniteDistance;
    value->candidate = kInfiniteDistance;
  }

  void Fold(VertexId, BfsValue* value,
            const std::vector<Boxed<uint32_t>>& batch) override {
    for (const auto& m : batch) value->candidate = std::min(value->candidate, *m);
  }

  bool Compute(BspContext<uint32_t>* ctx, VertexId v, BfsValue* value) override {
    if (ctx->superstep() == 0) {
      if (v == source_) ctx->SendToOutNeighbors(0);
      return false;
    }
    if (value->candidate != kInfiniteDistance &&
        value->candidate + 1 < value->dist) {
      value->dist = value->candidate + 1;
      ctx->SendToOutNeighbors(value->dist);
    }
    value->candidate = kInfiniteDistance;
    return false;
  }

  bool AllActive() const override { return false; }

 private:
  VertexId source_;
};

// --- Triangle Counting -----------------------------------------------------------

class TriangleBsp : public BspProgram<uint64_t, std::vector<VertexId>> {
 public:
  explicit TriangleBsp(const Graph& g) : g_(g) {}

  void Init(VertexId, const Graph&, uint64_t* value) override { *value = 0; }

  void Fold(VertexId v, uint64_t* value,
            const std::vector<Boxed<std::vector<VertexId>>>& batch) override {
    const auto own = g_.OutNeighbors(v);
    for (const auto& list : batch) {
      for (VertexId w : *list) {
        if (std::binary_search(own.begin(), own.end(), w)) ++*value;
      }
    }
  }

  bool Compute(BspContext<std::vector<VertexId>>* ctx, VertexId v,
               uint64_t*) override {
    if (ctx->superstep() == 0) {
      const auto neighbors = g_.OutNeighbors(v);
      if (!neighbors.empty()) {
        ctx->SendToOutNeighbors(
            std::vector<VertexId>(neighbors.begin(), neighbors.end()));
      }
      return true;
    }
    return false;
  }

  size_t MessageWireBytes(const std::vector<VertexId>& m) const override {
    return 4 + m.size() * sizeof(VertexId);
  }

 private:
  const Graph& g_;
};

// --- Collaborative Filtering (GD) -------------------------------------------------

struct CfValue {
  std::vector<double> factor;
  std::vector<double> grad;
};

using CfMessage = std::pair<VertexId, std::vector<double>>;

class CfBsp : public BspProgram<CfValue, CfMessage> {
 public:
  CfBsp(const BipartiteGraph& ratings, const rt::CfOptions& options,
        const std::vector<double>& init_users,
        const std::vector<double>& init_items)
      : ratings_(ratings),
        options_(options),
        init_users_(init_users),
        init_items_(init_items) {}

  void Init(VertexId v, const Graph&, CfValue* value) override {
    bool is_user = v < ratings_.num_users();
    const std::vector<double>& src = is_user ? init_users_ : init_items_;
    size_t row = is_user ? v : v - ratings_.num_users();
    value->factor.assign(
        src.begin() + static_cast<ptrdiff_t>(row * options_.k),
        src.begin() + static_cast<ptrdiff_t>((row + 1) * options_.k));
    value->grad.assign(options_.k, 0.0);
  }

  void Fold(VertexId v, CfValue* value,
            const std::vector<Boxed<CfMessage>>& batch) override {
    bool is_user = v < ratings_.num_users();
    double lambda = is_user ? options_.lambda_p : options_.lambda_q;
    for (const auto& m : batch) {
      double rating = RatingFor(v, m->first);
      const auto& other = m->second;
      double dot = 0;
      for (int d = 0; d < options_.k; ++d) dot += value->factor[d] * other[d];
      double err = rating - dot;
      for (int d = 0; d < options_.k; ++d) {
        value->grad[d] += err * other[d] - lambda * value->factor[d];
      }
    }
  }

  bool Compute(BspContext<CfMessage>* ctx, VertexId v, CfValue* value) override {
    if (ctx->superstep() > 0) {
      for (int d = 0; d < options_.k; ++d) {
        value->factor[d] += options_.learning_rate * value->grad[d];
        value->grad[d] = 0.0;
      }
    }
    if (ctx->superstep() < options_.iterations) {
      ctx->SendToOutNeighbors(CfMessage{v, value->factor});
      return true;
    }
    return false;
  }

  size_t MessageWireBytes(const CfMessage& m) const override {
    return 4 + m.second.size() * sizeof(double);
  }

 private:
  float RatingFor(VertexId me, VertexId other) const {
    bool is_user = me < ratings_.num_users();
    auto adj = is_user ? ratings_.UserRatings(me)
                       : ratings_.ItemRatings(me - ratings_.num_users());
    VertexId key = is_user ? other - ratings_.num_users() : other;
    auto it = std::lower_bound(
        adj.begin(), adj.end(), key,
        [](const BipartiteGraph::Entry& e, VertexId id) { return e.id < id; });
    MAZE_CHECK(it != adj.end() && it->id == key);
    return it->rating;
  }

  const BipartiteGraph& ratings_;
  rt::CfOptions options_;
  const std::vector<double>& init_users_;
  const std::vector<double>& init_items_;
};

// --- Connected Components (extension): min-label propagation -----------------

struct CcValue {
  VertexId label = 0;
  VertexId candidate = kInvalidVertex;
};

class CcBsp : public BspProgram<CcValue, VertexId> {
 public:
  void Init(VertexId v, const Graph&, CcValue* value) override {
    value->label = v;
    value->candidate = kInvalidVertex;
  }

  void Fold(VertexId, CcValue* value,
            const std::vector<Boxed<VertexId>>& batch) override {
    for (const auto& m : batch) value->candidate = std::min(value->candidate, *m);
  }

  bool Compute(BspContext<VertexId>* ctx, VertexId, CcValue* value) override {
    if (ctx->superstep() == 0) {
      ctx->SendToOutNeighbors(value->label);
      return false;
    }
    if (value->candidate < value->label) {
      value->label = value->candidate;
      ctx->SendToOutNeighbors(value->label);
    }
    value->candidate = kInvalidVertex;
    return false;
  }

  bool AllActive() const override { return false; }
};

}  // namespace

rt::CommModel DefaultComm() { return rt::CommModel::Netty(); }

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config, const BspOptions& bsp) {
  MAZE_CHECK(g.has_out());
  PageRankBsp program(g, options);
  BspEngine<PrValue, double> engine(g, config, bsp);
  engine.Run(&program, options.iterations + 1);
  rt::PageRankResult result;
  result.ranks.reserve(engine.values().size());
  for (const PrValue& v : engine.values()) result.ranks.push_back(v.pr);
  result.iterations = options.iterations;
  result.metrics = engine.Finish();
  return result;
}

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config, const BspOptions& bsp) {
  MAZE_CHECK(g.has_out());
  BfsBsp program(options.source);
  BspEngine<BfsValue, uint32_t> engine(g, config, bsp);
  int supersteps = engine.Run(&program, static_cast<int>(g.num_vertices()) + 2);
  rt::BfsResult result;
  result.distance.reserve(engine.values().size());
  for (const BfsValue& v : engine.values()) result.distance.push_back(v.dist);
  result.levels = std::max(0, supersteps - 1);
  result.metrics = engine.Finish();
  return result;
}

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config,
                                      const BspOptions& bsp) {
  MAZE_CHECK(g.has_out());
  TriangleBsp program(g);
  BspEngine<uint64_t, std::vector<VertexId>> engine(g, config, bsp);
  engine.Run(&program, 2);
  rt::TriangleCountResult result;
  for (uint64_t v : engine.values()) result.triangles += v;
  result.metrics = engine.Finish();
  return result;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config,
                                    const BspOptions& bsp) {
  MAZE_CHECK(options.method == rt::CfMethod::kGd);
  EdgeList edges;
  edges.num_vertices = g.num_users() + g.num_items();
  edges.edges.reserve(g.num_ratings() * 2);
  for (VertexId u = 0; u < g.num_users(); ++u) {
    for (const auto& e : g.UserRatings(u)) {
      edges.edges.push_back({u, g.num_users() + e.id});
      edges.edges.push_back({g.num_users() + e.id, u});
    }
  }
  Graph combined = Graph::FromEdges(edges, GraphDirections::kOutOnly);

  rt::CfResult result;
  result.k = options.k;
  native::CfInitFactors(g.num_users(), options.k, options.seed,
                        &result.user_factors);
  native::CfInitFactors(g.num_items(), options.k, options.seed ^ 0x1234567ull,
                        &result.item_factors);

  CfBsp program(g, options, result.user_factors, result.item_factors);
  BspEngine<CfValue, CfMessage> engine(combined, config, bsp);
  engine.Run(&program, options.iterations + 1);

  const auto& values = engine.values();
  for (VertexId u = 0; u < g.num_users(); ++u) {
    std::copy(values[u].factor.begin(), values[u].factor.end(),
              result.user_factors.begin() +
                  static_cast<ptrdiff_t>(u) * options.k);
  }
  for (VertexId v = 0; v < g.num_items(); ++v) {
    std::copy(values[g.num_users() + v].factor.begin(),
              values[g.num_users() + v].factor.end(),
              result.item_factors.begin() +
                  static_cast<ptrdiff_t>(v) * options.k);
  }
  result.iterations = options.iterations;
  result.final_rmse = native::CfRmse(g, result.user_factors,
                                     result.item_factors, options.k);
  result.rmse_per_iteration.push_back(result.final_rmse);
  result.metrics = engine.Finish();
  return result;
}

rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config, const BspOptions& bsp) {
  MAZE_CHECK(g.has_out());
  CcBsp program;
  BspEngine<CcValue, VertexId> engine(g, config, bsp);
  int supersteps = engine.Run(&program, options.max_iterations);
  rt::ConnectedComponentsResult result;
  result.label.reserve(engine.values().size());
  for (const CcValue& v : engine.values()) result.label.push_back(v.label);
  result.num_components = native::CountComponents(result.label);
  result.iterations = supersteps;
  result.metrics = engine.Finish();
  return result;
}

}  // namespace maze::bsp
