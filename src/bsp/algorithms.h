// The four study algorithms as bspgraph (Giraph-like) vertex programs. PageRank
// and BFS follow Algorithms 1/2 verbatim. Triangle counting and CF-GD generate
// message volumes far larger than the graph (Table 1), so they accept a
// superstep-splitting phase count (§6.1.3) — the paper could only run Giraph
// triangle counting at all with 100 phases.
#ifndef MAZE_BSP_ALGORITHMS_H_
#define MAZE_BSP_ALGORITHMS_H_

#include "bsp/engine.h"
#include "core/bipartite.h"
#include "core/graph.h"
#include "rt/algo.h"

namespace maze::bsp {

// Giraph's transport: netty (Table 2).
rt::CommModel DefaultComm();

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config,
                            const BspOptions& bsp = BspOptions{});

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config, const BspOptions& bsp = BspOptions{});

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions& options,
                                      rt::EngineConfig config,
                                      const BspOptions& bsp = BspOptions{});

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config,
                                    const BspOptions& bsp = BspOptions{});

// Connected components via min-label propagation (extension algorithm).
rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config, const BspOptions& bsp = BspOptions{});

}  // namespace maze::bsp

#endif  // MAZE_BSP_ALGORITHMS_H_
