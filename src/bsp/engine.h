// bspgraph: the Giraph-like bulk-synchronous engine (Sections 3, 5.4, 6.1.3).
//
// Pathologies reproduced from the paper's Giraph findings:
//   - Bulk-synchronous supersteps with FULL MESSAGE BUFFERING: "it tries to
//     buffer all outgoing messages in memory before sending any" — the outbox
//     and inbox sizes are tracked and dominate the memory-footprint metric
//     (triangle counting and CF can exceed node memory without splitting);
//   - boxed messages: every message is an individual heap allocation (the
//     JVM-object model), a genuine CPU cost the engine really pays;
//   - worker cap: 4 workers on a 24-core node ("memory limitations restrict the
//     number of workers"), modeled as a compute-time scale factor and a 4/24
//     CPU-utilization ceiling;
//   - netty-class transport (CommModel::Netty), no compute/comm overlap;
//   - optional superstep splitting (§6.1.3): each superstep runs in `phases`
//     mini-steps, each creating only 1/phases of the messages at a time, cutting
//     buffer memory at the cost of finer-grained synchronization. Programs
//     consume messages through an incremental Fold, so splitting is transparent.
//
// Program interface (virtual dispatch, deliberately):
//   Fold(v, value, messages)  — folds a batch of arrived messages into state;
//                               called one or more times per superstep;
//   Compute(ctx, v, value)    — acts on the folded state and sends messages;
//                               called once per superstep for each active vertex.
#ifndef MAZE_BSP_ENGINE_H_
#define MAZE_BSP_ENGINE_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "core/graph.h"
#include "obs/counters.h"
#include "obs/obs.h"
#include "obs/resource.h"
#include "rt/algo.h"
#include "rt/fault.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/freelist.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::bsp {

// --- Boxed-message arena (DESIGN.md §4f) -------------------------------------
// Messages stay individually boxed — that is the modeled JVM-object pathology,
// and every modeled cost (BoxedBytes, wire bytes, msgbuf watermarks) is
// computed from counts exactly as before. But the *host-side* allocation
// behind each box defaults to per-rank util::FreeListPool arenas instead of
// one heap allocation per message. MAZE_BSP_ARENA=0 (or SetArenaEnabled(0))
// restores heap boxing, which the differential tests and bench_hotpath use as
// the before/after baseline; outputs are byte-identical either way.

// True unless MAZE_BSP_ARENA=0 (or a test forced a value).
bool ArenaEnabled();
// 1/0 forces the arena on/off for subsequent engines; -1 restores the env.
void SetArenaEnabled(int force);

// Process-wide allocation accounting, accumulated by engines at the end of
// each Run (bench_hotpath's allocation-count evidence).
struct ArenaCounters {
  uint64_t boxed_requests = 0;         // Messages boxed (either mode).
  uint64_t pool_reused = 0;            // Served from a free list.
  uint64_t pool_slab_allocations = 0;  // Heap allocations backing the pools.
  uint64_t pool_slab_bytes = 0;
  uint64_t heap_boxed = 0;             // Arena-off: one heap allocation each.
};
void ResetArenaCounters();
ArenaCounters GetArenaCounters();
namespace internal {
void AccumulateArenaCounters(const ArenaCounters& c);
}  // namespace internal

// Giraph deployment knobs.
struct BspOptions {
  int workers_per_node = 4;   // Of kHardwareThreadsPerNode.
  int superstep_phases = 1;   // §6.1.3 splitting; 100 in the paper's fix.
  static constexpr int kHardwareThreadsPerNode = 24;
};

template <typename Message>
class BspContext {
 public:
  void SendToOutNeighbors(const Message& m) {
    send_all_ = true;
    payload_ = m;
  }
  void SendTo(VertexId target, const Message& m) {
    targeted_.emplace_back(target, m);
  }
  int superstep() const { return superstep_; }

 private:
  template <typename V, typename M>
  friend class BspEngine;

  void Reset() {
    send_all_ = false;
    targeted_.clear();
  }

  bool send_all_ = false;
  Message payload_{};
  std::vector<std::pair<VertexId, Message>> targeted_;
  int superstep_ = 0;
};

// One boxed message: pool-backed by default, heap-backed when the arena is
// off (the deleter knows which — receivers treat both identically).
template <typename Message>
using Boxed = util::PoolPtr<Message>;

// Vertex program, dispatched virtually per vertex per superstep.
template <typename Value, typename Message>
class BspProgram {
 public:
  virtual ~BspProgram() = default;
  virtual void Init(VertexId v, const Graph& g, Value* value) = 0;
  // Consumes one batch of boxed messages addressed to v.
  virtual void Fold(VertexId v, Value* value,
                    const std::vector<Boxed<Message>>& batch) = 0;
  // Runs once per superstep per active vertex; returns true while the program
  // wants further supersteps (meaningful for all-active programs).
  virtual bool Compute(BspContext<Message>* ctx, VertexId v, Value* value) = 0;
  // Every vertex computed every superstep? (PageRank/CF: yes; BFS: no.)
  virtual bool AllActive() const { return true; }
  virtual size_t MessageWireBytes(const Message&) const {
    return sizeof(Message);
  }
};

template <typename Value, typename Message>
class BspEngine {
 public:
  BspEngine(const Graph& g, const rt::EngineConfig& config,
            const BspOptions& options)
      : g_(g),
        config_(config),
        options_(options),
        clock_(config.num_ranks, config.comm, config.trace, config.faults),
        part_(rt::Partition1D::VertexBalanced(g.num_vertices(),
                                              config.num_ranks)),
        arena_on_(ArenaEnabled()) {
    if (arena_on_) {
      pools_.reserve(config.num_ranks);
      for (int p = 0; p < config.num_ranks; ++p) {
        pools_.push_back(std::make_unique<util::FreeListPool<Message>>());
      }
    }
  }

  int Run(BspProgram<Value, Message>* program, int max_supersteps);

  const std::vector<Value>& values() const { return values_; }
  rt::RunMetrics Finish() {
    // 4 single-threaded workers on a 24-core node cap utilization at ~16%
    // (§5.4); uncapped worker counts saturate the node.
    double util = std::min(1.0, static_cast<double>(options_.workers_per_node) /
                                    BspOptions::kHardwareThreadsPerNode);
    return clock_.Finish(util);
  }
  uint64_t peak_buffer_bytes() const { return peak_buffer_bytes_; }

 private:
  // Per-message resident cost: payload + JVM object header + reference.
  static size_t BoxedBytes() { return sizeof(Message) + 16 + 8; }

  // Boxes one message on `pool` (the sender rank's arena) or the heap.
  template <typename M>
  static Boxed<Message> Box(util::FreeListPool<Message>* pool, M&& m) {
    return pool != nullptr ? pool->Make(std::forward<M>(m))
                           : util::HeapBoxed<Message>(std::forward<M>(m));
  }

  const Graph& g_;
  rt::EngineConfig config_;
  BspOptions options_;
  rt::SimClock clock_;
  rt::Partition1D part_;
  std::vector<Value> values_;
  uint64_t peak_buffer_bytes_ = 0;
  // Per-rank boxed-message arenas (empty when MAZE_BSP_ARENA=0).
  bool arena_on_;
  std::vector<std::unique_ptr<util::FreeListPool<Message>>> pools_;
  uint64_t boxed_requests_ = 0;  // Flush/checkpoint only: serialized contexts.
  // Outbox histogram handles, resolved once per engine instead of one registry
  // lookup per rank-flush (the Exchange/SimClock handle-caching fix, PR 2).
  obs::Histogram* outbox_messages_hist_ = nullptr;
  obs::Histogram* outbox_bytes_hist_ = nullptr;
};

template <typename Value, typename Message>
int BspEngine<Value, Message>::Run(BspProgram<Value, Message>* program,
                                   int max_supersteps) {
  const VertexId n = g_.num_vertices();
  const int ranks = config_.num_ranks;
  const int phases = std::max(1, options_.superstep_phases);
  // The worker cap: compute is charged as if run by `workers_per_node` of the
  // modeled node's hardware threads (the SimClock applies the host-to-node
  // factor; this is the extra workers-vs-node penalty).
  const double worker_scale =
      rt::EngineComputeScale(std::max(1, options_.workers_per_node));

  values_.resize(n);
  for (VertexId v = 0; v < n; ++v) program->Init(v, g_, &values_[v]);

  // Inboxes: fully buffered boxed messages per vertex. With phases == 1
  // (Giraph's default) a whole superstep's messages sit in memory at once. With
  // splitting, receivers fold pending messages every mini-step, so only one
  // mini-step's volume is ever live — this requires Fold to be commutative,
  // which all four study algorithms satisfy.
  std::vector<std::vector<Boxed<Message>>> inbox(n);
  Bitvector has_msg(n);
  uint64_t live_inbox_bytes = 0;

  // Folds every owned vertex's pending messages (phased mode's per-mini-step
  // drain). Returns bytes released.
  auto drain_rank = [&](int p) -> uint64_t {
    uint64_t released = 0;
    std::mutex mu;
    ParallelFor(part_.Size(p), 256, [&](uint64_t lo, uint64_t hi) {
      uint64_t local_released = 0;
      for (VertexId v = part_.Begin(p) + static_cast<VertexId>(lo);
           v < part_.Begin(p) + static_cast<VertexId>(hi); ++v) {
        if (inbox[v].empty()) continue;
        program->Fold(v, &values_[v], inbox[v]);
        local_released += inbox[v].size() * BoxedBytes();
        inbox[v].clear();
      }
      std::lock_guard<std::mutex> lock(mu);
      released += local_released;
    });
    return released;
  };

  // --- Checkpoint/restart (DESIGN.md §4c) -----------------------------------
  // Giraph-style superstep checkpointing: every `checkpoint_interval`
  // supersteps, snapshot the vertex values and the pending (undelivered)
  // messages — together they are the engine's complete run state, because the
  // programs themselves are stateless. A crash event restores the last
  // snapshot and replays; replay is deterministic (same inbox contents in the
  // same order), so the recovered run's output is byte-identical to the
  // fault-free run and only the modeled clock pays for the lost work.
  const rt::fault::FaultSpec& faults = clock_.fault_spec();
  const int ckpt_interval = faults.enabled ? faults.checkpoint_interval : 0;
  std::vector<rt::fault::CrashEvent> pending_crashes;
  if (faults.enabled) {
    for (const rt::fault::CrashEvent& ev : faults.crashes) {
      if (ev.rank < ranks) pending_crashes.push_back(ev);
    }
  }
  int ckpt_superstep = -1;
  // Vertex state snapshot allocates through the tracking allocator, so the
  // checkpoint's footprint lands in the engine-state watermark.
  std::vector<Value, obs::CountingAllocator<Value>> ckpt_values(
      obs::CountingAllocator<Value>(&clock_.arena(), 0,
                                    obs::MemPhase::kEngineState));
  std::vector<std::vector<Boxed<Message>>> ckpt_inbox;
  Bitvector ckpt_has_msg;
  uint64_t ckpt_inbox_bytes = 0;
  uint64_t ckpt_charged_msgbuf = 0;  // Boxed-copy bytes charged to the arena.

  // Models each rank writing its slice of the snapshot to stable storage
  // (taking) or reading it back (restoring); the stall extends the next
  // barrier exactly like Giraph's checkpoint writes extend a superstep.
  auto charge_snapshot_io = [&](uint64_t total_bytes, const char* what) {
    uint64_t per_rank = total_bytes / static_cast<uint64_t>(ranks) + 1;
    double seconds = faults.checkpoint_latency_seconds +
                     static_cast<double>(per_rank) / faults.checkpoint_bandwidth;
    for (int p = 0; p < ranks; ++p) {
      clock_.ChargeRecovery(p, seconds, per_rank, what);
    }
  };

  // Snapshot/restore copies run on the orchestration thread between barriers;
  // they box through rank 0's arena (handle hoisted out of the copy loops).
  util::FreeListPool<Message>* ckpt_pool =
      arena_on_ ? pools_[0].get() : nullptr;

  auto take_checkpoint = [&](int step) {
    ckpt_superstep = step;
    ckpt_values.assign(values_.begin(), values_.end());
    clock_.ReleaseMemory(0, obs::MemPhase::kMessageBuffers,
                         ckpt_charged_msgbuf);
    ckpt_inbox.clear();
    ckpt_inbox.resize(n);
    uint64_t copied_messages = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (inbox[v].empty()) continue;
      ckpt_inbox[v].reserve(inbox[v].size());
      for (const auto& m : inbox[v]) {
        ckpt_inbox[v].push_back(Box(ckpt_pool, *m));
      }
      copied_messages += inbox[v].size();
    }
    boxed_requests_ += copied_messages;
    ckpt_has_msg = has_msg;
    ckpt_inbox_bytes = live_inbox_bytes;
    ckpt_charged_msgbuf = copied_messages * BoxedBytes();
    clock_.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                        ckpt_charged_msgbuf);
    charge_snapshot_io(static_cast<uint64_t>(n) * sizeof(Value) +
                           ckpt_inbox_bytes,
                       "checkpoint");
    clock_.NoteCheckpoint();
  };

  auto restore_checkpoint = [&]() {
    values_.assign(ckpt_values.begin(), ckpt_values.end());
    uint64_t replayed_messages = 0;
    for (VertexId v = 0; v < n; ++v) {
      inbox[v].clear();
      if (!ckpt_inbox[v].empty()) {
        inbox[v].reserve(ckpt_inbox[v].size());
        for (const auto& m : ckpt_inbox[v]) {
          inbox[v].push_back(Box(ckpt_pool, *m));
        }
        replayed_messages += ckpt_inbox[v].size();
      }
    }
    boxed_requests_ += replayed_messages;
    has_msg = ckpt_has_msg;
    live_inbox_bytes = ckpt_inbox_bytes;
    charge_snapshot_io(static_cast<uint64_t>(n) * sizeof(Value) +
                           ckpt_inbox_bytes,
                       "restore");
    clock_.NoteRestart();
  };

  int superstep = 0;
  while (superstep < max_supersteps) {
    // Checkpoint before the crash check: a crash at superstep s restores the
    // snapshot taken at the same boundary (or an earlier one), never a newer
    // state, and a crash at superstep 0 is always recoverable.
    if (ckpt_interval > 0 && superstep % ckpt_interval == 0 &&
        superstep != ckpt_superstep) {
      take_checkpoint(superstep);
    }
    if (!pending_crashes.empty()) {
      auto it = std::find_if(
          pending_crashes.begin(), pending_crashes.end(),
          [&](const rt::fault::CrashEvent& ev) { return ev.step == superstep; });
      if (it != pending_crashes.end()) {
        pending_crashes.erase(it);
        MAZE_CHECK(ckpt_interval > 0 &&
                   "bspgraph: rank crash injected with checkpointing disabled "
                   "(set ckpt=K in the fault plan)");
        restore_checkpoint();
        superstep = ckpt_superstep;
        continue;
      }
    }
    bool wants_more = false;
    uint64_t messages_sent_this_superstep = 0;
    // Classic (unphased) BSP: messages become visible next superstep.
    std::vector<std::vector<Boxed<Message>>> next_inbox(phases == 1 ? n : 0);
    Bitvector next_has(phases == 1 ? n : 0);
    uint64_t next_inbox_bytes = 0;

    for (int phase = 0; phase < phases; ++phase) {
      rt::RankTurns turns;
      auto run_rank = [&](int p) {
        MAZE_OBS_SPAN("superstep", "bspgraph", p, superstep);
        rt::RankTimer t;
        // Phased mode: drain arrived messages before this mini-step's sends.
        if (phases > 1) live_inbox_bytes -= drain_rank(p);

        // The rank's arena handle, resolved once per rank per phase — the
        // inner send loop boxes straight off this pointer instead of
        // re-resolving pool/mode state per message.
        util::FreeListPool<Message>* pool =
            arena_on_ ? pools_[p].get() : nullptr;

        // Outbox for this rank & phase (with phases == 1 this is the
        // full-superstep buffering the paper criticizes).
        std::vector<std::pair<VertexId, Boxed<Message>>> outbox;
        std::mutex mu;
        bool rank_more = false;
        ParallelFor(part_.Size(p), 64, [&](uint64_t lo, uint64_t hi) {
          BspContext<Message> ctx;
          ctx.superstep_ = superstep;
          std::vector<std::pair<VertexId, Boxed<Message>>> local;
          bool local_more = false;
          for (VertexId v = part_.Begin(p) + static_cast<VertexId>(lo);
               v < part_.Begin(p) + static_cast<VertexId>(hi); ++v) {
            if (static_cast<int>(v % phases) != phase) continue;
            if (phases == 1 && has_msg.Test(v) && !inbox[v].empty()) {
              program->Fold(v, &values_[v], inbox[v]);
              inbox[v].clear();
            }
            if (!program->AllActive() && superstep > 0 && !has_msg.Test(v)) {
              continue;
            }
            ctx.Reset();
            bool more = program->Compute(&ctx, v, &values_[v]);
            local_more = local_more || more;
            if (ctx.send_all_) {
              for (VertexId dst : g_.OutNeighbors(v)) {
                local.emplace_back(dst, Box(pool, ctx.payload_));
              }
            }
            for (auto& [dst, m] : ctx.targeted_) {
              local.emplace_back(dst, Box(pool, std::move(m)));
            }
          }
          std::lock_guard<std::mutex> lock(mu);
          rank_more = rank_more || local_more;
          for (auto& e : local) outbox.push_back(std::move(e));
        });
        double compute_seconds = t.Seconds();
        clock_.RecordCompute(p, compute_seconds, worker_scale);
        obs::EmitSpanEndingNow("compute", "bspgraph", p, superstep,
                               compute_seconds);

        // Flush: charge the wire and deliver. Runs in rank order under the
        // turnstile — it mutates superstep-shared buffers and accounting.
        turns.Run(p, [&] {
          wants_more = wants_more || rank_more;
          boxed_requests_ += outbox.size();
          uint64_t outbox_bytes = outbox.size() * BoxedBytes();
          peak_buffer_bytes_ =
              std::max(peak_buffer_bytes_,
                       outbox_bytes + live_inbox_bytes + next_inbox_bytes);
          // The fully buffered outbox is live until delivery finishes: the
          // boxed-message blow-up shows in the per-step msgbuf watermark.
          clock_.ChargeMemory(p, obs::MemPhase::kMessageBuffers, outbox_bytes);

          rt::RankTimer deliver_timer;
          if (obs::Enabled()) {
            // Registry handles resolved once per engine (we're serialized
            // under the turnstile), not one map lookup per rank-flush.
            if (outbox_messages_hist_ == nullptr) {
              outbox_messages_hist_ =
                  &obs::GetHistogram("bspgraph.outbox_messages");
              outbox_bytes_hist_ = &obs::GetHistogram("bspgraph.outbox_bytes");
            }
            outbox_messages_hist_->Record(outbox.size());
            outbox_bytes_hist_->Record(outbox_bytes);
          }
          std::vector<uint64_t> bytes_to(ranks, 0);
          for (auto& [dst, m] : outbox) {
            int q = ranks == 1 ? 0 : part_.OwnerOf(dst);
            bytes_to[q] += 12 + program->MessageWireBytes(*m);
            if (phases == 1) {
              next_inbox_bytes += BoxedBytes();
              next_has.Set(dst);
              next_inbox[dst].push_back(std::move(m));
            } else {
              live_inbox_bytes += BoxedBytes();
              has_msg.Set(dst);
              inbox[dst].push_back(std::move(m));
            }
            ++messages_sent_this_superstep;
          }
          for (int q = 0; q < ranks; ++q) {
            if (q != p && bytes_to[q] > 0) {
              clock_.RecordSend(p, q, bytes_to[q], 1);
            }
          }
          clock_.ReleaseMemory(p, obs::MemPhase::kMessageBuffers, outbox_bytes);
          obs::EmitSpanEndingNow("deliver", "bspgraph", p, superstep,
                                 deliver_timer.Seconds());
        });
      };
      if (phases > 1) {
        // Phased supersteps pipeline messages *within* a superstep: a later
        // rank must observe earlier ranks' same-phase sends (and drain them),
        // so the schedule stays serial by construction.
        for (int p = 0; p < ranks; ++p) run_rank(p);
      } else {
        rt::ForEachRank(ranks, run_rank);
      }
      // Each mini-step is a (finer-grained) global synchronization.
      clock_.EndStep(/*overlap_comm=*/false);
    }
    peak_buffer_bytes_ =
        std::max(peak_buffer_bytes_, live_inbox_bytes + next_inbox_bytes);

    if (phases == 1) {
      inbox = std::move(next_inbox);
      has_msg = std::move(next_has);
      live_inbox_bytes = next_inbox_bytes;
    }

    bool any_messages = messages_sent_this_superstep > 0;
    ++superstep;  // Counts completed supersteps.
    if (program->AllActive()) {
      if (!wants_more) break;
    } else if (!any_messages && superstep > 1) {
      break;
    }
  }

  // The snapshot's boxed-message copies die with Run; their footprint stays in
  // the watermark.
  clock_.ReleaseMemory(0, obs::MemPhase::kMessageBuffers, ckpt_charged_msgbuf);

  // Fold this run's allocation behavior into the process-wide counters
  // (bench_hotpath's evidence that the arena collapses per-message mallocs
  // into O(slabs) heap allocations).
  {
    ArenaCounters c;
    c.boxed_requests = boxed_requests_;
    if (arena_on_) {
      for (const auto& pool : pools_) {
        auto s = pool->GetStats();
        c.pool_reused += s.reused;
        c.pool_slab_allocations += s.slab_allocations;
        c.pool_slab_bytes += s.slab_bytes;
      }
    } else {
      c.heap_boxed = boxed_requests_;
    }
    internal::AccumulateArenaCounters(c);
  }

  clock_.ChargeMemory(0, obs::MemPhase::kGraph,
                      g_.MemoryBytes() / std::max(1, ranks));
  clock_.ChargeMemory(0, obs::MemPhase::kEngineState,
                      static_cast<uint64_t>(n) * sizeof(Value));
  clock_.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                      peak_buffer_bytes_ / std::max(1, ranks));
  return superstep;
}

}  // namespace maze::bsp

#endif  // MAZE_BSP_ENGINE_H_
