#include "cli/cli.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>

#include "bench_support/report.h"
#include "bench_support/runner.h"
#include "core/datasets.h"
#include "core/degree.h"
#include "core/graph.h"
#include "core/io.h"
#include "core/ratings_gen.h"
#include "core/rmat.h"
#include "native/cc.h"
#include "obs/attrib.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/openmetrics.h"
#include "obs/resource.h"
#include "obs/telemetry.h"
#include "serve/script.h"
#include "serve/slo.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace maze::cli {
namespace {

// --- Flag parsing ---------------------------------------------------------------

// Splits "--flag value" pairs from positional arguments.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
};

StatusOr<ParsedArgs> Parse(const std::vector<std::string>& args) {
  ParsedArgs parsed;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      // Both "--flag=value" and "--flag value" are accepted.
      size_t eq = args[i].find('=');
      if (eq != std::string::npos) {
        parsed.flags[args[i].substr(2, eq - 2)] = args[i].substr(eq + 1);
        continue;
      }
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag " + args[i] + " needs a value");
      }
      parsed.flags[args[i].substr(2)] = args[i + 1];
      ++i;
    } else {
      parsed.positional.push_back(args[i]);
    }
  }
  return parsed;
}

std::string FlagOr(const ParsedArgs& parsed, const std::string& name,
                   const std::string& fallback) {
  auto it = parsed.flags.find(name);
  return it == parsed.flags.end() ? fallback : it->second;
}

StatusOr<int> IntFlagOr(const ParsedArgs& parsed, const std::string& name,
                        int fallback) {
  auto it = parsed.flags.find(name);
  if (it == parsed.flags.end()) return fallback;
  char* end = nullptr;
  long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer, got " +
                                   it->second);
  }
  return static_cast<int>(value);
}

StatusOr<double> DoubleFlagOr(const ParsedArgs& parsed, const std::string& name,
                              double fallback) {
  auto it = parsed.flags.find(name);
  if (it == parsed.flags.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number, got " +
                                   it->second);
  }
  return value;
}

// --- Format dispatch ---------------------------------------------------------------

enum class Format { kText, kBinary, kMatrixMarket };

StatusOr<Format> FormatOf(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    std::string s = suffix;
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".txt") || ends_with(".el")) return Format::kText;
  if (ends_with(".bin")) return Format::kBinary;
  if (ends_with(".mtx")) return Format::kMatrixMarket;
  return Status::InvalidArgument(
      "cannot infer format from '" + path + "' (use .txt, .bin, or .mtx)");
}

Status WriteAs(const EdgeList& edges, const std::string& path) {
  auto format = FormatOf(path);
  MAZE_RETURN_IF_ERROR(format.status());
  switch (format.value()) {
    case Format::kText:
      return WriteEdgeListText(edges, path);
    case Format::kBinary:
      return WriteEdgeListBinary(edges, path);
    case Format::kMatrixMarket:
      return WriteMatrixMarket(edges, path);
  }
  return Status::InvalidArgument("unreachable");
}

StatusOr<EdgeList> ReadAs(const std::string& path) {
  auto format = FormatOf(path);
  MAZE_RETURN_IF_ERROR(format.status());
  switch (format.value()) {
    case Format::kText:
      return ReadEdgeListText(path);
    case Format::kBinary:
      return ReadEdgeListBinary(path);
    case Format::kMatrixMarket:
      return ReadMatrixMarket(path);
  }
  return Status::InvalidArgument("unreachable");
}

// --- Commands ------------------------------------------------------------------------

Status CmdGenerate(const ParsedArgs& parsed, std::ostream& out) {
  std::string kind = FlagOr(parsed, "kind", "graph");
  auto scale = IntFlagOr(parsed, "scale", 14);
  MAZE_RETURN_IF_ERROR(scale.status());
  auto edge_factor = IntFlagOr(parsed, "edge-factor", 16);
  MAZE_RETURN_IF_ERROR(edge_factor.status());
  auto seed = IntFlagOr(parsed, "seed", 1);
  MAZE_RETURN_IF_ERROR(seed.status());
  std::string out_path = FlagOr(parsed, "out", "");
  if (out_path.empty()) return Status::InvalidArgument("--out is required");

  if (kind == "ratings") {
    // Ratings matrices only have a text form: "user item rating" lines.
    RatingsParams params;
    params.scale = scale.value();
    params.edge_factor = edge_factor.value();
    auto items = IntFlagOr(parsed, "items", 1024);
    MAZE_RETURN_IF_ERROR(items.status());
    params.num_items = static_cast<VertexId>(items.value());
    params.seed = static_cast<uint64_t>(seed.value());
    RatingsDataset ds = GenerateRatings(params);
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Status::IoError("cannot open " + out_path);
    std::fprintf(f, "# users: %u items: %u\n", ds.num_users, ds.num_items);
    for (const Rating& r : ds.ratings) {
      std::fprintf(f, "%u %u %.1f\n", r.user, r.item, r.value);
    }
    std::fclose(f);
    out << "wrote " << ds.ratings.size() << " ratings (" << ds.num_users
        << " users x " << ds.num_items << " items) to " << out_path << "\n";
    return Status::OK();
  }

  EdgeList edges;
  if (kind == "graph") {
    edges = GenerateRmat(RmatParams::Graph500(scale.value(), edge_factor.value(),
                                              seed.value()));
    edges.Deduplicate();
  } else if (kind == "triangles") {
    edges = GenerateRmat(RmatParams::TriangleCounting(
        scale.value(), edge_factor.value(), seed.value()));
    edges.OrientBySmallerId();
  } else {
    return Status::InvalidArgument("unknown --kind '" + kind +
                                   "' (graph|triangles|ratings)");
  }
  MAZE_RETURN_IF_ERROR(WriteAs(edges, out_path));
  out << "wrote " << edges.edges.size() << " edges over " << edges.num_vertices
      << " vertices to " << out_path << "\n";
  return Status::OK();
}

Status CmdConvert(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.positional.size() != 2) {
    return Status::InvalidArgument("usage: convert IN OUT");
  }
  auto edges = ReadAs(parsed.positional[0]);
  MAZE_RETURN_IF_ERROR(edges.status());
  MAZE_RETURN_IF_ERROR(WriteAs(edges.value(), parsed.positional[1]));
  out << "converted " << parsed.positional[0] << " -> " << parsed.positional[1]
      << " (" << edges.value().edges.size() << " edges)\n";
  return Status::OK();
}

Status CmdStats(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.positional.size() != 1) {
    return Status::InvalidArgument("usage: stats PATH");
  }
  auto edges = ReadAs(parsed.positional[0]);
  MAZE_RETURN_IF_ERROR(edges.status());
  Graph g = Graph::FromEdges(edges.value(), GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  TextTable table("Graph statistics: " + parsed.positional[0]);
  table.SetHeader({"Metric", "Value"});
  table.AddRow({"vertices", std::to_string(g.num_vertices())});
  table.AddRow({"edges", std::to_string(g.num_edges())});
  table.AddRow({"max out-degree", std::to_string(stats.max_degree)});
  table.AddRow({"mean out-degree", FormatDouble(stats.mean_degree, 2)});
  table.AddRow({"top-1% edge share", FormatDouble(stats.top1pct_edge_share, 3)});
  table.AddRow({"power-law exponent",
                FormatDouble(stats.power_law_exponent, 2)});
  out << table.Render();
  return Status::OK();
}

Status CmdDatasets(std::ostream& out) {
  TextTable table("Dataset registry (run --dataset NAME / serve `load`)");
  table.SetHeader({"Name", "Replaces", "Paper |V|", "Paper |E|", "Kind"});
  for (const DatasetInfo& info : AllDatasets()) {
    table.AddRow({info.name, info.paper_name,
                  std::to_string(info.paper_vertices),
                  std::to_string(info.paper_edges),
                  info.is_ratings ? "ratings (cf)" : "graph"});
  }
  out << table.Render();
  return Status::OK();
}

// --threads N resizes the process-wide scheduler before engine work starts.
// Absent flag = keep the MAZE_THREADS/hardware sizing.
Status ApplyThreadsFlag(const ParsedArgs& parsed, std::ostream& out) {
  if (parsed.flags.find("threads") == parsed.flags.end()) return Status::OK();
  auto threads = IntFlagOr(parsed, "threads", 0);
  MAZE_RETURN_IF_ERROR(threads.status());
  if (threads.value() < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  ThreadPool::Default().Resize(static_cast<unsigned>(threads.value()));
  out << "threads: " << ThreadPool::Default().num_threads() << "\n";
  return Status::OK();
}

// Runs one (algo, engine) pair and prints its summary + metrics line. When
// `report` is non-null, appends the run's resource row to it; when
// `attribution` is non-null, appends the run's critical-path decomposition
// (and annotates the live trace when spans are being recorded).
Status RunOnce(const std::string& algo, bench::EngineKind engine,
               const EdgeList& edges, const std::string& dataset,
               int iterations, bench::RunConfig config,
               obs::ResourceReport* report,
               obs::attrib::AttributionReport* attribution,
               std::ostream& out) {
  rt::RunMetrics metrics;
  std::string summary;
  if (algo == "pagerank") {
    rt::PageRankOptions opt;
    opt.iterations = iterations;
    auto r = bench::RunPageRank(engine, edges, opt, config);
    metrics = r.metrics;
    summary = "pagerank: " + std::to_string(r.iterations) + " iterations";
  } else if (algo == "bfs") {
    EdgeList sym = edges;
    sym.Symmetrize();
    auto r = bench::RunBfs(engine, sym, rt::BfsOptions{0}, config);
    metrics = r.metrics;
    uint64_t reached = 0;
    for (uint32_t d : r.distance) reached += d != kInfiniteDistance;
    summary = "bfs: reached " + std::to_string(reached) + " vertices in " +
              std::to_string(r.levels) + " levels";
  } else if (algo == "triangles") {
    EdgeList oriented = edges;
    oriented.OrientBySmallerId();
    if (engine == bench::EngineKind::kBspgraph) config.bsp_phases = 100;
    auto r = bench::RunTriangleCount(engine, oriented, {}, config);
    metrics = r.metrics;
    summary = "triangles: " + std::to_string(r.triangles);
  } else if (algo == "cc") {
    EdgeList sym = edges;
    sym.Symmetrize();
    auto r = bench::RunConnectedComponents(engine, sym, {}, config);
    metrics = r.metrics;
    summary = "cc: " + std::to_string(r.num_components) + " components";
  } else if (algo == "cf") {
    std::string name = dataset.empty() ? "netflix" : dataset;
    auto ratings = TryLoadRatingsDataset(name, -2);
    MAZE_RETURN_IF_ERROR(ratings.status());
    BipartiteGraph g = ratings.value().ToGraph();
    rt::CfOptions opt;
    opt.k = 16;
    opt.iterations = iterations;
    opt.method = rt::CfMethod::kSgd;
    if (engine == bench::EngineKind::kBspgraph) config.bsp_phases = 10;
    auto r = bench::RunCf(engine, g, opt, config);
    metrics = r.metrics;
    summary = "cf: rmse " + FormatDouble(r.final_rmse, 4);
  } else {
    return Status::InvalidArgument("unknown --algo '" + algo + "'");
  }

  out << summary << "\n";
  out << "engine=" << bench::EngineName(engine) << " ranks=" << config.num_ranks
      << " simulated_seconds=" << FormatDouble(metrics.elapsed_seconds, 5)
      << " net_bytes=" << metrics.bytes_sent
      << " peak_mem_bytes=" << metrics.memory_peak_bytes << "\n";
  if (config.faults.enabled) {
    out << "faults: injected=" << metrics.faults_injected
        << " retries=" << metrics.transport_retries
        << " dups=" << metrics.duplicated_frames
        << " checkpoints=" << metrics.checkpoints_written
        << " restarts=" << metrics.crash_restarts << " recovery_seconds="
        << FormatDouble(metrics.recovery_seconds, 5) << "\n";
  }
  std::string dataset_label =
      dataset.empty() ? (algo == "cf" ? "netflix" : "input") : dataset;
  if (attribution != nullptr || obs::Enabled()) {
    obs::attrib::Attribution attributed = obs::attrib::Attribute(metrics);
    // Overlay the critical path onto the live trace (no-op unless spans are
    // being recorded) even when no attribution report was requested.
    obs::attrib::AnnotateTrace(attributed, bench::EngineName(engine));
    if (attribution != nullptr) {
      obs::attrib::AttributionRow row;
      row.engine = bench::EngineName(engine);
      row.algorithm = algo;
      row.dataset = dataset_label;
      row.ranks = config.num_ranks;
      row.attribution = std::move(attributed);
      attribution->Add(std::move(row));
    }
  }
  if (report != nullptr) {
    bench::Measurement m;
    m.engine = engine;
    m.algorithm = algo;
    m.dataset = dataset_label;
    m.ranks = config.num_ranks;
    m.seconds = metrics.elapsed_seconds;
    m.metrics = std::move(metrics);
    report->Add(bench::ResourceRowFrom(m));
  }
  return Status::OK();
}

// The --metrics dump: the resource report, the critical-path attribution
// summary, and name-sorted counter and histogram snapshots, one JSON object.
Status WriteMetricsJson(const obs::ResourceReport& report,
                        const obs::attrib::AttributionReport& attribution,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "{\n\"resource\": " << report.ToJson() << ",\n\"attribution\": "
      << attribution.ToJson() << ",\n\"counters\": [\n";
  auto counters = obs::SnapshotCounters();
  for (size_t i = 0; i < counters.size(); ++i) {
    out << "  {\"name\": \"" << obs::JsonEscape(counters[i].name)
        << "\", \"value\": " << counters[i].value << "}"
        << (i + 1 < counters.size() ? "," : "") << "\n";
  }
  out << "],\n\"histograms\": [\n";
  auto hists = obs::SnapshotHistograms();
  for (size_t i = 0; i < hists.size(); ++i) {
    const auto& h = hists[i];
    out << "  {\"name\": \"" << obs::JsonEscape(h.name)
        << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"max\": " << h.max << ", \"p50\": " << h.p50
        << ", \"p95\": " << h.p95 << ", \"p99\": " << h.p99 << "}"
        << (i + 1 < hists.size() ? "," : "") << "\n";
  }
  out << "]\n}\n";
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status CmdRun(const ParsedArgs& parsed, std::ostream& out) {
  MAZE_RETURN_IF_ERROR(ApplyThreadsFlag(parsed, out));
  std::string algo = FlagOr(parsed, "algo", "pagerank");
  std::string engine_name = FlagOr(parsed, "engine", "native");
  auto ranks = IntFlagOr(parsed, "ranks", 1);
  MAZE_RETURN_IF_ERROR(ranks.status());
  auto iterations = IntFlagOr(parsed, "iterations", 10);
  MAZE_RETURN_IF_ERROR(iterations.status());
  std::string trace_path = FlagOr(parsed, "trace", "");
  std::string metrics_path = FlagOr(parsed, "metrics", "");
  std::string explain_path = FlagOr(parsed, "explain", "");

  // "--engine all" sweeps every engine that supports the rank count.
  std::vector<bench::EngineKind> engines;
  if (engine_name == "all") {
    engines = ranks.value() > 1 ? bench::MultiNodeEngines()
                                : bench::AllEngines();
  } else {
    auto engine = bench::EngineByName(engine_name);
    MAZE_RETURN_IF_ERROR(engine.status());
    engines.push_back(engine.value());
  }

  bench::RunConfig config;
  config.num_ranks = ranks.value();
  // The resource report wants the per-step timeline for its percentiles, and
  // attribution can only explain steps that were recorded.
  config.trace =
      !metrics_path.empty() || !trace_path.empty() || !explain_path.empty();

  // Fault plan: --faults=<spec> wins over the MAZE_FAULTS environment plan
  // (which RunConfig already defaulted to).
  std::string faults_spec = FlagOr(parsed, "faults", "");
  if (!faults_spec.empty()) {
    auto faults = rt::fault::ParseFaultSpec(faults_spec);
    MAZE_RETURN_IF_ERROR(faults.status());
    config.faults = std::move(faults).value();
  }

  // Input: an edge-list file or a registry stand-in.
  EdgeList edges;
  std::string input = FlagOr(parsed, "input", "");
  std::string dataset = FlagOr(parsed, "dataset", "");
  if (algo != "cf") {
    if (!input.empty()) {
      auto loaded = ReadAs(input);
      MAZE_RETURN_IF_ERROR(loaded.status());
      edges = std::move(loaded).value();
    } else if (!dataset.empty()) {
      auto loaded = TryLoadGraphDataset(dataset, -2);
      MAZE_RETURN_IF_ERROR(loaded.status());
      edges = std::move(loaded).value();
    } else {
      return Status::InvalidArgument("run needs --input or --dataset");
    }
  }

  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::ResetAll();
    obs::SetEnabled(true);
    obs::SetResourceEnabled(true);
  }

  obs::ResourceReport report;
  obs::attrib::AttributionReport attribution;
  bool want_attribution = !metrics_path.empty() || !explain_path.empty();
  for (bench::EngineKind engine : engines) {
    MAZE_RETURN_IF_ERROR(RunOnce(algo, engine, edges, dataset,
                                 iterations.value(), config,
                                 metrics_path.empty() ? nullptr : &report,
                                 want_attribution ? &attribution : nullptr,
                                 out));
  }

  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::SetEnabled(false);
    obs::SetResourceEnabled(false);
  }
  if (!trace_path.empty()) {
    MAZE_RETURN_IF_ERROR(obs::WriteChromeTrace(trace_path));
    out << "trace: wrote " << trace_path
        << " (load in https://ui.perfetto.dev or chrome://tracing)\n";
    out << obs::SummaryText();
  }
  if (!metrics_path.empty()) {
    MAZE_RETURN_IF_ERROR(WriteMetricsJson(report, attribution, metrics_path));
    out << "metrics: wrote " << metrics_path << "\n";
    out << report.ToMarkdown();
  }
  if (!explain_path.empty()) {
    std::ofstream f(explain_path);
    if (!f) return Status::IoError("cannot open " + explain_path);
    f << attribution.ToJson() << "\n";
    if (!f.good()) return Status::IoError("write failed for " + explain_path);
    out << "explain: wrote " << explain_path << "\n";
    out << attribution.ToMarkdown();
  }
  return Status::OK();
}

// The serve --metrics dump: the final ServiceReport plus name-sorted
// counter/gauge/histogram snapshots and the telemetry time-series rings, one
// JSON object — everything the live endpoint could have served, persisted at
// exit for offline analysis.
Status WriteServeMetricsJson(const serve::ServiceReport& report,
                             const obs::TelemetryRegistry& telemetry,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "{\n\"report\": " << report.ToJson() << ",\n\"counters\": [\n";
  auto counters = obs::SnapshotCounters();
  for (size_t i = 0; i < counters.size(); ++i) {
    out << "  {\"name\": \"" << obs::JsonEscape(counters[i].name)
        << "\", \"value\": " << counters[i].value << "}"
        << (i + 1 < counters.size() ? "," : "") << "\n";
  }
  out << "],\n\"gauges\": [\n";
  auto gauges = obs::SnapshotGauges();
  for (size_t i = 0; i < gauges.size(); ++i) {
    out << "  {\"name\": \"" << obs::JsonEscape(gauges[i].name)
        << "\", \"value\": " << gauges[i].value << "}"
        << (i + 1 < gauges.size() ? "," : "") << "\n";
  }
  out << "],\n\"histograms\": [\n";
  auto hists = obs::SnapshotHistograms();
  for (size_t i = 0; i < hists.size(); ++i) {
    const auto& h = hists[i];
    out << "  {\"name\": \"" << obs::JsonEscape(h.name)
        << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"max\": " << h.max << ", \"p50\": " << h.p50
        << ", \"p95\": " << h.p95 << ", \"p99\": " << h.p99 << "}"
        << (i + 1 < hists.size() ? "," : "") << "\n";
  }
  out << "],\n\"telemetry\": {\"scrapes\": " << telemetry.scrapes()
      << ",\n\"counters\": [\n";
  auto counter_series = telemetry.Counters();
  for (size_t i = 0; i < counter_series.size(); ++i) {
    const auto& s = counter_series[i];
    out << "  {\"name\": \"" << obs::JsonEscape(s.name) << "\", \"windows\": [";
    for (size_t w = 0; w < s.windows.size(); ++w) {
      out << (w == 0 ? "" : ", ") << "{\"scrape\": " << s.windows[w].scrape
          << ", \"value\": " << s.windows[w].value
          << ", \"delta\": " << s.windows[w].delta << "}";
    }
    out << "]}" << (i + 1 < counter_series.size() ? "," : "") << "\n";
  }
  out << "],\n\"gauges\": [\n";
  auto gauge_series = telemetry.Gauges();
  for (size_t i = 0; i < gauge_series.size(); ++i) {
    const auto& s = gauge_series[i];
    out << "  {\"name\": \"" << obs::JsonEscape(s.name) << "\", \"windows\": [";
    for (size_t w = 0; w < s.windows.size(); ++w) {
      out << (w == 0 ? "" : ", ") << "{\"scrape\": " << s.windows[w].scrape
          << ", \"value\": " << s.windows[w].value
          << ", \"delta\": " << s.windows[w].delta << "}";
    }
    out << "]}" << (i + 1 < gauge_series.size() ? "," : "") << "\n";
  }
  out << "],\n\"histograms\": [\n";
  auto hist_series = telemetry.Histograms();
  for (size_t i = 0; i < hist_series.size(); ++i) {
    const auto& s = hist_series[i];
    out << "  {\"name\": \"" << obs::JsonEscape(s.name) << "\", \"windows\": [";
    for (size_t w = 0; w < s.windows.size(); ++w) {
      const auto& win = s.windows[w];
      out << (w == 0 ? "" : ", ") << "{\"scrape\": " << win.scrape
          << ", \"count\": " << win.count << ", \"sum\": " << win.sum
          << ", \"delta_count\": " << win.delta_count
          << ", \"delta_sum\": " << win.delta_sum
          << ", \"delta_p50\": " << win.delta_p50
          << ", \"delta_p99\": " << win.delta_p99
          << ", \"delta_max\": " << win.delta_max << "}";
    }
    out << "]}" << (i + 1 < hist_series.size() ? "," : "") << "\n";
  }
  out << "]\n}\n}\n";
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status CmdServe(const ParsedArgs& parsed, std::ostream& out) {
  MAZE_RETURN_IF_ERROR(ApplyThreadsFlag(parsed, out));
  std::string script_path = FlagOr(parsed, "script", "");
  if (script_path.empty()) {
    return Status::InvalidArgument("serve needs --script PATH");
  }

  serve::ScriptOptions options;
  auto workers = IntFlagOr(parsed, "workers", options.service.workers);
  MAZE_RETURN_IF_ERROR(workers.status());
  if (workers.value() < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  options.service.workers = workers.value();
  auto queue_depth = IntFlagOr(parsed, "queue-depth",
                               static_cast<int>(options.service.queue_depth));
  MAZE_RETURN_IF_ERROR(queue_depth.status());
  if (queue_depth.value() < 1) {
    return Status::InvalidArgument("--queue-depth must be >= 1");
  }
  options.service.queue_depth = static_cast<size_t>(queue_depth.value());
  auto cache_bytes = IntFlagOr(parsed, "cache-bytes",
                               static_cast<int>(options.service.cache_bytes));
  MAZE_RETURN_IF_ERROR(cache_bytes.status());
  if (cache_bytes.value() < 0) {
    return Status::InvalidArgument("--cache-bytes must be >= 0");
  }
  options.service.cache_bytes = static_cast<size_t>(cache_bytes.value());
  auto scale_adjust =
      IntFlagOr(parsed, "scale-adjust", options.default_scale_adjust);
  MAZE_RETURN_IF_ERROR(scale_adjust.status());
  options.default_scale_adjust = scale_adjust.value();

  auto listen = IntFlagOr(parsed, "listen", -1);
  MAZE_RETURN_IF_ERROR(listen.status());
  if (parsed.flags.count("listen") != 0 &&
      (listen.value() < 0 || listen.value() > 65535)) {
    return Status::InvalidArgument("--listen must be a port in [0, 65535]");
  }
  auto slo_p99 = DoubleFlagOr(parsed, "slo-p99-ms", 0.0);
  MAZE_RETURN_IF_ERROR(slo_p99.status());
  if (parsed.flags.count("slo-p99-ms") != 0 && slo_p99.value() <= 0) {
    return Status::InvalidArgument("--slo-p99-ms must be > 0");
  }
  auto slo_burn = DoubleFlagOr(parsed, "slo-burn", 2.0);
  MAZE_RETURN_IF_ERROR(slo_burn.status());
  if (slo_burn.value() <= 0) {
    return Status::InvalidArgument("--slo-burn must be > 0");
  }
  std::string slo_dump = FlagOr(parsed, "slo-dump", "");
  std::string slo_perfetto = FlagOr(parsed, "slo-perfetto", "");
  if ((!slo_dump.empty() || !slo_perfetto.empty()) &&
      parsed.flags.count("slo-p99-ms") == 0) {
    return Status::InvalidArgument(
        "--slo-dump/--slo-perfetto need --slo-p99-ms (no watchdog to trip)");
  }

  std::ifstream script(script_path);
  if (!script) return Status::IoError("cannot open " + script_path);

  serve::Service service(options.service);

  // MAZE_TELEMETRY configures the scrape interval, ring depth, file sink, and
  // (optionally) the endpoint port; --listen overrides the port. Port 0 binds
  // an ephemeral port, printed below so callers can find it.
  obs::TelemetrySpec spec;
  const char* env = std::getenv("MAZE_TELEMETRY");
  if (env != nullptr && *env != '\0') {
    auto parsed_spec = obs::ParseTelemetrySpec(env);
    MAZE_RETURN_IF_ERROR(parsed_spec.status());
    spec = parsed_spec.value();
  }
  if (listen.value() >= 0) spec.listen_port = listen.value();
  obs::TelemetryRegistry telemetry(spec.options);
  std::unique_ptr<obs::MetricsEndpoint> endpoint;
  if (spec.listen_port >= 0) {
    endpoint = std::make_unique<obs::MetricsEndpoint>(&telemetry);
    endpoint->SetHealthz([&service] {
      return "{\"status\": \"ok\", \"degradation\": " +
             std::to_string(service.degradation()) + "}";
    });
    endpoint->SetReport([&service] { return service.Report().ToJson(); });
    MAZE_RETURN_IF_ERROR(endpoint->Start(spec.listen_port));
    out << "telemetry: listening on 127.0.0.1:" << endpoint->port() << "\n";
  }
  // Background scraping only when something consumes it live; script `scrape`
  // commands still work without the thread.
  if (endpoint != nullptr || !spec.options.file_sink.empty()) telemetry.Start();

  std::unique_ptr<serve::SloWatchdog> watchdog;
  if (parsed.flags.count("slo-p99-ms") != 0) {
    serve::SloOptions slo;
    slo.p99_target_ms = slo_p99.value();
    slo.burn_threshold = slo_burn.value();
    slo.dump_path = slo_dump;
    slo.perfetto_path = slo_perfetto;
    // Events go to stderr: background scrapes emit from the telemetry thread,
    // and stderr is a synchronized standard stream while `out` may not be.
    watchdog = std::make_unique<serve::SloWatchdog>(slo, &telemetry, &service,
                                                    &std::cerr);
  }

  serve::ServiceReport report;
  Status run =
      serve::RunServeScript(service, script, options, out, &report, &telemetry);
  watchdog.reset();  // Unhooks before the registry stops.
  if (endpoint != nullptr) endpoint->Stop();
  telemetry.Stop();
  MAZE_RETURN_IF_ERROR(run);

  std::string report_path = FlagOr(parsed, "report", "");
  if (!report_path.empty()) {
    std::ofstream f(report_path);
    if (!f) return Status::IoError("cannot open " + report_path);
    f << report.ToJson() << "\n";
    if (!f.good()) return Status::IoError("write failed for " + report_path);
    out << "report: wrote " << report_path << "\n";
  }
  std::string metrics_path = FlagOr(parsed, "metrics", "");
  if (!metrics_path.empty()) {
    MAZE_RETURN_IF_ERROR(WriteServeMetricsJson(report, telemetry, metrics_path));
    out << "metrics: wrote " << metrics_path << "\n";
  }
  return Status::OK();
}

}  // namespace

Status RunCommand(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) {
    return Status::InvalidArgument(
        "usage: maze_cli generate|convert|stats|datasets|run|serve ...");
  }
  auto parsed = Parse(std::vector<std::string>(args.begin() + 1, args.end()));
  MAZE_RETURN_IF_ERROR(parsed.status());
  const std::string& command = args[0];
  if (command == "generate") return CmdGenerate(parsed.value(), out);
  if (command == "convert") return CmdConvert(parsed.value(), out);
  if (command == "stats") return CmdStats(parsed.value(), out);
  if (command == "datasets") return CmdDatasets(out);
  if (command == "run") return CmdRun(parsed.value(), out);
  if (command == "serve") return CmdServe(parsed.value(), out);
  return Status::InvalidArgument("unknown command '" + command + "'");
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Status status = RunCommand(args, std::cout);
  if (!status.ok()) {
    std::cerr << "maze_cli: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace maze::cli
