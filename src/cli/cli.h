// maze_cli: command-line front end over the library — generate datasets,
// convert between graph formats, inspect degree statistics, and run any
// algorithm on any engine. Implemented as a Status-returning library function
// so the command surface is unit-testable; examples/maze_cli.cpp is the thin
// binary wrapper.
//
// Commands:
//   generate --kind graph|triangles|ratings --scale N [--edge-factor N]
//            [--seed S] [--items N] --out PATH          (.txt/.bin/.mtx by ext)
//   convert IN OUT                                       (formats by extension)
//   stats PATH                                           (degree distribution)
//   datasets                 (the dataset registry; every listed name resolves
//                             through run --dataset / serve scripts)
//   run --algo pagerank|bfs|triangles|cf|cc --engine native|vertexlab|matblas|
//       datalite|taskflow|bspgraph|all [--ranks N] [--iterations N]
//       (--input PATH | --dataset NAME) [--faults SPEC] [--threads N]
//       [--trace PATH]    Chrome/Perfetto trace, incl. the critical-path track
//       [--metrics PATH]  resource + attribution + counters/histograms JSON
//       [--explain PATH]  critical-path attribution JSON; prints the markdown
//                         per-engine table (who is network-bound and why)
//   serve --script PATH [--queue-depth N] [--workers N] [--cache-bytes N]
//         [--scale-adjust K] [--threads N] [--report PATH]
//       Runs a serve script (serve/script.h grammar) against a fresh
//       maze::serve::Service: snapshot loads/epoch bumps, concurrent
//       run/point/top-k requests through the bounded admission queue, and the
//       service report (markdown to stdout, JSON via --report).
//
// --threads N resizes the process-wide task scheduler (ThreadPool::Default())
// before any engine work runs; the MAZE_THREADS environment variable remains
// the default when the flag is absent.
#ifndef MAZE_CLI_CLI_H_
#define MAZE_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace maze::cli {

// Executes one command line (argv without the program name). Human-readable
// output goes to `out`; errors come back as Status.
Status RunCommand(const std::vector<std::string>& args, std::ostream& out);

// Binary entry point: maps RunCommand onto argc/argv and exit codes.
int Main(int argc, char** argv);

}  // namespace maze::cli

#endif  // MAZE_CLI_CLI_H_
