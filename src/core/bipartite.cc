#include "core/bipartite.h"

#include <algorithm>

namespace maze {

BipartiteGraph BipartiteGraph::FromRatings(VertexId num_users, VertexId num_items,
                                           const std::vector<Rating>& ratings) {
  BipartiteGraph g;
  g.num_users_ = num_users;
  g.num_items_ = num_items;
  g.num_ratings_ = ratings.size();

  g.user_offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
  g.item_offsets_.assign(static_cast<size_t>(num_items) + 1, 0);
  for (const Rating& r : ratings) {
    MAZE_CHECK(r.user < num_users);
    MAZE_CHECK(r.item < num_items);
    ++g.user_offsets_[r.user + 1];
    ++g.item_offsets_[r.item + 1];
  }
  for (size_t i = 1; i < g.user_offsets_.size(); ++i) {
    g.user_offsets_[i] += g.user_offsets_[i - 1];
  }
  for (size_t i = 1; i < g.item_offsets_.size(); ++i) {
    g.item_offsets_[i] += g.item_offsets_[i - 1];
  }

  g.user_adj_.resize(ratings.size());
  g.item_adj_.resize(ratings.size());
  std::vector<EdgeId> ucur(g.user_offsets_.begin(), g.user_offsets_.end() - 1);
  std::vector<EdgeId> icur(g.item_offsets_.begin(), g.item_offsets_.end() - 1);
  for (const Rating& r : ratings) {
    g.user_adj_[ucur[r.user]++] = Entry{r.item, r.value};
    g.item_adj_[icur[r.item]++] = Entry{r.user, r.value};
  }
  // Sort adjacency lists by opposite-side id so engines can binary-search for an
  // edge's rating.
  auto by_id = [](const Entry& a, const Entry& b) { return a.id < b.id; };
  for (VertexId u = 0; u < num_users; ++u) {
    std::sort(g.user_adj_.begin() + static_cast<ptrdiff_t>(g.user_offsets_[u]),
              g.user_adj_.begin() + static_cast<ptrdiff_t>(g.user_offsets_[u + 1]),
              by_id);
  }
  for (VertexId v = 0; v < num_items; ++v) {
    std::sort(g.item_adj_.begin() + static_cast<ptrdiff_t>(g.item_offsets_[v]),
              g.item_adj_.begin() + static_cast<ptrdiff_t>(g.item_offsets_[v + 1]),
              by_id);
  }
  return g;
}

}  // namespace maze
