// Bipartite ratings graph for collaborative filtering (Figure 1 of the paper):
// users on one side, items on the other, edge weights are ratings.
#ifndef MAZE_CORE_BIPARTITE_H_
#define MAZE_CORE_BIPARTITE_H_

#include <span>
#include <vector>

#include "core/types.h"
#include "util/check.h"

namespace maze {

// One (user, item, rating) observation.
struct Rating {
  VertexId user;
  VertexId item;
  float value;
};

// Immutable CSR over both sides of the bipartite ratings graph: user -> (item,
// rating) and item -> (user, rating). Both directions are needed because GD/SGD
// update user vectors from item vectors and vice versa.
class BipartiteGraph {
 public:
  // Entry in an adjacency list: the opposite-side vertex and the edge weight.
  struct Entry {
    VertexId id;
    float rating;
  };

  BipartiteGraph() = default;

  static BipartiteGraph FromRatings(VertexId num_users, VertexId num_items,
                                    const std::vector<Rating>& ratings);

  VertexId num_users() const { return num_users_; }
  VertexId num_items() const { return num_items_; }
  EdgeId num_ratings() const { return num_ratings_; }

  std::span<const Entry> UserRatings(VertexId u) const {
    MAZE_DCHECK(u < num_users_);
    return {user_adj_.data() + user_offsets_[u],
            user_adj_.data() + user_offsets_[u + 1]};
  }

  std::span<const Entry> ItemRatings(VertexId v) const {
    MAZE_DCHECK(v < num_items_);
    return {item_adj_.data() + item_offsets_[v],
            item_adj_.data() + item_offsets_[v + 1]};
  }

  EdgeId UserDegree(VertexId u) const {
    return user_offsets_[u + 1] - user_offsets_[u];
  }
  EdgeId ItemDegree(VertexId v) const {
    return item_offsets_[v + 1] - item_offsets_[v];
  }

  size_t MemoryBytes() const {
    return user_offsets_.size() * sizeof(EdgeId) + user_adj_.size() * sizeof(Entry) +
           item_offsets_.size() * sizeof(EdgeId) + item_adj_.size() * sizeof(Entry);
  }

 private:
  VertexId num_users_ = 0;
  VertexId num_items_ = 0;
  EdgeId num_ratings_ = 0;
  std::vector<EdgeId> user_offsets_;
  std::vector<Entry> user_adj_;
  std::vector<EdgeId> item_offsets_;
  std::vector<Entry> item_adj_;
};

}  // namespace maze

#endif  // MAZE_CORE_BIPARTITE_H_
