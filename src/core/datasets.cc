#include "core/datasets.h"

#include "core/rmat.h"
#include "util/check.h"

namespace maze {

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo>& datasets = *new std::vector<DatasetInfo>{
      {"facebook", "Facebook [34]", 2937612, 41919708,
       "Facebook user interaction graph stand-in (RMAT, mild skew)", false},
      {"wikipedia", "Wikipedia [14]", 3566908, 84751827,
       "Wikipedia link graph stand-in", false},
      {"livejournal", "LiveJournal [14]", 4847571, 85702475,
       "LiveJournal follower graph stand-in", false},
      {"netflix", "Netflix [9]", 480189 + 17770, 99072112,
       "Netflix Prize ratings stand-in (folded power-law bipartite)", true},
      {"twitter", "Twitter [20]", 61578415, 1468365182,
       "Twitter follower graph stand-in (largest graph; multi-node only)", false},
      {"yahoomusic", "Yahoo Music [7]", 1000990 + 624961, 252800275,
       "Yahoo! KDDCup 2011 music ratings stand-in", true},
      {"rmat", "Synthetic Graph500 [23]", 536870912, 8589926431,
       "Graph500 RMAT synthetic (the paper's scaling workload)", false},
      {"rmat_cf", "Synthetic Collaborative Filtering", 63367472 + 1342176,
       16742847256ull, "Synthetic power-law ratings (the paper's CF scaling "
       "workload)", true},
  };
  return datasets;
}

const DatasetInfo* FindDataset(const std::string& name) {
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

namespace {

// "facebook, wikipedia, ..." — the registry names of one kind, for messages.
std::string NamesOfKind(bool is_ratings) {
  std::string names;
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.is_ratings != is_ratings) continue;
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

}  // namespace

StatusOr<EdgeList> TryLoadGraphDataset(const std::string& name,
                                       int scale_adjust) {
  const DatasetInfo* info = FindDataset(name);
  if (info == nullptr) {
    return Status::NotFound("unknown dataset '" + name + "' (graph datasets: " +
                            NamesOfKind(false) + ")");
  }
  if (info->is_ratings) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' is a ratings dataset (graph datasets: " +
                                   NamesOfKind(false) + ")");
  }
  return LoadGraphDataset(name, scale_adjust);
}

StatusOr<RatingsDataset> TryLoadRatingsDataset(const std::string& name,
                                               int scale_adjust) {
  const DatasetInfo* info = FindDataset(name);
  if (info == nullptr) {
    return Status::NotFound("unknown dataset '" + name +
                            "' (ratings datasets: " + NamesOfKind(true) + ")");
  }
  if (!info->is_ratings) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' is a graph dataset (ratings datasets: " +
                                   NamesOfKind(true) + ")");
  }
  return LoadRatingsDataset(name, scale_adjust);
}

EdgeList LoadGraphDataset(const std::string& name, int scale_adjust) {
  // Stand-in parameters: scale/edge-factor chosen so vertex:edge ratios track the
  // real datasets at ~1/32 size; seeds differ per dataset so the graphs are not
  // identical to each other.
  RmatParams params;
  if (name == "facebook") {
    params = RmatParams::Graph500(17 + scale_adjust, 14, /*seed=*/101);
    params.a = 0.55;  // Facebook's interaction graph is less hub-dominated.
    params.b = params.c = 0.18;
  } else if (name == "wikipedia") {
    params = RmatParams::Graph500(17 + scale_adjust, 24, /*seed=*/202);
  } else if (name == "livejournal") {
    params = RmatParams::Graph500(17 + scale_adjust, 18, /*seed=*/303);
  } else if (name == "twitter") {
    params = RmatParams::Graph500(19 + scale_adjust, 24, /*seed=*/404);
    params.a = 0.60;  // Twitter's follower graph is extremely skewed.
    params.b = params.c = 0.17;
  } else if (name == "rmat") {
    params = RmatParams::Graph500(18 + scale_adjust, 16, /*seed=*/505);
  } else {
    MAZE_CHECK(false && "unknown graph dataset");
  }
  EdgeList edges = GenerateRmat(params);
  edges.Deduplicate();
  return edges;
}

RatingsDataset LoadRatingsDataset(const std::string& name, int scale_adjust) {
  RatingsParams params;
  if (name == "netflix") {
    // Netflix: 480K users x 17.8K movies, 99M ratings -> 1/32 scale stand-in.
    params.scale = 15 + scale_adjust;
    params.edge_factor = 24;
    params.num_items = 556;
    params.seed = 606;
  } else if (name == "yahoomusic") {
    // Yahoo Music: 1M users x 625K items, 253M ratings.
    params.scale = 16 + scale_adjust;
    params.edge_factor = 16;
    params.num_items = 4096;
    params.seed = 707;
  } else if (name == "rmat_cf") {
    params.scale = 16 + scale_adjust;
    params.edge_factor = 16;
    params.num_items = 2048;
    params.seed = 808;
  } else {
    MAZE_CHECK(false && "unknown ratings dataset");
  }
  return GenerateRatings(params);
}

std::vector<std::string> SingleNodeGraphDatasets() {
  return {"livejournal", "facebook", "wikipedia", "rmat"};
}

}  // namespace maze
