// Registry of dataset stand-ins for the paper's real-world graphs (Table 3).
//
// The original datasets (Facebook user interactions, Wikipedia links, LiveJournal
// follows, Twitter follows, Netflix and Yahoo! Music ratings) are not distributable
// with this repository, so each is replaced by a deterministic synthetic graph from
// the paper's own RMAT/ratings generators, parameterized to match the dataset's
// skew and its vertex:edge ratio at a documented scale-down factor (default ~32x,
// so every dataset fits and runs quickly on one machine). Section 5 of the paper
// itself validates that RMAT synthetics track the real datasets' framework
// rankings, which is the property the reproduction depends on.
#ifndef MAZE_CORE_DATASETS_H_
#define MAZE_CORE_DATASETS_H_

#include <string>
#include <vector>

#include "core/edge_list.h"
#include "core/ratings_gen.h"
#include "util/status.h"

namespace maze {

// Descriptor tying a stand-in to the real dataset it replaces.
struct DatasetInfo {
  std::string name;          // Registry key, e.g. "facebook".
  std::string paper_name;    // As listed in Table 3.
  uint64_t paper_vertices;   // Real dataset size, for the Table 3 bench.
  uint64_t paper_edges;
  std::string description;
  bool is_ratings;           // Bipartite ratings dataset vs plain graph.
};

// All registered stand-ins, in Table 3 order.
const std::vector<DatasetInfo>& AllDatasets();

// Registry lookup: the entry named `name`, or nullptr when unregistered.
// Every entry in AllDatasets() resolves through the matching loader below
// (TryLoadGraphDataset when !is_ratings, TryLoadRatingsDataset otherwise);
// datasets_test asserts this registry/loader agreement.
const DatasetInfo* FindDataset(const std::string& name);

// Status-returning loaders for callers handling user-supplied names (CLI,
// serve): kNotFound for unregistered names, kInvalidArgument when the name is
// registered but of the other kind.
StatusOr<EdgeList> TryLoadGraphDataset(const std::string& name,
                                       int scale_adjust = 0);
StatusOr<RatingsDataset> TryLoadRatingsDataset(const std::string& name,
                                               int scale_adjust = 0);

// Graph stand-ins: "facebook", "wikipedia", "livejournal", "twitter", "rmat".
// `scale_adjust` shifts the RMAT scale (e.g. -2 quarters the vertex count) so test
// suites can run tiny instances. The returned list is deduplicated and directed.
EdgeList LoadGraphDataset(const std::string& name, int scale_adjust = 0);

// Ratings stand-ins: "netflix", "yahoomusic".
RatingsDataset LoadRatingsDataset(const std::string& name, int scale_adjust = 0);

// Names of the single-node graph datasets used by Figure 3 (a,b,d).
std::vector<std::string> SingleNodeGraphDatasets();

}  // namespace maze

#endif  // MAZE_CORE_DATASETS_H_
