#include "core/degree.h"

#include <algorithm>

#include "util/stats.h"

namespace maze {

DegreeStats ComputeOutDegreeStats(const Graph& g) {
  DegreeStats stats;
  VertexId n = g.num_vertices();
  if (n == 0) return stats;

  std::vector<uint64_t> degrees(n);
  for (VertexId u = 0; u < n; ++u) {
    degrees[u] = g.OutDegree(u);
    stats.max_degree = std::max(stats.max_degree, degrees[u]);
  }
  stats.mean_degree = static_cast<double>(g.num_edges()) / n;

  stats.histogram.assign(stats.max_degree + 1, 0);
  for (uint64_t d : degrees) ++stats.histogram[d];
  stats.power_law_exponent = PowerLawExponent(stats.histogram);

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  size_t top = std::max<size_t>(1, n / 100);
  uint64_t top_edges = 0;
  for (size_t i = 0; i < top; ++i) top_edges += degrees[i];
  stats.top1pct_edge_share =
      g.num_edges() == 0
          ? 0.0
          : static_cast<double>(top_edges) / static_cast<double>(g.num_edges());
  return stats;
}

}  // namespace maze
