// Degree-distribution utilities: validates that generated graphs have the skewed
// power-law shape the paper's study depends on (Section 4.1).
#ifndef MAZE_CORE_DEGREE_H_
#define MAZE_CORE_DEGREE_H_

#include <cstdint>
#include <vector>

#include "core/graph.h"

namespace maze {

// Summary of an out-degree distribution.
struct DegreeStats {
  uint64_t max_degree = 0;
  double mean_degree = 0.0;
  double power_law_exponent = 0.0;  // From log-log regression on the histogram.
  // Fraction of all edges owned by the top 1% highest-degree vertices — the
  // "skewed towards a few items" property from the abstract.
  double top1pct_edge_share = 0.0;
  std::vector<uint64_t> histogram;  // histogram[d] = #vertices with out-degree d.
};

DegreeStats ComputeOutDegreeStats(const Graph& g);

}  // namespace maze

#endif  // MAZE_CORE_DEGREE_H_
