#include "core/edge_list.h"

#include <algorithm>

namespace maze {

void EdgeList::Deduplicate() {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.src == e.dst; }),
              edges.end());
}

void EdgeList::Symmetrize() {
  size_t original = edges.size();
  edges.reserve(original * 2);
  for (size_t i = 0; i < original; ++i) {
    edges.push_back(Edge{edges[i].dst, edges[i].src});
  }
  Deduplicate();
}

void EdgeList::OrientBySmallerId() {
  for (Edge& e : edges) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  Deduplicate();
}

}  // namespace maze
