// EdgeList: the interchange format between generators, I/O, and graph builders.
#ifndef MAZE_CORE_EDGE_LIST_H_
#define MAZE_CORE_EDGE_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace maze {

// A single directed edge (or an undirected edge stored once as (min, max)).
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend auto operator<=>(const Edge& a, const Edge& b) = default;
};

// Unordered collection of edges over vertices [0, num_vertices).
// Generators may emit duplicates and self-loops; builders normalize.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;

  size_t size() const { return edges.size(); }

  // Removes self-loops and exact duplicates (sorts edges as a side effect).
  void Deduplicate();

  // Adds the reverse of every edge, making the list symmetric (undirected usage).
  void Symmetrize();

  // Keeps only edges with src < dst: the paper's triangle-counting preprocessing
  // ("assign a direction to edges going from the vertex with smaller id to one
  // with larger id to avoid cycles").
  void OrientBySmallerId();
};

}  // namespace maze

#endif  // MAZE_CORE_EDGE_LIST_H_
