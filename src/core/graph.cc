#include "core/graph.h"

#include <algorithm>

namespace maze {
namespace {

// Counting-sort CSR construction: one pass to count degrees, one to scatter.
void BuildCsr(const std::vector<Edge>& edges, VertexId n, bool transpose,
              std::vector<EdgeId>* offsets, std::vector<VertexId>* targets) {
  offsets->assign(static_cast<size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    VertexId key = transpose ? e.dst : e.src;
    MAZE_CHECK(key < n);
    ++(*offsets)[key + 1];
  }
  for (size_t i = 1; i < offsets->size(); ++i) {
    (*offsets)[i] += (*offsets)[i - 1];
  }
  targets->resize(edges.size());
  std::vector<EdgeId> cursor(offsets->begin(), offsets->end() - 1);
  for (const Edge& e : edges) {
    VertexId key = transpose ? e.dst : e.src;
    VertexId val = transpose ? e.src : e.dst;
    MAZE_CHECK(val < n);
    (*targets)[cursor[key]++] = val;
  }
  // Sort each adjacency list for binary-searchable, intersectable neighborhoods.
  for (VertexId u = 0; u < n; ++u) {
    std::sort(targets->begin() + static_cast<ptrdiff_t>((*offsets)[u]),
              targets->begin() + static_cast<ptrdiff_t>((*offsets)[u + 1]));
  }
}

}  // namespace

Graph Graph::FromEdges(const EdgeList& edges, GraphDirections dirs) {
  Graph g;
  g.num_vertices_ = edges.num_vertices;
  g.num_edges_ = edges.edges.size();
  if (dirs == GraphDirections::kOutOnly || dirs == GraphDirections::kBoth) {
    BuildCsr(edges.edges, edges.num_vertices, /*transpose=*/false,
             &g.out_offsets_, &g.out_targets_);
  }
  if (dirs == GraphDirections::kInOnly || dirs == GraphDirections::kBoth) {
    BuildCsr(edges.edges, edges.num_vertices, /*transpose=*/true, &g.in_offsets_,
             &g.in_targets_);
  }
  return g;
}

size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_targets_.size() * sizeof(VertexId) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_targets_.size() * sizeof(VertexId);
}

}  // namespace maze
