// Compressed-Sparse-Row graph: the storage format the paper's native code uses for
// every algorithm ("allows all the accesses to the edge array to be regular and
// improves the memory bandwidth utilization through hardware prefetching", §3.1).
//
// A Graph can carry the out-CSR, the in-CSR, or both; PageRank wants in-edges,
// BFS wants symmetric out-edges, triangle counting wants oriented sorted out-edges.
#ifndef MAZE_CORE_GRAPH_H_
#define MAZE_CORE_GRAPH_H_

#include <span>
#include <vector>

#include "core/edge_list.h"
#include "core/types.h"
#include "util/check.h"

namespace maze {

// Which adjacency directions to materialize when building.
enum class GraphDirections {
  kOutOnly,
  kInOnly,
  kBoth,
};

// Immutable CSR graph. Adjacency lists are sorted by neighbor id (enabling the
// linear-time sorted intersections of §3.2's Galois triangle counting).
class Graph {
 public:
  Graph() = default;

  // Builds from an edge list. Edges are taken as directed (src -> dst); callers
  // wanting an undirected graph symmetrize the edge list first.
  static Graph FromEdges(const EdgeList& edges,
                         GraphDirections dirs = GraphDirections::kBoth);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return num_edges_; }

  bool has_out() const { return !out_offsets_.empty(); }
  bool has_in() const { return !in_offsets_.empty(); }

  // Out-neighbors of u, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId u) const {
    MAZE_DCHECK(u < num_vertices_);
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  // In-neighbors of u (i.e. sources of edges ending at u), sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId u) const {
    MAZE_DCHECK(u < num_vertices_);
    return {in_targets_.data() + in_offsets_[u],
            in_targets_.data() + in_offsets_[u + 1]};
  }

  EdgeId OutDegree(VertexId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  EdgeId InDegree(VertexId u) const { return in_offsets_[u + 1] - in_offsets_[u]; }

  // Raw CSR arrays, for the hand-optimized kernels that stream them directly.
  const std::vector<EdgeId>& out_offsets() const { return out_offsets_; }
  const std::vector<VertexId>& out_targets() const { return out_targets_; }
  const std::vector<EdgeId>& in_offsets() const { return in_offsets_; }
  const std::vector<VertexId>& in_targets() const { return in_targets_; }

  // Approximate resident bytes of the CSR arrays (memory-footprint metric).
  size_t MemoryBytes() const;

 private:
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_targets_;
  std::vector<EdgeId> in_offsets_;
  std::vector<VertexId> in_targets_;
};

}  // namespace maze

#endif  // MAZE_CORE_GRAPH_H_
