#include "core/io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

namespace maze {
namespace {

constexpr uint64_t kBinaryMagic = 0x4D415A4547524146ull;  // "MAZEGRAF"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteEdgeListText(const EdgeList& edges, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  std::fprintf(f.get(), "# vertices: %u\n", edges.num_vertices);
  for (const Edge& e : edges.edges) {
    if (std::fprintf(f.get(), "%u %u\n", e.src, e.dst) < 0) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::OK();
}

StatusOr<EdgeList> ReadEdgeListText(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  EdgeList out;
  char line[256];
  VertexId max_id = 0;
  bool declared_vertices = false;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '#') {
      unsigned declared = 0;
      if (std::sscanf(line, "# vertices: %u", &declared) == 1) {
        out.num_vertices = declared;
        declared_vertices = true;
      }
      continue;
    }
    unsigned src = 0;
    unsigned dst = 0;
    if (std::sscanf(line, "%u %u", &src, &dst) != 2) {
      return Status::InvalidArgument("malformed edge line in " + path + ": " +
                                     line);
    }
    out.edges.push_back(Edge{src, dst});
    max_id = std::max({max_id, src, dst});
  }
  if (!declared_vertices) {
    out.num_vertices = out.edges.empty() ? 0 : max_id + 1;
  } else if (!out.edges.empty() && max_id >= out.num_vertices) {
    return Status::InvalidArgument("edge id exceeds declared vertex count in " +
                                   path);
  }
  return out;
}

Status WriteEdgeListBinary(const EdgeList& edges, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  uint64_t header[3] = {kBinaryMagic, edges.num_vertices, edges.edges.size()};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) {
    return Status::IoError("header write failed: " + path);
  }
  if (!edges.edges.empty() &&
      std::fwrite(edges.edges.data(), sizeof(Edge), edges.edges.size(), f.get()) !=
          edges.edges.size()) {
    return Status::IoError("edge write failed: " + path);
  }
  return Status::OK();
}

Status WriteMatrixMarket(const EdgeList& edges, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  std::fprintf(f.get(),
               "%%%%MatrixMarket matrix coordinate pattern general\n");
  std::fprintf(f.get(), "%u %u %zu\n", edges.num_vertices, edges.num_vertices,
               edges.edges.size());
  for (const Edge& e : edges.edges) {
    // Matrix Market is 1-based and row-major: row = src, column = dst.
    if (std::fprintf(f.get(), "%u %u\n", e.src + 1, e.dst + 1) < 0) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::OK();
}

StatusOr<EdgeList> ReadMatrixMarket(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char line[512];
  if (std::fgets(line, sizeof(line), f.get()) == nullptr) {
    return Status::InvalidArgument("empty Matrix Market file: " + path);
  }
  if (std::strncmp(line, "%%MatrixMarket", 14) != 0) {
    return Status::InvalidArgument("missing MatrixMarket banner in " + path);
  }
  bool symmetric = std::strstr(line, "symmetric") != nullptr;
  if (std::strstr(line, "coordinate") == nullptr) {
    return Status::Unimplemented("only coordinate Matrix Market is supported");
  }

  // Skip comment lines, then read the size header.
  while (std::fgets(line, sizeof(line), f.get()) != nullptr && line[0] == '%') {
  }
  unsigned rows = 0;
  unsigned cols = 0;
  unsigned long long nnz = 0;
  if (std::sscanf(line, "%u %u %llu", &rows, &cols, &nnz) != 3) {
    return Status::InvalidArgument("malformed size header in " + path);
  }
  EdgeList out;
  out.num_vertices = std::max(rows, cols);
  out.edges.reserve(nnz);
  for (unsigned long long i = 0; i < nnz; ++i) {
    if (std::fgets(line, sizeof(line), f.get()) == nullptr) {
      return Status::IoError("truncated entry list in " + path);
    }
    unsigned r = 0;
    unsigned c = 0;
    // A trailing value column (real/integer formats) is ignored.
    if (std::sscanf(line, "%u %u", &r, &c) != 2) {
      return Status::InvalidArgument("malformed entry in " + path + ": " + line);
    }
    if (r == 0 || c == 0 || r > out.num_vertices || c > out.num_vertices) {
      return Status::OutOfRange("1-based index out of range in " + path);
    }
    out.edges.push_back(Edge{r - 1, c - 1});
    if (symmetric && r != c) out.edges.push_back(Edge{c - 1, r - 1});
  }
  return out;
}

StatusOr<EdgeList> ReadEdgeListBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  uint64_t header[3];
  if (std::fread(header, sizeof(header), 1, f.get()) != 1) {
    return Status::IoError("header read failed: " + path);
  }
  if (header[0] != kBinaryMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  EdgeList out;
  out.num_vertices = static_cast<VertexId>(header[1]);
  out.edges.resize(header[2]);
  if (!out.edges.empty() &&
      std::fread(out.edges.data(), sizeof(Edge), out.edges.size(), f.get()) !=
          out.edges.size()) {
    return Status::IoError("edge read failed: " + path);
  }
  return out;
}

}  // namespace maze
