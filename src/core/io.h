// Graph serialization: text edge lists (interoperable with SNAP-style files) and a
// compact binary format for fast reload of generated datasets.
#ifndef MAZE_CORE_IO_H_
#define MAZE_CORE_IO_H_

#include <string>

#include "core/edge_list.h"
#include "util/status.h"

namespace maze {

// Writes "src dst\n" lines. Lines beginning with '#' are comments on read.
Status WriteEdgeListText(const EdgeList& edges, const std::string& path);

// Parses a text edge list. num_vertices is 1 + max id seen unless a
// "# vertices: N" comment declares it.
StatusOr<EdgeList> ReadEdgeListText(const std::string& path);

// Binary format: magic, vertex count, edge count, raw edge array.
Status WriteEdgeListBinary(const EdgeList& edges, const std::string& path);
StatusOr<EdgeList> ReadEdgeListBinary(const std::string& path);

// Matrix Market coordinate format (the interchange format of the sparse-matrix
// world CombBLAS lives in): "%%MatrixMarket matrix coordinate pattern general"
// with 1-based indices. Reading accepts `pattern` (ignores any value column)
// and symmetric layouts (the mirrored edges are materialized).
Status WriteMatrixMarket(const EdgeList& edges, const std::string& path);
StatusOr<EdgeList> ReadMatrixMarket(const std::string& path);

}  // namespace maze

#endif  // MAZE_CORE_IO_H_
