#include "core/ratings_gen.h"

#include <algorithm>

#include "core/rmat.h"
#include "util/check.h"
#include "util/prng.h"

namespace maze {
namespace {

// Approximate Netflix Prize star distribution (1..5).
constexpr double kStarCdf[5] = {0.046, 0.146, 0.432, 0.767, 1.0};

float DrawStar(Xorshift64Star& rng) {
  double u = rng.NextDouble();
  for (int s = 0; s < 5; ++s) {
    if (u <= kStarCdf[s]) return static_cast<float>(s + 1);
  }
  return 5.0f;
}

}  // namespace

RatingsDataset GenerateRatings(const RatingsParams& params) {
  MAZE_CHECK(params.num_items > 0);
  RmatParams rmat = RmatParams::Ratings(params.scale, params.edge_factor,
                                        params.seed);
  // Keep the RMAT id structure: the fold below relies on the hierarchical column
  // skew, which a random relabeling would destroy (the paper folds raw
  // Graph500 output for the same reason).
  rmat.permute_vertices = false;
  EdgeList raw = GenerateRmat(rmat);

  // Step 2: fold columns into [0, num_items) via modulo — equivalent to chunking
  // the columns into blocks of num_items and OR-ing the chunks. Parallel edges
  // collapse (the logical OR). EdgeList::Deduplicate is not used because it also
  // drops src == dst pairs, which after folding are legitimate ratings.
  for (Edge& e : raw.edges) {
    e.dst %= params.num_items;
  }
  std::sort(raw.edges.begin(), raw.edges.end());
  raw.edges.erase(std::unique(raw.edges.begin(), raw.edges.end()),
                  raw.edges.end());

  // Count user degrees (step 3 filter input).
  std::vector<uint32_t> degree(raw.num_vertices, 0);
  for (const Edge& e : raw.edges) ++degree[e.src];

  // Dense renumbering of surviving users.
  std::vector<VertexId> user_id(raw.num_vertices, kInvalidVertex);
  VertexId next = 0;
  for (VertexId u = 0; u < raw.num_vertices; ++u) {
    if (degree[u] >= params.min_user_degree) user_id[u] = next++;
  }

  RatingsDataset out;
  out.num_users = next;
  out.num_items = params.num_items;
  out.ratings.reserve(raw.edges.size());
  uint64_t seed_state = params.seed ^ 0x51EDBEEFull;
  Xorshift64Star rng(SplitMix64(seed_state));
  for (const Edge& e : raw.edges) {
    if (user_id[e.src] == kInvalidVertex) continue;
    out.ratings.push_back(Rating{user_id[e.src], e.dst, DrawStar(rng)});
  }
  return out;
}

}  // namespace maze
