// Power-law ratings-matrix generator (Section 4.1.2).
//
// The paper's recipe, reproduced here step by step:
//   1. Generate a Graph500 RMAT graph with A=0.40, B=C=0.22 (tail matched to the
//      Netflix degree distribution).
//   2. "Fold" the adjacency matrix: chunk the columns into blocks of num_items and
//      logically OR the chunks, producing an num_vertices x num_items bipartite
//      pattern.
//   3. Remove users with degree < 5.
//   4. Attach rating values (we draw from a Netflix-like 1..5 distribution).
//
// The authors argue this power-law generator is more representative than the
// uniform sampler of Gemulla et al.; the Table 3 bench verifies the tail.
#ifndef MAZE_CORE_RATINGS_GEN_H_
#define MAZE_CORE_RATINGS_GEN_H_

#include <cstdint>
#include <vector>

#include "core/bipartite.h"

namespace maze {

struct RatingsParams {
  int scale = 16;           // RMAT scale for the source graph (2^scale rows).
  int edge_factor = 8;      // Ratings generated ~= edge_factor * 2^scale.
  VertexId num_items = 1024;  // Fold width (the paper folds to N_movies).
  uint32_t min_user_degree = 5;
  uint64_t seed = 1;
};

// Result of generation: the rating triples plus the compacted user/item counts.
struct RatingsDataset {
  VertexId num_users = 0;
  VertexId num_items = 0;
  std::vector<Rating> ratings;

  BipartiteGraph ToGraph() const {
    return BipartiteGraph::FromRatings(num_users, num_items, ratings);
  }
};

// Runs the fold pipeline above. Users are renumbered densely after filtering.
RatingsDataset GenerateRatings(const RatingsParams& params);

}  // namespace maze

#endif  // MAZE_CORE_RATINGS_GEN_H_
