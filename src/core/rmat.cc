#include "core/rmat.h"

#include <numeric>

#include "util/check.h"
#include "util/prng.h"
#include "util/thread_pool.h"

namespace maze {

EdgeList GenerateRmat(const RmatParams& params) {
  MAZE_CHECK(params.scale >= 1 && params.scale <= 30);
  MAZE_CHECK(params.a + params.b + params.c < 1.0 + 1e-9);
  VertexId n = VertexId{1} << params.scale;
  size_t m = static_cast<size_t>(params.edge_factor) * n;

  EdgeList out;
  out.num_vertices = n;
  out.edges.resize(m);

  // Optional random vertex permutation, as in the Graph500 generator, so that
  // high-degree vertices are not clustered at low ids (which would make 1-D
  // partitioning artificially imbalanced or balanced depending on scheme).
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (params.permute_vertices) {
    Xorshift64Star rng(params.seed ^ 0xABCDEF12345ull);
    for (VertexId i = n; i > 1; --i) {
      VertexId j = static_cast<VertexId>(rng.NextBounded(i));
      std::swap(perm[i - 1], perm[j]);
    }
  }

  const double ab = params.a + params.b;
  const double a_norm = params.a / ab;
  const double c_norm = params.c / (1.0 - ab);

  ParallelFor(m, 4096, [&](uint64_t begin, uint64_t end) {
    uint64_t seed_state = params.seed + begin;
    Xorshift64Star rng(SplitMix64(seed_state));
    for (uint64_t e = begin; e < end; ++e) {
      VertexId src = 0;
      VertexId dst = 0;
      for (int depth = 0; depth < params.scale; ++depth) {
        // Standard noisy RMAT descent: choose row half with prob ab, then the
        // column half conditioned on the row.
        bool row = rng.NextDouble() > ab;
        bool col = rng.NextDouble() > (row ? c_norm : a_norm);
        src = (src << 1) | static_cast<VertexId>(row);
        dst = (dst << 1) | static_cast<VertexId>(col);
      }
      out.edges[e] = Edge{perm[src], perm[dst]};
    }
  });
  return out;
}

}  // namespace maze
