// Graph500 RMAT synthetic graph generator (Section 4.1.2).
//
// The paper derives every synthetic workload from this generator:
//   - PageRank/BFS graphs: default Graph500 parameters A=0.57, B=C=0.19.
//   - Triangle counting:   A=0.45, B=C=0.15 (fewer triangles), then oriented
//     small-id -> large-id to remove cycles.
//   - Ratings matrices:    A=0.40, B=C=0.22, folded into a bipartite shape
//     (see ratings_gen.h).
#ifndef MAZE_CORE_RMAT_H_
#define MAZE_CORE_RMAT_H_

#include <cstdint>

#include "core/edge_list.h"

namespace maze {

// Parameters of the recursive-matrix generator. D is implied (1 - A - B - C).
struct RmatParams {
  int scale = 16;            // num_vertices = 2^scale.
  int edge_factor = 16;      // edges generated = edge_factor * num_vertices.
  double a = 0.57;           // Graph500 defaults.
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 1;
  bool permute_vertices = true;  // Random relabeling to break id-locality bias.

  static RmatParams Graph500(int scale, int edge_factor = 16, uint64_t seed = 1) {
    return RmatParams{scale, edge_factor, 0.57, 0.19, 0.19, seed, true};
  }
  // Paper's triangle-counting parameters (§4.1.2).
  static RmatParams TriangleCounting(int scale, int edge_factor = 16,
                                     uint64_t seed = 1) {
    return RmatParams{scale, edge_factor, 0.45, 0.15, 0.15, seed, true};
  }
  // Paper's collaborative-filtering parameters (§4.1.2).
  static RmatParams Ratings(int scale, int edge_factor = 16, uint64_t seed = 1) {
    return RmatParams{scale, edge_factor, 0.40, 0.22, 0.22, seed, true};
  }
};

// Generates the raw RMAT edge list. May contain duplicates and self-loops, exactly
// like the Graph500 reference generator; callers normalize via EdgeList methods.
// Generation is parallel across edges and deterministic for a fixed seed.
EdgeList GenerateRmat(const RmatParams& params);

}  // namespace maze

#endif  // MAZE_CORE_RMAT_H_
