// Fundamental identifier types shared by every module.
#ifndef MAZE_CORE_TYPES_H_
#define MAZE_CORE_TYPES_H_

#include <cstdint>

namespace maze {

// Vertex identifier. 32 bits covers every graph in this study (the paper's largest
// synthetic graph has 2^29 vertices) while halving adjacency-array traffic vs 64-bit
// ids — itself one of the native-code data-layout choices.
using VertexId = uint32_t;

// Edge index into CSR arrays; 64-bit because edge counts exceed 2^32 at scale.
using EdgeId = uint64_t;

// Sentinel for "no vertex" / unreached distances.
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;
inline constexpr uint32_t kInfiniteDistance = 0xFFFFFFFFu;

}  // namespace maze

#endif  // MAZE_CORE_TYPES_H_
