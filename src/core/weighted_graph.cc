#include "core/weighted_graph.h"

#include <algorithm>

#include "util/prng.h"

namespace maze {
namespace {

// Symmetric edge hash: (u, v) and (v, u) get the same weight.
float WeightFor(VertexId a, VertexId b, float max_weight, uint64_t seed) {
  if (a > b) std::swap(a, b);
  uint64_t state = seed ^ (static_cast<uint64_t>(a) << 32 | b);
  uint64_t h = SplitMix64(state);
  double unit = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return 1.0f + static_cast<float>(unit * (max_weight - 1.0));
}

}  // namespace

WeightedGraph WeightedGraph::FromEdgesWithRandomWeights(const EdgeList& edges,
                                                        float max_weight,
                                                        uint64_t seed) {
  MAZE_CHECK(max_weight >= 1.0f);
  WeightedGraph g;
  g.num_vertices_ = edges.num_vertices;
  g.offsets_.assign(static_cast<size_t>(edges.num_vertices) + 1, 0);
  for (const Edge& e : edges.edges) {
    MAZE_CHECK(e.src < edges.num_vertices && e.dst < edges.num_vertices);
    ++g.offsets_[e.src + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.arcs_.resize(edges.edges.size());
  std::vector<EdgeId> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges.edges) {
    g.arcs_[cursor[e.src]++] = Arc{e.dst,
                                   WeightFor(e.src, e.dst, max_weight, seed)};
  }
  for (VertexId u = 0; u < g.num_vertices_; ++u) {
    std::sort(g.arcs_.begin() + static_cast<ptrdiff_t>(g.offsets_[u]),
              g.arcs_.begin() + static_cast<ptrdiff_t>(g.offsets_[u + 1]),
              [](const Arc& a, const Arc& b) { return a.dst < b.dst; });
  }
  return g;
}

}  // namespace maze
