// Weighted CSR graph (extension substrate): needed by the SSSP extension
// algorithm, which exercises the priority-scheduling side of the task-based
// model ("coordinated and autonomous scheduling, with and without
// application-defined priorities") that the paper's four algorithms never use.
#ifndef MAZE_CORE_WEIGHTED_GRAPH_H_
#define MAZE_CORE_WEIGHTED_GRAPH_H_

#include <span>
#include <vector>

#include "core/edge_list.h"
#include "core/types.h"
#include "util/check.h"

namespace maze {

// Immutable weighted out-CSR. Weights are positive floats.
class WeightedGraph {
 public:
  struct Arc {
    VertexId dst;
    float weight;
  };

  WeightedGraph() = default;

  // Attaches deterministic pseudo-random weights in [1, max_weight] to every
  // edge of `edges` (hash of the endpoints, so the same edge always gets the
  // same weight and a symmetric pair gets matching weights).
  static WeightedGraph FromEdgesWithRandomWeights(const EdgeList& edges,
                                                  float max_weight = 16.0f,
                                                  uint64_t seed = 1);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return arcs_.size(); }

  std::span<const Arc> OutArcs(VertexId u) const {
    MAZE_DCHECK(u < num_vertices_);
    return {arcs_.data() + offsets_[u], arcs_.data() + offsets_[u + 1]};
  }

  EdgeId OutDegree(VertexId u) const { return offsets_[u + 1] - offsets_[u]; }

  size_t MemoryBytes() const {
    return offsets_.size() * sizeof(EdgeId) + arcs_.size() * sizeof(Arc);
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<EdgeId> offsets_;
  std::vector<Arc> arcs_;
};

}  // namespace maze

#endif  // MAZE_CORE_WEIGHTED_GRAPH_H_
