#include "datalog/algorithms.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "datalog/table.h"
#include "native/cc.h"
#include "native/cf.h"
#include "rt/rank_exec.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::datalog {
namespace {

// Builds the tail-nested OUTEDGE[s](n) table from the graph's out-CSR.
Table BuildEdgeTable(const Graph& g) {
  Table edges("EDGE", /*int_cols=*/2, /*double_cols=*/0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      int64_t row[2] = {u, v};
      edges.AppendRow(row);
    }
  }
  edges.TailNest(g.num_vertices());
  return edges;
}

}  // namespace

rt::CommModel DefaultComm() { return DataliteOptions::Optimized().Comm(); }

// ---------------------------------------------------------------------------
// PageRank — both rule variants of §3.1.
//
// Single machine ("optimized for a single multi-core machine": the join drives
// on the target's INEDGE rows, so every head update is local and lock-free):
//   RANK[n](t+1, $SUM(v)) :- v = r
//     :- INEDGE[n](s), RANK[s](t, v0), OUTDEG[s](d), v = (1-r) v0 / d.
//
// Distributed (one data transfer for the RANK head update; §3.1's second
// version):
//   RANK[n](t+1, $SUM(v)) :- v = r;
//     :- RANK[s](t, v0), OUTEDGE[s](n), OUTDEG[s](d), v = (1-r) v0 / d.
// ---------------------------------------------------------------------------
rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config,
                            const DataliteOptions& datalite) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  Runtime rt(config.num_ranks, datalite, n, config.trace, config.faults);
  const bool single_machine = config.num_ranks == 1;

  // OUTEDGE for the distributed rule; INEDGE (the transpose) for the gather
  // rule. OUTDEG is derived from OUTEDGE's tail nesting either way.
  Table edges = BuildEdgeTable(g);
  Table in_edges("INEDGE", 2, 0);
  if (single_machine) {
    for (VertexId u = 0; u < n; ++u) {
      auto [begin, end] = edges.Rows(u);
      for (size_t row = begin; row < end; ++row) {
        int64_t in_row[2] = {edges.Int(row, 1), u};
        in_edges.AppendRow(in_row);
      }
    }
    in_edges.TailNest(n);
  }

  std::vector<double> rank(n, 1.0);
  std::vector<double> sum(n, 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::fill(sum.begin(), sum.end(), 0.0);
    if (single_machine) {
      // Gather rule: each head key n sums over its INEDGE rows; every emit is
      // to the driving key itself (no cross-shard tuples, no locks).
      EvaluateRule<double, SumAgg<double>>(
          &rt, &sum, /*bytes_per_tuple=*/16,
          [&](int64_t tgt, const std::function<void(int64_t, double)>& emit) {
            auto [begin, end] = in_edges.Rows(tgt);
            double acc = 0;
            for (size_t row = begin; row < end; ++row) {
              int64_t s = in_edges.Int(row, 1);
              auto [sb, se] = edges.Rows(s);
              EdgeId d = se - sb;
              if (d > 0) acc += rank[s] / static_cast<double>(d);
            }
            if (acc != 0) emit(tgt, (1.0 - options.jump) * acc);
          });
    } else {
      // Distributed rule: join RANK with OUTEDGE/OUTDEG, $SUM into the head
      // shard (the only transfer of the iteration).
      EvaluateRule<double, SumAgg<double>>(
          &rt, &sum, /*bytes_per_tuple=*/16,
          [&](int64_t s, const std::function<void(int64_t, double)>& emit) {
            auto [begin, end] = edges.Rows(s);
            EdgeId d = end - begin;  // OUTDEG[s](d) is derived from OUTEDGE.
            if (d == 0) return;
            double v = (1.0 - options.jump) * rank[s] / static_cast<double>(d);
            for (size_t row = begin; row < end; ++row) {
              emit(edges.Int(row, 1), v);
            }
          });
    }
    // First rule (the constant term) is a shard-local dense update; shards are
    // disjoint so ranks run concurrently.
    rt::ForEachRank(rt.num_ranks(), [&](int p) {
      rt::RankTimer t;
      for (VertexId v = rt.shard().Begin(p); v < rt.shard().End(p); ++v) {
        rank[v] = options.jump + sum[v];
      }
      rt.clock()->RecordCompute(p, t.Seconds());
    });
    rt.clock()->EndStep(false);
  }

  rt.clock()->ChargeMemory(
      0, obs::MemPhase::kGraph,
      edges.MemoryBytes() / std::max(1, config.num_ranks));
  rt.clock()->ChargeMemory(0, obs::MemPhase::kEngineState,
                           static_cast<uint64_t>(n) * 2 * sizeof(double));
  rt::PageRankResult result;
  result.ranks = std::move(rank);
  result.iterations = options.iterations;
  result.metrics = rt.Finish();
  return result;
}

// ---------------------------------------------------------------------------
// BFS — the recursive rule of §3.2:
//   BFS(t, $MIN(d)) :- t = SRC, d = 0;
//     :- BFS(s, d0), EDGE(s, t), d = d0 + 1.
// Semi-naive evaluation: only tuples whose distance improved drive a round.
// ---------------------------------------------------------------------------
rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config, const DataliteOptions& datalite) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  Runtime rt(config.num_ranks, datalite, n, config.trace, config.faults);
  Table edges = BuildEdgeTable(g);

  std::vector<int64_t> dist(n, std::numeric_limits<int64_t>::max());
  dist[options.source] = 0;
  int rounds = SemiNaiveFixpoint<int64_t, MinAgg<int64_t>>(
      &rt, &dist, /*bytes_per_tuple=*/16, {options.source},
      [&](int64_t s, int64_t d0,
          const std::function<void(int64_t, int64_t)>& emit) {
        auto [begin, end] = edges.Rows(s);
        for (size_t row = begin; row < end; ++row) {
          emit(edges.Int(row, 1), d0 + 1);
        }
      });

  rt.clock()->ChargeMemory(
      0, obs::MemPhase::kGraph,
      edges.MemoryBytes() / std::max(1, config.num_ranks));
  rt.clock()->ChargeMemory(0, obs::MemPhase::kEngineState,
                           static_cast<uint64_t>(n) * sizeof(int64_t));
  rt::BfsResult result;
  result.distance.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.distance[v] = dist[v] == std::numeric_limits<int64_t>::max()
                             ? kInfiniteDistance
                             : static_cast<uint32_t>(dist[v]);
  }
  result.levels = rounds;
  result.metrics = rt.Finish();
  return result;
}

// ---------------------------------------------------------------------------
// Triangle counting — the three-way join of §3.2:
//   TRIANGLE(0, $INC(1)) :- EDGE(x, y), EDGE(y, z), EDGE(x, z).
// The join plan drives on x's shard, ships EDGE[y] rows from y's shard, and
// probes EDGE(x, z) via the tail-nested index. $INC counters accumulate locally
// and combine at the end (one tiny tuple per rank).
// ---------------------------------------------------------------------------
rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config,
                                      const DataliteOptions& datalite) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  const int ranks = config.num_ranks;
  Runtime rt(ranks, datalite, n, config.trace, config.faults);
  Table edges = BuildEdgeTable(g);

  // Wire: EDGE[y] rows shipped from owner(y) to owner(x) for each distinct
  // remote y in x's shard's neighbor lists (16 bytes per (y, z) tuple).
  if (ranks > 1) {
    for (int p = 0; p < ranks; ++p) {
      Bitvector needed(n);
      for (VertexId x = rt.shard().Begin(p); x < rt.shard().End(p); ++x) {
        auto [begin, end] = edges.Rows(x);
        for (size_t row = begin; row < end; ++row) {
          int64_t y = edges.Int(row, 1);
          if (rt.OwnerOf(y) != p) needed.Set(static_cast<size_t>(y));
        }
      }
      std::vector<uint32_t> ids;
      needed.AppendSetBits(&ids);
      std::vector<uint64_t> tuples_from(ranks, 0);
      for (VertexId y : ids) {
        auto [begin, end] = edges.Rows(y);
        tuples_from[rt.OwnerOf(y)] += end - begin;
      }
      for (int q = 0; q < ranks; ++q) {
        rt.ChargeTuples(q, p, tuples_from[q], 16);
      }
    }
  }

  // Rank-parallel: the edge table is read-only; each rank counts into its own
  // slot, summed in rank order below.
  std::vector<uint64_t> rank_triangles(ranks, 0);
  rt::ForEachRank(ranks, [&](int p) {
    rt::RankTimer t;
    uint64_t triangles = 0;
    std::mutex mu;
    ParallelFor(rt.shard().Size(p), 32, [&](uint64_t lo, uint64_t hi) {
      uint64_t local = 0;
      for (VertexId x = rt.shard().Begin(p) + static_cast<VertexId>(lo);
           x < rt.shard().Begin(p) + static_cast<VertexId>(hi); ++x) {
        auto [xb, xe] = edges.Rows(x);
        for (size_t xr = xb; xr < xe; ++xr) {
          int64_t y = edges.Int(xr, 1);
          auto [yb, ye] = edges.Rows(y);
          for (size_t yr = yb; yr < ye; ++yr) {
            int64_t z = edges.Int(yr, 1);
            if (edges.ContainsPair(x, z)) ++local;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      triangles += local;
    });
    rank_triangles[p] = triangles;
    rt.clock()->RecordCompute(p, t.Seconds());
    // $INC combination: one counter tuple per rank to the head's shard (rank 0).
    if (p != 0) rt.ChargeTuples(p, 0, 1, 16);
  });
  uint64_t triangles = 0;
  for (int p = 0; p < ranks; ++p) triangles += rank_triangles[p];
  rt.clock()->EndStep(false);

  rt.clock()->ChargeMemory(0, obs::MemPhase::kGraph,
                           edges.MemoryBytes() / std::max(1, ranks));
  rt.clock()->ChargeMemory(0, obs::MemPhase::kEngineState,
                           edges.MemoryBytes() / std::max(1, ranks));
  rt::TriangleCountResult result;
  result.triangles = triangles;
  result.metrics = rt.Finish();
  return result;
}

// ---------------------------------------------------------------------------
// Collaborative filtering (GD) — §3.2: user and item vectors live in separate
// tables joined with the rating table; the tables are transferred to target
// machines at the start of each iteration so the joins are local.
// ---------------------------------------------------------------------------
rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config,
                                    const DataliteOptions& datalite) {
  MAZE_CHECK(options.method == rt::CfMethod::kGd);
  const int k = options.k;
  const int ranks = config.num_ranks;
  Runtime rt(ranks, datalite, g.num_users(), config.trace, config.faults);
  rt::Partition1D item_shard =
      rt::Partition1D::VertexBalanced(g.num_items(), ranks);

  // RATING(u, v, r) tail-nested by user; RATING_T(v, u, r) by item.
  Table rating("RATING", 2, 1);
  Table rating_t("RATING_T", 2, 1);
  for (VertexId u = 0; u < g.num_users(); ++u) {
    for (const auto& e : g.UserRatings(u)) {
      int64_t row[2] = {u, e.id};
      double val[1] = {e.rating};
      rating.AppendRow(row, val);
      int64_t trow[2] = {e.id, u};
      rating_t.AppendRow(trow, val);
    }
  }
  rating.TailNest(g.num_users());
  rating_t.TailNest(g.num_items());

  rt::CfResult result;
  result.k = k;
  native::CfInitFactors(g.num_users(), k, options.seed, &result.user_factors);
  native::CfInitFactors(g.num_items(), k, options.seed ^ 0x1234567ull,
                        &result.item_factors);

  // USERVEC[u](d0..dk-1) and ITEMVEC[v](...): the factor-vector tables of §3.2.
  // They are rebuilt ("transferred") at the start of every iteration, and the
  // gradient joins read the previous iteration's factors through the columnar
  // table storage — the indirection a table-backed runtime actually pays.
  auto snapshot = [&](const std::vector<double>& factors, VertexId count,
                      const char* name) {
    Table t(name, 1, options.k);
    std::vector<double> row(options.k);
    for (VertexId i = 0; i < count; ++i) {
      for (int d = 0; d < options.k; ++d) {
        row[d] = factors[static_cast<size_t>(i) * options.k + d];
      }
      int64_t key[1] = {i};
      t.AppendRow(key, row);
    }
    return t;
  };

  double gamma = options.learning_rate;
  for (int iter = 0; iter < options.iterations; ++iter) {
    Table old_users = snapshot(result.user_factors, g.num_users(), "USERVEC");
    Table old_items = snapshot(result.item_factors, g.num_items(), "ITEMVEC");

    // Table transfer at iteration start: every rank receives the full opposite-
    // side vector table rows it does not own (k doubles + key per row).
    if (ranks > 1) {
      for (int q = 0; q < ranks; ++q) {
        uint64_t item_rows = item_shard.Size(q);
        uint64_t user_rows = rt.shard().Size(q);
        for (int p = 0; p < ranks; ++p) {
          if (p == q) continue;
          rt.ChargeTuples(q, p, item_rows, 8 + 8ull * k);
          rt.ChargeTuples(q, p, user_rows, 8 + 8ull * k);
        }
      }
    }

    // Local joins: user pass over RATING, item pass over RATING_T. Ranks run
    // concurrently: both passes read iteration-start snapshots and write only
    // the rank's owned factor rows.
    rt::ForEachRank(ranks, [&](int p) {
      rt::RankTimer t;
      ParallelFor(rt.shard().Size(p), 32, [&](uint64_t lo, uint64_t hi) {
        std::vector<double> grad(k);
        for (VertexId u = rt.shard().Begin(p) + static_cast<VertexId>(lo);
             u < rt.shard().Begin(p) + static_cast<VertexId>(hi); ++u) {
          std::fill(grad.begin(), grad.end(), 0.0);
          auto [begin, end] = rating.Rows(u);
          for (size_t row = begin; row < end; ++row) {
            int64_t v = rating.Int(row, 1);
            double r = rating.Double(row, 0);
            double dot = 0;
            for (int d = 0; d < k; ++d) {
              dot += old_users.Double(u, d) * old_items.Double(v, d);
            }
            double err = r - dot;
            for (int d = 0; d < k; ++d) {
              grad[d] += err * old_items.Double(v, d) -
                         options.lambda_p * old_users.Double(u, d);
            }
          }
          double* out = result.user_factors.data() + static_cast<size_t>(u) * k;
          for (int d = 0; d < k; ++d) {
            out[d] = old_users.Double(u, d) + gamma * grad[d];
          }
        }
      });
      ParallelFor(item_shard.Size(p), 32, [&](uint64_t lo, uint64_t hi) {
        std::vector<double> grad(k);
        for (VertexId v = item_shard.Begin(p) + static_cast<VertexId>(lo);
             v < item_shard.Begin(p) + static_cast<VertexId>(hi); ++v) {
          std::fill(grad.begin(), grad.end(), 0.0);
          auto [begin, end] = rating_t.Rows(v);
          for (size_t row = begin; row < end; ++row) {
            int64_t u = rating_t.Int(row, 1);
            double r = rating_t.Double(row, 0);
            double dot = 0;
            for (int d = 0; d < k; ++d) {
              dot += old_users.Double(u, d) * old_items.Double(v, d);
            }
            double err = r - dot;
            for (int d = 0; d < k; ++d) {
              grad[d] += err * old_users.Double(u, d) -
                         options.lambda_q * old_items.Double(v, d);
            }
          }
          double* out = result.item_factors.data() + static_cast<size_t>(v) * k;
          for (int d = 0; d < k; ++d) {
            out[d] = old_items.Double(v, d) + gamma * grad[d];
          }
        }
      });
      rt.clock()->RecordCompute(p, t.Seconds());
    });
    rt.clock()->EndStep(false);
    gamma *= options.step_decay;
    result.rmse_per_iteration.push_back(
        native::CfRmse(g, result.user_factors, result.item_factors, k));
  }

  rt.clock()->ChargeMemory(
      0, obs::MemPhase::kGraph,
      (rating.MemoryBytes() + rating_t.MemoryBytes()) / std::max(1, ranks));
  rt.clock()->ChargeMemory(
      0, obs::MemPhase::kEngineState,
      (result.user_factors.size() + result.item_factors.size()) *
          sizeof(double) * 2);
  result.iterations = options.iterations;
  result.final_rmse = result.rmse_per_iteration.empty()
                          ? 0.0
                          : result.rmse_per_iteration.back();
  result.metrics = rt.Finish();
  return result;
}

// ---------------------------------------------------------------------------
// Connected components (extension) — the recursive $MIN rule:
//   CC(v, $MIN(l)) :- CC(v, v);  :- CC(u, l), EDGE(u, v).
// Semi-naive evaluation seeded with every vertex.
// ---------------------------------------------------------------------------
rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config, const DataliteOptions& datalite) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  Runtime rt(config.num_ranks, datalite, n, config.trace, config.faults);
  Table edges = BuildEdgeTable(g);

  std::vector<int64_t> label(n);
  std::vector<int64_t> seeds(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = v;
    seeds[v] = v;
  }
  int rounds = SemiNaiveFixpoint<int64_t, MinAgg<int64_t>>(
      &rt, &label, /*bytes_per_tuple=*/16, std::move(seeds),
      [&](int64_t u, int64_t l,
          const std::function<void(int64_t, int64_t)>& emit) {
        auto [begin, end] = edges.Rows(u);
        for (size_t row = begin; row < end; ++row) {
          emit(edges.Int(row, 1), l);
        }
      });
  (void)options;

  rt.clock()->ChargeMemory(
      0, obs::MemPhase::kGraph,
      edges.MemoryBytes() / std::max(1, config.num_ranks));
  rt.clock()->ChargeMemory(0, obs::MemPhase::kEngineState,
                           static_cast<uint64_t>(n) * sizeof(int64_t));
  rt::ConnectedComponentsResult result;
  result.label.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.label[v] = static_cast<VertexId>(label[v]);
  }
  result.num_components = native::CountComponents(result.label);
  result.iterations = rounds;
  result.metrics = rt.Finish();
  return result;
}

}  // namespace maze::datalog
