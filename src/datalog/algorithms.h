// The four study algorithms as datalite (SociaLite-like) rule programs. Each
// entry point builds the tables the paper's rules reference, evaluates the rules
// with the engine, and converts back to the shared result types. The actual
// SociaLite rule text from the paper is reproduced in the implementation.
#ifndef MAZE_DATALOG_ALGORITHMS_H_
#define MAZE_DATALOG_ALGORITHMS_H_

#include "core/bipartite.h"
#include "core/graph.h"
#include "datalog/engine.h"
#include "rt/algo.h"

namespace maze::datalog {

// SociaLite's optimized transport (multi-socket, Table 7 "After").
rt::CommModel DefaultComm();

// PageRank: the distributed-optimized rule of §3.1 (join local, single transfer
// for the RANK head update). Requires out-CSR.
rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config,
                            const DataliteOptions& datalite =
                                DataliteOptions::Optimized());

// BFS: the recursive $MIN rule of §3.2, evaluated semi-naively.
rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config,
                  const DataliteOptions& datalite = DataliteOptions::Optimized());

// Triangle counting: TRIANGLE(0, $INC(1)) :- EDGE(x,y), EDGE(y,z), EDGE(x,z),
// a three-way join over the oriented edge table.
rt::TriangleCountResult TriangleCount(
    const Graph& g, const rt::TriangleCountOptions& options,
    rt::EngineConfig config,
    const DataliteOptions& datalite = DataliteOptions::Optimized());

// CF via Gradient Descent: user/item vector tables joined with the rating table;
// tables are shipped to target machines at the start of each iteration so the
// joins run locally (§3.2).
rt::CfResult CollaborativeFiltering(
    const BipartiteGraph& g, const rt::CfOptions& options,
    rt::EngineConfig config,
    const DataliteOptions& datalite = DataliteOptions::Optimized());

// Connected components (extension algorithm) as the recursive rule
//   CC(v, $MIN(l)) :- CC(v, v);
//     :- CC(u, l), EDGE(u, v).
rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config,
    const DataliteOptions& datalite = DataliteOptions::Optimized());

}  // namespace maze::datalog

#endif  // MAZE_DATALOG_ALGORITHMS_H_
