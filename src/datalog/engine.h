// datalite rule evaluation (SociaLite-like, Sections 3 and 6.1.3).
//
// Tables are horizontally sharded by their first column across ranks. A rule
// body is evaluated per rank over its shard (parallel across worker threads
// inside the rank, as SociaLite's Java runtime does); head tuples whose key
// lands in another rank's shard cross the wire. Two network behaviors are
// switchable — they are exactly the Table 7 experiment:
//   - DataliteOptions::AsPublished(): single TCP socket per node pair and one
//     wire message per tuple (the low peak-bandwidth behavior the authors
//     measured in the released code);
//   - DataliteOptions::Optimized(): multiple sockets per pair (~2 GB/s) and
//     "merging communication data for batch processing" (one message per rank
//     pair per rule evaluation).
//
// Aggregation in rule heads ($SUM, $MIN, $INC) is applied at the owning shard.
// EvaluateRule runs one body pass; SemiNaiveFixpoint iterates a linear recursive
// rule on delta tuples until no head value changes (how SociaLite evaluates the
// recursive BFS rule of Section 3.2).
#ifndef MAZE_DATALOG_ENGINE_H_
#define MAZE_DATALOG_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "rt/algo.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::datalog {

struct DataliteOptions {
  bool multi_socket = true;
  bool batch_messages = true;

  // The configuration of the authors' released code, before the paper's network
  // optimizations (Table 7 "Before").
  static DataliteOptions AsPublished() { return {false, false}; }
  // After §6.1.3's changes (Table 7 "After"); the paper's headline results use
  // this configuration.
  static DataliteOptions Optimized() { return {true, true}; }

  rt::CommModel Comm() const {
    return multi_socket ? rt::CommModel::MultiSocket() : rt::CommModel::Socket();
  }
};

// Aggregation operators usable in rule heads.
template <typename V>
struct SumAgg {
  static V Identity() { return V{}; }
  static V Apply(V a, V b) { return a + b; }
};
template <typename V>
struct MinAgg {
  static V Identity() { return std::numeric_limits<V>::max(); }
  static V Apply(V a, V b) { return std::min(a, b); }
};

// Evaluation context for one rule program run.
class Runtime {
 public:
  Runtime(int num_ranks, const DataliteOptions& options, int64_t key_space,
          bool trace = false, rt::fault::FaultSpec faults = rt::fault::SpecFromEnv())
      : options_(options),
        clock_(num_ranks, options.Comm(), trace, std::move(faults)),
        shard_(rt::Partition1D::VertexBalanced(
            static_cast<VertexId>(key_space), num_ranks)) {}

  int num_ranks() const { return clock_.num_ranks(); }
  rt::SimClock* clock() { return &clock_; }
  const rt::Partition1D& shard() const { return shard_; }
  int OwnerOf(int64_t key) const {
    return shard_.OwnerOf(static_cast<VertexId>(key));
  }

  // The published runtime wrote ~16KB blocks (about a thousand 16-byte tuples)
  // per socket send; the optimized runtime merges a whole rule evaluation into
  // one transfer ("merging communication data for batch processing", §6.1.3).
  static constexpr uint64_t kPublishedTuplesPerWrite = 1024;

  // Charges the wire for `tuples` head tuples of `bytes_each` flowing p -> q
  // (no-op if p == q). Message granularity follows the batching option.
  void ChargeTuples(int p, int q, uint64_t tuples, uint64_t bytes_each) {
    if (tuples == 0 || p == q) return;
    uint64_t messages =
        options_.batch_messages
            ? 1
            : (tuples + kPublishedTuplesPerWrite - 1) / kPublishedTuplesPerWrite;
    clock_.RecordSend(p, q, tuples * bytes_each, messages);
  }

  // SociaLite's Java runtime keeps workers fairly busy but below native.
  rt::RunMetrics Finish() { return clock_.Finish(0.75); }

 private:
  DataliteOptions options_;
  rt::SimClock clock_;
  rt::Partition1D shard_;
};

namespace internal {

// Shared body-evaluation machinery: runs `per_key` over the given keys of rank
// p's shard in parallel, merging emitted head tuples into (acc, touched) and the
// per-destination tuple counters. `merge_mu` guards (acc, touched); it is shared
// across all ranks of a rule pass because rank bodies evaluate concurrently.
template <typename V, typename Agg>
void RunBodyForRank(
    Runtime* rt, int p, const std::vector<int64_t>& keys, std::mutex* merge_mu,
    std::vector<V>* acc, std::vector<bool>* touched,
    std::vector<uint64_t>* tuples_to,
    const std::function<void(int64_t key,
                             const std::function<void(int64_t, V)>& emit)>&
        per_key) {
  ParallelFor(keys.size(), 32, [&](uint64_t lo, uint64_t hi) {
    std::vector<std::pair<int64_t, V>> local;
    auto emit = [&](int64_t key, V value) { local.emplace_back(key, value); };
    for (uint64_t i = lo; i < hi; ++i) per_key(keys[i], emit);
    std::lock_guard<std::mutex> lock(*merge_mu);
    for (auto& [key, value] : local) {
      MAZE_DCHECK(key >= 0 && key < static_cast<int64_t>(acc->size()));
      if ((*touched)[key]) {
        (*acc)[key] = Agg::Apply((*acc)[key], value);
      } else {
        (*touched)[key] = true;
        (*acc)[key] = value;
      }
      ++(*tuples_to)[rt->OwnerOf(key)];
    }
  });
  (void)p;
}

// Charges rank p's outbound tuple counters to the wire.
inline void ChargeAll(Runtime* rt, int p, const std::vector<uint64_t>& tuples_to,
                      uint64_t bytes_per_tuple) {
  for (int q = 0; q < static_cast<int>(tuples_to.size()); ++q) {
    rt->ChargeTuples(p, q, tuples_to[q], bytes_per_tuple);
  }
}

}  // namespace internal

// Evaluates one non-recursive rule pass:
//   HEAD[k]($AGG(v)) :- <body driven by every key of the shard>
// and merges the per-key aggregates into `head` (size = key space). Returns the
// number of head keys whose aggregate changed. `bytes_per_tuple` is the tuple's
// wire size (key + payload columns, 8 bytes each in SociaLite).
template <typename V, typename Agg>
size_t EvaluateRule(
    Runtime* rt, std::vector<V>* head, uint64_t bytes_per_tuple,
    const std::function<void(int64_t key,
                             const std::function<void(int64_t, V)>& emit)>&
        per_key) {
  const int ranks = rt->num_ranks();
  std::vector<V> acc(head->size(), Agg::Identity());
  std::vector<bool> touched(head->size(), false);

  // Rank shards evaluate concurrently, merging into the shared accumulator
  // under one mutex (SociaLite's shared-memory aggregation step).
  std::mutex merge_mu;
  rt::ForEachRank(ranks, [&](int p) {
    rt::RankTimer t;
    std::vector<int64_t> keys;
    keys.reserve(rt->shard().Size(p));
    for (VertexId k = rt->shard().Begin(p); k < rt->shard().End(p); ++k) {
      keys.push_back(k);
    }
    std::vector<uint64_t> tuples_to(ranks, 0);
    internal::RunBodyForRank<V, Agg>(rt, p, keys, &merge_mu, &acc, &touched,
                                     &tuples_to, per_key);
    internal::ChargeAll(rt, p, tuples_to, bytes_per_tuple);
    double seconds = t.Seconds();
    rt->clock()->RecordCompute(p, seconds);
    obs::EmitSpanEndingNow("rule_body", "datalite", p, /*step=*/0, seconds);
  });

  size_t changed = 0;
  for (size_t k = 0; k < head->size(); ++k) {
    if (!touched[k]) continue;
    V merged = Agg::Apply((*head)[k], acc[k]);
    if (merged != (*head)[k]) {
      (*head)[k] = merged;
      ++changed;
    }
  }
  rt->clock()->EndStep(/*overlap_comm=*/false);
  return changed;
}

// Semi-naive fixpoint of a linear recursive rule:
//   HEAD(y, $AGG(v')) :- HEAD(x, v) [delta only], <join>, v' = step(x, v, y).
// `expand` is called per delta key (with its current head value) and emits
// successor tuples. Iterates until no head value improves. Returns the number of
// delta rounds executed.
template <typename V, typename Agg>
int SemiNaiveFixpoint(
    Runtime* rt, std::vector<V>* head, uint64_t bytes_per_tuple,
    std::vector<int64_t> initial_delta,
    const std::function<void(int64_t key, V value,
                             const std::function<void(int64_t, V)>& emit)>&
        expand) {
  const int ranks = rt->num_ranks();
  std::vector<int64_t> delta = std::move(initial_delta);
  int rounds = 0;
  while (!delta.empty()) {
    ++rounds;
    std::vector<V> acc(head->size(), Agg::Identity());
    std::vector<bool> touched(head->size(), false);

    std::mutex merge_mu;
    rt::ForEachRank(ranks, [&](int p) {
      std::vector<int64_t> mine;
      for (int64_t key : delta) {
        if (rt->OwnerOf(key) == p) mine.push_back(key);
      }
      if (mine.empty()) return;
      rt::RankTimer t;
      std::vector<uint64_t> tuples_to(ranks, 0);
      internal::RunBodyForRank<V, Agg>(
          rt, p, mine, &merge_mu, &acc, &touched, &tuples_to,
          [&](int64_t key, const std::function<void(int64_t, V)>& emit) {
            expand(key, (*head)[key], emit);
          });
      internal::ChargeAll(rt, p, tuples_to, bytes_per_tuple);
      double seconds = t.Seconds();
      rt->clock()->RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("delta_join", "datalite", p, rounds - 1, seconds);
    });

    std::vector<int64_t> next_delta;
    for (size_t k = 0; k < head->size(); ++k) {
      if (!touched[k]) continue;
      V merged = Agg::Apply((*head)[k], acc[k]);
      if (merged != (*head)[k]) {
        (*head)[k] = merged;
        next_delta.push_back(static_cast<int64_t>(k));
      }
    }
    rt->clock()->EndStep(/*overlap_comm=*/false);
    delta = std::move(next_delta);
  }
  return rounds;
}

}  // namespace maze::datalog

#endif  // MAZE_DATALOG_ENGINE_H_
