#include "datalog/table.h"

#include <algorithm>
#include <numeric>

namespace maze::datalog {

void Table::TailNest(int64_t key_space) {
  MAZE_CHECK(key_space >= 0);
  key_space_ = key_space;
  size_t n = num_rows();

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (int c = 0; c < int_cols_; ++c) {
      if (ints_[c][a] != ints_[c][b]) return ints_[c][a] < ints_[c][b];
    }
    return a < b;
  });

  auto permute_i64 = [&](std::vector<int64_t>& col) {
    std::vector<int64_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = col[order[i]];
    col = std::move(out);
  };
  auto permute_f64 = [&](std::vector<double>& col) {
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = col[order[i]];
    col = std::move(out);
  };
  for (auto& c : ints_) permute_i64(c);
  for (auto& c : doubles_) permute_f64(c);

  offsets_.assign(static_cast<size_t>(key_space) + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    int64_t key = ints_[0][i];
    MAZE_CHECK(key >= 0 && key < key_space);
    ++offsets_[key + 1];
  }
  for (size_t k = 1; k < offsets_.size(); ++k) offsets_[k] += offsets_[k - 1];
  indexed_ = true;
}

bool Table::ContainsPair(int64_t a, int64_t b) const {
  MAZE_DCHECK(indexed_);
  MAZE_DCHECK(int_cols_ >= 2);
  if (a < 0 || a >= key_space_) return false;
  auto [begin, end] = Rows(a);
  const auto& col1 = ints_[1];
  auto lo = col1.begin() + static_cast<ptrdiff_t>(begin);
  auto hi = col1.begin() + static_cast<ptrdiff_t>(end);
  return std::binary_search(lo, hi, b);
}

}  // namespace maze::datalog
