// Columnar Datalog tables for the datalite (SociaLite-like) engine.
//
// SociaLite stores "the graph and its meta data ... in tables, and declarative
// rules are written to implement graph algorithms" (Section 3). Tables here are
// typed columns (int64 key/value columns plus double columns). A table whose
// first column is a dense vertex key can be "tail-nested" — SociaLite's term for
// grouping rows by the first column, "effectively implementing a CSR format used
// in the native implementation and CombBLAS".
#ifndef MAZE_DATALOG_TABLE_H_
#define MAZE_DATALOG_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace maze::datalog {

// Row-addressable typed column store. Rows are appended, then (optionally)
// sorted and indexed by the first int column.
class Table {
 public:
  Table(std::string name, int int_cols, int double_cols)
      : name_(std::move(name)), int_cols_(int_cols), double_cols_(double_cols) {
    MAZE_CHECK(int_cols >= 1);
    ints_.resize(int_cols);
    doubles_.resize(double_cols);
  }

  const std::string& name() const { return name_; }
  int int_cols() const { return int_cols_; }
  int double_cols() const { return double_cols_; }
  size_t num_rows() const { return ints_[0].size(); }

  void AppendRow(std::span<const int64_t> ints,
                 std::span<const double> doubles = {}) {
    MAZE_CHECK_EQ(static_cast<int>(ints.size()), int_cols_);
    MAZE_CHECK_EQ(static_cast<int>(doubles.size()), double_cols_);
    for (int c = 0; c < int_cols_; ++c) ints_[c].push_back(ints[c]);
    for (int c = 0; c < double_cols_; ++c) doubles_[c].push_back(doubles[c]);
    indexed_ = false;
  }

  int64_t Int(size_t row, int col) const { return ints_[col][row]; }
  double Double(size_t row, int col) const { return doubles_[col][row]; }

  // Sorts rows lexicographically by the int columns (stable for doubles) and
  // builds the tail-nested index: key k's rows are [offset[k], offset[k+1]).
  // Requires first-column keys in [0, key_space).
  void TailNest(int64_t key_space);

  bool indexed() const { return indexed_; }
  int64_t key_space() const { return key_space_; }

  // Row range for first-column key k (requires TailNest).
  std::pair<size_t, size_t> Rows(int64_t key) const {
    MAZE_DCHECK(indexed_);
    MAZE_DCHECK(key >= 0 && key < key_space_);
    return {offsets_[key], offsets_[key + 1]};
  }

  // Membership probe for an (int0, int1) pair via binary search inside the
  // key's row range (requires TailNest; rows within a key are sorted by col 1).
  bool ContainsPair(int64_t a, int64_t b) const;

  size_t MemoryBytes() const {
    size_t bytes = offsets_.size() * sizeof(size_t);
    for (const auto& c : ints_) bytes += c.size() * sizeof(int64_t);
    for (const auto& c : doubles_) bytes += c.size() * sizeof(double);
    return bytes;
  }

  // Wire size of one row (SociaLite ships whole tuples).
  size_t RowWireBytes() const {
    return static_cast<size_t>(int_cols_) * 8 +
           static_cast<size_t>(double_cols_) * 8;
  }

 private:
  std::string name_;
  int int_cols_;
  int double_cols_;
  std::vector<std::vector<int64_t>> ints_;
  std::vector<std::vector<double>> doubles_;
  bool indexed_ = false;
  int64_t key_space_ = 0;
  std::vector<size_t> offsets_;
};

}  // namespace maze::datalog

#endif  // MAZE_DATALOG_TABLE_H_
