#include "gmat/algorithms.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/graph.h"
#include "gmat/engine.h"
#include "matrix/semiring.h"
#include "native/cc.h"
#include "native/cf.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/timer.h"
#include "vertex/programs.h"

namespace maze::gmat {

// GraphMat is MPI-based, like CombBLAS.
rt::CommModel DefaultComm() { return rt::CommModel::Mpi(); }

rt::PageRankResult PageRank(const EdgeList& directed,
                            const rt::PageRankOptions& options,
                            rt::EngineConfig config) {
  Graph g = Graph::FromEdges(directed, GraphDirections::kOutOnly);
  vertex::PageRankProgram program;
  program.graph = &g;
  program.iterations = options.iterations;
  program.jump = options.jump;
  Engine<vertex::PageRankProgram> engine(directed, g, config);
  engine.Run(&program, options.iterations + 1);
  rt::PageRankResult result;
  result.ranks = engine.values();
  result.iterations = options.iterations;
  result.metrics = engine.Finish();
  return result;
}

rt::BfsResult Bfs(const EdgeList& undirected, const rt::BfsOptions& options,
                  rt::EngineConfig config) {
  Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
  vertex::BfsProgram program;
  program.source = options.source;
  Engine<vertex::BfsProgram> engine(undirected, g, config);
  int supersteps =
      engine.Run(&program, static_cast<int>(g.num_vertices()) + 2);
  rt::BfsResult result;
  result.distance = engine.values();
  result.levels = std::max(0, supersteps - 1);
  result.metrics = engine.Finish();
  return result;
}

rt::ConnectedComponentsResult ConnectedComponents(
    const EdgeList& undirected, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config) {
  Graph g = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
  vertex::CcProgram program;
  Engine<vertex::CcProgram> engine(undirected, g, config);
  int supersteps = engine.Run(&program, options.max_iterations);
  rt::ConnectedComponentsResult result;
  result.label = engine.values();
  result.num_components = native::CountComponents(result.label);
  result.iterations = supersteps;
  result.metrics = engine.Finish();
  return result;
}

rt::TriangleCountResult TriangleCount(const EdgeList& oriented,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config) {
  Graph g = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
  vertex::TriangleProgram program;
  program.graph = &g;
  Engine<vertex::TriangleProgram> engine(oriented, g, config);
  engine.Run(&program, 2);
  rt::TriangleCountResult result;
  for (uint64_t v : engine.values()) result.triangles += v;
  result.metrics = engine.Finish();
  return result;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config) {
  rt::CfOptions opt = options;
  opt.method = rt::CfMethod::kGd;
  // Combined vertex space with edges in both directions (vertexlab's layout,
  // so the two engines run the identical CfGdProgram).
  EdgeList edges;
  edges.num_vertices = g.num_users() + g.num_items();
  edges.edges.reserve(g.num_ratings() * 2);
  for (VertexId u = 0; u < g.num_users(); ++u) {
    for (const auto& e : g.UserRatings(u)) {
      edges.edges.push_back({u, g.num_users() + e.id});
      edges.edges.push_back({g.num_users() + e.id, u});
    }
  }
  Graph combined = Graph::FromEdges(edges, GraphDirections::kOutOnly);

  rt::CfResult result;
  result.k = opt.k;
  native::CfInitFactors(g.num_users(), opt.k, opt.seed, &result.user_factors);
  native::CfInitFactors(g.num_items(), opt.k, opt.seed ^ 0x1234567ull,
                        &result.item_factors);

  vertex::CfGdProgram program;
  program.ratings = &g;
  program.options = opt;
  program.user_count = g.num_users();
  program.gamma = opt.learning_rate;
  program.init_users = &result.user_factors;
  program.init_items = &result.item_factors;

  Engine<vertex::CfGdProgram> engine(edges, combined, config);
  engine.Run(&program, opt.iterations + 1);

  const auto& values = engine.values();
  for (VertexId u = 0; u < g.num_users(); ++u) {
    std::copy(values[u].begin(), values[u].end(),
              result.user_factors.begin() + static_cast<ptrdiff_t>(u) * opt.k);
  }
  for (VertexId v = 0; v < g.num_items(); ++v) {
    std::copy(values[g.num_users() + v].begin(),
              values[g.num_users() + v].end(),
              result.item_factors.begin() + static_cast<ptrdiff_t>(v) * opt.k);
  }
  result.iterations = opt.iterations;
  result.final_rmse =
      native::CfRmse(g, result.user_factors, result.item_factors, opt.k);
  result.rmse_per_iteration.push_back(result.final_rmse);
  result.metrics = engine.Finish();
  return result;
}

namespace {

// Weighted tile in gather form with a per-column transpose view only — SSSP's
// SpMSpV is always column-driven (the frontier is the set of vertices whose
// distance improved last round).
struct WeightedTile {
  VertexId row_begin = 0;
  VertexId col_begin = 0;
  VertexId col_end = 0;
  std::vector<EdgeId> col_offsets;  // Per local column.
  std::vector<VertexId> dsts;
  std::vector<float> weights;

  size_t MemoryBytes() const {
    return col_offsets.size() * sizeof(EdgeId) +
           dsts.size() * (sizeof(VertexId) + sizeof(float));
  }
};

}  // namespace

rt::SsspResult Sssp(const WeightedGraph& g, const rt::SsspOptions& options,
                    rt::EngineConfig config) {
  const VertexId n = g.num_vertices();
  const rt::Grid2D grid = rt::Grid2D::ForRanks(config.num_ranks);
  const int side = grid.side;
  rt::SimClock clock(config.num_ranks, config.comm, config.trace,
                     config.faults);

  // Vertex-balanced range bounds, the DistMatrix convention.
  std::vector<VertexId> bounds(side + 1);
  for (int i = 0; i <= side; ++i) {
    bounds[i] = static_cast<VertexId>(
        (static_cast<uint64_t>(n) * static_cast<uint64_t>(i)) / side);
  }
  auto range_of = [&](VertexId v) {
    auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
    return static_cast<int>(it - bounds.begin()) - 1;
  };

  // Tile the weighted adjacency: tile (i, j) holds arcs src in col-range j,
  // dst in row-range i, CSC per source column with destinations ascending.
  std::vector<WeightedTile> tiles(static_cast<size_t>(side) * side);
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      WeightedTile& t = tiles[grid.RankOf(i, j)];
      t.row_begin = bounds[i];
      t.col_begin = bounds[j];
      t.col_end = bounds[j + 1];
      t.col_offsets.assign(t.col_end - t.col_begin + 1, 0);
    }
  }
  for (VertexId u = 0; u < n; ++u) {
    const int j = range_of(u);
    for (const auto& arc : g.OutArcs(u)) {
      ++tiles[grid.RankOf(range_of(arc.dst), j)]
            .col_offsets[u - bounds[j] + 1];
    }
  }
  for (WeightedTile& t : tiles) {
    for (size_t c = 1; c < t.col_offsets.size(); ++c) {
      t.col_offsets[c] += t.col_offsets[c - 1];
    }
    t.dsts.resize(t.col_offsets.back());
    t.weights.resize(t.col_offsets.back());
  }
  {
    std::vector<std::vector<EdgeId>> cursor(tiles.size());
    for (size_t k = 0; k < tiles.size(); ++k) {
      cursor[k].assign(tiles[k].col_offsets.begin(),
                       tiles[k].col_offsets.end() - 1);
    }
    for (VertexId u = 0; u < n; ++u) {
      const int j = range_of(u);
      for (const auto& arc : g.OutArcs(u)) {
        const size_t k = grid.RankOf(range_of(arc.dst), j);
        EdgeId slot = cursor[k][u - bounds[j]]++;
        tiles[k].dsts[slot] = arc.dst;
        tiles[k].weights[slot] = arc.weight;
      }
    }
  }

  using Semi = matrix::MinPlus<float>;
  rt::SsspResult result;
  result.distance.assign(n, rt::SsspResult::kUnreachable);
  if (options.source < n) result.distance[options.source] = 0.0f;
  std::vector<float>& dist = result.distance;

  Bitvector frontier(n);
  Bitvector next(n);
  if (options.source < n) frontier.Set(options.source);
  std::vector<uint32_t> xs;
  std::vector<float> xval;

  int rounds = 0;
  while (frontier.Count() > 0 && rounds < static_cast<int>(n)) {
    ++rounds;
    // Snapshot the frontier's distances: tiles in grid row i write dist in
    // row-range i while tiles in grid column i read the same range, so the
    // relaxation reads the round-start values regardless of schedule.
    xs.clear();
    frontier.AppendSetBits(&xs);
    xval.resize(xs.size());
    for (size_t k = 0; k < xs.size(); ++k) xval[k] = dist[xs[k]];

    rt::ForEachRank(side, [&](int i) {
      for (int j = 0; j < side; ++j) {
        rt::RankTimer t;
        const WeightedTile& tile = tiles[grid.RankOf(i, j)];
        auto lo = std::lower_bound(xs.begin(), xs.end(), tile.col_begin);
        auto hi = std::lower_bound(lo, xs.end(), tile.col_end);
        for (auto it = lo; it != hi; ++it) {
          const VertexId src = *it;
          const float d_src = xval[it - xs.begin()];
          const VertexId c = src - tile.col_begin;
          for (EdgeId e = tile.col_offsets[c]; e < tile.col_offsets[c + 1];
               ++e) {
            const float cand = Semi::Multiply(d_src, tile.weights[e]);
            const VertexId dst = tile.dsts[e];
            if (cand < dist[dst]) {
              dist[dst] = cand;
              next.SetAtomic(dst);
            }
          }
        }
        clock.RecordCompute(grid.RankOf(i, j), t.Seconds());
      }
    });

    // Broadcast the frontier segments down their columns, reduce the improved
    // segments back to their diagonal owners; 8 bytes per (id, distance) pair.
    if (side > 1) {
      std::vector<uint64_t> xbytes(side, 0);
      std::vector<uint64_t> ybytes(side, 0);
      {
        int seg = 0;
        for (uint32_t v : xs) {
          while (v >= static_cast<uint32_t>(bounds[seg + 1])) ++seg;
          xbytes[seg] += 8;
        }
      }
      std::vector<uint32_t> ys;
      next.AppendSetBits(&ys);
      {
        int seg = 0;
        for (uint32_t v : ys) {
          while (v >= static_cast<uint32_t>(bounds[seg + 1])) ++seg;
          ybytes[seg] += 8;
        }
      }
      for (int j = 0; j < side; ++j) {
        if (xbytes[j] == 0) continue;
        for (int i = 0; i < side; ++i) {
          if (i != j) {
            clock.RecordSend(grid.RankOf(j, j), grid.RankOf(i, j), xbytes[j],
                             1);
          }
        }
      }
      for (int i = 0; i < side; ++i) {
        if (ybytes[i] == 0) continue;
        for (int j = 0; j < side; ++j) {
          if (j != i) {
            clock.RecordSend(grid.RankOf(i, j), grid.RankOf(i, i), ybytes[i],
                             1);
          }
        }
      }
    }
    clock.EndStep(/*overlap_comm=*/false);

    std::swap(frontier, next);
    next.Reset();
  }

  uint64_t tile_bytes = 0;
  for (const WeightedTile& t : tiles) tile_bytes += t.MemoryBytes();
  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     tile_bytes / std::max(1, config.num_ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(float));
  clock.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                     static_cast<uint64_t>(n) * 2 * sizeof(float));
  result.rounds = rounds;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.95);
  return result;
}

}  // namespace maze::gmat
