// The five paper workloads plus SSSP on the gmat compiling engine. Each entry
// point instantiates the *same* Program struct vertexlab interprets
// (vertex/programs.h) and hands it to gmat::Engine, which lowers supersteps to
// semiring SpMV. SSSP has no vertex-Program form (the concept cannot read edge
// weights), so it lowers directly over the MinPlus semiring of weighted tiles.
#ifndef MAZE_GMAT_ALGORITHMS_H_
#define MAZE_GMAT_ALGORITHMS_H_

#include "core/bipartite.h"
#include "core/edge_list.h"
#include "core/weighted_graph.h"
#include "rt/algo.h"

namespace maze::gmat {

rt::CommModel DefaultComm();

// `directed` is the deduplicated directed edge list.
rt::PageRankResult PageRank(const EdgeList& directed,
                            const rt::PageRankOptions& options,
                            rt::EngineConfig config);

// `undirected` must be symmetric.
rt::BfsResult Bfs(const EdgeList& undirected, const rt::BfsOptions& options,
                  rt::EngineConfig config);

// `undirected` must be symmetric.
rt::ConnectedComponentsResult ConnectedComponents(
    const EdgeList& undirected, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config);

// `oriented` must satisfy src < dst (§4.1.2 preprocessing).
rt::TriangleCountResult TriangleCount(const EdgeList& oriented,
                                      const rt::TriangleCountOptions& options,
                                      rt::EngineConfig config);

// Gradient-descent CF over the combined user+item vertex space (GD only, like
// every non-native engine, §3.2).
rt::CfResult CollaborativeFiltering(const BipartiteGraph& ratings,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config);

// Frontier-synchronous Bellman-Ford over MinPlus<float> weighted tiles.
rt::SsspResult Sssp(const WeightedGraph& g, const rt::SsspOptions& options,
                    rt::EngineConfig config);

}  // namespace maze::gmat

#endif  // MAZE_GMAT_ALGORITHMS_H_
