// gmat: the GraphMat-style compiling engine (PAPERS.md; same authors as the
// source paper). It accepts the exact vertex Program concept the interpreted
// vertexlab engine runs (vertex/engine.h), but instead of interpreting
// per-vertex sends it *lowers* each superstep to a generalized semiring SpMV
// over the 2-D-tiled adjacency matrix (gmat/lower.h):
//
//   superstep =  apply phase   : Compute() over active vertices on the
//                                diagonal ranks, producing the frontier x
//                ⊕.⊗ SpMV      : y = A^T x over the side×side tile grid,
//                                ⊕ = Program::Combine (or list concat)
//                swap          : y becomes next superstep's inbox
//
// The thesis (and the bench_gmat_ninja_gap gate): the lowered inner loops are
// tight gathers over CSR tiles — the same shape as native's hand-written
// kernels — so the engine should land within ~1.2× of the native what-if bound
// where the message-shuffling interpreter sits much further out.
//
// Modeled-cluster semantics mirror matblas (the other 2-D engine): vector
// segments live on the diagonal ranks; a superstep broadcasts x segments down
// their grid columns, runs tiles (grid rows concurrent, tiles within a row
// serial in ascending column order), then reduces y segments across grid rows.
// All wire charges are pure functions of the frontier and inbox contents, so
// accounting is schedule-invariant (rank_parallel_test) and byte-identical
// under transport fault plans (fault_injection_test).
#ifndef MAZE_GMAT_ENGINE_H_
#define MAZE_GMAT_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>
#include <vector>

#include "core/edge_list.h"
#include "core/graph.h"
#include "gmat/frontier.h"
#include "gmat/lower.h"
#include "obs/obs.h"
#include "rt/algo.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "vertex/engine.h"

namespace maze::gmat {

// Executes vertex Programs by superstep-at-a-time lowering to semiring SpMV.
// Interface-compatible with vertex::SyncEngine so the two can be compared
// per-superstep (gmat_lower_test) and per-run (cross_engine_test).
template <typename P>
class Engine {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  // `edges` is the same edge list `g` was built from; the engine compiles it
  // into the 2-D tiling while using `g` for Program::Init and out-degrees.
  // `config.num_ranks` must be a perfect square (CombBLAS's constraint,
  // rounded by bench::MakeConfig).
  Engine(const EdgeList& edges, const Graph& g, const rt::EngineConfig& config)
      : g_(g),
        config_(config),
        clock_(config.num_ranks, config.comm, config.trace, config.faults),
        lowered_(LoweredMatrix::Build(edges, config.num_ranks)) {}

  // Runs `program` for at most `max_supersteps`. Returns executed supersteps.
  int Run(P* program, int max_supersteps);

  const std::vector<Value>& values() const { return values_; }
  rt::RunMetrics Finish() { return clock_.Finish(kIntraRankUtilization); }
  rt::SimClock* clock() { return &clock_; }
  const LoweredMatrix& lowered() const { return lowered_; }

 private:
  // One vertex of the apply phase: feed the inbox to Compute, capture its
  // broadcast into the frontier x, and collect targeted sends. Takes raw
  // views (not the engine's containers) so callers can hoist them into
  // registers, and is forced inline because it sits on three hot call sites
  // that GCC's cost model otherwise declines to inline — capture reloads and
  // the unshared call are each worth ~4ns/vertex (bench_gmat_ninja_gap).
  template <bool kComb>
  [[gnu::always_inline]] static inline void ApplyVertex(
      P* prog, vertex::Context<Message>* ctx, VertexId v,
      const uint64_t* cur_has_w, const Message* cur_acc_p,
      const std::vector<Message>* cur_list_p, Value* values_p,
      Message* x_values_p, Bitvector* x_has_p, const EdgeId* out_off,
      bool atomic_x, std::vector<std::pair<VertexId, Message>>* chunk_out,
      bool* local_more) {
    const Message* msgs = nullptr;
    size_t count = 0;
    if constexpr (kComb) {
      if ((cur_has_w[v >> 6] >> (v & 63)) & 1u) {
        msgs = &cur_acc_p[v];
        count = 1;
      }
    } else {
      msgs = cur_list_p[v].data();
      count = cur_list_p[v].size();
    }
    ctx->Reset();
    *local_more |= prog->Compute(ctx, v, &values_p[v], msgs, count);
    if (ctx->send_all_ && out_off[v + 1] > out_off[v]) {
      x_values_p[v] = std::move(ctx->payload_);
      if (atomic_x) {
        x_has_p->SetAtomic(v);
      } else {
        x_has_p->Set(v);
      }
    }
    for (auto& [dst, msg] : ctx->targeted_) {
      chunk_out->emplace_back(dst, std::move(msg));
    }
  }

  // One vertex of the fused delivery+apply path. Under kAnyCombine the folded
  // inbox for a delivered vertex is exactly the (byte-identical) broadcast
  // payload, so the *next* superstep's Compute can run at first-delivery time
  // inside the ANY kernel — GraphMat's fused apply-scatter, which removes the
  // separate apply sweep native never pays for. ctx->superstep_ must already
  // be the consuming superstep's index.
  [[gnu::always_inline]] static inline void FusedApplyVertex(
      P* prog, vertex::Context<Message>* ctx, VertexId dst, const Message& msg,
      Value* values_p, Message* x2_values_p, Bitvector* x2_has_p,
      const EdgeId* out_off,
      std::vector<std::pair<VertexId, Message>>* chunk_out) {
    ctx->Reset();
    prog->Compute(ctx, dst, &values_p[dst], &msg, 1);
    if (ctx->send_all_ && out_off[dst + 1] > out_off[dst]) {
      x2_values_p[dst] = std::move(ctx->payload_);
      x2_has_p->Set(dst);
    }
    for (auto& [t, m] : ctx->targeted_) {
      chunk_out->emplace_back(t, std::move(m));
    }
  }

  // Compiled kernels keep nearly every core on useful gathers; a notch below
  // native's hand-scheduled loops, well above the interpreter.
  static constexpr double kIntraRankUtilization = 0.95;
  // A frontier this sparse (< n/8 broadcasters) switches the combinable path
  // to the column-driven SpMSpV kernel. Pure function of the frontier, so the
  // kernel choice is identical across schedules.
  static constexpr uint64_t kSparseDenominator = 8;

  const Graph& g_;
  rt::EngineConfig config_;
  rt::SimClock clock_;
  LoweredMatrix lowered_;
  std::vector<Value> values_;
};

template <typename P>
int Engine<P>::Run(P* program, int max_supersteps) {
  const VertexId n = g_.num_vertices();
  const int side = lowered_.side();
  const matrix::DistMatrix& m = lowered_.matrix();
  constexpr bool kCombinable = P::kCombinable;

  values_.resize(n);
  for (VertexId v = 0; v < n; ++v) program->Init(v, g_, &values_[v]);

  // Vertices that broadcast when they send at all; the frontier equals this
  // set exactly on all-active broadcast supersteps, which is what licenses the
  // branch-free dense kernel.
  VertexId broadcasters = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (g_.OutDegree(v) > 0) ++broadcasters;
  }

  // Double-buffered inboxes, same shape as the interpreter's: accumulator +
  // has-bit per vertex for combinable programs, message lists otherwise.
  std::vector<Message> cur_acc(kCombinable ? n : 0);
  std::vector<Message> next_acc(kCombinable ? n : 0);
  Bitvector cur_has(n);
  Bitvector next_has(n);
  std::vector<std::vector<Message>> cur_list(kCombinable ? 0 : n);
  std::vector<std::vector<Message>> next_list(kCombinable ? 0 : n);

  // Every vertex runs in superstep 0 so sparse programs can seed themselves.
  Bitvector active(n);
  for (VertexId v = 0; v < n; ++v) active.Set(v);

  SparseVec<Message> x(n);
  std::vector<uint32_t> bits;         // Scratch for set-bit extraction.
  std::vector<uint32_t> active_bits;  // Scratch for sparse apply sweeps.
  uint64_t wire_buffer_peak = 0;

  // Fused apply-scatter staging (kAnyCombine, single rank): when the ANY
  // kernel runs the next superstep's Compute at delivery time, the frontier
  // and targeted sends it produces are stashed here and consumed — in place
  // of the apply phase — by the next loop iteration.
  constexpr bool kFusable =
      kCombinable && AnyCombineTrait<P>::value && !P::kAllActive;
  SparseVec<Message> x2(kFusable && side == 1 ? n : 0);
  std::vector<std::pair<VertexId, Message>> fused_targeted;
  bool fused_pending = false;

  // When every vertex-segment boundary falls on a 64-bit word boundary —
  // always at one rank — concurrent rank tasks never touch the same has-word
  // and the kernels can skip the per-delivery atomic RMW. Pure function of the
  // partition, so the choice is identical across schedules.
  bool aligned = true;
  for (int d = 0; d < side; ++d) {
    aligned = aligned && m.RangeBegin(d) % 64 == 0;
  }
  const bool atomic_bits = !aligned;

  int superstep = 0;
  for (; superstep < max_supersteps; ++superstep) {
    std::atomic<bool> wants_more{false};
    // Targeted sends (ctx->SendTo) can't lower to the broadcast SpMV; they are
    // collected per fixed-size vertex chunk so delivery order is a function of
    // vertex ids alone, never of which pool thread ran the chunk.
    std::vector<std::vector<std::pair<VertexId, Message>>> targeted(side);

    if (fused_pending) {
      // The previous iteration's fused ANY kernel already ran this
      // superstep's Compute at delivery time; adopt its frontier and
      // targeted sends instead of sweeping the active set again.
      std::swap(x, x2);
      targeted[0] = std::move(fused_targeted);
      fused_targeted.clear();
      fused_pending = false;
    } else {
      x.Clear();

    // A sparse active set (BFS/CC wavefronts) is swept via its set-bit list
    // instead of scanning every vertex: frontier-driven apply, the other half
    // of the GraphMat recipe. The chunk decomposition — vertex-id blocks when
    // dense, ascending-list slices when sparse — is a pure function of the
    // active set, and both enumerate each segment in ascending vertex order,
    // so targeted-send collection is schedule- and path-invariant.
    const uint64_t active_count = active.Count();
    const bool all_active = active_count == static_cast<uint64_t>(n);
    const bool sparse_apply =
        active_count * kSparseDenominator < static_cast<uint64_t>(n);
    active_bits.clear();
    if (sparse_apply) active.AppendSetBits(&active_bits);

    // Apply phase: diagonal rank d runs Compute over its vertex segment.
    rt::ForEachRank(side, [&](int d) {
      MAZE_OBS_SPAN("superstep", "gmat", lowered_.DiagRank(d), superstep);
      rt::RankTimer compute_timer;
      const VertexId seg_begin = m.RangeBegin(d);
      const VertexId seg_end = m.RangeEnd(d);
      const VertexId seg_len = seg_end - seg_begin;
      constexpr VertexId kChunk = 512;
      const uint32_t* slice = nullptr;
      size_t slice_len = 0;
      if (sparse_apply) {
        auto lo = std::lower_bound(active_bits.begin(), active_bits.end(),
                                   seg_begin);
        auto hi = std::lower_bound(lo, active_bits.end(), seg_end);
        slice = active_bits.data() + (lo - active_bits.begin());
        slice_len = static_cast<size_t>(hi - lo);
      }
      const VertexId num_chunks =
          sparse_apply
              ? static_cast<VertexId>((slice_len + kChunk - 1) / kChunk)
              : (seg_len + kChunk - 1) / kChunk;
      std::vector<std::vector<std::pair<VertexId, Message>>> chunk_targeted(
          num_chunks);
      ParallelFor(num_chunks, 1, [&](uint64_t clo, uint64_t chi) {
        vertex::Context<Message> ctx;
        ctx.superstep_ = superstep;
        bool local_more = false;
        // Raw views hoisted into locals: the per-vertex stores inside
        // ApplyVertex cannot alias these, so they stay in registers instead
        // of being reloaded from lambda captures on every vertex (a ~2x
        // apply-phase tax, measured by bench_gmat_ninja_gap).
        P* const prog = program;
        Value* const values_p = values_.data();
        const uint64_t* const cur_has_w = cur_has.words();
        const Message* const cur_acc_p = cur_acc.data();
        const std::vector<Message>* const cur_list_p = cur_list.data();
        Message* const x_values_p = x.values.data();
        Bitvector* const x_has_p = &x.has;
        const EdgeId* const out_off = g_.out_offsets().data();
        const uint64_t* const act_w = active.words();
        // List-sliced chunks can share a has-word; id-blocked chunks cannot
        // once the partition is aligned.
        const bool atomic_x = sparse_apply || atomic_bits;
        for (VertexId c = static_cast<VertexId>(clo);
             c < static_cast<VertexId>(chi); ++c) {
          auto* const chunk_out = &chunk_targeted[c];
          if (sparse_apply) {
            const size_t p_end =
                std::min(slice_len, static_cast<size_t>(c + 1) * kChunk);
            for (size_t pi = static_cast<size_t>(c) * kChunk; pi < p_end;
                 ++pi) {
              ApplyVertex<kCombinable>(prog, &ctx, slice[pi], cur_has_w,
                                       cur_acc_p, cur_list_p, values_p,
                                       x_values_p, x_has_p, out_off, atomic_x,
                                       chunk_out, &local_more);
            }
          } else if (all_active) {
            const VertexId v_end =
                seg_begin + std::min(seg_len, (c + 1) * kChunk);
            for (VertexId v = seg_begin + c * kChunk; v < v_end; ++v) {
              ApplyVertex<kCombinable>(prog, &ctx, v, cur_has_w, cur_acc_p,
                                       cur_list_p, values_p, x_values_p,
                                       x_has_p, out_off, atomic_x, chunk_out,
                                       &local_more);
            }
          } else {
            // Mid-density active sets: hop set bit to set bit inside the
            // chunk's id range, skipping empty 64-vertex words whole — the
            // same ascending order as a plain scan, without paying a test per
            // inactive vertex.
            const VertexId v_end =
                seg_begin + std::min(seg_len, (c + 1) * kChunk);
            VertexId v = seg_begin + c * kChunk;
            while (v < v_end) {
              const uint64_t w = act_w[v >> 6] >> (v & 63);
              if (w == 0) {
                v = (v | 63) + 1;
                continue;
              }
              v += static_cast<VertexId>(std::countr_zero(w));
              if (v >= v_end) break;
              ApplyVertex<kCombinable>(prog, &ctx, v, cur_has_w, cur_acc_p,
                                       cur_list_p, values_p, x_values_p,
                                       x_has_p, out_off, atomic_x, chunk_out,
                                       &local_more);
              ++v;
            }
          }
        }
        if (local_more) wants_more.store(true, std::memory_order_relaxed);
      });
      for (auto& ct : chunk_targeted) {
        targeted[d].insert(targeted[d].end(),
                           std::make_move_iterator(ct.begin()),
                           std::make_move_iterator(ct.end()));
      }
      double seconds = compute_timer.Seconds();
      clock_.RecordCompute(lowered_.DiagRank(d), seconds);
      obs::EmitSpanEndingNow("compute", "gmat", lowered_.DiagRank(d), superstep,
                             seconds);
    });
    }  // !fused_pending

    // SpMV phase: y = A^T ⊗.⊕ x over the tile grid. Grid rows own disjoint
    // destination ranges and run concurrently; tiles within a row go serially
    // in ascending column order so per-destination ⊕ order is ascending
    // global source — the interpreter's single-rank order.
    const uint64_t x_count = x.Count();
    bool use_col_kernel = kCombinable && x_count != broadcasters &&
                          x_count * kSparseDenominator <
                              static_cast<uint64_t>(n);
    // Cardinality alone misleads on skewed graphs: a numerically small
    // frontier that contains the hubs drags most of the edge set through the
    // column (push) kernel. When the early-exit ANY kernel is available,
    // divert such frontiers to it using the paper's direction-optimization
    // criterion — push only while the frontier covers < 1/kPushDegreeCutoff
    // of the edges (native BFS's 5% bottom-up switch). Frontier degree is a
    // pure function of (x, graph), so the choice stays schedule-invariant.
    if constexpr (AnyCombineTrait<P>::value) {
      if (use_col_kernel) {
        constexpr uint64_t kPushDegreeCutoff = 20;
        const EdgeId* const out_off = g_.out_offsets().data();
        bits.clear();
        x.has.AppendSetBits(&bits);
        uint64_t frontier_degree = 0;
        for (uint32_t v : bits) frontier_degree += out_off[v + 1] - out_off[v];
        if (frontier_degree * kPushDegreeCutoff >=
            static_cast<uint64_t>(g_.num_edges())) {
          use_col_kernel = false;
        }
      }
    }
    // Fuse the next superstep's apply into this superstep's ANY kernel when
    // that is exact: kAnyCombine picks the ANY kernel, a single rank means no
    // wire phase reads the accumulator, no targeted send can still land in
    // this superstep's inbox, the program's activity is message-driven (not
    // kAllActive), and the next superstep is within the caller's cap.
    bool fuse_apply = false;
    if constexpr (kFusable) {
      fuse_apply = side == 1 && x_count > 0 && x_count != broadcasters &&
                   !use_col_kernel && targeted[0].empty() &&
                   superstep + 1 < max_supersteps;
    }
    bits.clear();
    if (use_col_kernel || side > 1) x.has.AppendSetBits(&bits);
    if (x_count > 0 && fuse_apply) {
      if constexpr (kFusable) {
        rt::RankTimer tile_timer;
        const matrix::Tile& t = lowered_.tile(0, 0);
        x2.Clear();
        // Every broadcast payload is byte-identical under kAnyCombine; load
        // it once (first frontier member) like the unfused ANY kernel does.
        const uint64_t* const xw_scan = x.has.words();
        size_t w0 = 0;
        while (xw_scan[w0] == 0) ++w0;
        const Message msg =
            x.values[w0 * 64 +
                     static_cast<size_t>(std::countr_zero(xw_scan[w0]))];
        constexpr VertexId kChunk = 512;
        const VertexId num_rows = static_cast<VertexId>(t.num_rows());
        const VertexId num_chunks = (num_rows + kChunk - 1) / kChunk;
        std::vector<std::vector<std::pair<VertexId, Message>>> chunk_targeted(
            num_chunks);
        ParallelFor(num_chunks, 1, [&](uint64_t clo, uint64_t chi) {
          vertex::Context<Message> ctx;
          ctx.superstep_ = superstep + 1;
          P* const prog = program;
          Value* const values_p = values_.data();
          const EdgeId* const off = t.offsets.data();
          const VertexId* const srcs = t.sources.data();
          const uint64_t* const xw = x.has.words();
          Message* const x2_values_p = x2.values.data();
          Bitvector* const x2_has_p = &x2.has;
          Bitvector* const nh = &next_has;
          const EdgeId* const out_off = g_.out_offsets().data();
          const Message msg_local = msg;
          for (VertexId c = static_cast<VertexId>(clo);
               c < static_cast<VertexId>(chi); ++c) {
            auto* const chunk_out = &chunk_targeted[c];
            const VertexId r_end = std::min(num_rows, (c + 1) * kChunk);
            for (VertexId r = c * kChunk; r < r_end; ++r) {
              // Complemented mask (kConvergedSkip): delivery to a converged
              // row followed by its no-op Compute is indistinguishable from
              // skipping the row, so don't even scan its in-edges — native
              // BFS's visited-skip, legal here only because delivery and
              // apply are fused.
              if constexpr (ConvergedSkipTrait<P>::value) {
                if (P::Converged(values_p[r])) continue;
              }
              const EdgeId e_end = off[r + 1];
              for (EdgeId e = off[r]; e < e_end; ++e) {
                if (((xw[srcs[e] >> 6] >> (srcs[e] & 63)) & 1u) == 0) {
                  continue;
                }
                // First (and only effective) delivery: record receipt for
                // termination/active bookkeeping, then run the consuming
                // superstep's Compute right here. Chunks are 512-aligned and
                // side==1 row-partitions the bit words, so plain Set is safe.
                nh->Set(r);
                FusedApplyVertex(prog, &ctx, r, msg_local, values_p,
                                 x2_values_p, x2_has_p, out_off, chunk_out);
                break;
              }
            }
          }
        });
        for (auto& ct : chunk_targeted) {
          fused_targeted.insert(fused_targeted.end(),
                                std::make_move_iterator(ct.begin()),
                                std::make_move_iterator(ct.end()));
        }
        fused_pending = true;
        double seconds = tile_timer.Seconds();
        clock_.RecordCompute(lowered_.RankOf(0, 0), seconds);
        obs::EmitSpanEndingNow("spmv", "gmat", lowered_.RankOf(0, 0),
                               superstep, seconds);
      }
    } else if (x_count > 0) {
      rt::ForEachRank(side, [&](int i) {
        for (int j = 0; j < side; ++j) {
          rt::RankTimer tile_timer;
          if constexpr (kCombinable) {
            if (x_count == broadcasters) {
              LowerTileRowDense<P>(lowered_.tile(i, j), x.values, &next_acc,
                                   &next_has, atomic_bits);
            } else if (use_col_kernel) {
              auto lo = std::lower_bound(bits.begin(), bits.end(),
                                         m.RangeBegin(j));
              auto hi = std::lower_bound(lo, bits.end(), m.RangeEnd(j));
              LowerTileColSparse<P>(lowered_.tileT(i, j), m.RangeBegin(j),
                                    &*lo, static_cast<size_t>(hi - lo),
                                    x.values, &next_acc, &next_has,
                                    atomic_bits);
            } else if constexpr (AnyCombineTrait<P>::value) {
              LowerTileRowAny<P>(lowered_.tile(i, j), x.has, x.values,
                                 &next_acc, &next_has, atomic_bits);
            } else {
              LowerTileRowMasked<P>(lowered_.tile(i, j), x.has, x.values,
                                    &next_acc, &next_has, atomic_bits);
            }
          } else {
            LowerTileRowList<P>(lowered_.tile(i, j), x.has, x.values,
                                &next_list, &next_has, atomic_bits);
          }
          double seconds = tile_timer.Seconds();
          clock_.RecordCompute(lowered_.RankOf(i, j), seconds);
          obs::EmitSpanEndingNow("spmv", "gmat", lowered_.RankOf(i, j),
                                 superstep, seconds);
        }
      });
    }

    // Wire accounting, before targeted delivery so the reduce bytes cover only
    // SpMV results. Broadcast: segment j's frontier payload goes from its
    // diagonal owner to every tile of grid column j. Reduce: segment i's
    // combined inbox comes back to its diagonal owner from grid row i. Both
    // are functions of (x, y) contents only — schedule-invariant by
    // construction.
    if (side > 1) {
      std::vector<uint64_t> xbytes(side, 0);
      std::vector<uint64_t> ybytes(side, 0);
      {
        int seg = 0;
        for (uint32_t v : bits) {
          while (v >= static_cast<uint32_t>(m.RangeEnd(seg))) ++seg;
          xbytes[seg] += 4 + P::MessageWireBytes(x.values[v]);
        }
      }
      bits.clear();
      next_has.AppendSetBits(&bits);
      {
        int seg = 0;
        for (uint32_t dst : bits) {
          while (dst >= static_cast<uint32_t>(m.RangeEnd(seg))) ++seg;
          if constexpr (kCombinable) {
            ybytes[seg] += 4 + P::MessageWireBytes(next_acc[dst]);
          } else {
            for (const Message& msg : next_list[dst]) {
              ybytes[seg] += 4 + P::MessageWireBytes(msg);
            }
          }
        }
      }
      uint64_t step_wire = 0;
      for (int j = 0; j < side; ++j) {
        if (xbytes[j] == 0) continue;
        for (int i = 0; i < side; ++i) {
          if (i == j) continue;
          clock_.RecordSend(lowered_.DiagRank(j), lowered_.RankOf(i, j),
                            xbytes[j], 1);
          step_wire += xbytes[j];
        }
      }
      for (int i = 0; i < side; ++i) {
        if (ybytes[i] == 0) continue;
        for (int j = 0; j < side; ++j) {
          if (j == i) continue;
          clock_.RecordSend(lowered_.RankOf(i, j), lowered_.DiagRank(i),
                            ybytes[i], 1);
          step_wire += ybytes[i];
        }
      }
      wire_buffer_peak = std::max(wire_buffer_peak, step_wire);
      // Transient wire-buffer charge, released at hand-off (vertexlab's
      // convention), so the per-step message-buffer watermark sees it.
      clock_.ChargeMemory(0, obs::MemPhase::kMessageBuffers, step_wire);
      clock_.ReleaseMemory(0, obs::MemPhase::kMessageBuffers, step_wire);
    }

    // Targeted deliveries, serial in segment order then collection order:
    // point-to-point sends between diagonal owners.
    for (int d = 0; d < side; ++d) {
      if (targeted[d].empty()) continue;
      rt::RankTimer route_timer;
      std::vector<uint64_t> bytes_to(side, 0);
      for (auto& [dst, msg] : targeted[d]) {
        const int o = m.RangeOf(dst);
        if (o != d) bytes_to[o] += 4 + P::MessageWireBytes(msg);
        if constexpr (kCombinable) {
          ProgramSemiring<P>::Accumulate(&next_acc[dst],
                                         !next_has.Test(dst), msg);
          next_has.Set(dst);
        } else {
          next_list[dst].push_back(std::move(msg));
          next_has.Set(dst);
        }
      }
      for (int o = 0; o < side; ++o) {
        if (bytes_to[o] > 0) {
          clock_.RecordSend(lowered_.DiagRank(d), lowered_.DiagRank(o),
                            bytes_to[o], 1);
        }
      }
      clock_.RecordCompute(lowered_.DiagRank(d), route_timer.Seconds());
    }

    // The broadcast and reduce are distinct bulk phases; no overlap (unlike
    // vertexlab's streamed sends).
    clock_.EndStep(/*overlap_comm=*/false);

    // Swap inboxes.
    if constexpr (kCombinable) {
      std::swap(cur_acc, next_acc);
    } else {
      std::swap(cur_list, next_list);
      for (auto& l : next_list) l.clear();
    }
    std::swap(cur_has, next_has);
    next_has.Reset();

    if (P::kAllActive) {
      if (!wants_more.load(std::memory_order_relaxed)) {
        ++superstep;
        break;
      }
      // `active` stays all-set.
    } else if (fused_pending) {
      // The fused kernel may have masked converged receivers, so the
      // delivered count under-reports the unmasked world's deliveries. But
      // every frontier member has out-edges (x only admits senders with
      // out-degree > 0), so a nonempty x guarantees the interpreter delivered
      // something and ran another superstep; the next iteration consumes the
      // stashed frontier and terminates on its own emptiness, matching the
      // interpreter's step count exactly.
      active = cur_has;
    } else if (cur_has.Count() == 0) {
      ++superstep;
      break;
    } else {
      active = cur_has;
    }
  }

  // Footprint: compiled tiles (pattern + transpose) sliced across ranks, the
  // value array, and the double-buffered accumulator + wire buffers.
  uint64_t state_bytes = static_cast<uint64_t>(n) * sizeof(Value);
  uint64_t acc_bytes = kCombinable
                           ? static_cast<uint64_t>(n) * sizeof(Message) * 2
                           : wire_buffer_peak * 2;
  clock_.ChargeMemory(0, obs::MemPhase::kGraph,
                      lowered_.MemoryBytes() /
                          std::max(1, config_.num_ranks));
  clock_.ChargeMemory(0, obs::MemPhase::kEngineState, state_bytes);
  clock_.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                      acc_bytes + wire_buffer_peak);
  return superstep;
}

}  // namespace maze::gmat

#endif  // MAZE_GMAT_ENGINE_H_
