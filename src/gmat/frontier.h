// Sparse frontier vector for the gmat lowering: the set of vertices that
// broadcast this superstep (the GraphMat "sparse vector" x in y = A^T (x)),
// stored as a membership bitset plus a dense payload array indexed by vertex.
//
// The dense payload keeps the SpMV inner loop branch-free on the all-active
// path (PageRank, CF) while the bitset carries the sparsity the BFS/CC path
// exploits; both views describe the same frontier, so kernels pick whichever
// access pattern fits their traversal order.
#ifndef MAZE_GMAT_FRONTIER_H_
#define MAZE_GMAT_FRONTIER_H_

#include <vector>

#include "core/types.h"
#include "util/bitvector.h"

namespace maze::gmat {

template <typename Payload>
struct SparseVec {
  explicit SparseVec(VertexId n) : has(n), values(n) {}

  // Membership: has.Test(v) iff v broadcast this superstep. Written with
  // SetAtomic during the compute phase (concurrent rank tasks share words at
  // segment boundaries), read-only during the SpMV phase.
  Bitvector has;
  std::vector<Payload> values;

  void Clear() { has.Reset(); }
  uint64_t Count() const { return has.Count(); }
};

}  // namespace maze::gmat

#endif  // MAZE_GMAT_FRONTIER_H_
