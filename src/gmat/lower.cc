#include "gmat/lower.h"

#include <utility>

namespace maze::gmat {

LoweredMatrix LoweredMatrix::Build(const EdgeList& edges, int num_ranks) {
  LoweredMatrix lm;
  lm.m_ = matrix::DistMatrix::FromEdges(edges, num_ranks);
  const int side = lm.m_.grid().side;
  lm.transpose_.resize(static_cast<size_t>(side) * side);
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      const matrix::Tile& t = lm.m_.tile(i, j);
      TileTranspose& tt = lm.transpose_[lm.m_.grid().RankOf(i, j)];
      const VertexId cols = t.col_end - t.col_begin;
      tt.col_offsets.assign(cols + 1, 0);
      for (VertexId src : t.sources) ++tt.col_offsets[src - t.col_begin + 1];
      for (VertexId c = 0; c < cols; ++c) {
        tt.col_offsets[c + 1] += tt.col_offsets[c];
      }
      tt.dsts.resize(t.nnz());
      std::vector<EdgeId> cursor(tt.col_offsets.begin(),
                                 tt.col_offsets.end() - 1);
      // Rows ascending, so each column's destination list comes out ascending —
      // the order the column-driven kernel relies on.
      for (VertexId r = 0; r < t.num_rows(); ++r) {
        for (EdgeId e = t.offsets[r]; e < t.offsets[r + 1]; ++e) {
          tt.dsts[cursor[t.sources[e] - t.col_begin]++] = t.row_begin + r;
        }
      }
    }
  }
  return lm;
}

size_t LoweredMatrix::MemoryBytes() const {
  size_t total = m_.MemoryBytes();
  for (const TileTranspose& tt : transpose_) total += tt.MemoryBytes();
  return total;
}

}  // namespace maze::gmat
