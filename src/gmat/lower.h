// The vertex→matrix lowering (the GraphMat recipe): one superstep of a vertex
// Program is a generalized SpMV y = A^T ⊗.⊕ x over the 2-D-tiled adjacency
// matrix, where
//   - x is the sparse frontier of broadcast payloads (frontier.h),
//   - ⊗ is "read the source's payload" (broadcast semantics: every out-edge
//     carries the same message, so Multiply is projection onto the x operand),
//   - ⊕ is the Program's Combine for combinable programs, or free-monoid
//     concatenation (message lists) for non-combinable ones,
//   - the additive identity is *absence*: a has-bit per destination stands in
//     for ⊕'s identity element, and a source outside the frontier is the
//     annihilator of ⊗ (it contributes nothing to any destination).
//
// ProgramSemiring packages that adapter; gmat_lower_test checks its algebra
// (identity/annihilator laws) and that one lowered superstep reproduces the
// interpreted SyncEngine superstep message-for-message.
//
// Determinism invariant (load-bearing for the differential + fault suites):
// every kernel combines into a destination in ascending global source order —
// tile rows store sources ascending, the per-tile transpose stores them
// ascending per column, and tiles within a grid row are processed serially in
// ascending column order. This is the same per-destination order the
// interpreted engine produces at one rank, which is what makes vertexlab-vs-
// gmat value comparisons exact rather than approximate.
#ifndef MAZE_GMAT_LOWER_H_
#define MAZE_GMAT_LOWER_H_

#include <bit>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/edge_list.h"
#include "core/types.h"
#include "gmat/frontier.h"
#include "matrix/dist_matrix.h"
#include "util/bitvector.h"
#include "util/thread_pool.h"

namespace maze::gmat {

// Maps a vertex Program's message algebra onto (⊕, ⊗) with explicit
// absence-as-identity. Only combinable programs have a ⊕; non-combinable ones
// lower to the free monoid (LowerTileRowList below).
// Detects P::kAnyCombine: the Program's promise that every message broadcast
// in one superstep is byte-identical, so ⊕ acts as GraphBLAS's ANY operator
// and any single message equals the full fold. Level-synchronous BFS qualifies
// — all frontier members broadcast the same distance — which licenses the
// pull-style early-exit kernel below (the semiring form of direction-optimized
// BFS) and lets it load the payload once per tile.
template <typename P, typename = void>
struct AnyCombineTrait : std::false_type {};
template <typename P>
struct AnyCombineTrait<P, std::void_t<decltype(P::kAnyCombine)>>
    : std::bool_constant<P::kAnyCombine> {};

// Detects P::kConvergedSkip + P::Converged(value): the Program's promise that
// Compute on a converged vertex is a no-op in every later superstep (no value
// change, no sends) and that convergence is monotone. This is GraphBLAS's
// complemented mask / Ligra's `cond`. The engine may then skip converged rows
// in its *fused* delivery+apply kernel — delivering to such a row followed by
// a no-op apply is indistinguishable from not scanning it at all — which is
// exactly native BFS's visited-skip, recovered without breaking the vertex
// abstraction. Pure-delivery kernels in this file never mask: their contract
// is the interpreter's full inbox.
template <typename P, typename = void>
struct ConvergedSkipTrait : std::false_type {};
template <typename P>
struct ConvergedSkipTrait<P, std::void_t<decltype(P::kConvergedSkip)>>
    : std::bool_constant<P::kConvergedSkip> {};

template <typename P>
struct ProgramSemiring {
  using Message = typename P::Message;

  // ⊕-accumulate `m` into the slot for `dst`. `first` is true when the slot
  // still holds the identity (no message yet): the identity law `id ⊕ m = m`
  // is implemented by overwriting, never by evaluating Combine against a
  // made-up zero, so Programs without a representable identity (min over
  // uint32_t, say) stay exact.
  static void Accumulate(Message* slot, bool first, const Message& m) {
    *slot = first ? m : P::Combine(*slot, m);
  }
};

// Per-tile transpose: CSC over the tile's source columns, used by the
// column-driven sparse kernel (SpMSpV) so a small frontier only touches its own
// columns instead of scanning every destination row.
struct TileTranspose {
  std::vector<EdgeId> col_offsets;  // col_end - col_begin + 1 entries.
  std::vector<VertexId> dsts;       // Global destination ids, ascending per col.

  size_t MemoryBytes() const {
    return col_offsets.size() * sizeof(EdgeId) + dsts.size() * sizeof(VertexId);
  }
};

// The compiled form of the graph: the matblas 2-D tiling plus a per-tile
// transpose. Both orientations exist so the engine can pick row-driven (dense
// frontier) or column-driven (sparse frontier) kernels per superstep without
// rebuilding anything.
class LoweredMatrix {
 public:
  static LoweredMatrix Build(const EdgeList& edges, int num_ranks);

  const matrix::DistMatrix& matrix() const { return m_; }
  int side() const { return m_.grid().side; }
  int RankOf(int row, int col) const { return m_.grid().RankOf(row, col); }
  // The diagonal rank owning vertex-range d (vector segments live on the
  // diagonal, as in matblas).
  int DiagRank(int d) const { return m_.grid().RankOf(d, d); }

  const matrix::Tile& tile(int row, int col) const { return m_.tile(row, col); }
  const TileTranspose& tileT(int row, int col) const {
    return transpose_[m_.grid().RankOf(row, col)];
  }

  size_t MemoryBytes() const;

 private:
  matrix::DistMatrix m_;
  std::vector<TileTranspose> transpose_;
};

// --- Tile kernels -------------------------------------------------------------
// All kernels deliver into (acc, has) with a test-and-set on the destination's
// has-bit as the only bit write: destination rows are private to one grid row,
// but adjacent segments can share 64-bit words at the boundary, so by default
// the RMW is atomic (TSan-clean without per-destination locks). When every
// segment boundary is 64-aligned — always at one rank — no two workers ever
// touch the same word and the caller passes `atomic_bits = false` to use plain
// loads/stores (an uncontended atomic RMW still costs several times a store,
// and there is one per delivery).

// First-delivery test: returns true when `dst` had no message yet, marking it.
inline bool FirstDelivery(Bitvector* has, VertexId dst, bool atomic_bits) {
  if (atomic_bits) return has->TestAndSetAtomic(dst);
  if (has->Test(dst)) return false;
  has->Set(dst);
  return true;
}

// Row-driven, frontier == all broadcasters: branch-free gather down each tile
// row. The first source initializes the ⊕-chain (identity law), so at one rank
// a PageRank row reduces in exactly native's ascending-source order.
template <typename P>
void LowerTileRowDense(const matrix::Tile& t,
                       const std::vector<typename P::Message>& payload,
                       std::vector<typename P::Message>* acc, Bitvector* has,
                       bool atomic_bits = true) {
  using Message = typename P::Message;
  ParallelFor(t.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
    // Raw views hoisted into locals so the delivery stores below provably
    // don't alias them — they stay in registers instead of being reloaded
    // from lambda captures every row (a measurable per-row tax; see the
    // matching note in engine.h's apply phase).
    const EdgeId* const off = t.offsets.data();
    const VertexId* const srcs = t.sources.data();
    const Message* const pay = payload.data();
    Message* const out = acc->data();
    Bitvector* const hb = has;
    const VertexId row0 = t.row_begin;
    for (VertexId r = static_cast<VertexId>(lo); r < static_cast<VertexId>(hi);
         ++r) {
      EdgeId e = off[r];
      const EdgeId e_end = off[r + 1];
      if (e == e_end) continue;
      Message sum = pay[srcs[e]];
      for (++e; e < e_end; ++e) {
        sum = P::Combine(sum, pay[srcs[e]]);
      }
      const VertexId dst = row0 + r;
      ProgramSemiring<P>::Accumulate(&out[dst],
                                     FirstDelivery(hb, dst, atomic_bits), sum);
    }
  });
}

// Row-driven with a frontier mask: sources outside x are the ⊗-annihilator and
// are skipped. Mid-density frontiers (CC after the first few supersteps).
template <typename P>
void LowerTileRowMasked(const matrix::Tile& t, const Bitvector& x_has,
                        const std::vector<typename P::Message>& payload,
                        std::vector<typename P::Message>* acc, Bitvector* has,
                        bool atomic_bits = true) {
  using Message = typename P::Message;
  ParallelFor(t.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
    // Hoisted raw views; see LowerTileRowDense.
    const EdgeId* const off = t.offsets.data();
    const VertexId* const srcs = t.sources.data();
    const uint64_t* const xw = x_has.words();
    const Message* const pay = payload.data();
    Message* const out = acc->data();
    Bitvector* const hb = has;
    const VertexId row0 = t.row_begin;
    for (VertexId r = static_cast<VertexId>(lo); r < static_cast<VertexId>(hi);
         ++r) {
      Message sum{};
      bool got = false;
      const EdgeId e_end = off[r + 1];
      for (EdgeId e = off[r]; e < e_end; ++e) {
        const VertexId src = srcs[e];
        if (((xw[src >> 6] >> (src & 63)) & 1u) == 0) continue;
        if (got) {
          sum = P::Combine(sum, pay[src]);
        } else {
          sum = pay[src];
          got = true;
        }
      }
      if (!got) continue;
      const VertexId dst = row0 + r;
      ProgramSemiring<P>::Accumulate(&out[dst],
                                     FirstDelivery(hb, dst, atomic_bits), sum);
    }
  });
}

// Column-driven SpMSpV for small frontiers (BFS wavefronts): only the frontier
// sources' columns are walked. `frontier` is the ascending list of frontier
// vertices that fall in this tile's column range. Serial within the tile —
// grid rows supply the rank-level parallelism — so deliveries into a
// destination happen in ascending source order here too.
template <typename P>
void LowerTileColSparse(const TileTranspose& tt, VertexId col_begin,
                        const uint32_t* frontier, size_t frontier_count,
                        const std::vector<typename P::Message>& payload,
                        std::vector<typename P::Message>* acc, Bitvector* has,
                        bool atomic_bits = true) {
  using Message = typename P::Message;
  // Hoisted raw views; see LowerTileRowDense.
  const EdgeId* const coff = tt.col_offsets.data();
  const VertexId* const dsts = tt.dsts.data();
  const Message* const pay = payload.data();
  Message* const out = acc->data();
  for (size_t i = 0; i < frontier_count; ++i) {
    const VertexId src = frontier[i];
    const VertexId c = src - col_begin;
    const EdgeId e_end = coff[c + 1];
    for (EdgeId e = coff[c]; e < e_end; ++e) {
      const VertexId dst = dsts[e];
      ProgramSemiring<P>::Accumulate(&out[dst],
                                     FirstDelivery(has, dst, atomic_bits),
                                     pay[src]);
    }
  }
}

// Pull-style kernel for ANY-combine programs on dense frontiers: each
// destination row scans its sources in ascending order and stops at the first
// frontier member — under the kAnyCombine contract that one message IS the
// full ⊕-fold. On the big middle levels of a BFS this is the bottom-up sweep
// of direction-optimizing BFS, recovered inside the semiring abstraction: most
// rows hit a frontier in-neighbor within a handful of probes. Because the
// contract makes every frontier payload of the superstep byte-identical, the
// message is loaded once up front and the row loop degenerates to a pure
// membership probe — no random payload gather per delivered row.
template <typename P>
void LowerTileRowAny(const matrix::Tile& t, const Bitvector& x_has,
                     const std::vector<typename P::Message>& payload,
                     std::vector<typename P::Message>* acc, Bitvector* has,
                     bool atomic_bits = true) {
  using Message = typename P::Message;
  const uint64_t* const xw = x_has.words();
  const size_t num_words = x_has.word_count();
  size_t w0 = 0;
  while (w0 < num_words && xw[w0] == 0) ++w0;
  if (w0 == num_words) return;  // Empty frontier: y = identity everywhere.
  const Message msg =
      payload[w0 * 64 + static_cast<size_t>(std::countr_zero(xw[w0]))];
  ParallelFor(t.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
    // Hoisted raw views; see LowerTileRowDense. The x_has probe is the inner
    // loop here, so it tests the raw word array directly.
    const EdgeId* const off = t.offsets.data();
    const VertexId* const srcs = t.sources.data();
    Message* const out = acc->data();
    Bitvector* const hb = has;
    const VertexId row0 = t.row_begin;
    for (VertexId r = static_cast<VertexId>(lo); r < static_cast<VertexId>(hi);
         ++r) {
      const VertexId dst = row0 + r;
      // An earlier tile in this grid row already delivered: done. (Plain
      // read is only safe when no other worker shares the word.)
      if (!atomic_bits && hb->Test(dst)) continue;
      const EdgeId e_end = off[r + 1];
      for (EdgeId e = off[r]; e < e_end; ++e) {
        const VertexId src = srcs[e];
        if (((xw[src >> 6] >> (src & 63)) & 1u) == 0) continue;
        ProgramSemiring<P>::Accumulate(&out[dst],
                                       FirstDelivery(hb, dst, atomic_bits),
                                       msg);
        break;
      }
    }
  });
}

// Free-monoid lowering for non-combinable programs: y[dst] is the list of
// messages in ascending source order (matching the interpreted engine's
// single-rank delivery order). Lists for a destination are only touched by its
// own grid row, so push_back needs no lock; the has-bit marks activation.
template <typename P>
void LowerTileRowList(const matrix::Tile& t, const Bitvector& x_has,
                      const std::vector<typename P::Message>& payload,
                      std::vector<std::vector<typename P::Message>>* lists,
                      Bitvector* has, bool atomic_bits = true) {
  using Message = typename P::Message;
  ParallelFor(t.num_rows(), 64, [&](uint64_t lo, uint64_t hi) {
    // Hoisted raw views; see LowerTileRowDense.
    const EdgeId* const off = t.offsets.data();
    const VertexId* const srcs = t.sources.data();
    const uint64_t* const xw = x_has.words();
    const Message* const pay = payload.data();
    std::vector<Message>* const out = lists->data();
    Bitvector* const hb = has;
    const VertexId row0 = t.row_begin;
    for (VertexId r = static_cast<VertexId>(lo); r < static_cast<VertexId>(hi);
         ++r) {
      const VertexId dst = row0 + r;
      const EdgeId e_end = off[r + 1];
      for (EdgeId e = off[r]; e < e_end; ++e) {
        const VertexId src = srcs[e];
        if (((xw[src >> 6] >> (src & 63)) & 1u) == 0) continue;
        out[dst].push_back(pay[src]);
        if (atomic_bits) {
          hb->SetAtomic(dst);
        } else {
          hb->Set(dst);
        }
      }
    }
  });
}

}  // namespace maze::gmat

#endif  // MAZE_GMAT_LOWER_H_
