#include "matrix/algorithms.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

#include "matrix/dist_matrix.h"
#include "matrix/semiring.h"
#include "native/blocked_gather.h"
#include "native/cc.h"
#include "native/cf.h"
#include "native/options.h"
#include "obs/obs.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/codec.h"
#include "util/check.h"
#include "util/prefetch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::matrix {
namespace {

// Dense-vector broadcast along grid columns + partial-result reduction along grid
// rows: the per-iteration communication skeleton of a 2-D SpMV. `per_row_bytes`
// is the wire size of one vector element.
// MAZE_NATIVE_OPT tile SpMV (DESIGN.md §4f): accumulate the tile into a
// per-grid-row scratch vector, visiting the tile's sorted sources one
// L2-sized column window at a time (the prebuilt GatherBlocks plan), then add
// the tile total to y in one pass. The FP grouping is identical to the plain
// loop — each row's tile partial starts at Zero, edges add in sorted order,
// and y[row] += partial happens once per tile — so results stay bit-identical
// (x * 1.0 in the PlusTimes semiring is exact).
void SpmvTileOpt(const Tile& tile, const native::GatherBlocks& gb,
                 const double* contrib, std::vector<double>* scratch,
                 double* y) {
  const EdgeId* off = tile.offsets.data();
  const VertexId* src = tile.sources.data();
  // Prefetch only pays when the tile's gathered contrib slice spills L2;
  // below that the loads already hit and the prefetches are pure overhead.
  const bool pf = static_cast<size_t>(tile.col_end - tile.col_begin) *
                      sizeof(double) >
                  native::InnerCacheBytes();
  if (!gb.active()) {
    if (!pf) {
      // Tile fits L2: the tightest possible gather loop, no prefetch branch.
      ParallelFor(tile.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
        for (VertexId r = static_cast<VertexId>(lo); r < hi; ++r) {
          double sum = 0.0;
          for (EdgeId e = off[r], e_end = off[r + 1]; e < e_end; ++e) {
            sum += contrib[src[e]];
          }
          y[tile.row_begin + r] += sum;
        }
      });
      return;
    }
    ParallelFor(tile.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
      for (VertexId r = static_cast<VertexId>(lo); r < hi; ++r) {
        double sum = 0.0;
        EdgeId e = off[r];
        const EdgeId e_end = off[r + 1];
        if (e_end - e > static_cast<EdgeId>(kPrefetchDistance)) {
          EdgeId main_end = e_end - kPrefetchDistance;
          for (; e < main_end; ++e) {
            PrefetchRead(&contrib[src[e + kPrefetchDistance]]);
            sum += contrib[src[e]];
          }
        }
        for (; e < e_end; ++e) sum += contrib[src[e]];
        y[tile.row_begin + r] += sum;
      }
    });
    return;
  }
  scratch->assign(tile.num_rows(), 0.0);
  double* sc = scratch->data();
  for (int b = 0; b < gb.num_blocks; ++b) {
    const size_t s_begin = gb.seg_off[b];
    const size_t s_end = gb.seg_off[b + 1];
    ParallelFor(s_end - s_begin, 64, [&](uint64_t lo, uint64_t hi) {
      for (size_t s = s_begin + lo; s < s_begin + hi; ++s) {
        double sum = sc[gb.seg_row[s]];
        EdgeId e = gb.seg_begin[s];
        const EdgeId e_end = gb.seg_end[s];
        if (pf && e_end - e > static_cast<EdgeId>(kPrefetchDistance)) {
          EdgeId main_end = e_end - kPrefetchDistance;
          for (; e < main_end; ++e) {
            PrefetchRead(&contrib[src[e + kPrefetchDistance]]);
            sum += contrib[src[e]];
          }
        }
        for (; e < e_end; ++e) sum += contrib[src[e]];
        sc[gb.seg_row[s]] = sum;
      }
    });
  }
  ParallelFor(tile.num_rows(), 4096, [&](uint64_t lo, uint64_t hi) {
    for (VertexId r = static_cast<VertexId>(lo); r < hi; ++r) {
      y[tile.row_begin + r] += sc[r];
    }
  });
}

void ChargeSpmvComm(const DistMatrix& m, rt::SimClock* clock,
                    double per_element_bytes) {
  int side = m.grid().side;
  for (int j = 0; j < side; ++j) {
    uint64_t seg_bytes = static_cast<uint64_t>(
        (m.RangeEnd(j) - m.RangeBegin(j)) * per_element_bytes);
    for (int i = 0; i < side; ++i) {
      if (i == j) continue;
      // Broadcast x segment down column j; reduce y partials across row j.
      clock->RecordSend(m.grid().RankOf(j, j), m.grid().RankOf(i, j), seg_bytes,
                        1);
      clock->RecordSend(m.grid().RankOf(j, i), m.grid().RankOf(j, j), seg_bytes,
                        1);
    }
  }
}

}  // namespace

rt::CommModel DefaultComm() { return rt::CommModel::Mpi(); }

rt::PageRankResult PageRank(const EdgeList& edges,
                            const rt::PageRankOptions& options,
                            rt::EngineConfig config) {
  const VertexId n = edges.num_vertices;
  rt::SimClock clock(config.num_ranks, config.comm, config.trace, config.faults);
  DistMatrix m = DistMatrix::FromEdges(edges, config.num_ranks);

  // Out-degrees (the d vector of equation 9).
  std::vector<EdgeId> out_degree(n, 0);
  for (const Edge& e : edges.edges) ++out_degree[e.src];

  std::vector<double> pr(n, 1.0);
  std::vector<double> contrib(n, 0.0);
  std::vector<double> y(n, 0.0);

  // MAZE_NATIVE_OPT: per-tile column-blocking plans (static across
  // iterations) and one scratch vector per grid row — grid rows run
  // concurrently, and within a row tiles are applied serially, so one scratch
  // per row suffices.
  const bool opt = native::NativeOptEnabled();
  std::vector<native::GatherBlocks> tile_blocks(opt ? m.num_ranks() : 0);
  std::vector<std::vector<double>> scratch(opt ? m.grid().side : 0);
  if (opt) {
    size_t window = native::GatherWindowVertices(sizeof(double));
    for (int rank = 0; rank < m.num_ranks(); ++rank) {
      const Tile& tile = m.tile(rank);
      tile_blocks[rank] = native::GatherBlocks::Build(
          tile.offsets.data(), tile.sources.data(), 0, tile.num_rows(),
          tile.col_begin, tile.col_end, window);
    }
  }

  using SR = PlusTimes<double>;
  for (int iter = 0; iter < options.iterations; ++iter) {
    // Dense op on the diagonal ranks: contrib = pr ./ d. Diagonal ranks own
    // disjoint vector segments, so they run concurrently.
    int side = m.grid().side;
    rt::ForEachRank(side, [&](int d) {
      rt::RankTimer t;
      VertexId b = m.RangeBegin(d);
      VertexId e = m.RangeEnd(d);
      ParallelFor(e - b, 2048, [&](uint64_t lo, uint64_t hi) {
        for (VertexId v = b + static_cast<VertexId>(lo);
             v < b + static_cast<VertexId>(hi); ++v) {
          contrib[v] = out_degree[v] > 0
                           ? pr[v] / static_cast<double>(out_degree[v])
                           : 0.0;
        }
      });
      double seconds = t.Seconds();
      clock.RecordCompute(m.grid().RankOf(d, d), seconds);
      obs::EmitSpanEndingNow("contrib", "matblas", m.grid().RankOf(d, d), iter,
                             seconds);
    });

    std::fill(y.begin(), y.end(), SR::Zero());
    // Tile SpMV: y[dst] += sum contrib[src]. Tiles in one grid row share their
    // destination rows, so grid rows run concurrently while the tiles within a
    // row accumulate in column order — the same tile-by-tile order as the
    // serial schedule, keeping the floating-point sums bit-identical.
    rt::ForEachRank(side, [&](int i) {
      for (int j = 0; j < side; ++j) {
        int rank = m.grid().RankOf(i, j);
        const Tile& tile = m.tile(rank);
        rt::RankTimer t;
        if (opt) {
          SpmvTileOpt(tile, tile_blocks[rank], contrib.data(), &scratch[i],
                      y.data());
        } else {
          ParallelFor(tile.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
            for (VertexId r = static_cast<VertexId>(lo); r < hi; ++r) {
              double sum = SR::Zero();
              for (EdgeId e = tile.offsets[r]; e < tile.offsets[r + 1]; ++e) {
                sum = SR::Add(sum, SR::Multiply(contrib[tile.sources[e]], 1.0));
              }
              y[tile.row_begin + r] += sum;
            }
          });
        }
        double seconds = t.Seconds();
        clock.RecordCompute(rank, seconds);
        obs::EmitSpanEndingNow("spmv", "matblas", rank, iter, seconds);
      }
    });
    ChargeSpmvComm(m, &clock, sizeof(double));

    for (VertexId v = 0; v < n; ++v) {
      pr[v] = options.jump + (1.0 - options.jump) * y[v];
    }
    clock.EndStep(/*overlap_comm=*/false);
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     m.MemoryBytes() / std::max(1, config.num_ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * 3 * sizeof(double));
  rt::PageRankResult result;
  result.ranks = std::move(pr);
  result.iterations = options.iterations;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  return result;
}

rt::BfsResult Bfs(const EdgeList& edges, const rt::BfsOptions& options,
                  rt::EngineConfig config, const MatblasOptions& matblas) {
  const VertexId n = edges.num_vertices;
  rt::SimClock clock(config.num_ranks, config.comm, config.trace, config.faults);
  DistMatrix m = DistMatrix::FromEdges(edges, config.num_ranks);

  rt::BfsResult result;
  result.distance.assign(n, kInfiniteDistance);
  result.distance[options.source] = 0;

  Bitvector frontier(n);
  Bitvector visited(n);
  frontier.Set(options.source);
  visited.Set(options.source);

  uint32_t level = 0;
  uint64_t frontier_count = 1;
  while (frontier_count > 0) {
    Bitvector next(n);
    // v = A^T s over the Bool semiring, masked by !visited: per tile, a local
    // destination row joins the next frontier if any of its sources is in s.
    // Tiles only read the frontier/visited bitsets and set `next` atomically,
    // so every rank runs concurrently.
    rt::ForEachRank(m.num_ranks(), [&](int rank) {
      const Tile& tile = m.tile(rank);
      rt::RankTimer t;
      ParallelFor(tile.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
        for (VertexId r = static_cast<VertexId>(lo); r < hi; ++r) {
          VertexId dst = tile.row_begin + r;
          if (visited.Test(dst)) continue;
          bool reached = BoolOrAnd::Zero();
          for (EdgeId e = tile.offsets[r]; e < tile.offsets[r + 1]; ++e) {
            reached = BoolOrAnd::Add(
                reached, BoolOrAnd::Multiply(true, frontier.Test(tile.sources[e])));
            if (reached) break;
          }
          if (reached) next.SetAtomic(dst);
        }
      });
      double seconds = t.Seconds();
      clock.RecordCompute(rank, seconds);
      obs::EmitSpanEndingNow("frontier_spmv", "matblas", rank,
                             static_cast<int>(level), seconds);
    });
    // Frontier exchange: the sparse vector (id, parent) pairs of the CombBLAS
    // formulation — 8 bytes per discovered vertex, replicated along the grid.
    // With the §6.2 recommendation applied, each segment is delta/bitvector
    // encoded instead (real encoded sizes, computed per grid segment).
    std::vector<uint32_t> discovered;
    next.AppendSetBits(&discovered);
    int side = m.grid().side;
    std::vector<uint64_t> per_segment(side, 0);
    if (matblas.compress_frontier) {
      std::vector<std::vector<uint32_t>> segment_ids(side);
      for (VertexId v : discovered) segment_ids[m.RangeOf(v)].push_back(v);
      for (int j = 0; j < side; ++j) {
        if (segment_ids[j].empty()) continue;
        std::vector<uint8_t> enc;
        EncodeIdsBest(segment_ids[j], &enc);
        per_segment[j] = enc.size();
      }
    } else {
      for (VertexId v : discovered) per_segment[m.RangeOf(v)] += 8;
    }
    for (int j = 0; j < side; ++j) {
      for (int i = 0; i < side; ++i) {
        if (i != j && per_segment[j] > 0) {
          clock.RecordSend(m.grid().RankOf(j, j), m.grid().RankOf(i, j),
                           per_segment[j], 1);
          clock.RecordSend(m.grid().RankOf(j, i), m.grid().RankOf(j, j),
                           per_segment[j], 1);
        }
      }
    }
    clock.EndStep(/*overlap_comm=*/false);

    ++level;
    for (VertexId v : discovered) {
      visited.Set(v);
      result.distance[v] = level;
    }
    frontier = std::move(next);
    frontier_count = discovered.size();
    if (frontier_count > 0) result.levels = static_cast<int>(level);
  }
  result.levels += 1;  // Count the seed expansion like the native kernel.

  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     m.MemoryBytes() / std::max(1, config.num_ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) / 2);
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  return result;
}

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);
  rt::Partition1D rows = rt::Partition1D::EdgeBalanced(g, ranks);

  // SUMMA-style tile broadcast: every rank's share of A travels across the grid.
  int side = rt::Grid2D::ForRanks(ranks).side;
  if (ranks > 1) {
    uint64_t per_rank_bytes = (g.num_edges() / ranks) * 8;
    for (int p = 0; p < ranks; ++p) {
      for (int s = 1; s < side; ++s) {
        clock.RecordSend(p, (p + s) % ranks, per_rank_bytes, 1);
        clock.RecordSend(p, (p + s * side) % ranks, per_rank_bytes, 1);
      }
    }
  }

  // C = A^2 evaluated row-block by row-block, then EWiseMult(C, A) and reduce.
  // The abstraction cannot fuse these: every entry of A^2 is materialized and its
  // storage charged, which is exactly why CombBLAS runs out of memory on the
  // real-world inputs (Section 5.2).
  // Per-rank result slots; summed in rank order after the parallel region so
  // the totals do not depend on rank completion order.
  std::vector<uint64_t> rank_triangles_of(ranks, 0);
  std::vector<uint64_t> rank_a2_nnz_of(ranks, 0);
  rt::ForEachRank(ranks, [&](int p) {
    rt::RankTimer t;
    std::mutex mu;
    uint64_t rank_triangles = 0;
    uint64_t rank_a2_nnz = 0;
    ParallelFor(rows.Size(p), 64, [&](uint64_t lo, uint64_t hi) {
      uint64_t local_triangles = 0;
      uint64_t local_nnz = 0;
      std::vector<VertexId> row;  // Scratch: one row of A^2 (with multiplicity).
      for (VertexId u = rows.Begin(p) + static_cast<VertexId>(lo);
           u < rows.Begin(p) + static_cast<VertexId>(hi); ++u) {
        row.clear();
        for (VertexId v : g.OutNeighbors(u)) {
          const auto nv = g.OutNeighbors(v);
          row.insert(row.end(), nv.begin(), nv.end());
        }
        std::sort(row.begin(), row.end());
        // nnz(A^2 row) = distinct entries (all materialized, with counts).
        for (size_t x = 0; x < row.size(); ++x) {
          if (x == 0 || row[x] != row[x - 1]) ++local_nnz;
        }
        // EWiseMult with the pattern of A's row u: intersect the sorted path
        // multiset with the sorted neighbor list; each matching path closes one
        // triangle at u.
        const auto nu = g.OutNeighbors(u);
        size_t i = 0;
        size_t j = 0;
        while (i < nu.size() && j < row.size()) {
          if (nu[i] < row[j]) {
            ++i;
          } else if (nu[i] > row[j]) {
            ++j;
          } else {
            ++local_triangles;
            ++j;  // Advance only the path side: count the multiplicity.
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      rank_triangles += local_triangles;
      rank_a2_nnz += local_nnz;
    });
    double seconds = t.Seconds();
    clock.RecordCompute(p, seconds);
    obs::EmitSpanEndingNow("spgemm", "matblas", p, /*step=*/0, seconds);
    rank_triangles_of[p] = rank_triangles;
    rank_a2_nnz_of[p] = rank_a2_nnz;
  });
  uint64_t triangles = 0;
  uint64_t a2_nnz_total = 0;
  for (int p = 0; p < ranks; ++p) {
    triangles += rank_triangles_of[p];
    a2_nnz_total += rank_a2_nnz_of[p];
  }
  clock.EndStep(/*overlap_comm=*/false);

  // Memory: the rank's share of A plus its fully materialized share of A^2
  // (12 bytes per nnz: column id + count + row bookkeeping).
  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     g.MemoryBytes() / std::max(1, ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     (a2_nnz_total / std::max(1, ranks)) * 12);

  rt::TriangleCountResult result;
  result.triangles = triangles;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  (void)n;
  return result;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config) {
  MAZE_CHECK(options.method == rt::CfMethod::kGd);
  const int k = options.k;
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);
  int side = rt::Grid2D::ForRanks(ranks).side;

  rt::CfResult result;
  result.k = k;
  native::CfInitFactors(g.num_users(), k, options.seed, &result.user_factors);
  native::CfInitFactors(g.num_items(), k, options.seed ^ 0x1234567ull,
                        &result.item_factors);

  // User/item ranges per rank for compute accounting (1-D over the rectangular
  // matrix rows; the 2-D grid shows up in the communication pattern).
  rt::Partition1D user_part = rt::Partition1D::VertexBalanced(g.num_users(),
                                                              ranks);
  rt::Partition1D item_part = rt::Partition1D::VertexBalanced(g.num_items(),
                                                              ranks);

  // Rating-index prefix offsets so the K SpMV passes below can index the error
  // matrix from parallel chunks.
  std::vector<EdgeId> user_start(g.num_users() + 1, 0);
  for (VertexId u = 0; u < g.num_users(); ++u) {
    user_start[u + 1] = user_start[u] + g.UserDegree(u);
  }
  std::vector<EdgeId> item_start(g.num_items() + 1, 0);
  for (VertexId v = 0; v < g.num_items(); ++v) {
    item_start[v + 1] = item_start[v] + g.ItemDegree(v);
  }
  std::vector<double> err_user(g.num_ratings());  // E in user-major order.
  std::vector<double> err_item(g.num_ratings());  // E^T in item-major order.

  std::vector<double> old_users;
  std::vector<double> old_items;
  double gamma = options.learning_rate;
  for (int iter = 0; iter < options.iterations; ++iter) {
    old_users = result.user_factors;
    old_items = result.item_factors;

    // Comm: Q broadcast along grid columns and P along rows, plus partial
    // gradient reductions — "K matrix-vector multiplications" of dense traffic.
    if (ranks > 1) {
      uint64_t q_seg = (static_cast<uint64_t>(g.num_items()) / side) * k * 8;
      uint64_t p_seg = (static_cast<uint64_t>(g.num_users()) / side) * k * 8;
      for (int j = 0; j < side; ++j) {
        for (int i = 0; i < side; ++i) {
          if (i == j) continue;
          rt::Grid2D grid{side};
          clock.RecordSend(grid.RankOf(j, j), grid.RankOf(i, j), q_seg, k);
          clock.RecordSend(grid.RankOf(j, i), grid.RankOf(j, j), p_seg, k);
        }
      }
    }

    // CombBLAS's GD decomposition (§3.2): first materialize the sparse error
    // matrix E = R - P Q^T on the nonzeros of R (and E^T), then compute the
    // gradients as "K matrix-vector multiplications" — one full pass over the
    // nonzeros per latent dimension, per side. The abstraction cannot fuse the
    // K passes, which is exactly the expressibility cost the paper attributes
    // to CombBLAS on this algorithm.
    // Ranks own disjoint user/item row ranges and read the old-factor
    // snapshots, so they run concurrently.
    rt::ForEachRank(ranks, [&](int p) {
      rt::RankTimer t;
      ParallelFor(user_part.Size(p), 64, [&](uint64_t lo, uint64_t hi) {
        for (VertexId u = user_part.Begin(p) + static_cast<VertexId>(lo);
             u < user_part.Begin(p) + static_cast<VertexId>(hi); ++u) {
          const double* pu = old_users.data() + static_cast<size_t>(u) * k;
          EdgeId idx = user_start[u];
          for (const auto& e : g.UserRatings(u)) {
            const double* qv = old_items.data() + static_cast<size_t>(e.id) * k;
            double dot = 0;
            for (int d = 0; d < k; ++d) dot += pu[d] * qv[d];
            err_user[idx++] = e.rating - dot;
          }
        }
      });
      ParallelFor(item_part.Size(p), 64, [&](uint64_t lo, uint64_t hi) {
        for (VertexId v = item_part.Begin(p) + static_cast<VertexId>(lo);
             v < item_part.Begin(p) + static_cast<VertexId>(hi); ++v) {
          const double* qv = old_items.data() + static_cast<size_t>(v) * k;
          EdgeId idx = item_start[v];
          for (const auto& e : g.ItemRatings(v)) {
            const double* pu = old_users.data() + static_cast<size_t>(e.id) * k;
            double dot = 0;
            for (int d = 0; d < k; ++d) dot += pu[d] * qv[d];
            err_item[idx++] = e.rating - dot;
          }
        }
      });
      // K SpMVs per side: grad_P[:, d] = E q_d, grad_Q[:, d] = E^T p_d.
      for (int d = 0; d < k; ++d) {
        ParallelFor(user_part.Size(p), 128, [&](uint64_t lo, uint64_t hi) {
          for (VertexId u = user_part.Begin(p) + static_cast<VertexId>(lo);
               u < user_part.Begin(p) + static_cast<VertexId>(hi); ++u) {
            double acc = 0;
            EdgeId idx = user_start[u];
            for (const auto& e : g.UserRatings(u)) {
              acc += err_user[idx++] * old_items[static_cast<size_t>(e.id) * k + d];
            }
            double p_old = old_users[static_cast<size_t>(u) * k + d];
            double lambda_term = options.lambda_p *
                                 static_cast<double>(g.UserDegree(u)) * p_old;
            result.user_factors[static_cast<size_t>(u) * k + d] =
                p_old + gamma * (acc - lambda_term);
          }
        });
        ParallelFor(item_part.Size(p), 128, [&](uint64_t lo, uint64_t hi) {
          for (VertexId v = item_part.Begin(p) + static_cast<VertexId>(lo);
               v < item_part.Begin(p) + static_cast<VertexId>(hi); ++v) {
            double acc = 0;
            EdgeId idx = item_start[v];
            for (const auto& e : g.ItemRatings(v)) {
              acc += err_item[idx++] * old_users[static_cast<size_t>(e.id) * k + d];
            }
            double q_old = old_items[static_cast<size_t>(v) * k + d];
            double lambda_term = options.lambda_q *
                                 static_cast<double>(g.ItemDegree(v)) * q_old;
            result.item_factors[static_cast<size_t>(v) * k + d] =
                q_old + gamma * (acc - lambda_term);
          }
        });
      }
      double seconds = t.Seconds();
      clock.RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("gradient_spmv", "matblas", p, iter, seconds);
    });
    clock.EndStep(/*overlap_comm=*/false);
    gamma *= options.step_decay;
    result.rmse_per_iteration.push_back(
        native::CfRmse(g, result.user_factors, result.item_factors, k));
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     g.MemoryBytes() / std::max(1, ranks));
  clock.ChargeMemory(
      0, obs::MemPhase::kEngineState,
      2 * (result.user_factors.size() + result.item_factors.size()) *
          sizeof(double) / std::max(1, side));
  result.iterations = options.iterations;
  result.final_rmse = result.rmse_per_iteration.empty()
                          ? 0.0
                          : result.rmse_per_iteration.back();
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  return result;
}

rt::ConnectedComponentsResult ConnectedComponents(
    const EdgeList& edges, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config) {
  const VertexId n = edges.num_vertices;
  rt::SimClock clock(config.num_ranks, config.comm, config.trace, config.faults);
  DistMatrix m = DistMatrix::FromEdges(edges, config.num_ranks);

  rt::ConnectedComponentsResult result;
  result.label.resize(n);
  for (VertexId v = 0; v < n; ++v) result.label[v] = v;

  // label' = min(label, A^T label): per tile, each destination row takes the
  // minimum of its sources\' labels — a semiring SpMV with Add = Multiply = min.
  int rounds = 0;
  bool changed = true;
  int side = m.grid().side;
  while (changed && rounds < options.max_iterations) {
    ++rounds;
    std::vector<VertexId> next = result.label;
    // Tiles in one grid row share destination rows of `next`, so grid rows run
    // concurrently with the row's tiles applied in column order (min is
    // order-insensitive, but this also keeps writes race-free).
    std::atomic<bool> any_changed{false};
    rt::ForEachRank(side, [&](int i) {
      for (int j = 0; j < side; ++j) {
        int rank = m.grid().RankOf(i, j);
        const Tile& tile = m.tile(rank);
        rt::RankTimer t;
        std::atomic<bool> tile_changed{false};
        ParallelFor(tile.num_rows(), 256, [&](uint64_t lo, uint64_t hi) {
          bool local_changed = false;
          for (VertexId r = static_cast<VertexId>(lo); r < hi; ++r) {
            VertexId dst = tile.row_begin + r;
            VertexId best = next[dst];
            for (EdgeId e = tile.offsets[r]; e < tile.offsets[r + 1]; ++e) {
              best = std::min(best, result.label[tile.sources[e]]);
            }
            if (best < next[dst]) {
              next[dst] = best;
              local_changed = true;
            }
          }
          if (local_changed) tile_changed.store(true, std::memory_order_relaxed);
        });
        double seconds = t.Seconds();
        clock.RecordCompute(rank, seconds);
        obs::EmitSpanEndingNow("minlabel_spmv", "matblas", rank, rounds - 1,
                               seconds);
        if (tile_changed.load()) {
          any_changed.store(true, std::memory_order_relaxed);
        }
      }
    });
    changed = any_changed.load();
    ChargeSpmvComm(m, &clock, sizeof(VertexId) + 4.0);
    clock.EndStep(false);
    result.label = std::move(next);
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     m.MemoryBytes() / std::max(1, config.num_ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * 2 * sizeof(VertexId));
  result.num_components = native::CountComponents(result.label);
  result.iterations = rounds;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  return result;
}

}  // namespace maze::matrix
