// The four study algorithms expressed in the matblas (CombBLAS-like) sparse
// linear-algebra model (Section 3.1/3.2):
//   - PageRank: p' = r*1 + (1-r) * A^T p~  as semiring SpMV over the 2-D grid;
//   - BFS: v = A^T s per level (equation 10), frontier as a sparse vector;
//   - Triangle counting: nnz(A intersect A^2) — the SpGEMM whose materialized
//     intermediate is the memory/expressibility problem the paper reports;
//   - CF: gradient descent as K matrix-vector products per iteration plus dense
//     vector operations.
//
// CombBLAS requires a perfect-square process count (2-D grid); these entry points
// inherit that constraint: config.num_ranks must be a perfect square.
#ifndef MAZE_MATRIX_ALGORITHMS_H_
#define MAZE_MATRIX_ALGORITHMS_H_

#include "core/bipartite.h"
#include "core/edge_list.h"
#include "core/graph.h"
#include "rt/algo.h"

namespace maze::matrix {

// CombBLAS runs as a pure MPI program (Table 2).
rt::CommModel DefaultComm();

// PageRank. Takes the raw directed edge list (the engine builds its own 2-D
// tiled A^T) plus the out-degree source graph.
rt::PageRankResult PageRank(const EdgeList& edges,
                            const rt::PageRankOptions& options,
                            rt::EngineConfig config);

// Engine tuning knobs; defaults model CombBLAS v1.3 as benchmarked. The
// non-default settings implement the paper's §6.2 roadmap recommendations.
struct MatblasOptions {
  // "CombBLAS needs to use data structures such as bitvectors for compression
  // in order to improve BFS performance": delta/bitvector-encode the frontier
  // exchange instead of shipping raw (id, parent) pairs.
  bool compress_frontier = false;
};

// BFS over a symmetric edge list.
rt::BfsResult Bfs(const EdgeList& edges, const rt::BfsOptions& options,
                  rt::EngineConfig config,
                  const MatblasOptions& matblas = MatblasOptions{});

// Triangle counting over an oriented graph (out-CSR). The A^2 intermediate is
// fully evaluated (and its size charged to the memory metric) because the
// abstraction cannot fuse the intersection into the SpGEMM.
rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions& options,
                                      rt::EngineConfig config);

// Collaborative filtering via Gradient Descent on the 2-D tiled ratings matrix.
rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config);

// Connected components (extension algorithm): iterated label' = min(label,
// A^T label) over the (min, min) semiring until fixpoint.
rt::ConnectedComponentsResult ConnectedComponents(
    const EdgeList& edges, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config);

}  // namespace maze::matrix

#endif  // MAZE_MATRIX_ALGORITHMS_H_
