#include "matrix/dist_matrix.h"

#include <algorithm>

namespace maze::matrix {

DistMatrix DistMatrix::FromEdges(const EdgeList& edges, int num_ranks) {
  DistMatrix m;
  m.grid_ = rt::Grid2D::ForRanks(num_ranks);
  m.n_ = edges.num_vertices;
  m.nnz_ = edges.edges.size();
  int side = m.grid_.side;

  m.bounds_.resize(side + 1);
  for (int i = 0; i <= side; ++i) {
    m.bounds_[i] =
        static_cast<VertexId>(static_cast<uint64_t>(m.n_) * i / side);
  }

  m.tiles_.resize(static_cast<size_t>(side) * side);
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      Tile& t = m.tiles_[m.grid_.RankOf(i, j)];
      t.row_begin = m.bounds_[i];
      t.row_end = m.bounds_[i + 1];
      t.col_begin = m.bounds_[j];
      t.col_end = m.bounds_[j + 1];
      t.offsets.assign(t.num_rows() + 1, 0);
    }
  }

  // Two-pass counting sort per tile.
  for (const Edge& e : edges.edges) {
    MAZE_CHECK(e.src < m.n_ && e.dst < m.n_);
    int i = m.RangeOf(e.dst);
    int j = m.RangeOf(e.src);
    Tile& t = m.tiles_[m.grid_.RankOf(i, j)];
    ++t.offsets[e.dst - t.row_begin + 1];
  }
  for (Tile& t : m.tiles_) {
    for (size_t r = 1; r < t.offsets.size(); ++r) t.offsets[r] += t.offsets[r - 1];
    t.sources.resize(t.offsets.back());
  }
  std::vector<std::vector<EdgeId>> cursors(m.tiles_.size());
  for (size_t r = 0; r < m.tiles_.size(); ++r) {
    cursors[r].assign(m.tiles_[r].offsets.begin(),
                      m.tiles_[r].offsets.end() - 1);
  }
  for (const Edge& e : edges.edges) {
    int i = m.RangeOf(e.dst);
    int j = m.RangeOf(e.src);
    int rank = m.grid_.RankOf(i, j);
    Tile& t = m.tiles_[rank];
    t.sources[cursors[rank][e.dst - t.row_begin]++] = e.src;
  }
  for (Tile& t : m.tiles_) {
    for (VertexId r = 0; r < t.num_rows(); ++r) {
      std::sort(t.sources.begin() + static_cast<ptrdiff_t>(t.offsets[r]),
                t.sources.begin() + static_cast<ptrdiff_t>(t.offsets[r + 1]));
    }
  }
  return m;
}

int DistMatrix::RangeOf(VertexId v) const {
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<int>(it - bounds_.begin()) - 1;
}

size_t DistMatrix::MemoryBytes() const {
  size_t total = 0;
  for (const Tile& t : tiles_) total += t.MemoryBytes();
  return total;
}

}  // namespace maze::matrix
