// 2-D block-distributed sparse matrix: the matblas engine's storage.
//
// CombBLAS is "the only framework that supports an edge-based partitioning of the
// graph (2-D partitioning)" (Section 3): the nonzeros are tiled over a
// sqrt(p) x sqrt(p) process grid, so each rank owns the edges whose (dst, src)
// fall in its (row-range, col-range) tile. Each tile is stored in gather form —
// CSR over the tile's destination rows — so SpMV over any semiring is race-free
// parallel over rows.
#ifndef MAZE_MATRIX_DIST_MATRIX_H_
#define MAZE_MATRIX_DIST_MATRIX_H_

#include <vector>

#include "core/edge_list.h"
#include "core/types.h"
#include "rt/partition.h"
#include "util/check.h"

namespace maze::matrix {

// One tile of the distributed matrix (pattern only; algorithms carry values in
// dense vectors, the common CombBLAS usage for these four workloads).
struct Tile {
  VertexId row_begin = 0;  // Global destination-row range [row_begin, row_end).
  VertexId row_end = 0;
  VertexId col_begin = 0;  // Global source-column range.
  VertexId col_end = 0;
  // CSR over local rows: sources of edges into row (row_begin + r).
  std::vector<EdgeId> offsets;     // row_end - row_begin + 1 entries.
  std::vector<VertexId> sources;   // Global column (source) ids, sorted per row.

  VertexId num_rows() const { return row_end - row_begin; }
  EdgeId nnz() const { return sources.size(); }
  size_t MemoryBytes() const {
    return offsets.size() * sizeof(EdgeId) + sources.size() * sizeof(VertexId);
  }
};

// The full matrix: grid.side^2 tiles. Tile (i, j) holds edges src in col-range j,
// dst in row-range i. Row/col ranges are vertex-balanced.
class DistMatrix {
 public:
  // Builds the pattern of the |V| x |V| adjacency matrix of `edges`, tiled over
  // `num_ranks` (must be a perfect square, mirroring CombBLAS's constraint).
  static DistMatrix FromEdges(const EdgeList& edges, int num_ranks);

  int num_ranks() const { return grid_.num_ranks(); }
  const rt::Grid2D& grid() const { return grid_; }
  VertexId num_vertices() const { return n_; }
  EdgeId num_edges() const { return nnz_; }

  const Tile& tile(int rank) const { return tiles_[rank]; }
  const Tile& tile(int row, int col) const {
    return tiles_[grid_.RankOf(row, col)];
  }

  // Range bounds of grid row/column `i` (rows and columns use the same split).
  VertexId RangeBegin(int i) const { return bounds_[i]; }
  VertexId RangeEnd(int i) const { return bounds_[i + 1]; }

  // Grid row/col index owning global vertex v.
  int RangeOf(VertexId v) const;

  size_t MemoryBytes() const;

 private:
  rt::Grid2D grid_;
  VertexId n_ = 0;
  EdgeId nnz_ = 0;
  std::vector<VertexId> bounds_;  // side + 1.
  std::vector<Tile> tiles_;       // side * side, rank-indexed.
};

}  // namespace maze::matrix

#endif  // MAZE_MATRIX_DIST_MATRIX_H_
