// Semirings for the matblas (CombBLAS-like) engine.
//
// CombBLAS expresses all graph computation as sparse linear algebra "using
// arbitrary user-defined semirings" (Section 3). The engine's SpMV/SpGEMM kernels
// are templated on these: PageRank uses (+, *) over doubles, BFS uses a boolean
// (|, &) visit semiring, triangle counting counts with (+, 1).
#ifndef MAZE_MATRIX_SEMIRING_H_
#define MAZE_MATRIX_SEMIRING_H_

#include <algorithm>
#include <cstdint>
#include <limits>

namespace maze::matrix {

// Classic arithmetic semiring: Add = +, Multiply = *.
template <typename T>
struct PlusTimes {
  using ValueType = T;
  static constexpr T Zero() { return T{}; }
  static T Add(T a, T b) { return a + b; }
  static T Multiply(T a, T b) { return a * b; }
};

// Boolean visit semiring for traversal: an entry exists or it does not.
struct BoolOrAnd {
  using ValueType = bool;
  static constexpr bool Zero() { return false; }
  static bool Add(bool a, bool b) { return a || b; }
  static bool Multiply(bool a, bool b) { return a && b; }
};

// Tropical (min, +) semiring: shortest paths; used in tests to demonstrate the
// user-defined-semiring extension point.
template <typename T>
struct MinPlus {
  using ValueType = T;
  static constexpr T Zero() { return std::numeric_limits<T>::max(); }
  static T Add(T a, T b) { return std::min(a, b); }
  static T Multiply(T a, T b) {
    // Saturating +: Zero() is the annihilator/identity for Add.
    if (a == Zero() || b == Zero()) return Zero();
    return a + b;
  }
};

}  // namespace maze::matrix

#endif  // MAZE_MATRIX_SEMIRING_H_
