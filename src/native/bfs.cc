#include "native/bfs.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "obs/obs.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/prefetch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {
namespace {

// Frontier density (edges touched by the frontier as a fraction of all edges)
// above which the bottom-up sweep wins; standard direction-optimization heuristic.
constexpr double kBottomUpThreshold = 0.05;

// Visited-set abstraction so the Figure 7 "data structure" toggle swaps the
// bitvector for a plain atomic distance array with CAS claims.
class VisitedSet {
 public:
  VisitedSet(VertexId n, bool use_bitvector) : use_bitvector_(use_bitvector) {
    if (use_bitvector_) {
      bits_.Resize(n);
    } else {
      dist_ = std::vector<std::atomic<uint32_t>>(n);
      for (auto& d : dist_) d.store(kInfiniteDistance, std::memory_order_relaxed);
    }
  }

  bool Test(VertexId v) const {
    return use_bitvector_
               ? bits_.Test(v)
               : dist_[v].load(std::memory_order_relaxed) != kInfiniteDistance;
  }

  // Atomically claims v at `level`; true if this call made it visited.
  bool Claim(VertexId v, uint32_t level) {
    if (use_bitvector_) return bits_.TestAndSetAtomic(v);
    uint32_t inf = kInfiniteDistance;
    return dist_[v].compare_exchange_strong(inf, level,
                                            std::memory_order_relaxed);
  }

  uint64_t MemoryBytes() const {
    return use_bitvector_ ? bits_.MemoryBytes()
                          : dist_.size() * sizeof(uint32_t);
  }

 private:
  bool use_bitvector_;
  Bitvector bits_;
  std::vector<std::atomic<uint32_t>> dist_;
};

}  // namespace

double BfsTotalBytes(VertexId num_vertices, EdgeId num_edges) {
  return static_cast<double>(num_edges) * 8.0 +
         static_cast<double>(num_vertices) * 8.0;
}

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  const rt::EngineConfig& config, const NativeOptions& native) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  MAZE_CHECK(options.source < n);
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);
  rt::Partition1D part = rt::Partition1D::EdgeBalanced(g, ranks);

  rt::BfsResult result;
  result.distance.assign(n, kInfiniteDistance);

  VisitedSet visited(n, native.use_bitvector);
  std::vector<std::vector<VertexId>> frontier(ranks);  // Per owning rank.
  std::vector<std::vector<VertexId>> next_frontier(ranks);

  {
    int owner = part.OwnerOf(options.source);
    frontier[owner].push_back(options.source);
    MAZE_CHECK(visited.Claim(options.source, 0));
    result.distance[options.source] = 0;
  }

  uint64_t buffer_peak = 0;
  uint32_t level = 0;
  while (true) {
    uint64_t global_frontier = 0;
    uint64_t frontier_degree = 0;
    for (const auto& f : frontier) {
      global_frontier += f.size();
      for (VertexId u : f) frontier_degree += g.OutDegree(u);
    }
    if (global_frontier == 0) break;

    bool bottom_up =
        native.use_bitvector &&
        static_cast<double>(frontier_degree) >
            kBottomUpThreshold * static_cast<double>(g.num_edges());

    if (bottom_up) {
      // Bottom-up sweep: every unvisited owned vertex scans its neighbors for a
      // frontier member and claims itself if one is found.
      Bitvector in_frontier(n);
      for (const auto& f : frontier) {
        for (VertexId u : f) in_frontier.Set(u);
      }
      // Rank-parallel: each rank claims only vertices it owns, so claims,
      // distances, and next-frontier lists never cross rank tasks.
      rt::ForEachRank(ranks, [&](int p) {
        rt::RankTimer t;
        std::mutex merge_mu;
        auto& next = next_frontier[p];
        ParallelFor(part.Size(p), 512, [&](uint64_t lo, uint64_t hi) {
          std::vector<VertexId> local;
          for (VertexId v = part.Begin(p) + static_cast<VertexId>(lo);
               v < part.Begin(p) + static_cast<VertexId>(hi); ++v) {
            if (visited.Test(v)) continue;
            for (VertexId u : g.OutNeighbors(v)) {
              if (in_frontier.Test(u)) {
                local.push_back(v);
                break;
              }
            }
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          for (VertexId v : local) {
            if (visited.Claim(v, level + 1)) {
              result.distance[v] = level + 1;
              next.push_back(v);
            }
          }
        });
        double seconds = t.Seconds();
        clock.RecordCompute(p, seconds);
        obs::EmitSpanEndingNow("bottom_up", "native", p,
                               static_cast<int>(level), seconds);
      });
      // Bottom-up needs every rank to know the whole frontier: broadcast the
      // (compressed) frontier of each rank to all others.
      if (ranks > 1) {
        for (int p = 0; p < ranks; ++p) {
          if (frontier[p].empty()) continue;
          uint64_t bytes;
          if (native.compress_messages) {
            std::vector<uint8_t> enc;
            EncodeIdsBest(frontier[p], &enc);
            bytes = enc.size();
          } else {
            bytes = frontier[p].size() * sizeof(VertexId);
          }
          for (int q = 0; q < ranks; ++q) {
            if (q != p) clock.RecordSend(p, q, bytes, 1);
          }
        }
      }
    } else {
      // Top-down expansion, parallel over the rank's frontier. Remote candidates
      // are batched per destination rank.
      std::vector<std::vector<std::vector<VertexId>>> remote(
          ranks, std::vector<std::vector<VertexId>>(ranks));
      // Rank-parallel: a rank claims only owned neighbors (q == p) and batches
      // the rest into its private remote[p] rows.
      rt::ForEachRank(ranks, [&](int p) {
        rt::RankTimer t;
        const auto& f = frontier[p];
        std::mutex merge_mu;
        ParallelFor(f.size(), 64, [&](uint64_t lo, uint64_t hi) {
          std::vector<VertexId> local_next;
          std::vector<std::vector<VertexId>> local_remote(ranks);
          for (uint64_t i = lo; i < hi; ++i) {
            const auto neighbors = g.OutNeighbors(f[i]);
            for (size_t j = 0; j < neighbors.size(); ++j) {
              if (native.software_prefetch &&
                  j + kPrefetchDistance < neighbors.size()) {
                PrefetchRead(&result.distance[neighbors[j + kPrefetchDistance]]);
              }
              VertexId v = neighbors[j];
              int q = ranks == 1 ? 0 : part.OwnerOf(v);
              if (q == p) {
                if (visited.Claim(v, level + 1)) {
                  result.distance[v] = level + 1;
                  local_next.push_back(v);
                }
              } else {
                local_remote[q].push_back(v);
              }
            }
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          auto& next = next_frontier[p];
          next.insert(next.end(), local_next.begin(), local_next.end());
          for (int q = 0; q < ranks; ++q) {
            remote[p][q].insert(remote[p][q].end(), local_remote[q].begin(),
                                local_remote[q].end());
          }
        });
        double seconds = t.Seconds();
        clock.RecordCompute(p, seconds);
        obs::EmitSpanEndingNow("top_down", "native", p,
                               static_cast<int>(level), seconds);
      });

      if (ranks > 1) {
        // Wire: candidates to their owners, compressed if enabled (the encoding
        // cost is real CPU and is charged to the sender). Senders are
        // independent; the per-rank buffer sizes are folded after the barrier.
        std::vector<uint64_t> rank_buffer_of(ranks, 0);
        rt::ForEachRank(ranks, [&](int p) {
          uint64_t rank_buffer = 0;
          for (int q = 0; q < ranks; ++q) {
            auto& ids = remote[p][q];
            if (ids.empty()) continue;
            uint64_t bytes;
            if (native.compress_messages) {
              rt::RankTimer enc_timer;
              std::vector<uint8_t> enc;
              EncodeIdsBest(ids, &enc);
              bytes = enc.size();
              double enc_seconds = enc_timer.Seconds();
              clock.RecordCompute(p, enc_seconds);
              obs::EmitSpanEndingNow("frontier_encode", "native", p,
                                     static_cast<int>(level), enc_seconds);
            } else {
              bytes = ids.size() * sizeof(VertexId);
            }
            clock.RecordSend(p, q, bytes, 1);
            rank_buffer += bytes;
          }
          rank_buffer_of[p] = rank_buffer;
        });
        for (int p = 0; p < ranks; ++p) {
          buffer_peak = std::max(buffer_peak, rank_buffer_of[p]);
        }
        // Receivers integrate remote candidates, each over its own inbound
        // batches in sender order (claims touch only owned vertices).
        rt::ForEachRank(ranks, [&](int q) {
          rt::RankTimer t;
          for (int p = 0; p < ranks; ++p) {
            for (VertexId v : remote[p][q]) {
              if (visited.Claim(v, level + 1)) {
                result.distance[v] = level + 1;
                next_frontier[q].push_back(v);
              }
            }
          }
          double seconds = t.Seconds();
          clock.RecordCompute(q, seconds);
          obs::EmitSpanEndingNow("integrate_remote", "native", q,
                                 static_cast<int>(level), seconds);
        });
      }
    }

    clock.EndStep(native.overlap_comm);
    for (int p = 0; p < ranks; ++p) {
      frontier[p] = std::move(next_frontier[p]);
      next_frontier[p].clear();
    }
    ++level;
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes() / ranks);
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(uint32_t) / ranks +
                         visited.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                     native.overlap_comm ? buffer_peak / 4 : buffer_peak);

  result.levels = static_cast<int>(level);
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  return result;
}

}  // namespace maze::native
