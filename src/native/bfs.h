// Hand-optimized Breadth-First Search (Sections 3.2 and 6.1), following the
// approach of the paper's reference [28]: bitvector visited set, direction-
// optimizing traversal (top-down frontier expansion switching to bottom-up sweeps
// when the frontier is a large fraction of the graph), and compressed frontier
// exchange across ranks (delta/varint or dense bitvector, whichever is smaller).
#ifndef MAZE_NATIVE_BFS_H_
#define MAZE_NATIVE_BFS_H_

#include "core/graph.h"
#include "native/options.h"
#include "rt/algo.h"

namespace maze::native {

// Runs BFS on `g`, which must be symmetric (undirected graphs are stored with both
// edge directions in the out-CSR).
rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  const rt::EngineConfig& config,
                  const NativeOptions& native = NativeOptions::AllOn());

// Analytic memory traffic of a full BFS (for Table 4): each edge is inspected once
// in each direction plus per-vertex distance writes.
double BfsTotalBytes(VertexId num_vertices, EdgeId num_edges);

}  // namespace maze::native

#endif  // MAZE_NATIVE_BFS_H_
