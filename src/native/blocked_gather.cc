#include "native/blocked_gather.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace maze::native {
namespace {

constexpr size_t kFallbackLlcBytes = 2u << 20;
constexpr size_t kMinWindowVertices = 4096;

// Blocking only pays once the gathered values spill the last-level cache, so
// the window is sized against LLC (L3 when present, else L2). Sizing it
// against an inner level on a big-L3 part makes the kernel slower: the values
// were already cache-resident and the extra per-window passes are pure cost.
size_t DetectLlcBytes() {
#if defined(_SC_LEVEL3_CACHE_SIZE)
  long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) return static_cast<size_t>(l3);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) return static_cast<size_t>(l2);
#endif
  return kFallbackLlcBytes;
}

size_t DetectL2Bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) return static_cast<size_t>(l2);
#endif
  return 1u << 20;
}

}  // namespace

size_t InnerCacheBytes() {
  static const size_t l2 = DetectL2Bytes();
  return l2;
}

size_t GatherWindowVertices(size_t value_bytes) {
  if (const char* env = std::getenv("MAZE_HOTPATH_WINDOW")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  // Half of LLC: the window's values share the cache with the row id stream
  // and the accumulators.
  static const size_t llc = DetectLlcBytes();
  size_t w = (llc / 2) / (value_bytes == 0 ? 1 : value_bytes);
  return w < kMinWindowVertices ? kMinWindowVertices : w;
}

GatherBlocks GatherBlocks::Build(const EdgeId* offsets, const VertexId* targets,
                                 VertexId row_begin, VertexId row_end,
                                 VertexId src_begin, VertexId src_end,
                                 size_t window) {
  GatherBlocks gb;
  uint64_t span = src_end > src_begin ? src_end - src_begin : 0;
  gb.num_blocks =
      window == 0 ? 1 : static_cast<int>((span + window - 1) / window);
  if (gb.num_blocks <= 1) return gb;

  // Walks every (row, window) run once; each row's targets are sorted, so a
  // run ends at the first target past the window's upper bound.
  auto for_each_run = [&](auto&& fn) {
    for (VertexId v = row_begin; v < row_end; ++v) {
      EdgeId e = offsets[v];
      const EdgeId e_end = offsets[v + 1];
      while (e < e_end) {
        size_t b = (targets[e] - src_begin) / window;
        uint64_t upper = static_cast<uint64_t>(src_begin) + (b + 1) * window;
        EdgeId run_end;
        if (upper >= src_end) {
          run_end = e_end;
        } else {
          const VertexId* it =
              std::lower_bound(targets + e, targets + e_end,
                               static_cast<VertexId>(upper));
          run_end = static_cast<EdgeId>(it - targets);
        }
        fn(b, v, e, run_end);
        e = run_end;
      }
    }
  };

  // Pass 1: count segments per window; pass 2: place them in window order.
  std::vector<size_t> counts(static_cast<size_t>(gb.num_blocks), 0);
  for_each_run([&](size_t b, VertexId, EdgeId, EdgeId) { ++counts[b]; });

  gb.seg_off.resize(static_cast<size_t>(gb.num_blocks) + 1, 0);
  for (int b = 0; b < gb.num_blocks; ++b) {
    gb.seg_off[b + 1] = gb.seg_off[b] + counts[b];
  }
  size_t total = gb.seg_off.back();
  gb.seg_row.resize(total);
  gb.seg_begin.resize(total);
  gb.seg_end.resize(total);

  std::vector<size_t> cursor(gb.seg_off.begin(), gb.seg_off.end() - 1);
  for_each_run([&](size_t b, VertexId v, EdgeId e, EdgeId run_end) {
    size_t s = cursor[b]++;
    gb.seg_row[s] = v - row_begin;
    gb.seg_begin[s] = e;
    gb.seg_end[s] = run_end;
  });
  return gb;
}

}  // namespace maze::native
