// Cache-blocked CSR gather schedule (Section 6.1 optimization catalogue;
// GraphMat-style backend blocking, DESIGN.md §4f).
//
// A pull-direction gather (`for each row v: for each in-edge (u, v): acc +=
// contrib[u]`) streams the row's sorted source ids but hits contrib[] all over
// memory; once contrib outgrows the last-level cache, every edge is a
// potential cache miss. The fix is source blocking: split the source-vertex
// range into windows sized to half of LLC and process all edges whose source
// falls in window b before moving to window b+1 — contrib[window] stays hot
// while every row touching it is drained.
//
// Because each CSR row's in-targets are sorted ascending (guaranteed by
// Graph::BuildCsr), a row's edges within one window form one contiguous
// sub-range of its edge list, and windows are visited in ascending order, so a
// per-row running accumulator sees the exact same FP addition sequence as the
// plain row-major loop: blocked results are bit-identical, not just close.
// That is what lets MAZE_NATIVE_OPT be differentially tested for equality.
//
// The schedule (which rows intersect which window, and where) is static per
// graph slice, so it is built once and reused every iteration. Rows are
// distinct within a window (at most one segment per (row, window)), so the
// per-window segment list can be processed by ParallelFor race-free.
#ifndef MAZE_NATIVE_BLOCKED_GATHER_H_
#define MAZE_NATIVE_BLOCKED_GATHER_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace maze::native {

// Source-window width (in source vertices) for gathers whose per-source value
// is `value_bytes` wide: half of the last-level cache (L3 via sysconf, else
// L2, 2 MiB fallback), floor 4096 vertices. MAZE_HOTPATH_WINDOW=<vertices>
// overrides.
size_t GatherWindowVertices(size_t value_bytes);

// Detected L2 size (1 MiB fallback). Software prefetch of gathered values only
// pays when the gathered span spills this level; below it the loads already
// hit and the prefetch instructions are pure overhead.
size_t InnerCacheBytes();

struct GatherBlocks {
  // Segment s covers local row seg_row[s] (relative to the row_begin passed to
  // Build) and edge indices [seg_begin[s], seg_end[s]) of the caller's target
  // array; segments of window b are [seg_off[b], seg_off[b+1]).
  int num_blocks = 0;
  std::vector<size_t> seg_off;
  std::vector<VertexId> seg_row;
  std::vector<EdgeId> seg_begin;
  std::vector<EdgeId> seg_end;

  // Blocking only pays when the source range spans multiple windows.
  bool active() const { return num_blocks > 1; }

  // Builds the schedule for rows [row_begin, row_end) of a CSR given by
  // `offsets`/`targets`, where target (source) ids span [src_begin, src_end)
  // and each row's targets are sorted ascending. `window` is the source-window
  // width in vertices (see GatherWindowVertices).
  static GatherBlocks Build(const EdgeId* offsets, const VertexId* targets,
                            VertexId row_begin, VertexId row_end,
                            VertexId src_begin, VertexId src_end,
                            size_t window);
};

}  // namespace maze::native

#endif  // MAZE_NATIVE_BLOCKED_GATHER_H_
