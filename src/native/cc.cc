#include "native/cc.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/obs.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {

std::vector<VertexId> ReferenceComponents(const Graph& g) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  std::vector<VertexId> label(n, kInvalidVertex);
  for (VertexId seed = 0; seed < n; ++seed) {
    if (label[seed] != kInvalidVertex) continue;
    // Flood fill: every vertex in the component gets the smallest id in it,
    // which is `seed` because seeds are visited in increasing order.
    label[seed] = seed;
    std::deque<VertexId> queue = {seed};
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : g.OutNeighbors(u)) {
        if (label[v] == kInvalidVertex) {
          label[v] = seed;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

uint64_t CountComponents(const std::vector<VertexId>& labels) {
  std::vector<VertexId> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    const rt::EngineConfig& config, const NativeOptions& native) {
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);
  rt::Partition1D part = rt::Partition1D::EdgeBalanced(g, ranks);

  // Atomic min-label propagation: labels are claimed with CAS, a bitvector
  // dedups next-frontier membership, and only improved vertices propagate.
  std::vector<std::atomic<VertexId>> label(n);
  for (VertexId v = 0; v < n; ++v) label[v].store(v, std::memory_order_relaxed);

  std::vector<std::vector<VertexId>> frontier(ranks);
  for (int p = 0; p < ranks; ++p) {
    frontier[p].reserve(part.Size(p));
    for (VertexId v = part.Begin(p); v < part.End(p); ++v) {
      frontier[p].push_back(v);
    }
  }

  int rounds = 0;
  while (rounds < options.max_iterations) {
    uint64_t active = 0;
    for (const auto& f : frontier) active += f.size();
    if (active == 0) break;
    ++rounds;

    Bitvector in_next(n);
    std::vector<std::vector<VertexId>> next(ranks);
    // Cross-rank label updates per (src rank, dst rank), for wire accounting.
    std::vector<std::vector<uint64_t>> cross(ranks,
                                             std::vector<uint64_t>(ranks, 0));

    // Rank loop stays serial by design: labels relax through a global CAS, so
    // running ranks concurrently would make the per-(p, q) improvement counts
    // (and thus wire bytes) depend on the interleaving. RankTimer still charges
    // CPU time, keeping the compute model consistent with the parallel engines.
    for (int p = 0; p < ranks; ++p) {
      rt::RankTimer t;
      std::mutex merge_mu;
      ParallelFor(frontier[p].size(), 64, [&](uint64_t lo, uint64_t hi) {
        std::vector<VertexId> local_next;
        std::vector<uint64_t> local_cross(ranks, 0);
        for (uint64_t i = lo; i < hi; ++i) {
          VertexId u = frontier[p][i];
          VertexId lu = label[u].load(std::memory_order_relaxed);
          for (VertexId v : g.OutNeighbors(u)) {
            VertexId lv = label[v].load(std::memory_order_relaxed);
            bool improved = false;
            while (lu < lv) {
              if (label[v].compare_exchange_weak(lv, lu,
                                                 std::memory_order_relaxed)) {
                improved = true;
                break;
              }
            }
            if (improved) {
              int q = ranks == 1 ? 0 : part.OwnerOf(v);
              if (q != p) ++local_cross[q];
              if (in_next.TestAndSetAtomic(v)) local_next.push_back(v);
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        for (VertexId v : local_next) {
          next[ranks == 1 ? 0 : part.OwnerOf(v)].push_back(v);
        }
        for (int q = 0; q < ranks; ++q) cross[p][q] += local_cross[q];
      });
      double seconds = t.Seconds();
      clock.RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("labelprop", "native", p, rounds - 1, seconds);
    }
    // Wire: 8 bytes per cross-rank (vertex, label) improvement.
    for (int p = 0; p < ranks; ++p) {
      for (int q = 0; q < ranks; ++q) {
        if (cross[p][q] > 0) clock.RecordSend(p, q, cross[p][q] * 8, 1);
      }
    }
    clock.EndStep(native.overlap_comm);
    frontier = std::move(next);
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     g.MemoryBytes() / std::max(1, ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(VertexId) +
                         static_cast<uint64_t>(n) / 8);
  rt::ConnectedComponentsResult result;
  result.label.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.label[v] = label[v].load(std::memory_order_relaxed);
  }
  result.num_components = CountComponents(result.label);
  result.iterations = rounds;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.9);
  return result;
}

}  // namespace maze::native
