// Hand-optimized Connected Components (extension algorithm): frontier-driven
// min-label propagation. Only vertices whose label changed propagate in the
// next round, and cross-rank traffic is the changed (vertex, label) pairs,
// compressed like the BFS frontier when enabled.
#ifndef MAZE_NATIVE_CC_H_
#define MAZE_NATIVE_CC_H_

#include "core/graph.h"
#include "native/options.h"
#include "rt/algo.h"

namespace maze::native {

// Runs on a symmetric out-CSR graph.
rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    const rt::EngineConfig& config,
    const NativeOptions& native = NativeOptions::AllOn());

// Serial reference labeling (BFS flood fill per component).
std::vector<VertexId> ReferenceComponents(const Graph& g);

// Distinct labels in a labeling.
uint64_t CountComponents(const std::vector<VertexId>& labels);

}  // namespace maze::native

#endif  // MAZE_NATIVE_CC_H_
