#include "native/cf.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <cmath>
#include <vector>

#include "obs/obs.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "util/bitvector.h"
#include "rt/sim_clock.h"
#include "util/check.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {
namespace {

// Ratings bucketed into a GxG block grid (user stripe x item stripe), with a
// deterministic shuffle inside each block ("process edges in a random order").
struct BlockGrid {
  int g = 1;
  std::vector<VertexId> user_bounds;  // g + 1.
  std::vector<VertexId> item_bounds;  // g + 1.
  std::vector<std::vector<Rating>> blocks;  // g * g, row-major by user stripe.

  static BlockGrid Build(const BipartiteGraph& graph, int g, uint64_t seed) {
    BlockGrid grid;
    grid.g = g;
    grid.user_bounds.resize(g + 1);
    grid.item_bounds.resize(g + 1);
    for (int i = 0; i <= g; ++i) {
      grid.user_bounds[i] = static_cast<VertexId>(
          static_cast<uint64_t>(graph.num_users()) * i / g);
      grid.item_bounds[i] = static_cast<VertexId>(
          static_cast<uint64_t>(graph.num_items()) * i / g);
    }
    grid.blocks.resize(static_cast<size_t>(g) * g);
    auto item_stripe = [&](VertexId item) {
      return static_cast<int>(static_cast<uint64_t>(item) * g /
                              graph.num_items());
    };
    auto user_stripe = [&](VertexId user) {
      return static_cast<int>(static_cast<uint64_t>(user) * g /
                              graph.num_users());
    };
    for (VertexId u = 0; u < graph.num_users(); ++u) {
      for (const auto& e : graph.UserRatings(u)) {
        grid.blocks[static_cast<size_t>(user_stripe(u)) * g + item_stripe(e.id)]
            .push_back(Rating{u, e.id, e.rating});
      }
    }
    // In-block shuffle for SGD's random edge order.
    uint64_t state = seed;
    for (auto& block : grid.blocks) {
      Xorshift64Star rng(SplitMix64(state));
      for (size_t i = block.size(); i > 1; --i) {
        size_t j = rng.NextBounded(i);
        std::swap(block[i - 1], block[j]);
      }
    }
    return grid;
  }

  VertexId ItemsInStripe(int s) const { return item_bounds[s + 1] - item_bounds[s]; }
};

// One SGD pass over a block: equations (5)-(8).
void SgdBlock(const std::vector<Rating>& block, const rt::CfOptions& opt,
              double gamma, std::vector<double>* pu, std::vector<double>* qv) {
  const int k = opt.k;
  for (const Rating& r : block) {
    double* p = pu->data() + static_cast<size_t>(r.user) * k;
    double* q = qv->data() + static_cast<size_t>(r.item) * k;
    double dot = 0;
    for (int i = 0; i < k; ++i) dot += p[i] * q[i];
    double e = r.value - dot;
    for (int i = 0; i < k; ++i) {
      double p_old = p[i];
      p[i] += gamma * (e * q[i] - opt.lambda_p * p_old);
      q[i] += gamma * (e * p_old - opt.lambda_q * q[i]);
    }
  }
}

}  // namespace

void CfInitFactors(VertexId count, int k, uint64_t seed,
                   std::vector<double>* factors) {
  factors->resize(static_cast<size_t>(count) * k);
  double scale = 0.5 / std::sqrt(static_cast<double>(k));
  ParallelFor(factors->size(), 4096, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      uint64_t state = seed + i;
      Xorshift64Star rng(SplitMix64(state));
      (*factors)[i] = rng.NextDouble() * scale;
    }
  });
}

double CfRmse(const BipartiteGraph& g, const std::vector<double>& user_factors,
              const std::vector<double>& item_factors, int k) {
  std::mutex mu;
  double sum = 0;
  ParallelFor(g.num_users(), 128, [&](uint64_t lo, uint64_t hi) {
    double local = 0;
    for (VertexId u = static_cast<VertexId>(lo); u < hi; ++u) {
      const double* p = user_factors.data() + static_cast<size_t>(u) * k;
      for (const auto& e : g.UserRatings(u)) {
        const double* q = item_factors.data() + static_cast<size_t>(e.id) * k;
        double dot = 0;
        for (int i = 0; i < k; ++i) dot += p[i] * q[i];
        double err = e.rating - dot;
        local += err * err;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    sum += local;
  });
  return g.num_ratings() > 0
             ? std::sqrt(sum / static_cast<double>(g.num_ratings()))
             : 0.0;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    const rt::EngineConfig& config,
                                    const NativeOptions& native) {
  const int ranks = config.num_ranks;
  const int k = options.k;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);

  rt::CfResult result;
  result.k = k;
  CfInitFactors(g.num_users(), k, options.seed, &result.user_factors);
  CfInitFactors(g.num_items(), k, options.seed ^ 0x1234567ull,
                &result.item_factors);

  if (options.method == rt::CfMethod::kSgd) {
    // Grid: ranks (multi node) or worker threads (single node). Diagonal
    // scheduling keeps concurrent blocks disjoint in both users and items.
    int grid_dim = ranks > 1
                       ? ranks
                       : static_cast<int>(ThreadPool::Default().num_threads());
    grid_dim = std::max(1, grid_dim);
    BlockGrid grid = BlockGrid::Build(g, grid_dim, options.seed);

    double gamma = options.learning_rate;
    for (int iter = 0; iter < options.iterations; ++iter) {
      for (int s = 0; s < grid_dim; ++s) {
        if (ranks > 1) {
          // Each rank owns user stripe p and currently holds item stripe
          // (p + s) % grid_dim; stripes rotate between sub-steps. The diagonal
          // blocks are disjoint in both users and items, so ranks run
          // concurrently without factor-vector conflicts.
          rt::ForEachRank(ranks, [&](int p) {
            rt::RankTimer t;
            int item_stripe = (p + s) % grid_dim;
            SgdBlock(grid.blocks[static_cast<size_t>(p) * grid_dim + item_stripe],
                     options, gamma, &result.user_factors,
                     &result.item_factors);
            double seconds = t.Seconds();
            clock.RecordCompute(p, seconds);
            obs::EmitSpanEndingNow("sgd_block", "native", p, iter, seconds);
            // Rotate the item block to the previous rank for the next sub-step.
            uint64_t bytes = static_cast<uint64_t>(
                                 grid.ItemsInStripe(item_stripe)) *
                             k * sizeof(double);
            clock.RecordSend(p, (p + ranks - 1) % ranks, bytes, 1);
          });
          clock.EndStep(native.overlap_comm);
        } else {
          // Single node: all diagonal blocks in parallel across the pool.
          Timer t;
          ParallelFor(static_cast<uint64_t>(grid_dim), 1,
                      [&](uint64_t lo, uint64_t hi) {
                        for (uint64_t b = lo; b < hi; ++b) {
                          int row = static_cast<int>(b);
                          int col = (row + s) % grid_dim;
                          SgdBlock(grid.blocks[static_cast<size_t>(row) *
                                                   grid_dim + col],
                                   options, gamma, &result.user_factors,
                                   &result.item_factors);
                        }
                      });
          double seconds = t.Seconds();
          clock.RecordCompute(0, seconds);
          obs::EmitSpanEndingNow("sgd_diag", "native", 0, iter, seconds);
          clock.EndStep(false);
        }
      }
      gamma *= options.step_decay;
      result.rmse_per_iteration.push_back(
          CfRmse(g, result.user_factors, result.item_factors, k));
    }
    uint64_t block_bytes = g.num_ratings() * sizeof(Rating) / ranks;
    clock.ChargeMemory(0, obs::MemPhase::kGraph, block_bytes);
    clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                       (result.user_factors.size() / ranks +
                        result.item_factors.size()) * sizeof(double));
  } else {
    // Gradient Descent: equations (11)-(12). Old factors are snapshotted so all
    // updates in an iteration read iteration-start values.
    rt::Partition1D user_part = rt::Partition1D::VertexBalanced(g.num_users(),
                                                                ranks);
    rt::Partition1D item_part = rt::Partition1D::VertexBalanced(g.num_items(),
                                                                ranks);
    // Ghost counts: distinct remote item vectors each rank's user pass reads, and
    // vice versa (charged per iteration; factor vectors change every iteration).
    std::vector<uint64_t> ghost_in(ranks, 0);
    if (ranks > 1) {
      for (int p = 0; p < ranks; ++p) {
        Bitvector items_needed(g.num_items());
        for (VertexId u = user_part.Begin(p); u < user_part.End(p); ++u) {
          for (const auto& e : g.UserRatings(u)) items_needed.Set(e.id);
        }
        Bitvector users_needed(g.num_users());
        for (VertexId v = item_part.Begin(p); v < item_part.End(p); ++v) {
          for (const auto& e : g.ItemRatings(v)) users_needed.Set(e.id);
        }
        uint64_t remote_items = 0;
        std::vector<uint32_t> ids;
        items_needed.AppendSetBits(&ids);
        for (VertexId v : ids) {
          if (item_part.OwnerOf(v) != p) ++remote_items;
        }
        ids.clear();
        users_needed.AppendSetBits(&ids);
        uint64_t remote_users = 0;
        for (VertexId u : ids) {
          if (user_part.OwnerOf(u) != p) ++remote_users;
        }
        ghost_in[p] = (remote_items + remote_users) *
                      static_cast<uint64_t>(k) * sizeof(double);
      }
    }

    double gamma = options.learning_rate;
    std::vector<double> old_users;
    std::vector<double> old_items;
    for (int iter = 0; iter < options.iterations; ++iter) {
      old_users = result.user_factors;
      old_items = result.item_factors;

      if (ranks > 1) {
        // Factor exchange: each rank pulls the remote factor vectors its edges
        // touch (Table 1's 8K-bytes-per-edge class of traffic, deduplicated).
        for (int p = 0; p < ranks; ++p) {
          if (ghost_in[p] > 0) {
            // Attribute inbound volume to senders round-robin: charge as one
            // aggregate message from each other rank.
            uint64_t share = ghost_in[p] / std::max(1, ranks - 1);
            for (int q = 0; q < ranks; ++q) {
              if (q != p && share > 0) clock.RecordSend(q, p, share, 1);
            }
          }
        }
      }

      // Rank-parallel: both passes read the iteration-start snapshots and write
      // only the rank's owned user/item factor rows.
      rt::ForEachRank(ranks, [&](int p) {
        rt::RankTimer t;
        // User pass.
        ParallelFor(
            user_part.Size(p), 64, [&](uint64_t lo, uint64_t hi) {
              std::vector<double> grad(k);
              for (VertexId u = user_part.Begin(p) + static_cast<VertexId>(lo);
                   u < user_part.Begin(p) + static_cast<VertexId>(hi); ++u) {
                const double* p_old = old_users.data() +
                                      static_cast<size_t>(u) * k;
                std::fill(grad.begin(), grad.end(), 0.0);
                for (const auto& e : g.UserRatings(u)) {
                  const double* q_old = old_items.data() +
                                        static_cast<size_t>(e.id) * k;
                  double dot = 0;
                  for (int i = 0; i < k; ++i) dot += p_old[i] * q_old[i];
                  double err = e.rating - dot;
                  for (int i = 0; i < k; ++i) {
                    grad[i] += err * q_old[i] - options.lambda_p * p_old[i];
                  }
                }
                double* p_new = result.user_factors.data() +
                                static_cast<size_t>(u) * k;
                for (int i = 0; i < k; ++i) p_new[i] = p_old[i] + gamma * grad[i];
              }
            });
        // Item pass.
        ParallelFor(
            item_part.Size(p), 64, [&](uint64_t lo, uint64_t hi) {
              std::vector<double> grad(k);
              for (VertexId v = item_part.Begin(p) + static_cast<VertexId>(lo);
                   v < item_part.Begin(p) + static_cast<VertexId>(hi); ++v) {
                const double* q_old = old_items.data() +
                                      static_cast<size_t>(v) * k;
                std::fill(grad.begin(), grad.end(), 0.0);
                for (const auto& e : g.ItemRatings(v)) {
                  const double* p_old = old_users.data() +
                                        static_cast<size_t>(e.id) * k;
                  double dot = 0;
                  for (int i = 0; i < k; ++i) dot += p_old[i] * q_old[i];
                  double err = e.rating - dot;
                  for (int i = 0; i < k; ++i) {
                    grad[i] += err * p_old[i] - options.lambda_q * q_old[i];
                  }
                }
                double* q_new = result.item_factors.data() +
                                static_cast<size_t>(v) * k;
                for (int i = 0; i < k; ++i) q_new[i] = q_old[i] + gamma * grad[i];
              }
            });
        double seconds = t.Seconds();
        clock.RecordCompute(p, seconds);
        obs::EmitSpanEndingNow("gd_pass", "native", p, iter, seconds);
      });
      clock.EndStep(native.overlap_comm);
      gamma *= options.step_decay;
      result.rmse_per_iteration.push_back(
          CfRmse(g, result.user_factors, result.item_factors, k));
    }
    clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes() / ranks);
    clock.ChargeMemory(
        0, obs::MemPhase::kEngineState,
        2 * (result.user_factors.size() + result.item_factors.size()) *
            sizeof(double) / ranks);
  }

  result.iterations = options.iterations;
  result.final_rmse = result.rmse_per_iteration.empty()
                          ? 0.0
                          : result.rmse_per_iteration.back();
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.85);
  return result;
}

}  // namespace maze::native
