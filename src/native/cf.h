// Hand-optimized Collaborative Filtering (Sections 2, 3.2, 6.1.2).
//
// Native code implements true Stochastic Gradient Descent using the lock-free
// diagonal ("stratified") parallelization of Gemulla et al. [16]: the ratings
// matrix is divided into an n x n grid of blocks (n = workers or ranks); an
// iteration runs n sub-steps, each processing one diagonal of blocks so that no
// two concurrent blocks share a user row or item column. Gradient Descent is also
// provided (it is what the restricted frameworks can express), and the SGD-vs-GD
// convergence bench reproduces the paper's ~40x iteration-count observation.
#ifndef MAZE_NATIVE_CF_H_
#define MAZE_NATIVE_CF_H_

#include "core/bipartite.h"
#include "native/options.h"
#include "rt/algo.h"

namespace maze::native {

rt::CfResult CollaborativeFiltering(
    const BipartiteGraph& g, const rt::CfOptions& options,
    const rt::EngineConfig& config,
    const NativeOptions& native = NativeOptions::AllOn());

// Root-mean-square prediction error of the given factors over all ratings.
double CfRmse(const BipartiteGraph& g, const std::vector<double>& user_factors,
              const std::vector<double>& item_factors, int k);

// Deterministic small-random factor initialization shared by all engines so
// per-iteration results are comparable across frameworks.
void CfInitFactors(VertexId count, int k, uint64_t seed,
                   std::vector<double>* factors);

}  // namespace maze::native

#endif  // MAZE_NATIVE_CF_H_
