#include "native/options.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace maze::native {
namespace {

// -1 = follow MAZE_NATIVE_OPT (default off); 0/1 = forced by a test/bench.
std::atomic<int> g_native_opt_force{-1};

}  // namespace

bool NativeOptEnabled() {
  int force = g_native_opt_force.load(std::memory_order_relaxed);
  if (force >= 0) return force != 0;
  const char* env = std::getenv("MAZE_NATIVE_OPT");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

void SetNativeOptForTesting(int force) {
  g_native_opt_force.store(force < 0 ? -1 : (force != 0 ? 1 : 0),
                           std::memory_order_relaxed);
}

}  // namespace maze::native
