// Optimization toggles for the hand-optimized native kernels (Section 6.1).
//
// Each flag corresponds to one bar group of Figure 7 / one technique of §6.1.1:
// software prefetching, message compression, computation-communication overlap, and
// data-structure selection (bitvectors). The Figure 7 bench flips these one at a
// time to reproduce the ablation.
#ifndef MAZE_NATIVE_OPTIONS_H_
#define MAZE_NATIVE_OPTIONS_H_

namespace maze::native {

struct NativeOptions {
  // Issue __builtin_prefetch for irregular gathers (contrib[] in PageRank,
  // visited bits in BFS). The paper's single biggest single-node win.
  bool software_prefetch = true;

  // Delta/varint (or dense-range bitvector) encode vertex-id message payloads;
  // reduces modeled wire bytes at real encoding CPU cost.
  bool compress_messages = true;

  // Overlap computation with communication: step time becomes
  // max(compute, comm) instead of compute + comm, and large messages are
  // processed in blocks, shrinking buffer memory.
  bool overlap_comm = true;

  // Data-structure optimization: bitvector visited set in BFS (enables the
  // bottom-up direction switch) and bitvector neighbor lookups for hub vertices
  // in triangle counting.
  bool use_bitvector = true;

  // Ablation-only (not one of Figure 7's bars): partition 1-D by equal vertex
  // counts instead of the default equal edge counts, reproducing §6.1.1's load-
  // imbalance discussion ("2D partitioning ... or advanced 1D ... gives better
  // load balancing") on skewed graphs.
  bool vertex_balanced_partition = false;

  static NativeOptions AllOn() { return NativeOptions{}; }
  static NativeOptions AllOff() {
    return {false, false, false, false, false};
  }
};

// --- Measured hot-path toggle (DESIGN.md §4f) --------------------------------
// Unlike the modeled ablation flags above, MAZE_NATIVE_OPT switches *host-side*
// implementations: cache-blocked, branch-lean, prefetch-friendly PageRank /
// SpMV inner loops that produce bit-identical results to the plain loops
// (same FP addition order — differentially tested). Default off so the plain
// loops stay the reference; bench_hotpath measures both sides.

// True when MAZE_NATIVE_OPT=1 (or a test forced a value).
bool NativeOptEnabled();
// 1/0 forces the opt path on/off; -1 restores the env.
void SetNativeOptForTesting(int force);

}  // namespace maze::native

#endif  // MAZE_NATIVE_OPTIONS_H_
