#include "native/pagerank.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/prefetch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {
namespace {

// One gather pass over the rank's in-CSR slice: new_pr[v] = jump + (1-jump) *
// sum(contrib[u]). The contrib array is shared; remote reads are what the wire
// accounting below charges for.
void GatherRange(const Graph& g, VertexId begin, VertexId end, double jump,
                 const std::vector<double>& contrib, std::vector<double>* new_pr,
                 bool prefetch) {
  const auto& offsets = g.in_offsets();
  const auto& targets = g.in_targets();
  ParallelFor(end - begin, 256, [&](uint64_t lo, uint64_t hi) {
    for (VertexId v = begin + static_cast<VertexId>(lo);
         v < begin + static_cast<VertexId>(hi); ++v) {
      double sum = 0;
      EdgeId e_begin = offsets[v];
      EdgeId e_end = offsets[v + 1];
      if (prefetch && e_end - e_begin > kPrefetchDistance) {
        // Split loop: the main body prefetches unconditionally (no per-edge
        // bounds check), the tail runs plain.
        EdgeId main_end = e_end - kPrefetchDistance;
        EdgeId e = e_begin;
        for (; e < main_end; ++e) {
          PrefetchRead(&contrib[targets[e + kPrefetchDistance]]);
          sum += contrib[targets[e]];
        }
        for (; e < e_end; ++e) {
          sum += contrib[targets[e]];
        }
      } else {
        for (EdgeId e = e_begin; e < e_end; ++e) {
          sum += contrib[targets[e]];
        }
      }
      (*new_pr)[v] = jump + (1.0 - jump) * sum;
    }
  });
}

}  // namespace

double PageRankBytesPerIteration(VertexId num_vertices, EdgeId num_edges) {
  // Per edge: 4B target id stream + 8B contrib gather. Per vertex: 8B rank store,
  // 8B contrib recompute (read rank + degree, write contrib) ~ 24B.
  return static_cast<double>(num_edges) * 12.0 +
         static_cast<double>(num_vertices) * 24.0;
}

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            const rt::EngineConfig& config,
                            const NativeOptions& native) {
  MAZE_CHECK(g.has_in());
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);

  rt::Partition1D part =
      native.vertex_balanced_partition
          ? rt::Partition1D::VertexBalanced(n, ranks)
          : rt::Partition1D::EdgeBalancedFromOffsets(g.in_offsets(), ranks);

  // Ghost schedule: ghost_values[q][p] = number of distinct source vertices owned
  // by rank q whose contribution rank p needs each iteration (local reduction:
  // each value crosses the wire once per target rank, not once per edge).
  std::vector<uint64_t> ghost_values(static_cast<size_t>(ranks) * ranks, 0);
  // Compressed size in bytes of each (q, p) id schedule; charged once at setup
  // when compression is on (the schedule is static across iterations).
  std::vector<uint64_t> ghost_id_bytes(static_cast<size_t>(ranks) * ranks, 0);
  if (ranks > 1) {
    for (int p = 0; p < ranks; ++p) {
      std::vector<std::vector<uint32_t>> needed(ranks);
      for (VertexId v = part.Begin(p); v < part.End(p); ++v) {
        for (VertexId u : g.InNeighbors(v)) {
          int q = part.OwnerOf(u);
          if (q != p) needed[q].push_back(u);
        }
      }
      for (int q = 0; q < ranks; ++q) {
        auto& ids = needed[q];
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        ghost_values[static_cast<size_t>(q) * ranks + p] = ids.size();
        if (native.compress_messages && !ids.empty()) {
          std::vector<uint8_t> enc;
          DeltaEncodeIds(ids, &enc);
          ghost_id_bytes[static_cast<size_t>(q) * ranks + p] = enc.size();
        }
      }
    }
    // Setup exchange: ship the id schedules once (compressed) or note that ids
    // travel with every value (uncompressed path charges them per iteration).
    if (native.compress_messages) {
      for (int q = 0; q < ranks; ++q) {
        for (int p = 0; p < ranks; ++p) {
          uint64_t bytes = ghost_id_bytes[static_cast<size_t>(q) * ranks + p];
          if (bytes > 0) clock.RecordSend(p, q, bytes, 1);
        }
      }
      clock.EndStep(/*overlap_comm=*/false);
    }
  }

  std::vector<double> pr(n, 1.0);
  std::vector<double> new_pr(n, 0.0);
  std::vector<double> contrib(n, 0.0);

  uint64_t buffer_bytes = 0;
  int executed_iterations = 0;
  for (int iter = 0; iter < options.iterations; ++iter) {
    ++executed_iterations;
    // Phase 1 (rank-parallel): recompute contributions of owned vertices.
    // Ranks write disjoint contrib ranges and read only their own pr slice.
    rt::ForEachRank(ranks, [&](int p) {
      rt::RankTimer t;
      VertexId b = part.Begin(p);
      VertexId e = part.End(p);
      ParallelFor(e - b, 1024, [&](uint64_t lo, uint64_t hi) {
        for (VertexId v = b + static_cast<VertexId>(lo);
             v < b + static_cast<VertexId>(hi); ++v) {
          EdgeId deg = g.OutDegree(v);
          contrib[v] = deg > 0 ? pr[v] / static_cast<double>(deg) : 0.0;
        }
      });
      double seconds = t.Seconds();
      clock.RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("contrib", "native", p, iter, seconds);
    });

    // Wire: each rank sends its boundary contributions to the ranks needing them.
    if (ranks > 1) {
      for (int q = 0; q < ranks; ++q) {
        uint64_t rank_buffer = 0;
        for (int p = 0; p < ranks; ++p) {
          uint64_t values = ghost_values[static_cast<size_t>(q) * ranks + p];
          if (values == 0) continue;
          // 8B per value; uncompressed mode also ships the 4B id per value every
          // iteration instead of using the static schedule.
          uint64_t bytes = values * (native.compress_messages ? 8 : 12);
          clock.RecordSend(q, p, bytes, 1);
          rank_buffer += bytes;
        }
        buffer_bytes = std::max(buffer_bytes, rank_buffer);
      }
    }

    // Phase 2 (rank-parallel): gather over owned in-edges. The ForEachRank
    // barrier above guarantees every rank's contrib slice is complete.
    rt::ForEachRank(ranks, [&](int p) {
      rt::RankTimer t;
      GatherRange(g, part.Begin(p), part.End(p), options.jump, contrib, &new_pr,
                  native.software_prefetch);
      double seconds = t.Seconds();
      clock.RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("gather", "native", p, iter, seconds);
    });
    clock.EndStep(native.overlap_comm);
    std::swap(pr, new_pr);

    // Optional early-convergence detection on the max per-vertex change (the
    // residual check is charged as compute on rank 0; it is one cheap pass).
    if (options.tolerance > 0) {
      rt::RankTimer t;
      double max_delta = 0;
      for (VertexId v = 0; v < n; ++v) {
        max_delta = std::max(max_delta, std::abs(pr[v] - new_pr[v]));
      }
      clock.RecordCompute(0, t.Seconds());
      clock.EndStep(false);
      if (max_delta < options.tolerance) break;
    }
  }

  // Memory footprint: graph slice + three double arrays + message buffers.
  uint64_t per_rank_graph = g.MemoryBytes() / ranks;
  uint64_t per_rank_state = (static_cast<uint64_t>(n) * 3 * sizeof(double)) / ranks +
                            static_cast<uint64_t>(n) * sizeof(double);  // contrib
  clock.ChargeMemory(0, obs::MemPhase::kGraph, per_rank_graph);
  clock.ChargeMemory(0, obs::MemPhase::kEngineState, per_rank_state);
  clock.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                     native.overlap_comm ? buffer_bytes / 4 : buffer_bytes);

  rt::PageRankResult result;
  result.ranks = std::move(pr);
  result.iterations = executed_iterations;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.9);
  return result;
}

}  // namespace maze::native
