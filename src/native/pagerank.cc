#include "native/pagerank.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "native/blocked_gather.h"
#include "obs/obs.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/prefetch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {
namespace {

// One gather pass over the rank's in-CSR slice: new_pr[v] = jump + (1-jump) *
// sum(contrib[u]). The contrib array is shared; remote reads are what the wire
// accounting below charges for.
void GatherRange(const Graph& g, VertexId begin, VertexId end, double jump,
                 const std::vector<double>& contrib, std::vector<double>* new_pr,
                 bool prefetch) {
  const auto& offsets = g.in_offsets();
  const auto& targets = g.in_targets();
  ParallelFor(end - begin, 256, [&](uint64_t lo, uint64_t hi) {
    for (VertexId v = begin + static_cast<VertexId>(lo);
         v < begin + static_cast<VertexId>(hi); ++v) {
      double sum = 0;
      EdgeId e_begin = offsets[v];
      EdgeId e_end = offsets[v + 1];
      if (prefetch && e_end - e_begin > kPrefetchDistance) {
        // Split loop: the main body prefetches unconditionally (no per-edge
        // bounds check), the tail runs plain.
        EdgeId main_end = e_end - kPrefetchDistance;
        EdgeId e = e_begin;
        for (; e < main_end; ++e) {
          PrefetchRead(&contrib[targets[e + kPrefetchDistance]]);
          sum += contrib[targets[e]];
        }
        for (; e < e_end; ++e) {
          sum += contrib[targets[e]];
        }
      } else {
        for (EdgeId e = e_begin; e < e_end; ++e) {
          sum += contrib[targets[e]];
        }
      }
      (*new_pr)[v] = jump + (1.0 - jump) * sum;
    }
  });
}

// Branch-lean edge-run accumulation off raw pointers: the split main loop
// prefetches unconditionally and carries no per-edge bounds check, so the
// compiler can unroll/vectorize the gather address stream.
inline double AccumulateRun(const VertexId* targets, const double* contrib,
                            EdgeId e, EdgeId e_end, double sum,
                            bool prefetch) {
  if (prefetch && e_end - e > static_cast<EdgeId>(kPrefetchDistance)) {
    EdgeId main_end = e_end - kPrefetchDistance;
    for (; e < main_end; ++e) {
      PrefetchRead(&contrib[targets[e + kPrefetchDistance]]);
      sum += contrib[targets[e]];
    }
  }
  for (; e < e_end; ++e) {
    sum += contrib[targets[e]];
  }
  return sum;
}

// MAZE_NATIVE_OPT gather (DESIGN.md §4f): same FP addition sequence as
// GatherRange — identical per-row edge order, running accumulator from 0.0,
// one final jump + (1-jump)*sum — so results are bit-identical. What changes
// is the memory schedule: with a blocking plan, edges are visited one
// contrib[] source window at a time so the window stays L2-resident.
void GatherRangeOpt(const Graph& g, VertexId begin, VertexId end, double jump,
                    const std::vector<double>& contrib,
                    std::vector<double>* new_pr, bool prefetch,
                    const GatherBlocks& blocks) {
  const EdgeId* offsets = g.in_offsets().data();
  const VertexId* targets = g.in_targets().data();
  const double* c = contrib.data();
  double* out = new_pr->data();
  if (!blocks.active()) {
    ParallelFor(end - begin, 256, [&](uint64_t lo, uint64_t hi) {
      for (VertexId v = begin + static_cast<VertexId>(lo);
           v < begin + static_cast<VertexId>(hi); ++v) {
        double sum = AccumulateRun(targets, c, offsets[v], offsets[v + 1], 0.0,
                                   prefetch);
        out[v] = jump + (1.0 - jump) * sum;
      }
    });
    return;
  }
  // Accumulate in new_pr itself: zero, drain the windows in ascending order
  // (each row's running sum picks up where the previous window left it), then
  // finalize. Rows are distinct within a window, so the per-window segment
  // list parallelizes race-free.
  ParallelFor(end - begin, 4096, [&](uint64_t lo, uint64_t hi) {
    std::fill(out + begin + lo, out + begin + hi, 0.0);
  });
  for (int b = 0; b < blocks.num_blocks; ++b) {
    const size_t s_begin = blocks.seg_off[b];
    const size_t s_end = blocks.seg_off[b + 1];
    ParallelFor(s_end - s_begin, 64, [&](uint64_t lo, uint64_t hi) {
      for (size_t s = s_begin + lo; s < s_begin + hi; ++s) {
        VertexId v = begin + blocks.seg_row[s];
        out[v] = AccumulateRun(targets, c, blocks.seg_begin[s],
                               blocks.seg_end[s], out[v], prefetch);
      }
    });
  }
  ParallelFor(end - begin, 4096, [&](uint64_t lo, uint64_t hi) {
    for (VertexId v = begin + static_cast<VertexId>(lo);
         v < begin + static_cast<VertexId>(hi); ++v) {
      out[v] = jump + (1.0 - jump) * out[v];
    }
  });
}

}  // namespace

double PageRankBytesPerIteration(VertexId num_vertices, EdgeId num_edges) {
  // Per edge: 4B target id stream + 8B contrib gather. Per vertex: 8B rank store,
  // 8B contrib recompute (read rank + degree, write contrib) ~ 24B.
  return static_cast<double>(num_edges) * 12.0 +
         static_cast<double>(num_vertices) * 24.0;
}

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            const rt::EngineConfig& config,
                            const NativeOptions& native) {
  MAZE_CHECK(g.has_in());
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);

  rt::Partition1D part =
      native.vertex_balanced_partition
          ? rt::Partition1D::VertexBalanced(n, ranks)
          : rt::Partition1D::EdgeBalancedFromOffsets(g.in_offsets(), ranks);

  // Ghost schedule: ghost_values[q][p] = number of distinct source vertices owned
  // by rank q whose contribution rank p needs each iteration (local reduction:
  // each value crosses the wire once per target rank, not once per edge).
  std::vector<uint64_t> ghost_values(static_cast<size_t>(ranks) * ranks, 0);
  // Compressed size in bytes of each (q, p) id schedule; charged once at setup
  // when compression is on (the schedule is static across iterations).
  std::vector<uint64_t> ghost_id_bytes(static_cast<size_t>(ranks) * ranks, 0);
  if (ranks > 1) {
    for (int p = 0; p < ranks; ++p) {
      std::vector<std::vector<uint32_t>> needed(ranks);
      for (VertexId v = part.Begin(p); v < part.End(p); ++v) {
        for (VertexId u : g.InNeighbors(v)) {
          int q = part.OwnerOf(u);
          if (q != p) needed[q].push_back(u);
        }
      }
      for (int q = 0; q < ranks; ++q) {
        auto& ids = needed[q];
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        ghost_values[static_cast<size_t>(q) * ranks + p] = ids.size();
        if (native.compress_messages && !ids.empty()) {
          std::vector<uint8_t> enc;
          DeltaEncodeIds(ids, &enc);
          ghost_id_bytes[static_cast<size_t>(q) * ranks + p] = enc.size();
        }
      }
    }
    // Setup exchange: ship the id schedules once (compressed) or note that ids
    // travel with every value (uncompressed path charges them per iteration).
    if (native.compress_messages) {
      for (int q = 0; q < ranks; ++q) {
        for (int p = 0; p < ranks; ++p) {
          uint64_t bytes = ghost_id_bytes[static_cast<size_t>(q) * ranks + p];
          if (bytes > 0) clock.RecordSend(p, q, bytes, 1);
        }
      }
      clock.EndStep(/*overlap_comm=*/false);
    }
  }

  std::vector<double> pr(n, 1.0);
  std::vector<double> new_pr(n, 0.0);
  std::vector<double> contrib(n, 0.0);

  // MAZE_NATIVE_OPT: cache-blocking plans, built once per rank slice (the
  // schedule is static across iterations) and only when contrib[] actually
  // spans multiple LLC-sized source windows.
  const bool opt = NativeOptEnabled();
  std::vector<GatherBlocks> blocks(opt ? static_cast<size_t>(ranks) : 0);
  // The opt gather prefetches only once contrib[] spills L2; below that the
  // gathered loads already hit and prefetch instructions are pure overhead.
  const bool opt_prefetch =
      native.software_prefetch &&
      static_cast<size_t>(n) * sizeof(double) > InnerCacheBytes();
  if (opt) {
    size_t window = GatherWindowVertices(sizeof(double));
    for (int p = 0; p < ranks; ++p) {
      blocks[p] = GatherBlocks::Build(g.in_offsets().data(),
                                      g.in_targets().data(), part.Begin(p),
                                      part.End(p), 0, n, window);
    }
  }

  uint64_t buffer_bytes = 0;
  int executed_iterations = 0;
  for (int iter = 0; iter < options.iterations; ++iter) {
    ++executed_iterations;
    // Phase 1 (rank-parallel): recompute contributions of owned vertices.
    // Ranks write disjoint contrib ranges and read only their own pr slice.
    rt::ForEachRank(ranks, [&](int p) {
      rt::RankTimer t;
      VertexId b = part.Begin(p);
      VertexId e = part.End(p);
      if (opt) {
        // Elementwise over raw pointers — no aliasing through the vector,
        // vectorizable (per-element, so FP results are unchanged).
        const EdgeId* ooff = g.out_offsets().data();
        const double* pr_p = pr.data();
        double* contrib_p = contrib.data();
        ParallelFor(e - b, 1024, [&](uint64_t lo, uint64_t hi) {
          for (VertexId v = b + static_cast<VertexId>(lo);
               v < b + static_cast<VertexId>(hi); ++v) {
            EdgeId deg = ooff[v + 1] - ooff[v];
            contrib_p[v] = deg > 0 ? pr_p[v] / static_cast<double>(deg) : 0.0;
          }
        });
      } else {
        ParallelFor(e - b, 1024, [&](uint64_t lo, uint64_t hi) {
          for (VertexId v = b + static_cast<VertexId>(lo);
               v < b + static_cast<VertexId>(hi); ++v) {
            EdgeId deg = g.OutDegree(v);
            contrib[v] = deg > 0 ? pr[v] / static_cast<double>(deg) : 0.0;
          }
        });
      }
      double seconds = t.Seconds();
      clock.RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("contrib", "native", p, iter, seconds);
    });

    // Wire: each rank sends its boundary contributions to the ranks needing them.
    if (ranks > 1) {
      for (int q = 0; q < ranks; ++q) {
        uint64_t rank_buffer = 0;
        for (int p = 0; p < ranks; ++p) {
          uint64_t values = ghost_values[static_cast<size_t>(q) * ranks + p];
          if (values == 0) continue;
          // 8B per value; uncompressed mode also ships the 4B id per value every
          // iteration instead of using the static schedule.
          uint64_t bytes = values * (native.compress_messages ? 8 : 12);
          clock.RecordSend(q, p, bytes, 1);
          rank_buffer += bytes;
        }
        buffer_bytes = std::max(buffer_bytes, rank_buffer);
      }
    }

    // Phase 2 (rank-parallel): gather over owned in-edges. The ForEachRank
    // barrier above guarantees every rank's contrib slice is complete.
    rt::ForEachRank(ranks, [&](int p) {
      rt::RankTimer t;
      if (opt) {
        GatherRangeOpt(g, part.Begin(p), part.End(p), options.jump, contrib,
                       &new_pr, opt_prefetch, blocks[p]);
      } else {
        GatherRange(g, part.Begin(p), part.End(p), options.jump, contrib,
                    &new_pr, native.software_prefetch);
      }
      double seconds = t.Seconds();
      clock.RecordCompute(p, seconds);
      obs::EmitSpanEndingNow("gather", "native", p, iter, seconds);
    });
    clock.EndStep(native.overlap_comm);
    std::swap(pr, new_pr);

    // Optional early-convergence detection on the max per-vertex change (the
    // residual check is charged as compute on rank 0; it is one cheap pass).
    if (options.tolerance > 0) {
      rt::RankTimer t;
      double max_delta = 0;
      for (VertexId v = 0; v < n; ++v) {
        max_delta = std::max(max_delta, std::abs(pr[v] - new_pr[v]));
      }
      clock.RecordCompute(0, t.Seconds());
      clock.EndStep(false);
      if (max_delta < options.tolerance) break;
    }
  }

  // Memory footprint: graph slice + three double arrays + message buffers.
  uint64_t per_rank_graph = g.MemoryBytes() / ranks;
  uint64_t per_rank_state = (static_cast<uint64_t>(n) * 3 * sizeof(double)) / ranks +
                            static_cast<uint64_t>(n) * sizeof(double);  // contrib
  clock.ChargeMemory(0, obs::MemPhase::kGraph, per_rank_graph);
  clock.ChargeMemory(0, obs::MemPhase::kEngineState, per_rank_state);
  clock.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                     native.overlap_comm ? buffer_bytes / 4 : buffer_bytes);

  rt::PageRankResult result;
  result.ranks = std::move(pr);
  result.iterations = executed_iterations;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.9);
  return result;
}

}  // namespace maze::native
