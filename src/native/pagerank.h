// Hand-optimized PageRank (Sections 3.1 and 6.1).
//
// Single node: the graph's *incoming* edges are stored in CSR so the per-vertex
// gather streams a contiguous edge array (hardware prefetch friendly), with
// software prefetch on the irregular contrib[] reads. Multi node: 1-D partitioning
// balanced by in-edge count; each iteration ranks exchange the contributions of
// boundary vertices with local reduction (one value per (vertex, target-rank)
// pair), optionally with a static compressed id schedule.
#ifndef MAZE_NATIVE_PAGERANK_H_
#define MAZE_NATIVE_PAGERANK_H_

#include "core/graph.h"
#include "native/options.h"
#include "rt/algo.h"

namespace maze::native {

// Runs PageRank on `g` (requires in-CSR and out-degrees, i.e. GraphDirections::
// kBoth). `config.num_ranks == 1` is the pure shared-memory kernel.
rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            const rt::EngineConfig& config,
                            const NativeOptions& native = NativeOptions::AllOn());

// Analytic memory traffic of one PageRank iteration (for the Table 4 efficiency
// computation): CSR edge stream + contrib gathers + vertex updates.
double PageRankBytesPerIteration(VertexId num_vertices, EdgeId num_edges);

}  // namespace maze::native

#endif  // MAZE_NATIVE_PAGERANK_H_
