#include "native/reference.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace maze::native {

std::vector<double> ReferencePageRank(const Graph& g, int iterations,
                                      double jump) {
  MAZE_CHECK(g.has_in());
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  std::vector<double> pr(n, 1.0);
  std::vector<double> next(n);
  for (int iter = 0; iter < iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0;
      for (VertexId u : g.InNeighbors(v)) {
        EdgeId deg = g.OutDegree(u);
        if (deg > 0) sum += pr[u] / static_cast<double>(deg);
      }
      next[v] = jump + (1.0 - jump) * sum;
    }
    std::swap(pr, next);
  }
  return pr;
}

std::vector<uint32_t> ReferenceBfs(const Graph& g, VertexId source) {
  MAZE_CHECK(g.has_out());
  std::vector<uint32_t> dist(g.num_vertices(), kInfiniteDistance);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kInfiniteDistance) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

uint64_t ReferenceTriangleCount(const Graph& g) {
  MAZE_CHECK(g.has_out());
  uint64_t count = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      // Count common out-neighbors of u and v (both lists sorted).
      auto a = g.OutNeighbors(u);
      auto b = g.OutNeighbors(v);
      size_t i = 0;
      size_t j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++count;
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

uint64_t BruteForceTriangleCount(const Graph& undirected) {
  MAZE_CHECK(undirected.has_out());
  const VertexId n = undirected.num_vertices();
  uint64_t count = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : undirected.OutNeighbors(u)) {
      if (v <= u) continue;
      for (VertexId w : undirected.OutNeighbors(v)) {
        if (w <= v) continue;
        auto nu = undirected.OutNeighbors(u);
        if (std::binary_search(nu.begin(), nu.end(), w)) ++count;
      }
    }
  }
  return count;
}

}  // namespace maze::native
