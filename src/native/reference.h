// Obviously-correct serial reference implementations used by the test suite to
// validate every engine's output (native and the five framework engines alike).
// These favor clarity over speed and perform no optimization whatsoever.
#ifndef MAZE_NATIVE_REFERENCE_H_
#define MAZE_NATIVE_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "core/bipartite.h"
#include "core/graph.h"

namespace maze::native {

// Serial PageRank per equation (1): PR(i) = jump + (1-jump) * sum PR(j)/deg(j).
std::vector<double> ReferencePageRank(const Graph& g, int iterations,
                                      double jump);

// Serial BFS distances from `source` over the out-CSR.
std::vector<uint32_t> ReferenceBfs(const Graph& g, VertexId source);

// Serial triangle count over an oriented (src < dst) graph.
uint64_t ReferenceTriangleCount(const Graph& g);

// Brute-force exact triangle count over an arbitrary undirected edge list
// (used to validate the orientation preprocessing itself). O(V^3)-ish on the
// adjacency structure; only for tiny graphs.
uint64_t BruteForceTriangleCount(const Graph& undirected);

}  // namespace maze::native

#endif  // MAZE_NATIVE_REFERENCE_H_
