#include "native/sssp.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <vector>

#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {

std::vector<float> ReferenceDijkstra(const WeightedGraph& g, VertexId source) {
  MAZE_CHECK(source < g.num_vertices());
  std::vector<float> dist(g.num_vertices(), rt::SsspResult::kUnreachable);
  using Entry = std::pair<float, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[source] = 0;
  queue.push({0, source});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;  // Stale entry.
    for (const auto& arc : g.OutArcs(u)) {
      float candidate = d + arc.weight;
      if (candidate < dist[arc.dst]) {
        dist[arc.dst] = candidate;
        queue.push({candidate, arc.dst});
      }
    }
  }
  return dist;
}

rt::SsspResult Sssp(const WeightedGraph& g, const rt::SsspOptions& options,
                    const rt::EngineConfig& config,
                    const NativeOptions& native) {
  const VertexId n = g.num_vertices();
  MAZE_CHECK(options.source < n);
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);
  rt::Partition1D part = rt::Partition1D::VertexBalanced(n, ranks);

  // Atomic float distances, claimed by CAS on the bit pattern.
  std::vector<std::atomic<float>> dist(n);
  for (auto& d : dist) {
    d.store(rt::SsspResult::kUnreachable, std::memory_order_relaxed);
  }
  dist[options.source].store(0, std::memory_order_relaxed);

  std::vector<std::vector<VertexId>> frontier(ranks);
  frontier[part.OwnerOf(options.source)].push_back(options.source);

  int rounds = 0;
  while (true) {
    uint64_t active = 0;
    for (const auto& f : frontier) active += f.size();
    if (active == 0) break;
    ++rounds;

    Bitvector in_next(n);
    std::vector<std::vector<VertexId>> next(ranks);
    std::vector<std::vector<uint64_t>> cross(ranks,
                                             std::vector<uint64_t>(ranks, 0));
    // Rank loop stays serial by design: distances relax through a global CAS,
    // so concurrent ranks would make the per-(p, q) relaxation counts (and thus
    // wire bytes) schedule-dependent. RankTimer still charges CPU time.
    for (int p = 0; p < ranks; ++p) {
      rt::RankTimer t;
      std::mutex merge_mu;
      ParallelFor(frontier[p].size(), 64, [&](uint64_t lo, uint64_t hi) {
        std::vector<VertexId> local_next;
        std::vector<uint64_t> local_cross(ranks, 0);
        for (uint64_t i = lo; i < hi; ++i) {
          VertexId u = frontier[p][i];
          float du = dist[u].load(std::memory_order_relaxed);
          for (const auto& arc : g.OutArcs(u)) {
            float candidate = du + arc.weight;
            float cur = dist[arc.dst].load(std::memory_order_relaxed);
            bool improved = false;
            while (candidate < cur) {
              if (dist[arc.dst].compare_exchange_weak(
                      cur, candidate, std::memory_order_relaxed)) {
                improved = true;
                break;
              }
            }
            if (improved) {
              int q = ranks == 1 ? 0 : part.OwnerOf(arc.dst);
              if (q != p) ++local_cross[q];
              if (in_next.TestAndSetAtomic(arc.dst)) {
                local_next.push_back(arc.dst);
              }
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        for (VertexId v : local_next) {
          next[ranks == 1 ? 0 : part.OwnerOf(v)].push_back(v);
        }
        for (int q = 0; q < ranks; ++q) cross[p][q] += local_cross[q];
      });
      clock.RecordCompute(p, t.Seconds());
    }
    for (int p = 0; p < ranks; ++p) {
      for (int q = 0; q < ranks; ++q) {
        // 12 bytes per cross-rank (vertex, distance) relaxation.
        if (cross[p][q] > 0) clock.RecordSend(p, q, cross[p][q] * 12, 1);
      }
    }
    clock.EndStep(native.overlap_comm);
    frontier = std::move(next);
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph,
                     g.MemoryBytes() / std::max(1, ranks));
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(float));
  rt::SsspResult result;
  result.distance.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.distance[v] = dist[v].load(std::memory_order_relaxed);
  }
  result.rounds = rounds;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.9);
  return result;
}

}  // namespace maze::native
