// Hand-optimized Single-Source Shortest Paths (extension algorithm) over a
// weighted symmetric graph: frontier-driven relaxation with atomic
// compare-and-swap distance claims (Bellman-Ford with a sparse frontier).
// The taskflow engine provides the delta-stepping counterpart.
#ifndef MAZE_NATIVE_SSSP_H_
#define MAZE_NATIVE_SSSP_H_

#include "core/weighted_graph.h"
#include "native/options.h"
#include "rt/algo.h"

namespace maze::native {

rt::SsspResult Sssp(const WeightedGraph& g, const rt::SsspOptions& options,
                    const rt::EngineConfig& config,
                    const NativeOptions& native = NativeOptions::AllOn());

// Serial Dijkstra reference for validation.
std::vector<float> ReferenceDijkstra(const WeightedGraph& g, VertexId source);

}  // namespace maze::native

#endif  // MAZE_NATIVE_SSSP_H_
