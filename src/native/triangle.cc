#include "native/triangle.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/obs.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::native {
namespace {

// Out-degree above which loading N+(u) into a bitvector beats repeated sorted
// intersections against it.
constexpr EdgeId kHubDegreeThreshold = 64;

// |a ∩ b| for two sorted id lists.
uint64_t SortedIntersectCount(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// Triangles closed by vertices in [begin, end): for each owned u, intersect
// N+(u) with N+(v) for every v in N+(u).
uint64_t CountRange(const Graph& g, VertexId begin, VertexId end,
                    bool use_bitvector) {
  std::atomic<uint64_t> total{0};
  ParallelFor(end - begin, 64, [&](uint64_t lo, uint64_t hi) {
    // Per-chunk scratch bitvector, lazily sized; cleared per hub vertex by
    // resetting only the bits that were set (not the whole vector).
    thread_local Bitvector scratch;
    if (scratch.size() != g.num_vertices()) scratch.Resize(g.num_vertices());
    uint64_t local = 0;
    for (VertexId u = begin + static_cast<VertexId>(lo);
         u < begin + static_cast<VertexId>(hi); ++u) {
      const auto nu = g.OutNeighbors(u);
      if (use_bitvector && nu.size() > kHubDegreeThreshold) {
        for (VertexId v : nu) scratch.Set(v);
        for (VertexId v : nu) {
          for (VertexId w : g.OutNeighbors(v)) {
            local += scratch.Test(w) ? 1 : 0;
          }
        }
        for (VertexId v : nu) scratch.Clear(v);
      } else {
        for (VertexId v : nu) {
          local += SortedIntersectCount(nu, g.OutNeighbors(v));
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

}  // namespace

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions& options,
                                      const rt::EngineConfig& config,
                                      const NativeOptions& native) {
  (void)options;
  MAZE_CHECK(g.has_out());
  const int ranks = config.num_ranks;
  rt::SimClock clock(ranks, config.comm, config.trace, config.faults);
  rt::Partition1D part = rt::Partition1D::EdgeBalanced(g, ranks);

  // Wire accounting: for each rank p, each distinct remote vertex v appearing in
  // an owned vertex's neighborhood must ship its adjacency list to p once.
  uint64_t buffer_peak = 0;
  if (ranks > 1) {
    for (int p = 0; p < ranks; ++p) {
      // Distinct remote neighbors of p's owned vertices.
      Bitvector needed(g.num_vertices());
      for (VertexId u = part.Begin(p); u < part.End(p); ++u) {
        for (VertexId v : g.OutNeighbors(u)) {
          if (part.OwnerOf(v) != p) needed.Set(v);
        }
      }
      std::vector<VertexId> ids;
      needed.AppendSetBits(&ids);
      std::vector<uint64_t> bytes_from(ranks, 0);
      for (VertexId v : ids) {
        int q = part.OwnerOf(v);
        uint64_t list_bytes;
        if (native.compress_messages) {
          // Delta-coded adjacency: ~1.5 bytes/id measured on RMAT lists; charge
          // the real encoded size for a faithful number.
          std::vector<uint8_t> enc;
          const auto nv = g.OutNeighbors(v);
          DeltaEncodeIds(std::vector<VertexId>(nv.begin(), nv.end()), &enc);
          list_bytes = enc.size() + 4;  // + vertex id header.
        } else {
          list_bytes = g.OutDegree(v) * sizeof(VertexId) + 8;
        }
        bytes_from[q] += list_bytes;
      }
      uint64_t rank_buffer = 0;
      for (int q = 0; q < ranks; ++q) {
        if (bytes_from[q] == 0) continue;
        clock.RecordSend(q, p, bytes_from[q], 1);
        rank_buffer += bytes_from[q];
      }
      buffer_peak = std::max(buffer_peak, rank_buffer);
    }
  }

  // Compute: each rank counts for its owned range (reads the shared CSR; the
  // remote reads are what the transfer above paid for). Ranks run concurrently
  // — the graph is read-only and each writes only its own count slot, summed in
  // rank order below so the total is schedule-invariant.
  std::vector<uint64_t> rank_triangles(ranks, 0);
  rt::ForEachRank(ranks, [&](int p) {
    rt::RankTimer t;
    rank_triangles[p] =
        CountRange(g, part.Begin(p), part.End(p), native.use_bitvector);
    double seconds = t.Seconds();
    clock.RecordCompute(p, seconds);
    obs::EmitSpanEndingNow("intersect", "native", p, /*step=*/0, seconds);
  });
  uint64_t triangles = 0;
  for (int p = 0; p < ranks; ++p) triangles += rank_triangles[p];
  clock.EndStep(native.overlap_comm);

  // Overlap blocks the inbound adjacency stream, bounding buffers; without it the
  // whole remote neighborhood volume sits in memory at once (the Giraph failure
  // mode of §6.1.3, which native avoids).
  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes() / ranks);
  clock.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                     native.overlap_comm ? buffer_peak / 16 : buffer_peak);

  rt::TriangleCountResult result;
  result.triangles = triangles;
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.8);
  return result;
}

}  // namespace maze::native
