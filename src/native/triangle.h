// Hand-optimized Triangle Counting (Sections 3.2 and 6.1).
//
// Input is the oriented graph (every undirected edge stored once, small id ->
// large id, per §4.1.2). Counting is sum over directed edges (u, v) of
// |N+(u) ∩ N+(v)| computed by linear-time sorted intersection, with the paper's
// bitvector optimization for hub vertices (~2.2x): when N+(u) is large, its
// membership is loaded into a per-thread bitvector for O(1) lookups.
//
// Multi node: vertices are 1-D partitioned; each rank counting for its vertices
// needs the adjacency lists of remote neighbors, and those lists dominate traffic
// (total message volume O(sum deg^2) — Table 1's "variable 0-10^6 bytes/edge").
// Overlap blocks that traffic into pieces, which is also what keeps the buffer
// memory bounded (§6.1.1).
#ifndef MAZE_NATIVE_TRIANGLE_H_
#define MAZE_NATIVE_TRIANGLE_H_

#include "core/graph.h"
#include "native/options.h"
#include "rt/algo.h"

namespace maze::native {

rt::TriangleCountResult TriangleCount(
    const Graph& g, const rt::TriangleCountOptions& options,
    const rt::EngineConfig& config,
    const NativeOptions& native = NativeOptions::AllOn());

}  // namespace maze::native

#endif  // MAZE_NATIVE_TRIANGLE_H_
