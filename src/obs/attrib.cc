#include "obs/attrib.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/obs.h"

namespace maze::obs::attrib {
namespace {

// Deterministic shortest-round-trip-ish formatting: attribution output must be
// byte-identical for equal inputs (the differential tests compare strings).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// Max / mean / argmax of one barrier term. Falls back to the aggregate (which
// is a max by construction) when the record carries no per-rank vector: mean
// degrades to the max, imbalance reads as zero, and argmax stays -1.
struct TermStats {
  double max = 0;
  double mean = 0;
  int argmax = -1;
};

TermStats StatsFor(const std::vector<double>& per_rank, double aggregate_max) {
  TermStats s;
  if (per_rank.empty()) {
    s.max = aggregate_max;
    s.mean = aggregate_max;
    return s;
  }
  s.max = per_rank[0];
  s.argmax = 0;
  double sum = per_rank[0];
  for (size_t r = 1; r < per_rank.size(); ++r) {
    sum += per_rank[r];
    if (per_rank[r] > s.max) {  // Strict: ties resolve to the lowest rank.
      s.max = per_rank[r];
      s.argmax = static_cast<int>(r);
    }
  }
  s.mean = sum / static_cast<double>(per_rank.size());
  // Accumulation rounding can push the mean a ulp past the max; pin it so
  // imbalance excess stays >= 0 and the perfect-balance bound stays <= actual.
  if (s.mean > s.max) s.mean = s.max;
  return s;
}

StepAttribution AttributeStep(const rt::StepRecord& s) {
  StepAttribution a;
  a.step = s.step;
  TermStats c = StatsFor(s.rank_compute_seconds, s.compute_seconds);
  TermStats w = StatsFor(s.rank_wire_seconds, s.wire_seconds);
  TermStats f = StatsFor(s.rank_fault_seconds, s.fault_seconds);

  // Which terms the barrier actually charges: both when sequential, only the
  // larger when the engine overlaps comm with compute (compute wins ties).
  const bool compute_counted = !s.overlapped || c.max >= w.max;
  const bool wire_counted = !s.overlapped || c.max < w.max;

  a.compute_seconds = compute_counted ? c.mean : 0;
  a.wire_seconds = wire_counted ? w.mean : 0;
  a.imbalance_seconds = (compute_counted ? c.max - c.mean : 0) +
                        (wire_counted ? w.max - w.mean : 0);
  a.fault_seconds = f.max;
  double base = s.overlapped ? std::max(c.max, w.max) : c.max + w.max;
  a.step_seconds = base + f.max;
  a.imbalance_factor = c.mean > 0 ? c.max / c.mean : 1.0;

  // Binding term: the barrier's single largest charged contribution; its
  // argmax rank is the step's critical rank. Ties prefer compute, then wire —
  // deterministic so output bytes never depend on evaluation order.
  const double cv = compute_counted ? c.max : 0;
  const double wv = wire_counted ? w.max : 0;
  if (cv <= 0 && wv <= 0 && f.max <= 0) {
    a.binding_term = BindingTerm::kNone;
    a.binding_rank = -1;
  } else if (cv >= wv && cv >= f.max) {
    a.binding_term = BindingTerm::kCompute;
    a.binding_rank = c.argmax;
  } else if (wv >= f.max) {
    a.binding_term = BindingTerm::kWire;
    a.binding_rank = w.argmax;
  } else {
    a.binding_term = BindingTerm::kFault;
    a.binding_rank = f.argmax;
  }
  return a;
}

}  // namespace

const char* BindingTermName(BindingTerm term) {
  switch (term) {
    case BindingTerm::kNone:
      return "none";
    case BindingTerm::kCompute:
      return "compute";
    case BindingTerm::kWire:
      return "wire";
    case BindingTerm::kFault:
      return "fault";
    case BindingTerm::kImbalance:
      return "imbalance";
  }
  return "none";
}

BindingTerm Attribution::DominantComponent() const {
  double best = critical_compute_seconds;
  BindingTerm term = BindingTerm::kCompute;
  if (critical_wire_seconds > best) {
    best = critical_wire_seconds;
    term = BindingTerm::kWire;
  }
  if (imbalance_idle_seconds > best) {
    best = imbalance_idle_seconds;
    term = BindingTerm::kImbalance;
  }
  if (fault_recovery_seconds > best) {
    best = fault_recovery_seconds;
    term = BindingTerm::kFault;
  }
  return best > 0 ? term : BindingTerm::kNone;
}

const char* Attribution::Verdict() const {
  switch (DominantComponent()) {
    case BindingTerm::kCompute:
      return "compute-bound";
    case BindingTerm::kWire:
      return "network-bound";
    case BindingTerm::kImbalance:
      return "imbalance-bound";
    case BindingTerm::kFault:
      return "fault-bound";
    case BindingTerm::kNone:
      break;
  }
  return "idle";
}

Attribution Attribute(const rt::RunMetrics& metrics) {
  Attribution out;
  if (metrics.steps.empty()) return out;
  out.available = true;

  double elapsed = 0;
  double factor_weight = 0;     // sum of step seconds
  double factor_weighted = 0;   // sum of factor * step seconds
  for (const rt::StepRecord& s : metrics.steps) {
    out.steps.push_back(AttributeStep(s));
    const StepAttribution& a = out.steps.back();

    out.critical_compute_seconds += a.compute_seconds;
    out.critical_wire_seconds += a.wire_seconds;
    out.imbalance_idle_seconds += a.imbalance_seconds;
    out.fault_recovery_seconds += a.fault_seconds;
    elapsed += a.step_seconds;

    out.max_imbalance_factor =
        std::max(out.max_imbalance_factor, a.imbalance_factor);
    if (a.step_seconds > 0) {
      factor_weight += a.step_seconds;
      factor_weighted += a.imbalance_factor * a.step_seconds;
    }

    // What-if bounds, one counterfactual at a time from the same records.
    TermStats c = StatsFor(s.rank_compute_seconds, s.compute_seconds);
    TermStats w = StatsFor(s.rank_wire_seconds, s.wire_seconds);
    TermStats f = StatsFor(s.rank_fault_seconds, s.fault_seconds);
    double base = s.overlapped ? std::max(c.max, w.max) : c.max + w.max;
    out.bounds.infinite_bandwidth_seconds += c.max + f.max;
    out.bounds.perfect_balance_seconds +=
        (s.overlapped ? std::max(c.mean, w.mean) : c.mean + w.mean) + f.max;
    out.bounds.zero_fault_seconds += base;
    out.bounds.best_case_seconds += c.mean;

    // Per-rank slack against this barrier (only meaningful with a per-rank
    // breakdown; missing vectors read as zero busy time for that term).
    size_t ranks = std::max({s.rank_compute_seconds.size(),
                             s.rank_wire_seconds.size(),
                             s.rank_fault_seconds.size()});
    if (ranks == 0) continue;
    if (out.rank_slack_seconds.size() < ranks) {
      out.rank_slack_seconds.resize(ranks, 0.0);
    }
    for (size_t r = 0; r < ranks; ++r) {
      double cr =
          r < s.rank_compute_seconds.size() ? s.rank_compute_seconds[r] : 0;
      double wr = r < s.rank_wire_seconds.size() ? s.rank_wire_seconds[r] : 0;
      double fr = r < s.rank_fault_seconds.size() ? s.rank_fault_seconds[r] : 0;
      double busy = (s.overlapped ? std::max(cr, wr) : cr + wr) + fr;
      double slack = a.step_seconds - busy;
      if (slack > 0) out.rank_slack_seconds[r] += slack;
    }
  }

  out.num_ranks = static_cast<int>(out.rank_slack_seconds.size());
  // The sum of recomputed barrier times; bitwise-equal to the clock's
  // elapsed_seconds for engine-produced traces (same maxes, same fold order).
  out.elapsed_seconds = elapsed;
  out.mean_imbalance_factor =
      factor_weight > 0 ? factor_weighted / factor_weight : 1.0;
  return out;
}

std::string Attribution::ToJson() const {
  std::ostringstream out;
  out << "{\"available\":" << (available ? "true" : "false");
  if (!available) {
    out << "}";
    return out.str();
  }
  out << ",\"num_ranks\":" << num_ranks
      << ",\"elapsed_seconds\":" << Num(elapsed_seconds)
      << ",\"components\":{\"critical_compute_seconds\":"
      << Num(critical_compute_seconds)
      << ",\"critical_wire_seconds\":" << Num(critical_wire_seconds)
      << ",\"imbalance_idle_seconds\":" << Num(imbalance_idle_seconds)
      << ",\"fault_recovery_seconds\":" << Num(fault_recovery_seconds) << "}"
      << ",\"component_sum_seconds\":" << Num(ComponentSum())
      << ",\"verdict\":\"" << Verdict() << "\""
      << ",\"max_imbalance_factor\":" << Num(max_imbalance_factor)
      << ",\"mean_imbalance_factor\":" << Num(mean_imbalance_factor)
      << ",\"what_if\":{\"infinite_bandwidth_seconds\":"
      << Num(bounds.infinite_bandwidth_seconds)
      << ",\"perfect_balance_seconds\":" << Num(bounds.perfect_balance_seconds)
      << ",\"zero_fault_seconds\":" << Num(bounds.zero_fault_seconds)
      << ",\"best_case_seconds\":" << Num(bounds.best_case_seconds) << "}";
  out << ",\"rank_slack_seconds\":[";
  for (size_t r = 0; r < rank_slack_seconds.size(); ++r) {
    if (r > 0) out << ",";
    out << Num(rank_slack_seconds[r]);
  }
  out << "],\"steps\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepAttribution& a = steps[i];
    if (i > 0) out << ",";
    out << "{\"step\":" << a.step << ",\"seconds\":" << Num(a.step_seconds)
        << ",\"binding_term\":\"" << BindingTermName(a.binding_term) << "\""
        << ",\"binding_rank\":" << a.binding_rank
        << ",\"compute\":" << Num(a.compute_seconds)
        << ",\"wire\":" << Num(a.wire_seconds)
        << ",\"imbalance\":" << Num(a.imbalance_seconds)
        << ",\"fault\":" << Num(a.fault_seconds)
        << ",\"imbalance_factor\":" << Num(a.imbalance_factor) << "}";
  }
  out << "]}";
  return out.str();
}

std::string AttributionReport::ToJson() const {
  std::ostringstream out;
  out << "{\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    const AttributionRow& r = rows_[i];
    if (i > 0) out << ",";
    out << "{\"engine\":\"" << r.engine << "\",\"algorithm\":\"" << r.algorithm
        << "\",\"dataset\":\"" << r.dataset << "\",\"ranks\":" << r.ranks
        << ",\"attribution\":" << r.attribution.ToJson() << "}";
  }
  out << "]}";
  return out.str();
}

std::string AttributionReport::ToMarkdown() const {
  // Group rows per algorithm like the resource report: one table per
  // algorithm, engines as rows — the paper's cross-framework reading order.
  std::map<std::string, std::vector<const AttributionRow*>> by_algo;
  for (const AttributionRow& r : rows_) {
    by_algo[r.algorithm].push_back(&r);
  }
  std::ostringstream out;
  out << "# Time attribution (critical path)\n";
  for (const auto& [algo, rows] : by_algo) {
    out << "\n## " << algo << "\n\n"
        << "| engine | dataset | ranks | elapsed s | compute s | wire s | "
           "imbalance s | fault s | wire % | imb. max | x inf-bw | x balanced "
           "| x no-fault | x best | verdict |\n"
        << "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|"
           "---:|---|\n";
    for (const AttributionRow* r : rows) {
      const Attribution& a = r->attribution;
      if (!a.available) {
        out << "| " << r->engine << " | " << r->dataset << " | " << r->ranks
            << " | - | - | - | - | - | - | - | - | - | - | - | not traced |\n";
        continue;
      }
      auto speedup = [&](double bound) {
        return bound > 0 ? Fixed(a.elapsed_seconds / bound, 2)
                         : std::string("-");
      };
      double wire_pct = a.elapsed_seconds > 0
                            ? 100.0 * a.critical_wire_seconds / a.elapsed_seconds
                            : 0;
      out << "| " << r->engine << " | " << r->dataset << " | " << r->ranks
          << " | " << Fixed(a.elapsed_seconds, 6) << " | "
          << Fixed(a.critical_compute_seconds, 6) << " | "
          << Fixed(a.critical_wire_seconds, 6) << " | "
          << Fixed(a.imbalance_idle_seconds, 6) << " | "
          << Fixed(a.fault_recovery_seconds, 6) << " | " << Fixed(wire_pct, 1)
          << " | " << Fixed(a.max_imbalance_factor, 2) << " | "
          << speedup(a.bounds.infinite_bandwidth_seconds) << " | "
          << speedup(a.bounds.perfect_balance_seconds) << " | "
          << speedup(a.bounds.zero_fault_seconds) << " | "
          << speedup(a.bounds.best_case_seconds) << " | " << a.Verdict()
          << " |\n";
    }
  }
  out << "\nColumns: the four components sum to the modeled elapsed time; "
         "`wire %` is the critical-wire share (the paper's network-bound "
         "test); `x inf-bw`/`x balanced`/`x no-fault`/`x best` are the "
         "speedups a counterfactual run would get with infinite bandwidth, "
         "perfect load balance, zero faults, or all three at once — the "
         "remaining \"ninja gap\" of each framework.\n";
  return out.str();
}

void AnnotateTrace(const Attribution& attribution, const char* engine_cat) {
  if (!Enabled() || !attribution.available) return;
  // Slices live in the simulated clock domain: step barriers tile [0, elapsed)
  // exactly, so accumulate begin times the same way SimClock charged them.
  double t_us = 0;
  uint64_t pending_flow = 0;
  bool have_flow = false;
  for (const StepAttribution& a : attribution.steps) {
    double dur_us = a.step_seconds * 1e6;
    if (a.step_seconds <= 0) continue;  // Trailing/zero barriers draw nothing.
    PushCritSpan(BindingTermName(a.binding_term), engine_cat, a.binding_rank,
                 a.step, t_us, dur_us, a.imbalance_factor);
    if (have_flow) {
      // Arrow from the previous binding slice into this one: the handoff of
      // the run's critical path between (possibly different) binding ranks.
      PushFlowEnd("critical-path", engine_cat, a.binding_rank, a.step,
                  t_us + dur_us * 0.5, pending_flow);
    }
    pending_flow = PushFlowStart("critical-path", engine_cat, a.binding_rank,
                                 a.step, t_us + dur_us * 0.5);
    have_flow = true;
    t_us += dur_us;
  }
}

}  // namespace maze::obs::attrib
