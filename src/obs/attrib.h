// maze::obs::attrib — critical-path time attribution: explain every modeled
// second of a run.
//
// The paper's contribution is not the timings but the explanations — which
// frameworks are network-bound vs compute-bound, where the Giraph-like engine
// loses time to load imbalance, what each native optimization buys (§5–6).
// This module decomposes a traced run's RunMetrics::elapsed_seconds into four
// components that sum *exactly* back to the modeled elapsed time:
//
//   elapsed = critical_compute + critical_wire + imbalance_idle + fault_recovery
//
// Per step barrier (rt::StepRecord), with cmax/cmean the max/mean over ranks
// of charged compute, wmax/wmean of modeled wire time, fmax the slowest
// rank's fault/recovery stall:
//
//   non-overlapped step  = cmax + wmax + fmax
//     -> compute cmean, wire wmean, imbalance (cmax-cmean)+(wmax-wmean),
//        fault fmax
//   overlapped step      = max(cmax, wmax) + fmax
//     -> only the binding side contributes (the other is hidden under it):
//        compute-bound: compute cmean, imbalance cmax-cmean;
//        wire-bound:    wire wmean,    imbalance wmax-wmean
//
// so "critical compute/wire" is the perfectly-balanced share of the barrier,
// "imbalance idle" is the extra time the barrier waits for the slowest rank
// beyond the mean (the max-over-mean excess), and "fault/recovery" is the
// slowest rank's injected stall. Each step also gets a *binding term* (which
// of compute/wire/fault is the barrier's largest contribution) and a *binding
// rank* (the argmax rank of that term) — the critical path — plus a max/mean
// load-imbalance factor and per-rank slack.
//
// What-if lower bounds are recomputed from the same records, never measured:
//   infinite_bandwidth : wire removed          -> sum of cmax + fmax
//   perfect_balance    : maxes become means    -> (overlap?max(cmean,wmean)
//                                                 :cmean+wmean) + fmax
//   zero_fault         : stalls removed        -> the compute/wire base
//   best_case          : all three at once     -> sum of cmean
// All four are <= the actual elapsed time; actual/bound is the quantitative
// "ninja gap" each framework could close (GraphMat's framing).
//
// Exported three ways: AttributionReport (JSON + markdown per-engine table:
// who is network-bound, the §5.4 narrative), Perfetto annotations on existing
// traces (AnnotateTrace: a critical-path track + flow arrows linking binding
// ranks across steps), and `maze_cli run --explain=<path>`.
//
// Attribution is a pure function of the recorded steps: same records, same
// output bytes — the differential tests assert this across the serial and
// rank-parallel schedules and under fault injection.
#ifndef MAZE_OBS_ATTRIB_H_
#define MAZE_OBS_ATTRIB_H_

#include <string>
#include <vector>

#include "rt/metrics.h"

namespace maze::obs::attrib {

// Which term of the step barrier (or of the whole run) binds.
enum class BindingTerm {
  kNone = 0,  // Zero-duration step (e.g. the trailing leftover-bytes record).
  kCompute,
  kWire,
  kFault,
  kImbalance,  // Run-level verdicts only; never binds a single barrier.
};
const char* BindingTermName(BindingTerm term);

// One step barrier's share of the run decomposition.
struct StepAttribution {
  int step = 0;
  double step_seconds = 0;       // This barrier's simulated duration.
  BindingTerm binding_term = BindingTerm::kNone;
  int binding_rank = -1;         // argmax rank of the binding term; -1 when
                                 // the record has no per-rank breakdown.
  double compute_seconds = 0;    // Balanced (mean-over-ranks) compute share.
  double wire_seconds = 0;       // Balanced wire share (0 when hidden).
  double imbalance_seconds = 0;  // Max-over-mean excess of the counted terms.
  double fault_seconds = 0;      // Slowest rank's fault/recovery stall.
  double imbalance_factor = 1;   // compute max/mean, >= 1.
};

// Lower bounds on elapsed time recomputed from the same step records.
struct WhatIfBounds {
  double infinite_bandwidth_seconds = 0;
  double perfect_balance_seconds = 0;
  double zero_fault_seconds = 0;
  double best_case_seconds = 0;  // All three counterfactuals at once.
};

// Whole-run decomposition. `available` is false when the run was not traced
// (no step records): nothing can be attributed.
struct Attribution {
  bool available = false;
  int num_ranks = 0;  // Widest per-rank breakdown seen (0 = aggregates only).
  double elapsed_seconds = 0;

  // The four components; ComponentSum() == elapsed_seconds to <= 1e-9 rel.
  double critical_compute_seconds = 0;
  double critical_wire_seconds = 0;
  double imbalance_idle_seconds = 0;
  double fault_recovery_seconds = 0;
  double ComponentSum() const {
    return critical_compute_seconds + critical_wire_seconds +
           imbalance_idle_seconds + fault_recovery_seconds;
  }

  // The largest component: the run's one-word explanation ("network-bound").
  BindingTerm DominantComponent() const;
  const char* Verdict() const;

  // Load imbalance: max over steps, and the step-time-weighted mean.
  double max_imbalance_factor = 1;
  double mean_imbalance_factor = 1;

  WhatIfBounds bounds;

  // Per-rank barrier slack summed over steps with a per-rank breakdown: how
  // long each rank sat idle while the binding rank held the barrier.
  std::vector<double> rank_slack_seconds;

  std::vector<StepAttribution> steps;

  // Machine artifact; deterministic byte-for-byte for equal inputs.
  std::string ToJson() const;
};

// Decomposes a traced run. Pure: consumes only metrics.steps (per-rank vectors
// when present, the aggregate fields otherwise) and metrics.elapsed_seconds.
Attribution Attribute(const rt::RunMetrics& metrics);

// One (engine, algorithm, dataset) line of the cross-engine report.
struct AttributionRow {
  std::string engine;
  std::string algorithm;
  std::string dataset;
  int ranks = 1;
  Attribution attribution;
};

// Aggregates rows and renders them as JSON (machine artifact) and markdown
// (the per-engine "who is network-bound" table, one per algorithm).
class AttributionReport {
 public:
  void Add(AttributionRow row) { rows_.push_back(std::move(row)); }
  const std::vector<AttributionRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  std::string ToJson() const;
  std::string ToMarkdown() const;

 private:
  std::vector<AttributionRow> rows_;
};

// Pushes the attribution onto the live obs rings as Perfetto annotations: one
// critical-path slice per step barrier (named by binding term, args carry the
// binding rank and imbalance factor) plus flow arrows linking consecutive
// binding slices. `engine_cat` must be a static string (obs contract). No-op
// when tracing is disabled or the attribution is unavailable.
void AnnotateTrace(const Attribution& attribution, const char* engine_cat);

}  // namespace maze::obs::attrib

#endif  // MAZE_OBS_ATTRIB_H_
