#include "obs/counters.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace maze::obs {
namespace {

// Leaked singletons: counter/histogram references handed out must stay valid
// even during static destruction of client code.
struct CounterRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  static CounterRegistry& Get() {
    static CounterRegistry* r = new CounterRegistry();
    return *r;
  }
};

std::atomic<uint64_t> g_registry_lookups{0};

}  // namespace

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int msb = std::bit_width(value) - 1;  // In [kSubBits, 63].
  int sub = static_cast<int>((value >> (msb - kSubBits)) & (kSubBuckets - 1));
  return kSubBuckets * (msb - kSubBits + 1) + sub;
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  int msb = index / kSubBuckets + kSubBits - 1;
  int sub = index % kSubBuckets;
  return ((static_cast<uint64_t>(kSubBuckets + sub + 1)) << (msb - kSubBits)) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::SnapshotBuckets()
    const {
  std::array<uint64_t, kNumBuckets> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& GetCounter(const std::string& name) {
  g_registry_lookups.fetch_add(1, std::memory_order_relaxed);
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& GetGauge(const std::string& name) {
  g_registry_lookups.fetch_add(1, std::memory_order_relaxed);
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& GetHistogram(const std::string& name) {
  g_registry_lookups.fetch_add(1, std::memory_order_relaxed);
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

uint64_t RegistryLookups() {
  return g_registry_lookups.load(std::memory_order_relaxed);
}

namespace internal {
void BumpRegistryLookup() {
  g_registry_lookups.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal

std::vector<std::pair<std::string, Counter*>> AllCounters() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, Counter*>> out;
  out.reserve(reg.counters.size());
  for (const auto& [name, counter] : reg.counters) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, Gauge*>> AllGauges() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, Gauge*>> out;
  out.reserve(reg.gauges.size());
  for (const auto& [name, gauge] : reg.gauges) {
    out.emplace_back(name, gauge.get());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram*>> AllHistograms() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, Histogram*>> out;
  out.reserve(reg.histograms.size());
  for (const auto& [name, h] : reg.histograms) {
    out.emplace_back(name, h.get());
  }
  return out;
}

std::vector<CounterSnapshot> SnapshotCounters() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<CounterSnapshot> out;
  out.reserve(reg.counters.size());
  for (const auto& [name, counter] : reg.counters) {
    out.push_back({name, counter->value()});
  }
  return out;
}

std::vector<GaugeSnapshot> SnapshotGauges() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<GaugeSnapshot> out;
  out.reserve(reg.gauges.size());
  for (const auto& [name, gauge] : reg.gauges) {
    out.push_back({name, gauge->value()});
  }
  return out;
}

std::vector<HistogramSnapshot> SnapshotHistograms() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<HistogramSnapshot> out;
  out.reserve(reg.histograms.size());
  for (const auto& [name, h] : reg.histograms) {
    out.push_back({name, h->count(), h->sum(), h->max(), h->P50(), h->P95(),
                   h->P99()});
  }
  return out;
}

void ResetCountersAndHistograms() {
  CounterRegistry& reg = CounterRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, counter] : reg.counters) counter->Reset();
  for (auto& [name, gauge] : reg.gauges) gauge->Reset();
  for (auto& [name, h] : reg.histograms) h->Reset();
}

}  // namespace maze::obs
