// Named monotonic counters and log-linear histograms.
//
// Counters accumulate totals (bytes over a rank pair, messages delivered);
// histograms capture distributions (message sizes, inbox depths, per-superstep
// latencies) in fixed memory with bounded relative error, HdrHistogram-style:
// values below 2^kSubBits land in exact unit buckets; above that, each power
// of two is split into 2^kSubBits linear sub-buckets, so any recorded value is
// reported within 1/2^kSubBits (12.5%) of its true magnitude.
//
// Both are registered by name in a process-wide registry; lookups take a lock,
// so hot paths should cache the returned reference (registered objects are
// never destroyed before process exit). Record/Add are lock-free.
#ifndef MAZE_OBS_COUNTERS_H_
#define MAZE_OBS_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace maze::obs {

class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that goes both ways (queue depth, in-flight count, degradation
// level): Set publishes the current level, Add nudges it. Unlike counters,
// gauges carry no monotonicity contract — the telemetry scraper records the
// sampled value per window, and the OpenMetrics exposition renders the bare
// sample (no `_total`).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  // 2^3 = 8 sub-buckets per power of two: <= 12.5% relative bucket width.
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;
  // Unit buckets [0, kSubBuckets) + 8 sub-buckets for each msb in [3, 63].
  static constexpr int kNumBuckets = kSubBuckets * 62;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  // Nearest-rank percentile, p in [0, 100]; returns the inclusive upper bound
  // of the bucket holding the rank-th smallest recorded value (exact for
  // values < kSubBuckets). 0 when empty.
  uint64_t Percentile(double p) const;
  uint64_t P50() const { return Percentile(50); }
  uint64_t P95() const { return Percentile(95); }
  uint64_t P99() const { return Percentile(99); }

  void Reset();

  // Bucket geometry, exposed for the boundary-math tests.
  static int BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(int index);  // Inclusive.

  // Relaxed per-bucket loads. Each bucket is individually monotone under
  // concurrent Record, so a count derived by summing this array can never
  // decrease between two snapshots — the property the telemetry scraper
  // depends on (count_ read separately could be ahead of the bucket the
  // racing Record already bumped, or behind it, depending on scrape timing).
  std::array<uint64_t, kNumBuckets> SnapshotBuckets() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Registry lookup; creates on first use. The reference stays valid for the
// life of the process (Reset zeroes values but never invalidates).
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

// Total GetCounter/GetGauge/GetHistogram/GetExemplars calls so far. Each lookup takes
// the registry lock, so per-request hot paths must cache the returned
// references; serve_stress_test asserts the delta across a request storm is
// zero using this.
uint64_t RegistryLookups();

namespace internal {
// Lets sibling registries (telemetry's exemplar store) count toward
// RegistryLookups without exposing the counter itself.
void BumpRegistryLookup();
}  // namespace internal

// Name-sorted (name, object) pairs for every registered counter/histogram.
// The pointers stay valid for the life of the process; does not count as a
// lookup (it is the scraper's periodic enumeration, not a hot-path miss).
std::vector<std::pair<std::string, Counter*>> AllCounters();
std::vector<std::pair<std::string, Gauge*>> AllGauges();
std::vector<std::pair<std::string, Histogram*>> AllHistograms();

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

// Name-sorted snapshots of every registered counter/gauge/histogram.
std::vector<CounterSnapshot> SnapshotCounters();
std::vector<GaugeSnapshot> SnapshotGauges();
std::vector<HistogramSnapshot> SnapshotHistograms();

// Zeroes all registered counters, gauges, and histograms (names stay
// registered).
void ResetCountersAndHistograms();

}  // namespace maze::obs

#endif  // MAZE_OBS_COUNTERS_H_
