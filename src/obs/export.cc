#include "obs/export.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "obs/counters.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "util/table.h"

namespace maze::obs {
namespace {

std::string Micros(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

std::string ChromeTraceJson() {
  std::vector<Event> events = SnapshotEvents();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&]() -> std::ostringstream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Name the process tracks: measured ranks, their simulated-wire shadows, and
  // the critical-path track when attribution annotations are present.
  std::set<int> measured_ranks;
  std::set<int> wire_ranks;  // Wire spans and counter tracks share these pids.
  bool critical_path = false;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kSpan:
        measured_ranks.insert(e.rank);
        break;
      case EventKind::kWireSpan:
      case EventKind::kCounter:
        wire_ranks.insert(e.rank);
        break;
      case EventKind::kCritSpan:
      case EventKind::kFlowStart:
      case EventKind::kFlowEnd:
        critical_path = true;
        break;
    }
  }
  for (int r : measured_ranks) {
    begin_event() << "{\"ph\":\"M\",\"pid\":" << r
                  << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank " << r
                  << " (measured)\"}}";
  }
  for (int r : wire_ranks) {
    begin_event() << "{\"ph\":\"M\",\"pid\":" << kSimWirePidBase + r
                  << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank " << r
                  << " (simulated wire)\"}}";
  }
  if (critical_path) {
    begin_event() << "{\"ph\":\"M\",\"pid\":" << kCritPathPid
                  << ",\"name\":\"process_name\",\"args\":{\"name\":"
                     "\"critical path (modeled)\"}}";
  }

  for (const Event& e : events) {
    if (e.kind == EventKind::kSpan) {
      // Measured spans reuse Event::bytes for the serving-layer request id
      // (PushSpanWithId); non-zero ids become a slice arg so an exemplar's
      // request_id finds its trace slice by search.
      begin_event() << "{\"ph\":\"X\",\"pid\":" << e.rank << ",\"tid\":" << e.tid
                    << ",\"ts\":" << Micros(e.ts_us)
                    << ",\"dur\":" << Micros(e.dur_us) << ",\"name\":\""
                    << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
                    << "\",\"args\":{\"rank\":" << e.rank
                    << ",\"step\":" << e.step;
      if (e.bytes != 0) out << ",\"request_id\":" << e.bytes;
      out << "}}";
    } else if (e.kind == EventKind::kCounter) {
      // Counter tracks ("C") live in the simulated clock domain alongside the
      // wire spans: one series per (rank pid, track name).
      begin_event() << "{\"ph\":\"C\",\"pid\":" << kSimWirePidBase + e.rank
                    << ",\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
                    << JsonEscape(e.cat) << "\",\"ts\":" << Micros(e.ts_us)
                    << ",\"args\":{\"" << JsonEscape(e.name)
                    << "\":" << e.value << "}}";
    } else if (e.kind == EventKind::kCritSpan) {
      // One slice per step barrier on the critical-path track, named by its
      // binding term; args pin the binding rank and load-imbalance factor.
      begin_event() << "{\"ph\":\"X\",\"pid\":" << kCritPathPid
                    << ",\"tid\":0,\"ts\":" << Micros(e.ts_us)
                    << ",\"dur\":" << Micros(e.dur_us) << ",\"name\":\""
                    << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
                    << "\",\"args\":{\"binding_rank\":" << e.rank
                    << ",\"step\":" << e.step << ",\"imbalance_factor\":"
                    << e.value << "}}";
    } else if (e.kind == EventKind::kFlowStart ||
               e.kind == EventKind::kFlowEnd) {
      // Flow arrows linking binding slices across steps ("s" starts inside the
      // upstream slice, "f" with bp=e binds to the enclosing downstream one).
      const bool start = e.kind == EventKind::kFlowStart;
      begin_event() << "{\"ph\":\"" << (start ? "s" : "f")
                    << (start ? "" : "\",\"bp\":\"e")
                    << "\",\"pid\":" << kCritPathPid
                    << ",\"tid\":0,\"id\":" << e.bytes
                    << ",\"ts\":" << Micros(e.ts_us) << ",\"name\":\""
                    << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
                    << "\",\"args\":{\"binding_rank\":" << e.rank
                    << ",\"step\":" << e.step << "}}";
    } else {
      // Simulated wire time: one async begin/end pair per SimClock step & rank.
      int pid = kSimWirePidBase + e.rank;
      begin_event() << "{\"ph\":\"b\",\"pid\":" << pid
                    << ",\"tid\":0,\"id\":" << e.tid
                    << ",\"ts\":" << Micros(e.ts_us) << ",\"name\":\""
                    << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
                    << "\",\"args\":{\"rank\":" << e.rank << ",\"step\":"
                    << e.step << ",\"bytes\":" << e.bytes
                    << ",\"messages\":" << e.msgs << "}}";
      begin_event() << "{\"ph\":\"e\",\"pid\":" << pid
                    << ",\"tid\":0,\"id\":" << e.tid
                    << ",\"ts\":" << Micros(e.ts_us + e.dur_us) << ",\"name\":\""
                    << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
                    << "\"}";
    }
  }

  out << "],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  out << "\"droppedEvents\":" << DroppedEvents();
  out << ",\"counters\":{";
  bool first_counter = true;
  for (const CounterSnapshot& c : SnapshotCounters()) {
    if (!first_counter) out << ",";
    first_counter = false;
    out << "\"" << JsonEscape(c.name) << "\":" << c.value;
  }
  out << "},\"histograms\":{";
  bool first_hist = true;
  for (const HistogramSnapshot& h : SnapshotHistograms()) {
    if (!first_hist) out << ",";
    first_hist = false;
    out << "\"" << JsonEscape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"p50\":" << h.p50
        << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}";
  }
  out << "}}}\n";
  return out.str();
}

Status WriteChromeTrace(const std::string& path) {
  std::string json = ChromeTraceJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

std::string SummaryText() {
  std::ostringstream out;

  // Spans rolled up by (category, name).
  std::map<std::pair<std::string, std::string>, std::pair<uint64_t, double>>
      span_totals;
  for (const Event& e : SnapshotEvents()) {
    if (e.kind != EventKind::kSpan) continue;
    auto& [count, total_us] = span_totals[{e.cat, e.name}];
    ++count;
    total_us += e.dur_us;
  }
  if (!span_totals.empty()) {
    TextTable spans("obs: phase spans");
    spans.SetHeader({"Category", "Phase", "Count", "Total ms", "Mean us"});
    for (const auto& [key, value] : span_totals) {
      spans.AddRow({key.first, key.second, std::to_string(value.first),
                    FormatDouble(value.second / 1e3, 3),
                    FormatDouble(value.second / static_cast<double>(value.first),
                                 1)});
    }
    out << spans.Render();
  }

  std::vector<CounterSnapshot> counters = SnapshotCounters();
  if (!counters.empty()) {
    TextTable table("obs: counters");
    table.SetHeader({"Counter", "Value"});
    for (const CounterSnapshot& c : counters) {
      table.AddRow({c.name, std::to_string(c.value)});
    }
    out << table.Render();
  }

  std::vector<HistogramSnapshot> hists = SnapshotHistograms();
  if (!hists.empty()) {
    TextTable table("obs: histograms");
    table.SetHeader({"Histogram", "Count", "Mean", "p50", "p95", "p99", "Max"});
    for (const HistogramSnapshot& h : hists) {
      double mean =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) / static_cast<double>(h.count);
      table.AddRow({h.name, std::to_string(h.count), FormatDouble(mean, 1),
                    std::to_string(h.p50), std::to_string(h.p95),
                    std::to_string(h.p99), std::to_string(h.max)});
    }
    out << table.Render();
  }

  if (uint64_t dropped = DroppedEvents(); dropped > 0) {
    out << "obs: " << dropped << " events dropped to ring-buffer wrap\n";
  }
  return out.str();
}

}  // namespace maze::obs
