// Exporters for the obs subsystem: Chrome trace-event JSON (loadable in
// Perfetto / about://tracing) and a plain-text summary table.
//
// Trace layout:
//   - pid r            : simulated rank r's measured phase spans ("X" events;
//                        tid = recording host thread);
//   - pid 10000 + r    : rank r's modeled wire time, as async "b"/"e" span
//                        pairs in the *simulated* clock domain (SimClock);
//   - pid 20000        : the run's critical path (obs::attrib annotations):
//                        one slice per step barrier named by its binding term,
//                        with flow arrows linking binding ranks across steps;
//   - counters/histograms ride along under "otherData" and in the summary.
#ifndef MAZE_OBS_EXPORT_H_
#define MAZE_OBS_EXPORT_H_

#include <string>

#include "util/status.h"

namespace maze::obs {

// Synthetic pid offset for the simulated-wire-time track of each rank.
inline constexpr int kSimWirePidBase = 10000;

// Synthetic pid of the critical-path track (obs::attrib annotations).
inline constexpr int kCritPathPid = 20000;

// Serializes the current snapshot (events + counters + histograms) as Chrome
// trace-event JSON.
std::string ChromeTraceJson();

// Writes ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

// Human-readable roll-up: per-(cat, name) span totals, counters, and histogram
// percentiles. The cheap always-on complement to the full timeline.
std::string SummaryText();

}  // namespace maze::obs

#endif  // MAZE_OBS_EXPORT_H_
