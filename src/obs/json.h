// Shared JSON string escaping for every obs emitter (Chrome trace, resource
// report). Escapes the two mandatory characters (quote, backslash), the named
// control escapes, and any other control byte as \u00XX, so arbitrary span,
// counter, and dataset names round-trip through a strict JSON parser. Bytes
// >= 0x80 pass through untouched (the emitters write UTF-8 as-is).
#ifndef MAZE_OBS_JSON_H_
#define MAZE_OBS_JSON_H_

#include <cstdio>
#include <string>

namespace maze::obs {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        // Cast before the width test: plain char may be signed, and a negative
        // byte fed to %04x would sign-extend into "￿ffXX".
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace maze::obs

#endif  // MAZE_OBS_JSON_H_
