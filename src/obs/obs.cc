#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/counters.h"

namespace maze::obs {
namespace internal {

std::atomic<bool> g_enabled{false};

}  // namespace internal

namespace {

// Power-of-two ring per thread: producers are single-threaded by construction,
// so Push is one relaxed fetch_add plus a struct store.
constexpr uint64_t kRingCapacity = 1 << 16;

struct ThreadRing {
  std::vector<Event> slots = std::vector<Event>(kRingCapacity);
  std::atomic<uint64_t> head{0};
  uint32_t tid = 0;

  void Push(const Event& e) {
    uint64_t h = head.fetch_add(1, std::memory_order_relaxed);
    slots[h & (kRingCapacity - 1)] = e;
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::atomic<uint32_t> next_async_id{1};

  static Registry& Get() {
    static Registry* r = new Registry();  // Leaked: outlives all threads.
    return *r;
  }

  ThreadRing* RingForThisThread() {
    thread_local ThreadRing* ring = nullptr;
    if (ring == nullptr) {
      auto owned = std::make_unique<ThreadRing>();
      ring = owned.get();
      std::lock_guard<std::mutex> lock(mu);
      ring->tid = static_cast<uint32_t>(rings.size());
      rings.push_back(std::move(owned));
    }
    return ring;
  }
};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void SetEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // Pin the epoch before the first span.
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void PushSpan(const char* name, const char* cat, int rank, int step,
              double ts_us, double dur_us) {
  ThreadRing* ring = Registry::Get().RingForThisThread();
  Event e;
  e.name = name;
  e.cat = cat;
  e.kind = EventKind::kSpan;
  e.rank = rank;
  e.tid = ring->tid;
  e.step = step;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  ring->Push(e);
}

void PushSpanWithId(const char* name, const char* cat, int rank, int step,
                    double ts_us, double dur_us, uint64_t request_id) {
  ThreadRing* ring = Registry::Get().RingForThisThread();
  Event e;
  e.name = name;
  e.cat = cat;
  e.kind = EventKind::kSpan;
  e.rank = rank;
  e.tid = ring->tid;
  e.step = step;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.bytes = request_id;
  ring->Push(e);
}

void PushWireSpan(const char* name, int rank, int step, double sim_ts_us,
                  double sim_dur_us, uint64_t bytes, uint64_t msgs) {
  Registry& reg = Registry::Get();
  ThreadRing* ring = reg.RingForThisThread();
  Event e;
  e.name = name;
  e.cat = "wire";
  e.kind = EventKind::kWireSpan;
  e.rank = rank;
  e.tid = reg.next_async_id.fetch_add(1, std::memory_order_relaxed);
  e.step = step;
  e.ts_us = sim_ts_us;
  e.dur_us = sim_dur_us;
  e.bytes = bytes;
  e.msgs = msgs;
  ring->Push(e);
}

void PushCounterSample(const char* track, int rank, int step, double sim_ts_us,
                       double value) {
  ThreadRing* ring = Registry::Get().RingForThisThread();
  Event e;
  e.name = track;
  e.cat = "resource";
  e.kind = EventKind::kCounter;
  e.rank = rank;
  e.tid = ring->tid;
  e.step = step;
  e.ts_us = sim_ts_us;
  e.value = value;
  ring->Push(e);
}

void PushCritSpan(const char* term, const char* cat, int binding_rank, int step,
                  double sim_ts_us, double sim_dur_us, double value) {
  ThreadRing* ring = Registry::Get().RingForThisThread();
  Event e;
  e.name = term;
  e.cat = cat;
  e.kind = EventKind::kCritSpan;
  e.rank = binding_rank;
  e.tid = ring->tid;
  e.step = step;
  e.ts_us = sim_ts_us;
  e.dur_us = sim_dur_us;
  e.value = value;
  ring->Push(e);
}

uint64_t PushFlowStart(const char* name, const char* cat, int rank, int step,
                       double sim_ts_us) {
  Registry& reg = Registry::Get();
  ThreadRing* ring = reg.RingForThisThread();
  uint64_t id = reg.next_async_id.fetch_add(1, std::memory_order_relaxed);
  Event e;
  e.name = name;
  e.cat = cat;
  e.kind = EventKind::kFlowStart;
  e.rank = rank;
  e.tid = ring->tid;
  e.step = step;
  e.ts_us = sim_ts_us;
  e.bytes = id;
  ring->Push(e);
  return id;
}

void PushFlowEnd(const char* name, const char* cat, int rank, int step,
                 double sim_ts_us, uint64_t flow_id) {
  ThreadRing* ring = Registry::Get().RingForThisThread();
  Event e;
  e.name = name;
  e.cat = cat;
  e.kind = EventKind::kFlowEnd;
  e.rank = rank;
  e.tid = ring->tid;
  e.step = step;
  e.ts_us = sim_ts_us;
  e.bytes = flow_id;
  ring->Push(e);
}

std::vector<Event> SnapshotEvents() {
  Registry& reg = Registry::Get();
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
      uint64_t head = ring->head.load(std::memory_order_acquire);
      uint64_t count = std::min(head, kRingCapacity);
      for (uint64_t i = head - count; i < head; ++i) {
        events.push_back(ring->slots[i & (kRingCapacity - 1)]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });
  return events;
}

uint64_t DroppedEvents() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) dropped += head - kRingCapacity;
  }
  return dropped;
}

void ResetAll() {
  Registry& reg = Registry::Get();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (auto& ring : reg.rings) ring->head.store(0, std::memory_order_release);
    reg.next_async_id.store(1, std::memory_order_relaxed);
  }
  ResetCountersAndHistograms();
}

}  // namespace maze::obs
