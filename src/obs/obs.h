// maze::obs — unified tracing for all engine families (DESIGN.md "Observability").
//
// The span tracer records where time goes *inside* a step — gather/apply/scatter,
// superstep compute vs. deliver, SpMV, rule joins — per simulated rank, the
// fine-grained uniformly-collected runtime picture that the paper's §5.4
// system-metrics analysis (and GraphMat's ninja-gap profiling) is built on.
//
// Design constraints, in order:
//   1. Near-zero cost when disabled: Span's constructor is one relaxed atomic
//      load + branch; nothing allocates, nothing locks.
//   2. Low overhead when enabled: each thread appends into its own fixed-size
//      ring buffer (a single relaxed fetch_add + struct store; no locks, no
//      allocation on the hot path). Old events are overwritten when a ring
//      wraps; the drop count is reported so truncation is never silent.
//   3. Two clock domains: spans of real measured work carry wall-clock
//      microseconds since the process trace epoch; wire-time spans emitted by
//      rt::SimClock carry *simulated* microseconds and are rendered by the
//      exporter as Chrome async events on synthetic per-rank pids.
//
// Snapshots are meant to be taken at quiescence (after a run completes);
// concurrent Push during SnapshotEvents loses at most in-flight events.
#ifndef MAZE_OBS_OBS_H_
#define MAZE_OBS_OBS_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace maze::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Globally enables/disables span recording and the rt byte/message hooks.
// Counters and histograms are always live (they are cheap and pull-based).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

enum class EventKind : uint8_t {
  kSpan,      // Complete measured span ("X" in Chrome trace), real-time domain.
  kWireSpan,  // Simulated wire-time span, rendered as async "b"/"e" events.
  kCounter,   // Sampled counter-track value ("C"), simulated-time domain.
  kCritSpan,  // Critical-path slice (obs::attrib), simulated-time domain.
  kFlowStart, // Flow-arrow endpoints ("s"/"f") linking critical-path slices
  kFlowEnd,   // across steps; the flow id rides in Event::bytes.
};

struct Event {
  const char* name = nullptr;  // Static string (call sites pass literals).
  const char* cat = nullptr;   // Engine family: native|vertexlab|matblas|...
  EventKind kind = EventKind::kSpan;
  int32_t rank = 0;      // Simulated rank (exporter maps to pid).
  uint32_t tid = 0;      // Recording thread (kSpan) or async span id (kWireSpan).
  int32_t step = -1;     // Superstep/iteration index if known, else -1.
  double ts_us = 0;      // Microseconds: real since trace epoch, or simulated.
  double dur_us = 0;
  uint64_t bytes = 0;    // Wire spans: bytes / messages charged.
  uint64_t msgs = 0;
  double value = 0;      // Counter samples: the track value at ts_us.
};

// Microseconds since the process-wide trace epoch (lazily set on first call).
double NowMicros();

// Appends a completed measured span. Callers normally use Span instead.
void PushSpan(const char* name, const char* cat, int rank, int step,
              double ts_us, double dur_us);

// PushSpan tagged with the serving-layer request id that produced the work;
// the id rides in Event::bytes (free for kSpan) and the exporter renders it
// as a "request_id" slice arg, linking histogram exemplars to trace slices.
void PushSpanWithId(const char* name, const char* cat, int rank, int step,
                    double ts_us, double dur_us, uint64_t request_id);

// Appends a simulated wire-time span (SimClock's domain). Thread-safe.
void PushWireSpan(const char* name, int rank, int step, double sim_ts_us,
                  double sim_dur_us, uint64_t bytes, uint64_t msgs);

// Appends one sample of a per-rank counter track ("cpu_util", "bw_util") in
// the simulated clock domain; the exporter renders it as a Perfetto "C" event
// on the rank's simulated pid. `track` must be a static string. Thread-safe.
void PushCounterSample(const char* track, int rank, int step, double sim_ts_us,
                       double value);

// Appends one critical-path slice (obs::attrib annotations): the binding term
// of one step barrier on the synthetic critical-path track, in the simulated
// clock domain. `term` names the binding term ("compute"/"wire"/"fault") and
// `cat` the engine family; both must be static strings. `value` carries the
// step's max/mean load-imbalance factor into the slice args.
void PushCritSpan(const char* term, const char* cat, int binding_rank, int step,
                  double sim_ts_us, double sim_dur_us, double value);

// Flow-arrow pair linking two critical-path slices (Perfetto "s"/"f" events):
// PushFlowStart allocates and returns the flow id; pass it to PushFlowEnd at
// the downstream slice. `name`/`cat` must be static strings.
uint64_t PushFlowStart(const char* name, const char* cat, int rank, int step,
                       double sim_ts_us);
void PushFlowEnd(const char* name, const char* cat, int rank, int step,
                 double sim_ts_us, uint64_t flow_id);

// Scoped RAII phase timer. When tracing is disabled construction is one
// relaxed load; nothing is recorded.
class Span {
 public:
  Span(const char* name, const char* cat, int rank = 0, int step = -1) {
    if (!Enabled()) return;
    name_ = name;
    cat_ = cat;
    rank_ = rank;
    step_ = step;
    start_us_ = NowMicros();
  }
  ~Span() {
    if (name_ == nullptr) return;
    PushSpan(name_, cat_, rank_, step_, start_us_, NowMicros() - start_us_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int rank_ = 0;
  int step_ = -1;
  double start_us_ = 0;
};

// Emits a span that ends now and lasted `dur_seconds`: the fit for call sites
// that already meter a phase with util/Timer for SimClock::RecordCompute.
inline void EmitSpanEndingNow(const char* name, const char* cat, int rank,
                              int step, double dur_seconds) {
  if (!Enabled()) return;
  double end_us = NowMicros();
  PushSpan(name, cat, rank, step, end_us - dur_seconds * 1e6,
           dur_seconds * 1e6);
}

// All events across every thread ring, oldest first within each ring, sorted
// by timestamp. Take at quiescence.
std::vector<Event> SnapshotEvents();

// Events lost to ring-buffer wrap-around since the last ResetAll().
uint64_t DroppedEvents();

// Clears spans, counters, and histograms (tests and back-to-back CLI runs).
void ResetAll();

#define MAZE_OBS_CONCAT_INNER_(a, b) a##b
#define MAZE_OBS_CONCAT_(a, b) MAZE_OBS_CONCAT_INNER_(a, b)
// Scoped phase span; compiles to nothing under -DMAZE_OBS_COMPILED_OUT.
#if defined(MAZE_OBS_COMPILED_OUT)
#define MAZE_OBS_SPAN(name, cat, ...) static_cast<void>(0)
#else
#define MAZE_OBS_SPAN(name, cat, ...) \
  ::maze::obs::Span MAZE_OBS_CONCAT_(maze_obs_span_, __LINE__)(name, cat, ##__VA_ARGS__)
#endif

}  // namespace maze::obs

#endif  // MAZE_OBS_OBS_H_
