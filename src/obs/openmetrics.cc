#include "obs/openmetrics.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>

namespace maze::obs {
namespace {

bool NameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

// Closes fd on scope exit (every early return in the socket code).
struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

// The OpenMetrics content type; Prometheus scrapers accept it.
constexpr char kMetricsContentType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out = "maze_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += NameChar(c) ? c : '_';
  return out;
}

std::string OpenMetricsEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string OpenMetricsText(const TelemetryRegistry& telemetry) {
  std::string out;
  // Sanitized-name order, so the exposition is stable regardless of internal
  // naming; sharing a sanitized name keeps the last series (see header).
  std::map<std::string, const CounterSeries*> counters;
  std::map<std::string, const GaugeSeries*> gauges;
  std::map<std::string, const HistogramSeries*> histograms;
  auto counter_series = telemetry.Counters();
  auto gauge_series = telemetry.Gauges();
  auto histogram_series = telemetry.Histograms();
  for (const auto& s : counter_series) counters[OpenMetricsName(s.name)] = &s;
  for (const auto& s : gauge_series) gauges[OpenMetricsName(s.name)] = &s;
  for (const auto& s : histogram_series) {
    histograms[OpenMetricsName(s.name)] = &s;
  }

  std::map<std::string, std::vector<std::pair<int, Exemplar>>> exemplars;
  for (const auto& [name, store] : AllExemplars()) {
    exemplars[OpenMetricsName(name)] = store->Snapshot();
  }

  for (const auto& [name, series] : counters) {
    if (series->windows.empty()) continue;
    out += "# TYPE " + name + " counter\n";
    out += "# HELP " + name + " maze counter '" +
           OpenMetricsEscape(series->name) + "'\n";
    out += name + "_total " + std::to_string(series->windows.back().value) +
           "\n";
  }

  // Gauges render as a bare sample (no _total suffix): the sampled level at
  // the latest scrape.
  for (const auto& [name, series] : gauges) {
    if (series->windows.empty()) continue;
    out += "# TYPE " + name + " gauge\n";
    out += "# HELP " + name + " maze gauge '" +
           OpenMetricsEscape(series->name) + "'\n";
    out += name + " " + std::to_string(series->windows.back().value) + "\n";
  }

  for (const auto& [name, series] : histograms) {
    if (series->windows.empty()) continue;
    const HistogramWindow& latest = series->windows.back();
    out += "# TYPE " + name + " histogram\n";
    out += "# HELP " + name + " maze histogram '" +
           OpenMetricsEscape(series->name) + "'\n";
    auto ex_it = exemplars.find(name);
    size_t ex_pos = 0;
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (series->buckets[i] == 0) {
        if (ex_it != exemplars.end()) {
          while (ex_pos < ex_it->second.size() &&
                 ex_it->second[ex_pos].first <= i) {
            ++ex_pos;
          }
        }
        continue;
      }
      cumulative += series->buckets[i];
      out += name + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative);
      if (ex_it != exemplars.end()) {
        while (ex_pos < ex_it->second.size() &&
               ex_it->second[ex_pos].first < i) {
          ++ex_pos;
        }
        if (ex_pos < ex_it->second.size() &&
            ex_it->second[ex_pos].first == i) {
          const Exemplar& ex = ex_it->second[ex_pos].second;
          out += " # {request_id=\"" + std::to_string(ex.request_id) + "\"} " +
                 std::to_string(ex.value);
          ++ex_pos;
        }
      }
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(latest.count) + "\n";
    out += name + "_count " + std::to_string(latest.count) + "\n";
    out += name + "_sum " + std::to_string(latest.sum) + "\n";
  }

  out += "# EOF\n";
  return out;
}

MetricsEndpoint::MetricsEndpoint(TelemetryRegistry* telemetry)
    : telemetry_(telemetry) {}

MetricsEndpoint::~MetricsEndpoint() { Stop(); }

void MetricsEndpoint::SetHealthz(std::function<std::string()> handler) {
  healthz_ = std::move(handler);
}

void MetricsEndpoint::SetReport(std::function<std::string()> handler) {
  report_ = std::move(handler);
}

Status MetricsEndpoint::Start(int port) {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("bind(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsEndpoint::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  // Self-connect to unblock accept(); harmless if accept already returned.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  }
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

void MetricsEndpoint::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    if (stop_.load(std::memory_order_acquire)) {
      ::close(conn);
      return;
    }
    HandleConnection(conn);
  }
}

void MetricsEndpoint::HandleConnection(int fd) {
  FdCloser closer{fd};
  // Read until the end of the request head; 4 KiB is plenty for "GET /path".
  char buf[4096];
  size_t used = 0;
  while (used < sizeof(buf) - 1) {
    ssize_t n = ::recv(fd, buf + used, sizeof(buf) - 1 - used, 0);
    if (n <= 0) break;
    used += static_cast<size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[used] = '\0';
  if (std::strncmp(buf, "GET ", 4) != 0) {
    SendAll(fd, HttpResponse("405 Method Not Allowed", "text/plain",
                             "only GET is supported\n"));
    return;
  }
  const char* path_start = buf + 4;
  const char* path_end = path_start;
  while (*path_end != '\0' && *path_end != ' ' && *path_end != '\r' &&
         *path_end != '\n') {
    ++path_end;
  }
  std::string path(path_start, path_end);

  if (path == "/metrics") {
    telemetry_->ScrapeOnce();
    SendAll(fd, HttpResponse("200 OK", kMetricsContentType,
                             OpenMetricsText(*telemetry_)));
  } else if (path == "/healthz") {
    std::string body = healthz_ ? healthz_() : "{\"status\": \"ok\"}\n";
    SendAll(fd, HttpResponse("200 OK", "application/json", body));
  } else if (path == "/report") {
    if (report_) {
      SendAll(fd, HttpResponse("200 OK", "application/json", report_()));
    } else {
      SendAll(fd, HttpResponse("404 Not Found", "text/plain",
                               "no report handler\n"));
    }
  } else {
    SendAll(fd, HttpResponse("404 Not Found", "text/plain",
                             "unknown path '" + path + "'\n"));
  }
}

StatusOr<LiveTelemetry> StartTelemetryFromEnv(const char* env_name) {
  LiveTelemetry live;
  const char* env = std::getenv(env_name);
  if (env == nullptr || *env == '\0') return live;
  auto spec = ParseTelemetrySpec(env);
  MAZE_RETURN_IF_ERROR(spec.status());
  live.telemetry = std::make_unique<TelemetryRegistry>(spec.value().options);
  live.telemetry->Start();
  if (spec.value().listen_port >= 0) {
    live.endpoint = std::make_unique<MetricsEndpoint>(live.telemetry.get());
    MAZE_RETURN_IF_ERROR(live.endpoint->Start(spec.value().listen_port));
  }
  return live;
}

StatusOr<std::string> HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  FdCloser closer{fd};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable("connect(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + std::strerror(errno));
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  SendAll(fd, request);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("malformed HTTP response");
  }
  // "HTTP/1.0 NNN ..." — accept any 2xx.
  size_t space = response.find(' ');
  if (space == std::string::npos || response[space + 1] != '2') {
    return Status::IoError("HTTP error: " +
                            response.substr(0, response.find("\r\n")));
  }
  return response.substr(head_end + 4);
}

}  // namespace maze::obs
