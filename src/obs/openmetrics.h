// OpenMetrics text exposition + minimal HTTP pull endpoint (DESIGN.md §4g).
//
// OpenMetricsText renders the latest TelemetryRegistry scrape in the
// OpenMetrics/Prometheus text format: one `# TYPE`/`# HELP` pair per metric
// family, `_total` samples for counters, bare-name samples for gauges (the
// latest scraped level), cumulative `_bucket{le="..."}` / `_count` / `_sum`
// samples for histograms (with request-id exemplars on buckets that have
// them), terminated by `# EOF`. Internal metric names
// ("serve.latency_us") are sanitized to the OpenMetrics charset with a
// `maze_` prefix ("maze_serve_latency_us"); distinct internal names that
// sanitize to the same exposition name share one family (last write wins,
// acceptable for a debug surface). Bucket counts and `_count` come from the
// scrape's single consistent bucket array, so both are monotone between
// scrapes (see telemetry.h).
//
// MetricsEndpoint is a deliberately small blocking HTTP/1.0 server on
// 127.0.0.1 — one accept loop, one request per connection — serving
//   /metrics  ScrapeOnce() + exposition (so every pull is a fresh window)
//   /healthz  JSON liveness (or a caller-provided callback)
//   /report   caller-provided callback (the serve report), 404 when unset
// It exists so `maze_cli serve --listen=PORT` can be curled mid-run and CI
// can validate the exposition; it is not a general web server.
#ifndef MAZE_OBS_OPENMETRICS_H_
#define MAZE_OBS_OPENMETRICS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "obs/telemetry.h"
#include "util/status.h"

namespace maze::obs {

// Exposition name for an internal metric name: "maze_" + name with every
// character outside [a-zA-Z0-9_:] mapped to '_'.
std::string OpenMetricsName(const std::string& name);

// Escapes a HELP text / label value: \\, \", and \n.
std::string OpenMetricsEscape(const std::string& text);

// Renders the latest scrape. Returns an exposition with only `# EOF` when
// nothing has been scraped yet.
std::string OpenMetricsText(const TelemetryRegistry& telemetry);

class MetricsEndpoint {
 public:
  explicit MetricsEndpoint(TelemetryRegistry* telemetry);
  ~MetricsEndpoint();  // Stops the accept loop.

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  // Binds 127.0.0.1:port (port 0 picks an ephemeral port; see port()) and
  // starts the accept loop.
  Status Start(int port);
  void Stop();
  int port() const { return port_; }

  // Optional handlers; both return a JSON body. Set before Start().
  void SetHealthz(std::function<std::string()> handler);
  void SetReport(std::function<std::string()> handler);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  TelemetryRegistry* const telemetry_;
  std::function<std::string()> healthz_;
  std::function<std::string()> report_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
};

// Convenience for benches and the CLI: builds telemetry (and an endpoint when
// the spec asks for one) from a MAZE_TELEMETRY-style environment variable.
// Both pointers are null when the variable is unset.
struct LiveTelemetry {
  std::unique_ptr<TelemetryRegistry> telemetry;
  std::unique_ptr<MetricsEndpoint> endpoint;
};
StatusOr<LiveTelemetry> StartTelemetryFromEnv(
    const char* env_name = "MAZE_TELEMETRY");

// Loopback HTTP GET helper (tests, bench self-checks): returns the response
// body for 2xx statuses, an error Status otherwise.
StatusOr<std::string> HttpGet(int port, const std::string& path);

}  // namespace maze::obs

#endif  // MAZE_OBS_OPENMETRICS_H_
