#include "obs/resource.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "util/check.h"

namespace maze::obs {
namespace internal {

std::atomic<bool> g_resource_enabled{false};

}  // namespace internal

void SetResourceEnabled(bool enabled) {
  internal::g_resource_enabled.store(enabled, std::memory_order_relaxed);
}

const char* MemPhaseName(MemPhase phase) {
  switch (phase) {
    case MemPhase::kGraph:
      return "graph";
    case MemPhase::kEngineState:
      return "engine_state";
    case MemPhase::kMessageBuffers:
      return "message_buffers";
  }
  return "unknown";
}

namespace {

void CasMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t seen = target->load(std::memory_order_relaxed);
  while (value > seen && !target->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

TrackingArena::TrackingArena(int num_ranks)
    : num_ranks_(num_ranks), slots_(new RankSlot[num_ranks]) {
  MAZE_CHECK(num_ranks >= 1);
  Reset();
}

void TrackingArena::Charge(int rank, MemPhase phase, uint64_t bytes) {
  MAZE_DCHECK(rank >= 0 && rank < num_ranks_);
  RankSlot& slot = slots_[rank];
  const int p = static_cast<int>(phase);
  uint64_t live = slot.live[p].fetch_add(bytes, std::memory_order_relaxed) +
                  bytes;
  CasMax(&slot.peak[p], live);
  uint64_t total = 0;
  for (int i = 0; i < kNumMemPhases; ++i) {
    total += slot.live[i].load(std::memory_order_relaxed);
  }
  CasMax(&slot.total_peak, total);
}

void TrackingArena::Release(int rank, MemPhase phase, uint64_t bytes) {
  MAZE_DCHECK(rank >= 0 && rank < num_ranks_);
  std::atomic<uint64_t>& live = slots_[rank].live[static_cast<int>(phase)];
  uint64_t seen = live.load(std::memory_order_relaxed);
  while (!live.compare_exchange_weak(seen, seen >= bytes ? seen - bytes : 0,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t TrackingArena::LiveBytes(int rank, MemPhase phase) const {
  MAZE_DCHECK(rank >= 0 && rank < num_ranks_);
  return slots_[rank].live[static_cast<int>(phase)].load(
      std::memory_order_relaxed);
}

uint64_t TrackingArena::PhasePeak(MemPhase phase) const {
  uint64_t peak = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    peak = std::max(peak, slots_[r].peak[static_cast<int>(phase)].load(
                              std::memory_order_relaxed));
  }
  return peak;
}

uint64_t TrackingArena::RankPeak(int rank) const {
  MAZE_DCHECK(rank >= 0 && rank < num_ranks_);
  return slots_[rank].total_peak.load(std::memory_order_relaxed);
}

uint64_t TrackingArena::PeakFootprint() const {
  uint64_t peak = 0;
  for (int r = 0; r < num_ranks_; ++r) peak = std::max(peak, RankPeak(r));
  return peak;
}

void TrackingArena::Reset() {
  for (int r = 0; r < num_ranks_; ++r) {
    for (int p = 0; p < kNumMemPhases; ++p) {
      slots_[r].live[p].store(0, std::memory_order_relaxed);
      slots_[r].peak[p].store(0, std::memory_order_relaxed);
    }
    slots_[r].total_peak.store(0, std::memory_order_relaxed);
  }
}

namespace {

std::string Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Mib(uint64_t bytes) {
  return Fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

}  // namespace

std::string ResourceReport::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"rows\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    const ResourceRow& r = rows_[i];
    out << "    {\"engine\": \"" << JsonEscape(r.engine)
        << "\", \"algorithm\": \"" << JsonEscape(r.algorithm)
        << "\", \"dataset\": \"" << JsonEscape(r.dataset)
        << "\", \"ranks\": " << r.ranks
        << ", \"elapsed_seconds\": " << Fixed(r.elapsed_seconds, 6)
        << ", \"cpu_utilization\": " << Fixed(r.cpu_utilization, 4)
        << ", \"peak_bw_utilization\": " << Fixed(r.peak_bw_utilization, 4)
        << ", \"avg_bw_utilization\": " << Fixed(r.avg_bw_utilization, 4)
        << ", \"footprint_bytes\": " << r.footprint_bytes
        << ", \"graph_bytes\": " << r.graph_bytes
        << ", \"state_bytes\": " << r.state_bytes
        << ", \"msg_buffer_bytes\": " << r.msg_buffer_bytes
        << ", \"wire_bytes\": " << r.wire_bytes
        << ", \"wire_messages\": " << r.wire_messages
        << ", \"step_p50_us\": " << Fixed(r.step_p50_us, 3)
        << ", \"step_p99_us\": " << Fixed(r.step_p99_us, 3) << "}"
        << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string ResourceReport::ToMarkdown() const {
  // One triptych table per algorithm, rows in insertion order: CPU, bandwidth,
  // and the phase-split footprint side by side, Figure 6 style.
  std::vector<std::string> algo_order;
  std::map<std::string, std::vector<const ResourceRow*>> by_algo;
  for (const ResourceRow& r : rows_) {
    if (by_algo.find(r.algorithm) == by_algo.end()) {
      algo_order.push_back(r.algorithm);
    }
    by_algo[r.algorithm].push_back(&r);
  }

  std::ostringstream out;
  for (const std::string& algo : algo_order) {
    out << "### Resource report: " << algo << "\n\n";
    out << "| engine | dataset | ranks | cpu util | peak bw util | avg bw util "
           "| footprint MiB | graph MiB | state MiB | msg buf MiB | wire MiB | "
           "p50 step us | p99 step us |\n";
    out << "|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
    for (const ResourceRow* r : by_algo[algo]) {
      out << "| " << r->engine << " | " << r->dataset << " | " << r->ranks
          << " | " << Fixed(r->cpu_utilization, 3) << " | "
          << Fixed(r->peak_bw_utilization, 3) << " | "
          << Fixed(r->avg_bw_utilization, 3) << " | "
          << Mib(r->footprint_bytes) << " | " << Mib(r->graph_bytes) << " | "
          << Mib(r->state_bytes) << " | " << Mib(r->msg_buffer_bytes) << " | "
          << Mib(r->wire_bytes) << " | " << Fixed(r->step_p50_us, 1) << " | "
          << Fixed(r->step_p99_us, 1) << " |\n";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace maze::obs
