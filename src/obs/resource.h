// maze::obs::resource — the resource-attribution half of the obs layer.
//
// The span tracer answers "where did the time go"; this file answers the other
// three Figure 6 questions: how much memory each engine holds (split by what
// the bytes are *for*), how busy each simulated rank's CPU is, and how much of
// the modeled link bandwidth the engine actually uses. The paper's diagnosis
// of Giraph — "it tries to buffer all outgoing messages in memory before
// sending any" — is only visible with this attribution: total footprint hides
// the blow-up inside the graph bytes, per-phase footprint pins it on the
// message buffers.
//
// Three pieces:
//   - TrackingArena: per-rank, per-phase live-byte counters with high
//     watermarks. Engines charge explicit byte counts (graph slice, engine
//     state, message buffers) and the arena keeps the peaks. Charges to
//     different ranks use independent atomic slots and charges within a rank
//     are sequenced by the rank's task (or the RankTurns turnstile), so the
//     recorded peaks are identical under the serial and rank-parallel
//     schedules — the same argument that makes SimClock's wire totals
//     schedule-invariant (DESIGN.md §4a).
//   - CountingAllocator<T>: a std-allocator adapter bound to an (arena, rank,
//     phase) triple, for containers whose residency should be tracked at
//     allocation granularity (rt::Exchange message boxes). The hooks are
//     gated on ResourceEnabled(): when disabled, each hook is one relaxed
//     atomic load — the same contract as the span tracer's disabled path.
//   - ResourceRow / ResourceReport: the unified per-(engine, algorithm) report
//     rendered as JSON and as the Figure 6 triptych in markdown.
//
// Explicit Charge/Release calls are always live, like counters and histograms
// (they happen at most a few times per superstep); only the per-allocation
// hooks need the enable gate.
#ifndef MAZE_OBS_RESOURCE_H_
#define MAZE_OBS_RESOURCE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace maze::obs {

// What a block of engine-resident bytes is for.
enum class MemPhase : int {
  kGraph = 0,           // The rank's slice of the graph/matrix/table input.
  kEngineState = 1,     // Vertex values, frontiers, factors, intermediates.
  kMessageBuffers = 2,  // Outboxes, inboxes, accumulators, wire staging.
};
inline constexpr int kNumMemPhases = 3;
const char* MemPhaseName(MemPhase phase);

namespace internal {
extern std::atomic<bool> g_resource_enabled;
}  // namespace internal

// Gates the per-allocation hooks (CountingAllocator). Explicit
// TrackingArena::Charge/Release calls are not gated — they are cheap,
// pull-based, and the resource report should always have footprints.
inline bool ResourceEnabled() {
  return internal::g_resource_enabled.load(std::memory_order_relaxed);
}
void SetResourceEnabled(bool enabled);

// Per-rank, per-phase live bytes + high watermarks for one run.
//
// Thread-safety: Charge/Release on different ranks never touch the same slot;
// calls on the same rank must be sequenced (they are — a rank's charges come
// from its own task or from inside the rank-order turnstile), which makes the
// per-rank peaks deterministic and schedule-invariant.
class TrackingArena {
 public:
  explicit TrackingArena(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  void Charge(int rank, MemPhase phase, uint64_t bytes);
  // Saturates at zero (a Release without a matching Charge — e.g. the enable
  // gate flipped between a container's allocate and deallocate — never wraps).
  void Release(int rank, MemPhase phase, uint64_t bytes);

  uint64_t LiveBytes(int rank, MemPhase phase) const;
  // Max over ranks of that rank's phase watermark.
  uint64_t PhasePeak(MemPhase phase) const;
  // Watermark of the rank's summed live bytes across phases.
  uint64_t RankPeak(int rank) const;
  // Max over ranks of RankPeak: the per-node resident footprint, the
  // "Memory (% of 64GB)" bar of Figure 6.
  uint64_t PeakFootprint() const;

  void Reset();

 private:
  struct alignas(64) RankSlot {
    std::array<std::atomic<uint64_t>, kNumMemPhases> live;
    std::array<std::atomic<uint64_t>, kNumMemPhases> peak;
    std::atomic<uint64_t> total_peak;
  };

  int num_ranks_;
  std::unique_ptr<RankSlot[]> slots_;
};

// std-allocator adapter charging every allocation to (arena, rank, phase).
// Default-constructed (or null-arena) instances track nothing. When
// ResourceEnabled() is false each hook costs one relaxed atomic load.
template <typename T>
class CountingAllocator {
 public:
  using value_type = T;

  CountingAllocator() noexcept = default;
  CountingAllocator(TrackingArena* arena, int rank, MemPhase phase) noexcept
      : arena_(arena), rank_(rank), phase_(phase) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& other) noexcept
      : arena_(other.arena()), rank_(other.rank()), phase_(other.phase()) {}

  T* allocate(std::size_t n) {
    T* p = std::allocator<T>().allocate(n);
    if (ResourceEnabled() && arena_ != nullptr) {
      arena_->Charge(rank_, phase_, n * sizeof(T));
    }
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (ResourceEnabled() && arena_ != nullptr) {
      arena_->Release(rank_, phase_, n * sizeof(T));
    }
    std::allocator<T>().deallocate(p, n);
  }

  TrackingArena* arena() const { return arena_; }
  int rank() const { return rank_; }
  MemPhase phase() const { return phase_; }

  // Equality drives container buffer hand-off: boxes bound to the same
  // accounting slot may steal each other's buffers; boxes bound to different
  // ranks must reallocate so the bytes move between rank budgets.
  friend bool operator==(const CountingAllocator& a,
                         const CountingAllocator& b) {
    return a.arena_ == b.arena_ && a.rank_ == b.rank_ && a.phase_ == b.phase_;
  }
  friend bool operator!=(const CountingAllocator& a,
                         const CountingAllocator& b) {
    return !(a == b);
  }

 private:
  TrackingArena* arena_ = nullptr;
  int rank_ = 0;
  MemPhase phase_ = MemPhase::kMessageBuffers;
};

// One (engine, algorithm, dataset) line of the unified report: the Figure 6
// triptych plus the per-phase footprint split.
struct ResourceRow {
  std::string engine;
  std::string algorithm;
  std::string dataset;
  int ranks = 1;
  double elapsed_seconds = 0;

  // CPU busy fraction in [0, 1] (Figure 6a).
  double cpu_utilization = 0;
  // Peak / average achieved link bandwidth over the modeled peak, in [0, 1]
  // (Figure 6b).
  double peak_bw_utilization = 0;
  double avg_bw_utilization = 0;

  // Per-rank resident footprint and its phase split (Figure 6c).
  uint64_t footprint_bytes = 0;
  uint64_t graph_bytes = 0;
  uint64_t state_bytes = 0;
  uint64_t msg_buffer_bytes = 0;

  // Wire totals (Figure 6d).
  uint64_t wire_bytes = 0;
  uint64_t wire_messages = 0;

  // Simulated per-step latency percentiles (0 when no step timeline was
  // recorded for the run).
  double step_p50_us = 0;
  double step_p99_us = 0;
};

// Aggregates rows and renders them as JSON (machine artifact) and markdown
// (the human-readable triptych, one table per algorithm).
class ResourceReport {
 public:
  void Add(ResourceRow row) { rows_.push_back(std::move(row)); }
  const std::vector<ResourceRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  std::string ToJson() const;
  std::string ToMarkdown() const;

 private:
  std::vector<ResourceRow> rows_;
};

}  // namespace maze::obs

#endif  // MAZE_OBS_RESOURCE_H_
