#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "obs/openmetrics.h"

namespace maze::obs {
namespace {

// Leaked for the same reason as the counter registry: handed-out references
// must survive static destruction of client code.
struct ExemplarRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<ExemplarStore>> stores;

  static ExemplarRegistry& Get() {
    static ExemplarRegistry* r = new ExemplarRegistry();
    return *r;
  }
};

// Nearest-rank percentile over a window's delta buckets.
uint64_t DeltaPercentile(const std::array<uint64_t, Histogram::kNumBuckets>& d,
                         uint64_t n, double p) {
  if (n == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += d[i];
    if (cumulative >= rank) return Histogram::BucketUpperBound(i);
  }
  return 0;
}

}  // namespace

void ExemplarStore::Record(uint64_t value, uint64_t request_id) {
  int bucket = Histogram::BucketIndex(value);
  std::lock_guard<std::mutex> lock(mu_);
  slots_[bucket] = {value, request_id};
}

std::vector<std::pair<int, Exemplar>> ExemplarStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, Exemplar>> out;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (slots_[i].request_id != 0) out.emplace_back(i, slots_[i]);
  }
  return out;
}

void ExemplarStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.fill(Exemplar{});
}

ExemplarStore& GetExemplars(const std::string& name) {
  internal::BumpRegistryLookup();
  ExemplarRegistry& reg = ExemplarRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.stores[name];
  if (slot == nullptr) slot = std::make_unique<ExemplarStore>();
  return *slot;
}

std::vector<std::pair<std::string, ExemplarStore*>> AllExemplars() {
  ExemplarRegistry& reg = ExemplarRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, ExemplarStore*>> out;
  out.reserve(reg.stores.size());
  for (const auto& [name, store] : reg.stores) {
    out.emplace_back(name, store.get());
  }
  return out;
}

void ResetExemplars() {
  ExemplarRegistry& reg = ExemplarRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, store] : reg.stores) store->Reset();
}

StatusOr<TelemetrySpec> ParseTelemetrySpec(const std::string& text) {
  TelemetrySpec spec;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("telemetry spec token '" + token +
                                     "' is not key=value");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    char* end = nullptr;
    if (key == "interval") {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || v <= 0) {
        return Status::InvalidArgument("telemetry interval '" + value +
                                       "' must be a positive number");
      }
      spec.options.interval_seconds = v;
    } else if (key == "rings") {
      long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || v < 1) {
        return Status::InvalidArgument("telemetry rings '" + value +
                                       "' must be a positive integer");
      }
      spec.options.ring_windows = static_cast<size_t>(v);
    } else if (key == "file") {
      spec.options.file_sink = value;
    } else if (key == "listen") {
      long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || v < 0 || v > 65535) {
        return Status::InvalidArgument("telemetry listen '" + value +
                                       "' must be a port in [0, 65535]");
      }
      spec.listen_port = static_cast<int>(v);
    } else {
      return Status::InvalidArgument(
          "unknown telemetry key '" + key +
          "' (interval|rings|file|listen)");
    }
  }
  return spec;
}

TelemetryRegistry::TelemetryRegistry(const TelemetryOptions& options)
    : options_(options) {}

TelemetryRegistry::~TelemetryRegistry() { Stop(); }

uint64_t TelemetryRegistry::ScrapeOnce() {
  std::lock_guard<std::mutex> scrape_lock(scrape_mu_);
  const uint64_t scrape = scrapes_.load(std::memory_order_relaxed) + 1;

  // Enumerate outside mu_ (AllCounters takes the counter-registry lock).
  auto counters = AllCounters();
  auto gauges = AllGauges();
  auto histograms = AllHistograms();

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, src] : counters) {
      CounterState& state = counters_[name];
      state.src = src;
      CounterWindow w;
      w.scrape = scrape;
      w.value = src->value();
      w.delta = state.ring.windows.empty()
                    ? w.value
                    : w.value - std::min(w.value, state.ring.windows.back().value);
      state.ring.windows.push_back(w);
      if (state.ring.windows.size() > options_.ring_windows) {
        state.ring.windows.erase(state.ring.windows.begin());
      }
    }
    for (auto& [name, src] : gauges) {
      GaugeState& state = gauges_[name];
      state.src = src;
      GaugeWindow w;
      w.scrape = scrape;
      w.value = src->value();
      w.delta = state.ring.windows.empty()
                    ? w.value
                    : w.value - state.ring.windows.back().value;
      state.ring.windows.push_back(w);
      if (state.ring.windows.size() > options_.ring_windows) {
        state.ring.windows.erase(state.ring.windows.begin());
      }
    }
    for (auto& [name, src] : histograms) {
      HistogramState& state = histograms_[name];
      const bool first = state.src == nullptr;
      state.src = src;
      auto buckets = src->SnapshotBuckets();
      std::array<uint64_t, Histogram::kNumBuckets> delta;
      uint64_t count = 0, delta_count = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        count += buckets[i];
        // Buckets are individually monotone; clamp anyway so a Reset between
        // scrapes degrades to an empty window instead of wrapping.
        delta[i] = buckets[i] - std::min(buckets[i], state.buckets[i]);
        delta_count += delta[i];
      }
      HistogramWindow w;
      w.scrape = scrape;
      w.count = count;
      w.sum = src->sum();
      uint64_t prev_sum = first ? 0
                                : (state.ring.windows.empty()
                                       ? 0
                                       : state.ring.windows.back().sum);
      w.delta_count = delta_count;
      w.delta_sum = w.sum - std::min(w.sum, prev_sum);
      w.delta_p50 = DeltaPercentile(delta, delta_count, 50);
      w.delta_p99 = DeltaPercentile(delta, delta_count, 99);
      for (int i = Histogram::kNumBuckets - 1; i >= 0; --i) {
        if (delta[i] != 0) {
          w.delta_max = Histogram::BucketUpperBound(i);
          break;
        }
      }
      state.buckets = buckets;
      state.ring.windows.push_back(w);
      if (state.ring.windows.size() > options_.ring_windows) {
        state.ring.windows.erase(state.ring.windows.begin());
      }
    }
    scrapes_.store(scrape, std::memory_order_release);
  }

  if (!options_.file_sink.empty()) {
    std::ofstream out(options_.file_sink, std::ios::trunc);
    if (out) out << OpenMetricsText(*this);
  }

  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    for (auto& [token, hook] : hooks_) hook(scrape);
  }
  return scrape;
}

void TelemetryRegistry::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (scraper_.joinable()) return;
  stop_ = false;
  scraper_ = std::thread([this] { ScraperMain(); });
}

void TelemetryRegistry::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!scraper_.joinable()) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  scraper_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  scraper_ = std::thread();
}

void TelemetryRegistry::ScraperMain() {
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    ScrapeOnce();
    lock.lock();
  }
}

size_t TelemetryRegistry::AddScrapeHook(ScrapeHook hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  size_t token = next_hook_token_++;
  hooks_.emplace_back(token, std::move(hook));
  return token;
}

void TelemetryRegistry::RemoveScrapeHook(size_t token) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  for (size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].first == token) {
      hooks_.erase(hooks_.begin() + i);
      return;
    }
  }
}

std::vector<CounterSeries> TelemetryRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSeries> out;
  out.reserve(counters_.size());
  for (const auto& [name, state] : counters_) {
    out.push_back({name, state.ring.windows});
  }
  return out;
}

std::vector<GaugeSeries> TelemetryRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSeries> out;
  out.reserve(gauges_.size());
  for (const auto& [name, state] : gauges_) {
    out.push_back({name, state.ring.windows});
  }
  return out;
}

std::vector<HistogramSeries> TelemetryRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSeries> out;
  out.reserve(histograms_.size());
  for (const auto& [name, state] : histograms_) {
    HistogramSeries s;
    s.name = name;
    s.windows = state.ring.windows;
    s.buckets = state.buckets;
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<CounterWindow> TelemetryRegistry::LatestCounter(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end() || it->second.ring.windows.empty()) {
    return std::nullopt;
  }
  return it->second.ring.windows.back();
}

std::optional<GaugeWindow> TelemetryRegistry::LatestGauge(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end() || it->second.ring.windows.empty()) {
    return std::nullopt;
  }
  return it->second.ring.windows.back();
}

std::optional<HistogramWindow> TelemetryRegistry::LatestHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second.ring.windows.empty()) {
    return std::nullopt;
  }
  return it->second.ring.windows.back();
}

}  // namespace maze::obs
