// maze::obs live telemetry (DESIGN.md §4g).
//
// The PR 1/5 observability substrate is post-hoc: counters are read at
// quiescence, reports render after Drain(). TelemetryRegistry makes the same
// counters and histograms scrapeable *while the service runs*: each
// ScrapeOnce() walks the process-wide counter registry and appends one
// fixed-size time-series window per metric — monotonic cumulative values plus
// per-window deltas — into a bounded ring, without ever pausing writers.
//
// Lock discipline: writers (Counter::Add / Histogram::Record) stay lock-free
// and are never blocked by a scrape; the scraper takes only its own mutex and
// the registry enumeration lock. Histogram windows derive their cumulative
// count by summing the per-bucket relaxed loads instead of reading count_:
// each bucket is individually monotone, so between-scrape counts can never
// decrease even when Record races the scrape (the satellite-1 monotonicity
// fix; see telemetry_test's hammer).
//
// Exemplars attach a request id to the latest value recorded in each
// histogram bucket, so an OpenMetrics consumer can walk from a p99 bucket to
// the Perfetto trace slice of the request that landed there.
#ifndef MAZE_OBS_TELEMETRY_H_
#define MAZE_OBS_TELEMETRY_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "util/status.h"

namespace maze::obs {

// One scrape of a monotonic counter.
struct CounterWindow {
  uint64_t scrape = 0;  // 1-based scrape id that produced this window.
  uint64_t value = 0;   // Cumulative value at scrape time.
  uint64_t delta = 0;   // Increase since the previous scrape (the full
                        // cumulative value on a metric's first window).
};

// One scrape of a gauge: the sampled level plus its signed change since the
// previous scrape (gauges go both ways; no monotonicity contract).
struct GaugeWindow {
  uint64_t scrape = 0;
  int64_t value = 0;  // Sampled value at scrape time.
  int64_t delta = 0;  // value - previous window's value (value on the first).
};

// One scrape of a histogram: cumulative totals plus the delta distribution of
// values recorded inside this window.
struct HistogramWindow {
  uint64_t scrape = 0;
  uint64_t count = 0;      // Cumulative, derived from bucket sums (monotone).
  uint64_t sum = 0;        // Cumulative.
  uint64_t delta_count = 0;
  uint64_t delta_sum = 0;
  uint64_t delta_p50 = 0;  // Nearest-rank percentiles of the window's values.
  uint64_t delta_p99 = 0;
  uint64_t delta_max = 0;  // Upper bound of the window's highest bucket.
};

struct CounterSeries {
  std::string name;
  std::vector<CounterWindow> windows;  // Oldest first, at most ring_windows.
};

struct GaugeSeries {
  std::string name;
  std::vector<GaugeWindow> windows;
};

struct HistogramSeries {
  std::string name;
  std::vector<HistogramWindow> windows;
  // Cumulative per-bucket counts as of the latest scrape; the exposition
  // renders these so bucket counts and _count come from one consistent read.
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
};

// Latest value recorded into a bucket, tagged with the request that produced
// it. request_id == 0 means the slot is empty.
struct Exemplar {
  uint64_t value = 0;
  uint64_t request_id = 0;
};

// Per-histogram exemplar slots, one per bucket. Record takes a mutex — it is
// called once per served request, not per engine event — and callers cache
// the reference like any other registry handle.
class ExemplarStore {
 public:
  void Record(uint64_t value, uint64_t request_id);
  // Non-empty slots as (bucket index, exemplar) pairs.
  std::vector<std::pair<int, Exemplar>> Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::array<Exemplar, Histogram::kNumBuckets> slots_{};
};

// Registry lookup; same lifetime/caching contract as GetCounter. The name
// should match the histogram the exemplars annotate ("serve.latency_us").
ExemplarStore& GetExemplars(const std::string& name);
std::vector<std::pair<std::string, ExemplarStore*>> AllExemplars();
void ResetExemplars();

struct TelemetryOptions {
  double interval_seconds = 1.0;  // Background scrape period.
  size_t ring_windows = 64;       // Windows retained per metric.
  std::string file_sink;          // Non-empty: write exposition here per scrape.
};

// Parses a MAZE_TELEMETRY-style spec: comma-separated key=value with keys
//   interval=SECONDS  rings=N  file=PATH  listen=PORT
// "listen" is returned separately because the HTTP endpoint lives in
// openmetrics.h (it needs a scrape target, not the other way around).
struct TelemetrySpec {
  TelemetryOptions options;
  int listen_port = -1;  // -1: no endpoint requested.
};
StatusOr<TelemetrySpec> ParseTelemetrySpec(const std::string& text);

class TelemetryRegistry {
 public:
  explicit TelemetryRegistry(const TelemetryOptions& options = {});
  ~TelemetryRegistry();  // Stops the background scraper if running.

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // Takes one scrape of every registered counter/histogram and appends the
  // windows. Returns the 1-based scrape id. Safe to call concurrently with
  // writers, the background scraper, and endpoint pulls (scrapes serialize on
  // an internal mutex). Scrape hooks run synchronously before returning.
  uint64_t ScrapeOnce();

  // Background scraping every interval_seconds. Stop() (and the destructor)
  // joins the thread; Start() after Stop() restarts it.
  void Start();
  void Stop();

  uint64_t scrapes() const { return scrapes_.load(std::memory_order_acquire); }

  // Hooks run inside ScrapeOnce after the windows are published, with the
  // scrape id; the SLO watchdog evaluates its windows here. Removal blocks
  // until any in-progress invocation finishes.
  using ScrapeHook = std::function<void(uint64_t scrape)>;
  size_t AddScrapeHook(ScrapeHook hook);
  void RemoveScrapeHook(size_t token);

  // Time-series accessors (name-sorted; windows oldest first).
  std::vector<CounterSeries> Counters() const;
  std::vector<GaugeSeries> Gauges() const;
  std::vector<HistogramSeries> Histograms() const;
  std::optional<CounterWindow> LatestCounter(const std::string& name) const;
  std::optional<GaugeWindow> LatestGauge(const std::string& name) const;
  std::optional<HistogramWindow> LatestHistogram(const std::string& name) const;

  const TelemetryOptions& options() const { return options_; }

 private:
  template <typename T>
  struct Ring {
    std::vector<T> windows;  // Oldest first; bounded by ring_windows.
  };
  struct CounterState {
    Counter* src = nullptr;
    Ring<CounterWindow> ring;
  };
  struct GaugeState {
    Gauge* src = nullptr;
    Ring<GaugeWindow> ring;
  };
  struct HistogramState {
    Histogram* src = nullptr;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};  // Latest scrape.
    Ring<HistogramWindow> ring;
  };

  void ScraperMain();

  const TelemetryOptions options_;

  // Serializes scrapes (script thread, background thread, endpoint pulls).
  std::mutex scrape_mu_;
  // Guards the series maps; held briefly by scrapes and readers.
  mutable std::mutex mu_;
  std::map<std::string, CounterState> counters_;
  std::map<std::string, GaugeState> gauges_;
  std::map<std::string, HistogramState> histograms_;
  std::atomic<uint64_t> scrapes_{0};

  std::mutex hooks_mu_;
  std::vector<std::pair<size_t, ScrapeHook>> hooks_;
  size_t next_hook_token_ = 1;

  std::mutex thread_mu_;  // Guards scraper_/stop_ across Start/Stop.
  std::thread scraper_;
  bool stop_ = false;
  std::condition_variable stop_cv_;
};

}  // namespace maze::obs

#endif  // MAZE_OBS_TELEMETRY_H_
