// Shared option and result types for the four study algorithms (Section 2).
// Every engine (native and the five framework reimplementations) consumes these,
// so the benchmark harness can drive engines uniformly.
#ifndef MAZE_RT_ALGO_H_
#define MAZE_RT_ALGO_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/types.h"
#include "rt/comm_model.h"
#include "rt/fault.h"
#include "rt/metrics.h"

namespace maze::rt {

// How an engine maps onto the simulated cluster.
struct EngineConfig {
  int num_ranks = 1;
  CommModel comm = CommModel::Mpi();
  // Record a per-step timeline (RunMetrics::steps); small overhead.
  bool trace = false;
  // Fault plan injected beneath the engine's SimClock (and Exchange, for
  // engines routing through it). Defaults to the MAZE_FAULTS env plan, which
  // is disabled when the variable is unset.
  fault::FaultSpec faults = fault::SpecFromEnv();
};

// --- PageRank (Equation 1) --------------------------------------------------

struct PageRankOptions {
  int iterations = 10;
  // Probability of a random jump; the paper uses r = 0.3 and the unnormalized
  // formulation PR(i) = r + (1-r) * sum_j PR(j)/degree(j).
  double jump = 0.3;
  // Early-convergence detection (> 0 enables, native engine): stop once the
  // max per-vertex change falls below this. The paper notes implementations
  // differ on whether they detect convergence and therefore compares time per
  // iteration (§5.2); benches keep this at 0.
  double tolerance = 0;
};

struct PageRankResult {
  std::vector<double> ranks;
  int iterations = 0;
  RunMetrics metrics;
};

// --- Breadth-First Search (Equation 2) ---------------------------------------

struct BfsOptions {
  VertexId source = 0;
};

struct BfsResult {
  // distance[v] == kInfiniteDistance for unreached vertices.
  std::vector<uint32_t> distance;
  int levels = 0;  // Number of non-empty frontier expansions.
  RunMetrics metrics;
};

// --- Triangle Counting (Equation 3) -------------------------------------------

struct TriangleCountOptions {};

struct TriangleCountResult {
  uint64_t triangles = 0;
  RunMetrics metrics;
};

// --- Connected Components (extension beyond the paper's four algorithms) ------
// Min-label propagation over a symmetric graph; converges to label[v] == the
// smallest vertex id in v's component. Included to demonstrate that every
// engine's programming model generalizes past the study's workload mix.

struct ConnectedComponentsOptions {
  // Safety bound; label propagation needs at most the graph diameter rounds.
  int max_iterations = 1 << 20;
};

struct ConnectedComponentsResult {
  std::vector<VertexId> label;
  uint64_t num_components = 0;
  int iterations = 0;
  RunMetrics metrics;
};

// --- Single-Source Shortest Paths (extension; weighted graphs) ----------------
// Exercises the priority-scheduling capability of the task-based model.

struct SsspOptions {
  VertexId source = 0;
  // Delta-stepping bucket width; <= 0 picks a width from the mean edge weight.
  float delta = 0;
};

struct SsspResult {
  static constexpr float kUnreachable = std::numeric_limits<float>::infinity();
  std::vector<float> distance;
  int rounds = 0;  // Relaxation rounds / bucket drains.
  RunMetrics metrics;
};

// --- Collaborative Filtering (Equations 4-8, 11-12) ---------------------------

enum class CfMethod {
  kSgd,  // Stochastic gradient descent: native and taskflow only (§3.2).
  kGd,   // Gradient descent: what the other frameworks can express.
};

struct CfOptions {
  CfMethod method = CfMethod::kGd;
  int k = 16;                  // Latent dimension (length of p_u / q_v).
  int iterations = 5;
  double learning_rate = 0.002;  // gamma_0.
  double step_decay = 0.95;      // s: gamma_t = gamma_0 * s^t.
  double lambda_p = 0.05;
  double lambda_q = 0.05;
  uint64_t seed = 42;
};

struct CfResult {
  // Row-major factors: user_factors[u * k + i], item_factors[v * k + i].
  std::vector<double> user_factors;
  std::vector<double> item_factors;
  int k = 0;
  int iterations = 0;
  double final_rmse = 0;
  std::vector<double> rmse_per_iteration;
  RunMetrics metrics;
};

}  // namespace maze::rt

#endif  // MAZE_RT_ALGO_H_
