// Communication-layer cost models.
//
// The paper attributes much of the multi-node framework gap to the communication
// layer (Table 2, Section 6): native/CombBLAS use MPI over FDR InfiniBand (peak
// ~5.5 GB/s/node measured in Figure 6), GraphLab/SociaLite use TCP sockets over
// IPoIB (2.5-3x lower than MPI; ~2x recoverable with multiple sockets per pair),
// and Giraph uses netty (<0.5 GB/s). Each profile here carries the achievable
// bandwidth and per-message latency used by the SimClock to charge wire time.
#ifndef MAZE_RT_COMM_MODEL_H_
#define MAZE_RT_COMM_MODEL_H_

#include <string>

namespace maze::rt {

// Cost model of one inter-node transport.
struct CommModel {
  std::string name;
  double bandwidth_bytes_per_sec = 5.5e9;  // Achievable per-node bandwidth.
  double latency_sec = 2e-6;               // Per-message software+fabric latency.

  // MPI over InfiniBand: what native code and CombBLAS use.
  static CommModel Mpi() { return {"mpi", 5.5e9, 2e-6}; }
  // Multiple TCP sockets per node pair: the SociaLite optimization of §6.1.3.
  static CommModel MultiSocket() { return {"multi-socket", 2.0e9, 3e-5}; }
  // Single TCP socket (IPoIB): GraphLab, pre-optimization SociaLite.
  static CommModel Socket() { return {"socket", 0.8e9, 5e-5}; }
  // netty network I/O library: Giraph.
  static CommModel Netty() { return {"netty", 0.45e9, 1e-4}; }

  // Time to move `bytes` split over `messages` point-to-point sends.
  double TransferSeconds(uint64_t bytes, uint64_t messages) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_sec +
           static_cast<double>(messages) * latency_sec;
  }
};

// Hardware ceilings of the modeled node (paper's Xeon E5-2697 platform, §4.3):
// used by the Table 4 efficiency bench and the Figure 6 normalization.
struct NodeLimits {
  double memory_bandwidth_bytes_per_sec = 85e9;  // Achievable STREAM-class BW.
  double network_bandwidth_bytes_per_sec = 5.5e9;  // FDR InfiniBand per node.
  uint64_t memory_capacity_bytes = 64ull << 30;
  int hardware_threads = 48;

  static NodeLimits PaperPlatform() { return NodeLimits{}; }
};

}  // namespace maze::rt

#endif  // MAZE_RT_COMM_MODEL_H_
