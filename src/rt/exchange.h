// Exchange: typed all-to-all message transport between simulated ranks.
//
// Engines post records into per-(src, dst) outboxes during a step's compute phase,
// then call Deliver() once, which (a) moves the records to the inboxes and (b)
// charges the SimClock for the traffic. Wire size defaults to sizeof(T) per record;
// engines that compress (native BFS/PageRank) or box messages (the Giraph-like BSP
// engine) override the byte accounting.
#ifndef MAZE_RT_EXCHANGE_H_
#define MAZE_RT_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/obs.h"
#include "obs/resource.h"
#include "rt/fault.h"
#include "rt/sim_clock.h"
#include "util/check.h"

namespace maze::rt {

template <typename T>
class Exchange {
 public:
  // Message boxes allocate through the tracking allocator: when an arena is
  // bound (and obs::ResourceEnabled()), every box's buffer is charged to its
  // owning rank's message-buffer phase — outboxes to the sender, inboxes to
  // the receiver, with Deliver() moving the bytes between budgets.
  using Box = std::vector<T, obs::CountingAllocator<T>>;

  explicit Exchange(int num_ranks, obs::TrackingArena* arena = nullptr)
      : num_ranks_(num_ranks) {
    MAZE_CHECK(num_ranks >= 1);
    const size_t boxes = static_cast<size_t>(num_ranks) * num_ranks;
    out_.reserve(boxes);
    in_.reserve(boxes);
    for (int src = 0; src < num_ranks; ++src) {
      for (int dst = 0; dst < num_ranks; ++dst) {
        out_.emplace_back(obs::CountingAllocator<T>(
            arena, src, obs::MemPhase::kMessageBuffers));
        in_.emplace_back(obs::CountingAllocator<T>(
            arena, dst, obs::MemPhase::kMessageBuffers));
      }
    }
    // Receiver-side dedup tables (ids of frames a fault plan duplicated in
    // flight). Bound to the receiving rank's message-buffer budget so
    // fault-mode footprints stay phase-attributed.
    dedup_.reserve(num_ranks);
    for (int dst = 0; dst < num_ranks; ++dst) {
      dedup_.emplace_back(obs::CountingAllocator<uint64_t>(
          arena, dst, obs::MemPhase::kMessageBuffers));
    }
  }

  int num_ranks() const { return num_ranks_; }

  // Outbox for records travelling src -> dst. Valid to fill until Deliver().
  Box& OutBox(int src, int dst) { return out_[Index(src, dst)]; }

  // Inbox holding records that arrived at dst from src in the last Deliver().
  const Box& InBox(int dst, int src) const { return in_[Index(src, dst)]; }

  // Total records waiting in dst's inboxes.
  size_t InboundCount(int dst) const {
    size_t n = 0;
    for (int src = 0; src < num_ranks_; ++src) n += in_[Index(src, dst)].size();
    return n;
  }

  // Largest number of bytes buffered in any rank's outboxes right now; the memory
  // cost of "buffer all outgoing messages before sending" (Giraph, §6.1.3).
  // Takes the same per-record wire/resident size override Deliver() does, so
  // engines that box messages (BSP) account memory and wire consistently.
  uint64_t MaxOutboxBytesPerRank(double wire_bytes_per_record = sizeof(T)) const {
    uint64_t max_bytes = 0;
    for (int src = 0; src < num_ranks_; ++src) {
      uint64_t bytes = 0;
      for (int dst = 0; dst < num_ranks_; ++dst) {
        bytes += static_cast<uint64_t>(
            static_cast<double>(out_[Index(src, dst)].size()) *
            wire_bytes_per_record);
      }
      max_bytes = std::max(max_bytes, bytes);
    }
    return max_bytes;
  }

  // Moves all outboxes into the matching inboxes and charges `clock` for the
  // cross-rank traffic: one message per non-empty (src, dst) pair and
  // `wire_bytes_per_record` per record (default: sizeof(T)).
  //
  // Under a transport fault plan (clock->fault_spec()), delivery runs an
  // ack/retry protocol per record: each record is a frame the plan may drop
  // (the sender waits out an ack timeout and retransmits, up to the plan's
  // retry budget) or duplicate (the receiver logs the frame id in its dedup
  // table and discards the extra copy). Inbox contents therefore stay
  // byte-identical to the fault-free run — only the modeled clock and the
  // wire totals (which include retransmissions and duplicates) pay.
  void Deliver(SimClock* clock, double wire_bytes_per_record = sizeof(T)) {
    const bool observe = obs::Enabled();
    const bool faulty = clock != nullptr &&
                        clock->fault_spec().TransportFaultsEnabled();
    for (int src = 0; src < num_ranks_; ++src) {
      for (int dst = 0; dst < num_ranks_; ++dst) {
        auto& box = out_[Index(src, dst)];
        if (!box.empty() && src != dst) {
          uint64_t bytes = static_cast<uint64_t>(
              static_cast<double>(box.size()) * wire_bytes_per_record);
          if (faulty) {
            DeliverWithFaults(clock, src, dst, box.size(),
                              wire_bytes_per_record, bytes);
          } else if (clock != nullptr) {
            clock->RecordSend(src, dst, bytes, /*messages=*/1);
          }
          if (observe) ObserveDeliver(src, dst, box.size(), bytes);
        }
        in_[Index(src, dst)] = std::move(box);
        box.clear();
      }
    }
    if (observe) {
      for (int dst = 0; dst < num_ranks_; ++dst) {
        obs::GetHistogram("exchange.inbox_depth").Record(InboundCount(dst));
      }
    }
  }

  // Frame ids the fault plan duplicated toward `dst` so far; the receiver's
  // dedup state. Grows only under a transport fault plan.
  size_t DedupTableSize(int dst) const { return dedup_[dst].size(); }

  // Clears inboxes (outboxes are cleared by Deliver).
  void ClearInboxes() {
    for (auto& box : in_) box.clear();
  }

 private:
  // Record-granularity ack/retry/dedup delivery for one non-empty (src, dst)
  // box under a transport fault plan. Decisions come from the clock's
  // per-pair frame sequencer, so they are the same under every schedule
  // (Deliver runs on the orchestration thread; pairs are visited in order).
  void DeliverWithFaults(SimClock* clock, int src, int dst, size_t records,
                         double wire_bytes_per_record, uint64_t base_bytes) {
    const fault::FaultSpec& spec = clock->fault_spec();
    fault::TransportSequencer* seqr = clock->transport_sequencer();
    uint64_t retries = 0;
    uint64_t dups = 0;
    for (size_t i = 0; i < records; ++i) {
      const uint64_t seq = seqr->Next(src, dst);
      fault::TransportOutcome outcome =
          fault::DecideTransport(spec, src, dst, seq);
      retries += static_cast<uint64_t>(outcome.retries);
      if (outcome.duplicated) {
        ++dups;
        dedup_[dst].push_back(fault::FrameId(spec, src, dst, seq));
      }
    }
    // Retransmitted and duplicated records travel as their own frames; the
    // clock must not inject again on traffic the plan already decided.
    const uint64_t extra_records = retries + dups;
    const uint64_t extra_bytes = static_cast<uint64_t>(
        static_cast<double>(extra_records) * wire_bytes_per_record);
    clock->RecordSendPreFaulted(src, dst, base_bytes + extra_bytes,
                                /*messages=*/1 + extra_records);
    clock->NoteTransportFaults(src, retries, dups);
  }

  // Per-(src, dst) transport counters, only while tracing. Registry handles are
  // resolved once per Exchange and reused — the naive form built a std::string
  // key and did two registry lookups per pair per step.
  void ObserveDeliver(int src, int dst, size_t records, uint64_t bytes) {
    if (pair_handles_.empty()) {
      pair_handles_.resize(out_.size());
      for (int s = 0; s < num_ranks_; ++s) {
        for (int d = 0; d < num_ranks_; ++d) {
          std::string pair =
              "[" + std::to_string(s) + "->" + std::to_string(d) + "]";
          auto& h = pair_handles_[Index(s, d)];
          h.bytes = &obs::GetCounter("exchange.bytes" + pair);
          h.records = &obs::GetCounter("exchange.records" + pair);
        }
      }
      batch_records_hist_ = &obs::GetHistogram("exchange.batch_records");
    }
    auto& h = pair_handles_[Index(src, dst)];
    h.bytes->Add(bytes);
    h.records->Add(records);
    batch_records_hist_->Record(records);
  }

  size_t Index(int src, int dst) const {
    MAZE_DCHECK(src >= 0 && src < num_ranks_);
    MAZE_DCHECK(dst >= 0 && dst < num_ranks_);
    return static_cast<size_t>(src) * num_ranks_ + dst;
  }

  int num_ranks_;
  std::vector<Box> out_;
  std::vector<Box> in_;
  // Per-dst ids of duplicated frames, tracked through the receiving rank's
  // message-buffer budget (the dedup state a real receiver would keep).
  using DedupTable = std::vector<uint64_t, obs::CountingAllocator<uint64_t>>;
  std::vector<DedupTable> dedup_;
  struct PairHandles {
    obs::Counter* bytes = nullptr;
    obs::Counter* records = nullptr;
  };
  // Lazily built by ObserveDeliver (Deliver runs on the orchestration thread).
  std::vector<PairHandles> pair_handles_;
  obs::Histogram* batch_records_hist_ = nullptr;
};

}  // namespace maze::rt

#endif  // MAZE_RT_EXCHANGE_H_
