// Exchange: typed all-to-all message transport between simulated ranks.
//
// Engines post records into per-(src, dst) outboxes during a step's compute phase,
// then call Deliver() once, which (a) moves the records to the inboxes and (b)
// charges the SimClock for the traffic. Wire size defaults to sizeof(T) per record;
// engines that compress (native BFS/PageRank) or box messages (the Giraph-like BSP
// engine) override the byte accounting.
#ifndef MAZE_RT_EXCHANGE_H_
#define MAZE_RT_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/obs.h"
#include "obs/resource.h"
#include "rt/sim_clock.h"
#include "util/check.h"

namespace maze::rt {

template <typename T>
class Exchange {
 public:
  // Message boxes allocate through the tracking allocator: when an arena is
  // bound (and obs::ResourceEnabled()), every box's buffer is charged to its
  // owning rank's message-buffer phase — outboxes to the sender, inboxes to
  // the receiver, with Deliver() moving the bytes between budgets.
  using Box = std::vector<T, obs::CountingAllocator<T>>;

  explicit Exchange(int num_ranks, obs::TrackingArena* arena = nullptr)
      : num_ranks_(num_ranks) {
    MAZE_CHECK(num_ranks >= 1);
    const size_t boxes = static_cast<size_t>(num_ranks) * num_ranks;
    out_.reserve(boxes);
    in_.reserve(boxes);
    for (int src = 0; src < num_ranks; ++src) {
      for (int dst = 0; dst < num_ranks; ++dst) {
        out_.emplace_back(obs::CountingAllocator<T>(
            arena, src, obs::MemPhase::kMessageBuffers));
        in_.emplace_back(obs::CountingAllocator<T>(
            arena, dst, obs::MemPhase::kMessageBuffers));
      }
    }
  }

  int num_ranks() const { return num_ranks_; }

  // Outbox for records travelling src -> dst. Valid to fill until Deliver().
  Box& OutBox(int src, int dst) { return out_[Index(src, dst)]; }

  // Inbox holding records that arrived at dst from src in the last Deliver().
  const Box& InBox(int dst, int src) const { return in_[Index(src, dst)]; }

  // Total records waiting in dst's inboxes.
  size_t InboundCount(int dst) const {
    size_t n = 0;
    for (int src = 0; src < num_ranks_; ++src) n += in_[Index(src, dst)].size();
    return n;
  }

  // Largest number of bytes buffered in any rank's outboxes right now; the memory
  // cost of "buffer all outgoing messages before sending" (Giraph, §6.1.3).
  // Takes the same per-record wire/resident size override Deliver() does, so
  // engines that box messages (BSP) account memory and wire consistently.
  uint64_t MaxOutboxBytesPerRank(double wire_bytes_per_record = sizeof(T)) const {
    uint64_t max_bytes = 0;
    for (int src = 0; src < num_ranks_; ++src) {
      uint64_t bytes = 0;
      for (int dst = 0; dst < num_ranks_; ++dst) {
        bytes += static_cast<uint64_t>(
            static_cast<double>(out_[Index(src, dst)].size()) *
            wire_bytes_per_record);
      }
      max_bytes = std::max(max_bytes, bytes);
    }
    return max_bytes;
  }

  // Moves all outboxes into the matching inboxes and charges `clock` for the
  // cross-rank traffic: one message per non-empty (src, dst) pair and
  // `wire_bytes_per_record` per record (default: sizeof(T)).
  void Deliver(SimClock* clock, double wire_bytes_per_record = sizeof(T)) {
    const bool observe = obs::Enabled();
    for (int src = 0; src < num_ranks_; ++src) {
      for (int dst = 0; dst < num_ranks_; ++dst) {
        auto& box = out_[Index(src, dst)];
        if (!box.empty() && src != dst) {
          uint64_t bytes = static_cast<uint64_t>(
              static_cast<double>(box.size()) * wire_bytes_per_record);
          if (clock != nullptr) {
            clock->RecordSend(src, dst, bytes, /*messages=*/1);
          }
          if (observe) ObserveDeliver(src, dst, box.size(), bytes);
        }
        in_[Index(src, dst)] = std::move(box);
        box.clear();
      }
    }
    if (observe) {
      for (int dst = 0; dst < num_ranks_; ++dst) {
        obs::GetHistogram("exchange.inbox_depth").Record(InboundCount(dst));
      }
    }
  }

  // Clears inboxes (outboxes are cleared by Deliver).
  void ClearInboxes() {
    for (auto& box : in_) box.clear();
  }

 private:
  // Per-(src, dst) transport counters, only while tracing. Registry handles are
  // resolved once per Exchange and reused — the naive form built a std::string
  // key and did two registry lookups per pair per step.
  void ObserveDeliver(int src, int dst, size_t records, uint64_t bytes) {
    if (pair_handles_.empty()) {
      pair_handles_.resize(out_.size());
      for (int s = 0; s < num_ranks_; ++s) {
        for (int d = 0; d < num_ranks_; ++d) {
          std::string pair =
              "[" + std::to_string(s) + "->" + std::to_string(d) + "]";
          auto& h = pair_handles_[Index(s, d)];
          h.bytes = &obs::GetCounter("exchange.bytes" + pair);
          h.records = &obs::GetCounter("exchange.records" + pair);
        }
      }
      batch_records_hist_ = &obs::GetHistogram("exchange.batch_records");
    }
    auto& h = pair_handles_[Index(src, dst)];
    h.bytes->Add(bytes);
    h.records->Add(records);
    batch_records_hist_->Record(records);
  }

  size_t Index(int src, int dst) const {
    MAZE_DCHECK(src >= 0 && src < num_ranks_);
    MAZE_DCHECK(dst >= 0 && dst < num_ranks_);
    return static_cast<size_t>(src) * num_ranks_ + dst;
  }

  int num_ranks_;
  std::vector<Box> out_;
  std::vector<Box> in_;
  struct PairHandles {
    obs::Counter* bytes = nullptr;
    obs::Counter* records = nullptr;
  };
  // Lazily built by ObserveDeliver (Deliver runs on the orchestration thread).
  std::vector<PairHandles> pair_handles_;
  obs::Histogram* batch_records_hist_ = nullptr;
};

}  // namespace maze::rt

#endif  // MAZE_RT_EXCHANGE_H_
