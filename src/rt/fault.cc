#include "rt/fault.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "util/prng.h"

namespace maze::rt::fault {
namespace {

// Splits `text` on `sep`, keeping empty pieces out.
std::vector<std::string> SplitNonEmpty(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(sep, begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

Status ParseDouble(const std::string& token, const std::string& value,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("faults: bad number in '" + token + "'");
  }
  return Status::OK();
}

Status ParseInt(const std::string& token, const std::string& value, int* out) {
  char* end = nullptr;
  long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("faults: bad integer in '" + token + "'");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

// One token of the plan grammar, e.g. "drop=0.01" or "crash=1@3".
Status ApplyToken(const std::string& token, FaultSpec* spec) {
  size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return Status::InvalidArgument("faults: expected key=value, got '" + token +
                                   "'");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "seed") {
    char* end = nullptr;
    spec->seed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("faults: bad seed in '" + token + "'");
    }
  } else if (key == "drop" || key == "dup") {
    double rate = 0;
    MAZE_RETURN_IF_ERROR(ParseDouble(token, value, &rate));
    if (rate < 0.0 || rate >= 1.0) {
      return Status::InvalidArgument("faults: rate must be in [0, 1) in '" +
                                     token + "'");
    }
    (key == "drop" ? spec->drop_rate : spec->dup_rate) = rate;
  } else if (key == "retries") {
    MAZE_RETURN_IF_ERROR(ParseInt(token, value, &spec->max_retries));
    if (spec->max_retries < 0) {
      return Status::InvalidArgument("faults: retries must be >= 0 in '" +
                                     token + "'");
    }
  } else if (key == "timeout") {
    MAZE_RETURN_IF_ERROR(
        ParseDouble(token, value, &spec->retry_timeout_seconds));
    if (spec->retry_timeout_seconds < 0.0) {
      return Status::InvalidArgument("faults: timeout must be >= 0 in '" +
                                     token + "'");
    }
  } else if (key == "crash") {
    size_t at = value.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("faults: crash wants RANK@STEP in '" +
                                     token + "'");
    }
    CrashEvent ev;
    MAZE_RETURN_IF_ERROR(ParseInt(token, value.substr(0, at), &ev.rank));
    MAZE_RETURN_IF_ERROR(ParseInt(token, value.substr(at + 1), &ev.step));
    if (ev.rank < 0 || ev.step < 0) {
      return Status::InvalidArgument("faults: crash rank/step must be >= 0 in '" +
                                     token + "'");
    }
    spec->crashes.push_back(ev);
  } else if (key == "straggle") {
    size_t x = value.find('x');
    if (x == std::string::npos) {
      return Status::InvalidArgument("faults: straggle wants RANKxMULT in '" +
                                     token + "'");
    }
    Straggler s;
    MAZE_RETURN_IF_ERROR(ParseInt(token, value.substr(0, x), &s.rank));
    MAZE_RETURN_IF_ERROR(
        ParseDouble(token, value.substr(x + 1), &s.multiplier));
    if (s.rank < 0 || s.multiplier < 1.0) {
      return Status::InvalidArgument(
          "faults: straggle wants rank >= 0 and multiplier >= 1 in '" + token +
          "'");
    }
    spec->stragglers.push_back(s);
  } else if (key == "ckpt") {
    MAZE_RETURN_IF_ERROR(ParseInt(token, value, &spec->checkpoint_interval));
    if (spec->checkpoint_interval < 0) {
      return Status::InvalidArgument("faults: ckpt must be >= 0 in '" + token +
                                     "'");
    }
  } else if (key == "ckpt_bw") {
    MAZE_RETURN_IF_ERROR(ParseDouble(token, value, &spec->checkpoint_bandwidth));
    if (spec->checkpoint_bandwidth <= 0.0) {
      return Status::InvalidArgument("faults: ckpt_bw must be > 0 in '" +
                                     token + "'");
    }
  } else if (key == "ckpt_lat") {
    MAZE_RETURN_IF_ERROR(
        ParseDouble(token, value, &spec->checkpoint_latency_seconds));
    if (spec->checkpoint_latency_seconds < 0.0) {
      return Status::InvalidArgument("faults: ckpt_lat must be >= 0 in '" +
                                     token + "'");
    }
  } else {
    return Status::InvalidArgument("faults: unknown key '" + key + "'");
  }
  return Status::OK();
}

// Maps a SplitMix64 draw onto [0, 1).
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

// The per-frame hash chain's initial state: decorrelates (src, dst, seq)
// triples under one seed the same way prng.h derives per-partition streams.
uint64_t FrameState(const FaultSpec& spec, int src, int dst, uint64_t seq) {
  uint64_t state = spec.seed;
  state ^= SplitMix64(state) + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(src) + 1);
  state ^= SplitMix64(state) + 0xBF58476D1CE4E5B9ull * (static_cast<uint64_t>(dst) + 1);
  state ^= SplitMix64(state) + seq;
  return state;
}

}  // namespace

StatusOr<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  const std::vector<std::string> tokens = SplitNonEmpty(text, ',');
  for (const std::string& token : tokens) {
    MAZE_RETURN_IF_ERROR(ApplyToken(token, &spec));
  }
  spec.enabled = !tokens.empty();
  return spec;
}

const FaultSpec& SpecFromEnv() {
  static const FaultSpec spec = [] {
    const char* env = std::getenv("MAZE_FAULTS");
    if (env == nullptr || *env == '\0') return FaultSpec{};
    StatusOr<FaultSpec> parsed = ParseFaultSpec(env);
    MAZE_CHECK(parsed.ok() && "MAZE_FAULTS: malformed fault spec");
    return std::move(parsed).value();
  }();
  return spec;
}

TransportOutcome DecideTransport(const FaultSpec& spec, int src, int dst,
                                 uint64_t seq) {
  TransportOutcome outcome;
  if (!spec.TransportFaultsEnabled() || src == dst) return outcome;
  uint64_t state = FrameState(spec, src, dst, seq);
  // Each delivery attempt draws once; a drop costs a retransmission. The chain
  // is finite because the budget check aborts a run whose drop rate defeats
  // its retry budget — dropping the frame silently would un-mask the fault.
  while (ToUnit(SplitMix64(state)) < spec.drop_rate) {
    ++outcome.retries;
    MAZE_CHECK(outcome.retries <= spec.max_retries &&
               "fault: transport retry budget exhausted (unrecoverable drop)");
  }
  outcome.duplicated = ToUnit(SplitMix64(state)) < spec.dup_rate;
  return outcome;
}

uint64_t FrameId(const FaultSpec& spec, int src, int dst, uint64_t seq) {
  uint64_t state = FrameState(spec, src, dst, seq);
  return SplitMix64(state);
}

}  // namespace maze::rt::fault
