// Fault plans: seeded, deterministic failure injection for the simulated
// cluster (DESIGN.md Section 4c).
//
// A FaultSpec describes which failures a run suffers — rank crashes at given
// supersteps, per-record message drop/duplication on the wire, per-rank
// straggler slowdowns — plus the recovery budget that masks them (retry count
// and timeout for the transport, checkpoint interval and write cost for the
// Giraph-style BSP engine). Every fault decision is a pure hash of
// (seed, src, dst, per-pair sequence number), so a plan injects the *same*
// faults under the serial and rank-parallel schedules, and recovery replays
// deterministically: with recovery enabled, a faulted run's algorithm output
// is byte-identical to the fault-free run — only the modeled clock (and the
// wire totals, which now include retransmissions) pays for the failures.
#ifndef MAZE_RT_FAULT_H_
#define MAZE_RT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace maze::rt::fault {

// One injected fail-stop event: `rank` crashes at the start of superstep
// `step`. Only the BSP (Giraph-like) engine consumes crash events — it is the
// engine the paper charges checkpointing overhead to; the others treat a crash
// plan as fatal if it ever fires (no checkpoint to recover from).
struct CrashEvent {
  int rank = 0;
  int step = 0;
};

// A rank whose compute runs `multiplier`x slower than measured (a slow node or
// a thermally-throttled socket). Applied inside SimClock::RecordCompute, so
// straggler time dilates the per-step compute max exactly like a real slow
// machine would stretch the barrier.
struct Straggler {
  int rank = 0;
  double multiplier = 1.0;
};

// A complete seeded fault plan plus its recovery budget. Value-semantic; a
// default-constructed spec is disabled and injects nothing.
struct FaultSpec {
  bool enabled = false;

  // Master seed all transport decisions derive from.
  uint64_t seed = 1;

  // Per-record probability that a frame is dropped on the wire (and must be
  // retransmitted) or duplicated in flight (and must be deduped at the
  // receiver). In [0, 1).
  double drop_rate = 0.0;
  double dup_rate = 0.0;

  // Transport recovery budget: a record may be retransmitted at most
  // `max_retries` times before the run aborts (unrecoverable); each
  // retransmission charges one `retry_timeout_seconds` of modeled time to the
  // sending rank (the ack timeout that triggered the resend).
  int max_retries = 16;
  double retry_timeout_seconds = 1e-3;

  // Fail-stop schedule (BSP engine only) and straggler set.
  std::vector<CrashEvent> crashes;
  std::vector<Straggler> stragglers;

  // BSP checkpointing: snapshot vertex state + pending messages every
  // `checkpoint_interval` supersteps (0 disables checkpointing — any injected
  // crash is then unrecoverable). Writing a checkpoint charges each rank
  // `checkpoint_latency_seconds + rank_bytes / checkpoint_bandwidth` of
  // modeled time; restoring charges the same for the read-back.
  int checkpoint_interval = 0;
  double checkpoint_bandwidth = 200e6;  // bytes/sec to stable storage.
  double checkpoint_latency_seconds = 5e-3;

  // True when the plan injects per-record transport faults.
  bool TransportFaultsEnabled() const {
    return enabled && (drop_rate > 0.0 || dup_rate > 0.0);
  }

  // Compute-time multiplier for `rank` (1.0 unless listed as a straggler).
  double StragglerMultiplier(int rank) const {
    if (!enabled) return 1.0;
    for (const Straggler& s : stragglers) {
      if (s.rank == rank) return s.multiplier;
    }
    return 1.0;
  }
};

// Parses the `--faults=` / MAZE_FAULTS plan grammar: comma-separated tokens
//
//   seed=42 drop=0.01 dup=0.005 crash=R@S straggle=RxM ckpt=K
//   retries=N timeout=SECS ckpt_bw=BYTES_PER_SEC ckpt_lat=SECS
//
// `crash=` and `straggle=` may repeat. An empty spec parses to a disabled
// plan; any recognized token enables it. Returns InvalidArgument on unknown
// tokens or out-of-range values (rates outside [0, 1), non-positive
// multipliers, negative steps/intervals).
StatusOr<FaultSpec> ParseFaultSpec(const std::string& text);

// The process-wide plan parsed once from MAZE_FAULTS (disabled when unset or
// empty). Aborts via MAZE_CHECK on a malformed value so batch runs fail loudly
// instead of silently measuring a fault-free cluster.
const FaultSpec& SpecFromEnv();

// What the transport decided for one frame: how many times it was dropped
// before the delivery attempt that succeeded (each costs a retransmission and
// an ack timeout), and whether the delivered frame was duplicated in flight.
struct TransportOutcome {
  int retries = 0;
  bool duplicated = false;
};

// Pure decision function: the fate of the `seq`-th frame ever sent src -> dst
// under `spec`. Depends only on (spec.seed, src, dst, seq) — never on thread
// timing — which is what makes injected runs schedule-invariant (the per-pair
// send order is deterministic, so frame `seq` is the same frame in every
// schedule). Aborts when the drop chain exceeds spec.max_retries: the sender
// exhausted its recovery budget, which no amount of retrying masks.
TransportOutcome DecideTransport(const FaultSpec& spec, int src, int dst,
                                 uint64_t seq);

// Globally unique id for frame `seq` of the (src, dst) pair; what the
// receiver's dedup table stores to discard duplicate deliveries.
uint64_t FrameId(const FaultSpec& spec, int src, int dst, uint64_t seq);

// Per-(src, dst) frame sequence numbers. Slots are independent atomics, so
// concurrent rank tasks sending over different pairs never contend, and the
// sequence each pair observes is schedule-invariant (each pair has one
// deterministic sender order).
class TransportSequencer {
 public:
  explicit TransportSequencer(int num_ranks)
      : num_ranks_(num_ranks),
        seq_(std::make_unique<std::atomic<uint64_t>[]>(
            static_cast<size_t>(num_ranks) * num_ranks)) {
    MAZE_CHECK(num_ranks >= 1);
    for (size_t i = 0; i < static_cast<size_t>(num_ranks) * num_ranks; ++i) {
      seq_[i].store(0, std::memory_order_relaxed);
    }
  }

  // Returns the next sequence number for a src -> dst frame (0, 1, 2, ...).
  uint64_t Next(int src, int dst) {
    MAZE_DCHECK(src >= 0 && src < num_ranks_);
    MAZE_DCHECK(dst >= 0 && dst < num_ranks_);
    return seq_[static_cast<size_t>(src) * num_ranks_ + dst].fetch_add(
        1, std::memory_order_relaxed);
  }

 private:
  int num_ranks_;
  std::unique_ptr<std::atomic<uint64_t>[]> seq_;
};

}  // namespace maze::rt::fault

#endif  // MAZE_RT_FAULT_H_
