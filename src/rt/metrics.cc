#include "rt/metrics.h"

#include <sstream>

namespace maze::rt {

std::string StepTraceCsv(const std::vector<StepRecord>& steps) {
  std::ostringstream out;
  out << "step,compute_seconds,wire_seconds,bytes_sent,messages_sent,"
         "overlapped,fault_seconds,rank_fault_seconds\n";
  for (const StepRecord& s : steps) {
    out << s.step << ',' << s.compute_seconds << ',' << s.wire_seconds << ','
        << s.bytes_sent << ',' << s.messages_sent << ','
        << (s.overlapped ? 1 : 0) << ',' << s.fault_seconds << ',';
    // The per-rank stall breakdown rides in one ';'-joined cell (empty for
    // records carrying only the aggregates), keeping the row count stable.
    for (size_t r = 0; r < s.rank_fault_seconds.size(); ++r) {
      out << (r == 0 ? "" : ";") << s.rank_fault_seconds[r];
    }
    out << '\n';
  }
  return out.str();
}

std::vector<UtilizationBucket> UtilizationTimeline(const RunMetrics& metrics) {
  std::vector<UtilizationBucket> buckets;
  double t = 0;
  for (const StepRecord& s : metrics.steps) {
    const double step_time = s.StepSeconds();
    const size_t ranks = s.rank_compute_seconds.size();
    for (size_t r = 0; r < ranks; ++r) {
      UtilizationBucket b;
      b.step = s.step;
      b.rank = static_cast<int>(r);
      b.t_begin_seconds = t;
      b.duration_seconds = step_time;
      b.bytes = r < s.rank_bytes.size() ? s.rank_bytes[r] : 0;
      if (step_time > 0) {
        // step_time >= max rank compute and >= max rank wire time
        // (>= bytes / bandwidth), so both fractions land in [0, 1].
        b.cpu_busy = s.rank_compute_seconds[r] / step_time;
        if (metrics.modeled_peak_bw > 0) {
          b.bw_utilization = static_cast<double>(b.bytes) /
                             (step_time * metrics.modeled_peak_bw);
        }
      }
      buckets.push_back(b);
    }
    t += step_time;
  }
  return buckets;
}

}  // namespace maze::rt
