#include "rt/metrics.h"

#include <sstream>

namespace maze::rt {

std::string StepTraceCsv(const std::vector<StepRecord>& steps) {
  std::ostringstream out;
  out << "step,compute_seconds,wire_seconds,bytes_sent,messages_sent,"
         "overlapped\n";
  for (const StepRecord& s : steps) {
    out << s.step << ',' << s.compute_seconds << ',' << s.wire_seconds << ','
        << s.bytes_sent << ',' << s.messages_sent << ','
        << (s.overlapped ? 1 : 0) << '\n';
  }
  return out.str();
}

}  // namespace maze::rt
