// Run metrics: the four system-level quantities of Figure 6 (CPU utilization, peak
// achieved network bandwidth, memory footprint, bytes sent over the network), plus
// the simulated elapsed time they are derived from.
#ifndef MAZE_RT_METRICS_H_
#define MAZE_RT_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace maze::rt {

// One simulated step (superstep / iteration / level) of a run: the per-step
// timeline behind the Figure 6 aggregates, in the spirit of the paper's
// sar/sysstat monitoring (§5.4).
struct StepRecord {
  int step = 0;
  double compute_seconds = 0;  // max over ranks, as charged.
  double wire_seconds = 0;     // max over ranks, modeled.
  uint64_t bytes_sent = 0;     // total cross-rank bytes this step.
  uint64_t messages_sent = 0;
  bool overlapped = false;     // compute/comm overlap was in effect.
  double fault_seconds = 0;    // max over ranks, fault/recovery stall time.

  // Per-rank breakdown (index = rank), recorded alongside the aggregates so
  // utilization timelines and critical-path attribution (obs::attrib) can be
  // rebuilt per rank, not just from the max. Empty for StepRecords built by
  // hand with the aggregate fields only.
  std::vector<double> rank_compute_seconds;
  std::vector<uint64_t> rank_bytes;
  std::vector<double> rank_wire_seconds;   // Modeled per-rank transfer time.
  std::vector<double> rank_fault_seconds;  // Per-rank fault/recovery stall.

  // Simulated duration of this step as charged by the clock. Fault/recovery
  // stalls (retry timeouts, checkpoint writes, restores) extend the barrier on
  // top of the compute/comm combination.
  double StepSeconds() const {
    double base = overlapped ? (compute_seconds > wire_seconds ? compute_seconds
                                                               : wire_seconds)
                             : compute_seconds + wire_seconds;
    return base + fault_seconds;
  }
};

// Renders step records as CSV (header + one row per step) for plotting.
std::string StepTraceCsv(const std::vector<StepRecord>& steps);

// Aggregated over a whole algorithm run on a simulated cluster.
struct RunMetrics {
  // Simulated wall time: sum over steps of (per-step max rank compute time +/or
  // modeled communication time).
  double elapsed_seconds = 0;

  // Sum over ranks of real, measured compute seconds.
  double total_compute_seconds = 0;

  // Network traffic totals (bytes leaving any rank; intra-rank traffic is free).
  uint64_t bytes_sent = 0;
  uint64_t messages_sent = 0;

  // Max over steps of (step bytes per rank / step wire seconds): the "peak network
  // BW" bar of Figure 6. Latency-dominated small-message traffic lowers this.
  double peak_network_bw = 0;

  // The comm model's achievable per-node bandwidth for this run: the
  // denominator of every bandwidth-utilization fraction.
  double modeled_peak_bw = 0;

  // Max over ranks of engine-reported resident bytes (graph + runtime buffers).
  uint64_t memory_peak_bytes = 0;

  // Phase split of the footprint (obs::TrackingArena watermarks): the rank's
  // graph slice, its engine state, and its message buffers. The bsp engine's
  // boxed-message blow-up shows up in memory_msgbuf_bytes.
  uint64_t memory_graph_bytes = 0;
  uint64_t memory_state_bytes = 0;
  uint64_t memory_msgbuf_bytes = 0;

  // compute / (ranks * elapsed), scaled by the engine's intra-node thread usage:
  // the Figure 6 "CPU utilization" bar in [0, 1].
  double cpu_utilization = 0;

  // Fault injection & recovery accounting (all zero when no fault plan was
  // active). Retransmissions and duplicates are *included* in bytes_sent /
  // messages_sent — a lossy link really does move those extra frames.
  uint64_t faults_injected = 0;     // drops + duplications the plan fired.
  uint64_t transport_retries = 0;   // frames retransmitted after a drop.
  uint64_t duplicated_frames = 0;   // extra in-flight copies deduped on arrival.
  uint64_t checkpoints_written = 0; // BSP superstep checkpoints taken.
  uint64_t crash_restarts = 0;      // rank crashes recovered via restore+replay.
  double recovery_seconds = 0;      // modeled time lost to faults/recovery.

  // Bytes per rank (Figure 6 normalizes traffic per node).
  double BytesPerRank(int ranks) const {
    return ranks > 0 ? static_cast<double>(bytes_sent) / ranks : 0;
  }

  // Per-step timeline; populated only when tracing was enabled for the run.
  std::vector<StepRecord> steps;
};

// One (step, rank) cell of the utilization timeline: the simulated-time bucket
// covering that rank during that step.
struct UtilizationBucket {
  int step = 0;
  int rank = 0;
  double t_begin_seconds = 0;   // Simulated start of the step.
  double duration_seconds = 0;  // Simulated step time.
  double cpu_busy = 0;          // rank compute / step time, in [0, 1].
  double bw_utilization = 0;    // rank bytes / (step time * modeled bw), [0, 1].
  uint64_t bytes = 0;           // Cross-rank bytes this rank sent this step.
};

// Expands a traced run (metrics.steps with per-rank breakdowns) into
// per-(step, rank) utilization buckets. Bucket byte counts partition the run's
// wire totals exactly: the sum over buckets equals metrics.bytes_sent
// unconditionally — bytes recorded after the final EndStep land in a trailing
// zero-duration StepRecord appended by SimClock::Finish. Returns empty when
// the run was not traced.
std::vector<UtilizationBucket> UtilizationTimeline(const RunMetrics& metrics);

}  // namespace maze::rt

#endif  // MAZE_RT_METRICS_H_
