#include "rt/partition.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace maze::rt {

Partition1D Partition1D::VertexBalanced(VertexId num_vertices, int num_parts) {
  MAZE_CHECK(num_parts >= 1);
  Partition1D p;
  p.bounds_.resize(static_cast<size_t>(num_parts) + 1);
  for (int i = 0; i <= num_parts; ++i) {
    p.bounds_[i] = static_cast<VertexId>(
        static_cast<uint64_t>(num_vertices) * i / num_parts);
  }
  return p;
}

Partition1D Partition1D::EdgeBalanced(const Graph& g, int num_parts) {
  MAZE_CHECK(g.has_out());
  return EdgeBalancedFromOffsets(g.out_offsets(), num_parts);
}

Partition1D Partition1D::EdgeBalancedFromOffsets(
    const std::vector<EdgeId>& offsets, int num_parts) {
  MAZE_CHECK(num_parts >= 1);
  MAZE_CHECK(!offsets.empty());
  VertexId n = static_cast<VertexId>(offsets.size() - 1);
  Partition1D p;
  p.bounds_.assign(1, 0);
  EdgeId total = offsets.back();
  EdgeId per_part = (total + num_parts - 1) / std::max(1, num_parts);
  EdgeId acc = 0;
  for (VertexId v = 0; v < n; ++v) {
    acc += offsets[v + 1] - offsets[v];
    if (acc >= per_part && static_cast<int>(p.bounds_.size()) <= num_parts - 1) {
      p.bounds_.push_back(v + 1);
      acc = 0;
    }
  }
  while (static_cast<int>(p.bounds_.size()) < num_parts + 1) {
    p.bounds_.push_back(n);
  }
  return p;
}

int Partition1D::OwnerOf(VertexId v) const {
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  MAZE_DCHECK(it != bounds_.begin());
  int part = static_cast<int>(it - bounds_.begin()) - 1;
  MAZE_DCHECK(part < num_parts());
  return part;
}

Grid2D Grid2D::ForRanks(int num_ranks) {
  MAZE_CHECK(num_ranks >= 1);
  int side = static_cast<int>(std::sqrt(static_cast<double>(num_ranks)));
  while (side * side > num_ranks) --side;
  MAZE_CHECK(side * side == num_ranks);  // Benches use square rank counts.
  return Grid2D{side};
}

}  // namespace maze::rt
