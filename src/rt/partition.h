// Graph partitioning across simulated ranks.
//
// The paper distinguishes (Table 2, §6.1.1): 1-D vertex partitioning (Giraph,
// SociaLite, GraphLab, native — native balances by edge count), advanced 1-D with
// high-degree vertex replication (GraphLab), and 2-D edge partitioning (CombBLAS,
// which requires a square process grid).
#ifndef MAZE_RT_PARTITION_H_
#define MAZE_RT_PARTITION_H_

#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace maze::rt {

// Contiguous 1-D vertex ranges, one per rank.
class Partition1D {
 public:
  // Ranges with equal vertex counts (Giraph/SociaLite-style hash-free sharding).
  static Partition1D VertexBalanced(VertexId num_vertices, int num_parts);

  // Ranges chosen so each rank owns roughly the same number of out-edges: the
  // native code's scheme ("so that each node has roughly the same number of
  // edges", §3.1).
  static Partition1D EdgeBalanced(const Graph& g, int num_parts);

  // Same balancing driven directly by a CSR offsets array (e.g. in-offsets when
  // the work streams in-edges, as native PageRank does).
  static Partition1D EdgeBalancedFromOffsets(const std::vector<EdgeId>& offsets,
                                             int num_parts);

  int num_parts() const { return static_cast<int>(bounds_.size()) - 1; }
  VertexId Begin(int part) const { return bounds_[part]; }
  VertexId End(int part) const { return bounds_[part + 1]; }
  VertexId Size(int part) const { return End(part) - Begin(part); }

  // Rank owning vertex v (binary search over range bounds).
  int OwnerOf(VertexId v) const;

 private:
  std::vector<VertexId> bounds_;  // num_parts + 1 entries; bounds_[0] == 0.
};

// Square process grid for 2-D (edge) partitioning. CombBLAS constrains the total
// process count to a perfect square; we mirror that: ranks not on the grid are
// unused, and callers pick square rank counts in benches.
struct Grid2D {
  int side = 1;  // Grid is side x side.

  static Grid2D ForRanks(int num_ranks);

  int num_ranks() const { return side * side; }
  int RankOf(int row, int col) const { return row * side + col; }
  int RowOf(int rank) const { return rank / side; }
  int ColOf(int rank) const { return rank % side; }
};

}  // namespace maze::rt

#endif  // MAZE_RT_PARTITION_H_
