#include "rt/rank_exec.h"

#include <atomic>
#include <cstdlib>

namespace maze::rt {

namespace {

// -1: follow MAZE_SERIAL_RANKS; 0: force parallel; 1: force serial.
std::atomic<int> g_forced_serial{-1};

bool EnvSerialRanks() {
  static const bool env = [] {
    const char* s = std::getenv("MAZE_SERIAL_RANKS");
    return s != nullptr && s[0] != '\0' && s[0] != '0';
  }();
  return env;
}

}  // namespace

bool SerialRanks() {
  int forced = g_forced_serial.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EnvSerialRanks();
}

void SetSerialRanks(int forced) {
  g_forced_serial.store(forced < 0 ? -1 : (forced != 0 ? 1 : 0),
                        std::memory_order_relaxed);
}

void ForEachRank(int ranks, const std::function<void(int)>& fn) {
  if (ranks <= 1 || SerialRanks() ||
      ThreadPool::Default().num_threads() == 1) {
    for (int p = 0; p < ranks; ++p) fn(p);
    return;
  }
  ThreadPool::Default().ParallelFor(
      static_cast<uint64_t>(ranks), /*grain=*/1, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t p = lo; p < hi; ++p) fn(static_cast<int>(p));
      });
}

}  // namespace maze::rt
