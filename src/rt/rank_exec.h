// Rank-parallel execution of the simulated cluster.
//
// The paper's 64 nodes run concurrently; engines reproduce that by running their
// per-rank compute phases as concurrent tasks on the shared ThreadPool
// (ForEachRank) instead of one rank at a time. Three pieces keep the modeled
// metrics identical to the serial schedule:
//
//   - RankTimer charges compute from per-thread CPU time (ThreadCpuTimer), so a
//     rank's measured seconds do not inflate when other ranks compete for cores;
//   - RankTurns runs each rank's shared-state mutation phase (message routing,
//     inbox flushes) in rank order, exactly the order the serial schedule uses;
//   - SimClock's per-rank recording slots are atomic, and totals are folded in
//     rank order at EndStep.
//
// MAZE_SERIAL_RANKS=1 (or SetSerialRanks) restores the one-rank-at-a-time
// schedule as an escape hatch; tests assert both schedules produce identical
// outputs and wire accounting.
//
// Fault plans (rt/fault.h) lean on the same structure: transport fault
// decisions hash per-(src, dst) frame sequence numbers, and because each
// rank's sends execute in program order within its task (flushes under
// RankTurns), the sequence a pair observes — hence the injected faults and
// the recovery cost — is identical under both schedules.
#ifndef MAZE_RT_RANK_EXEC_H_
#define MAZE_RT_RANK_EXEC_H_

#include <condition_variable>
#include <functional>
#include <mutex>

#include "util/thread_pool.h"

namespace maze::rt {

// True when the one-rank-at-a-time schedule is forced, either via the
// MAZE_SERIAL_RANKS=1 environment variable (read once) or SetSerialRanks.
bool SerialRanks();

// Runtime override: -1 follows the environment variable (default), 0 forces
// rank-parallel, 1 forces serial. Used by tests and benches to compare
// schedules within one process.
void SetSerialRanks(int forced);

// Runs fn(p) for p in [0, ranks). Rank-parallel on the default pool unless
// serial ranks are forced (or there is nothing to gain); rank tasks start in
// rank order either way, which RankTurns relies on.
void ForEachRank(int ranks, const std::function<void(int)>& fn);

// Turnstile serializing per-rank critical sections in rank order. Each rank
// task calls Run(p, fn) exactly once; fn bodies execute one at a time, rank 0
// first. Under the serial schedule this is a no-op ordering-wise, so engines
// use one code path for both schedules.
//
// Deadlock-free with ForEachRank because rank tasks are claimed from the pool
// in increasing rank order: the lowest unfinished rank is always running.
class RankTurns {
 public:
  RankTurns() = default;
  RankTurns(const RankTurns&) = delete;
  RankTurns& operator=(const RankTurns&) = delete;

  template <typename Fn>
  void Run(int rank, Fn&& fn) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return turn_ == rank; });
    fn();
    ++turn_;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int turn_ = 0;
};

// Drop-in replacement for the wall-clock Timer engines used to measure a rank's
// compute phase. Seconds() estimates what the phase would have taken had the
// rank run alone on the host: the owning thread's serial CPU time plus the
// region's pool-chunk CPU time divided by the pool width. Because every term is
// CPU time, the estimate is independent of how many ranks share the machine.
class RankTimer {
 public:
  double Seconds() const {
    return meter_.serial_seconds() +
           meter_.worker_seconds() /
               static_cast<double>(ThreadPool::Default().num_threads());
  }

 private:
  RegionCpuMeter meter_;
};

}  // namespace maze::rt

#endif  // MAZE_RT_RANK_EXEC_H_
