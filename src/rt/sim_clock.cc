#include "rt/sim_clock.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "obs/counters.h"
#include "util/thread_pool.h"

namespace maze::rt {
namespace {

// 0 = "host width" (no rescaling).
std::atomic<int> g_modeled_node_threads{0};

int HostThreads() {
  return static_cast<int>(ThreadPool::Default().num_threads());
}

}  // namespace

void SetModeledNodeThreads(int threads) {
  MAZE_CHECK(threads >= 0);
  g_modeled_node_threads.store(threads, std::memory_order_relaxed);
}

int ModeledNodeThreads() {
  int configured = g_modeled_node_threads.load(std::memory_order_relaxed);
  return configured > 0 ? configured : HostThreads();
}

double EngineComputeScale(int engine_threads) {
  MAZE_CHECK(engine_threads >= 1);
  int node = ModeledNodeThreads();
  return static_cast<double>(node) / std::min(engine_threads, node);
}

namespace internal {

double HostToNodeScale() {
  return static_cast<double>(HostThreads()) / ModeledNodeThreads();
}

}  // namespace internal

void SimClock::FoldStepTotals(uint64_t* step_total_bytes,
                              uint64_t* step_total_msgs) {
  *step_total_bytes = 0;
  *step_total_msgs = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    metrics_.total_compute_seconds +=
        step_compute_[r].load(std::memory_order_relaxed);
    *step_total_bytes += step_bytes_[r].load(std::memory_order_relaxed);
    *step_total_msgs += step_msgs_[r].load(std::memory_order_relaxed);
  }
  metrics_.bytes_sent += *step_total_bytes;
  metrics_.messages_sent += *step_total_msgs;
}

void SimClock::EndStep(bool overlap_comm) {
  double compute_max = 0;
  double wire_max = 0;
  double fault_max = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    compute_max =
        std::max(compute_max, step_compute_[r].load(std::memory_order_relaxed));
    wire_max = std::max(
        wire_max, model_.TransferSeconds(
                      step_bytes_[r].load(std::memory_order_relaxed),
                      step_msgs_[r].load(std::memory_order_relaxed)));
    fault_max =
        std::max(fault_max, step_fault_[r].load(std::memory_order_relaxed));
  }
  uint64_t step_total_bytes = 0;
  uint64_t step_total_msgs = 0;
  FoldStepTotals(&step_total_bytes, &step_total_msgs);
  // Fault/recovery stalls (retry timeouts, checkpoint writes, restores) hold
  // the barrier like compute does: the slowest rank's stall extends the step.
  double step_time =
      (overlap_comm ? std::max(compute_max, wire_max)
                    : compute_max + wire_max) +
      fault_max;
  metrics_.recovery_seconds += fault_max;
  if (obs::Enabled()) {
    ObserveStep(compute_max, wire_max, step_time, overlap_comm);
  }
  metrics_.elapsed_seconds += step_time;
  ++steps_ended_;

  if (trace_enabled_) {
    StepRecord record{static_cast<int>(trace_.size()), compute_max, wire_max,
                      step_total_bytes, step_total_msgs, overlap_comm,
                      fault_max};
    record.rank_compute_seconds.resize(num_ranks_);
    record.rank_bytes.resize(num_ranks_);
    record.rank_wire_seconds.resize(num_ranks_);
    record.rank_fault_seconds.resize(num_ranks_);
    for (int r = 0; r < num_ranks_; ++r) {
      record.rank_compute_seconds[r] =
          step_compute_[r].load(std::memory_order_relaxed);
      record.rank_bytes[r] = step_bytes_[r].load(std::memory_order_relaxed);
      record.rank_wire_seconds[r] = model_.TransferSeconds(
          record.rank_bytes[r], step_msgs_[r].load(std::memory_order_relaxed));
      record.rank_fault_seconds[r] =
          step_fault_[r].load(std::memory_order_relaxed);
    }
    trace_.push_back(std::move(record));
  }

  // Peak achieved per-node bandwidth for this step. Guard against zero-comm steps.
  if (step_total_bytes > 0 && wire_max > 0) {
    double per_rank_bytes =
        static_cast<double>(step_total_bytes) / static_cast<double>(num_ranks_);
    metrics_.peak_network_bw =
        std::max(metrics_.peak_network_bw, per_rank_bytes / wire_max);
  }
  ResetStep();
}

void SimClock::ObserveSend(int src, int dst, uint64_t bytes, uint64_t messages) {
  // Counter handles are cached per (src, dst) so a traced send is two atomic
  // adds, not two string builds + registry lookups. call_once makes the lazy
  // build safe from concurrent rank tasks.
  std::call_once(wire_handles_once_, [&] {
    std::vector<WireHandles> handles(static_cast<size_t>(num_ranks_) *
                                     num_ranks_);
    for (int s = 0; s < num_ranks_; ++s) {
      for (int d = 0; d < num_ranks_; ++d) {
        std::string pair =
            "[" + std::to_string(s) + "->" + std::to_string(d) + "]";
        auto& h = handles[static_cast<size_t>(s) * num_ranks_ + d];
        h.bytes = &obs::GetCounter("wire.bytes" + pair);
        h.messages = &obs::GetCounter("wire.messages" + pair);
      }
    }
    send_bytes_hist_ = &obs::GetHistogram("wire.send_bytes");
    wire_handles_ = std::move(handles);
  });
  auto& h = wire_handles_[static_cast<size_t>(src) * num_ranks_ + dst];
  h.bytes->Add(bytes);
  h.messages->Add(messages);
  send_bytes_hist_->Record(bytes);
}

void SimClock::ObserveStep(double compute_max, double wire_max,
                           double step_time, bool overlap_comm) {
  // Wire time lives in the simulated clock domain: async spans on each rank's
  // synthetic pid, starting after the step's compute unless the engine
  // overlaps communication with computation.
  double start_us =
      (metrics_.elapsed_seconds + (overlap_comm ? 0.0 : compute_max)) * 1e6;
  double step_begin_us = metrics_.elapsed_seconds * 1e6;
  for (int r = 0; r < num_ranks_; ++r) {
    uint64_t bytes = step_bytes_[r].load(std::memory_order_relaxed);
    uint64_t msgs = step_msgs_[r].load(std::memory_order_relaxed);
    if (bytes != 0 || msgs != 0) {
      double wire_s = model_.TransferSeconds(bytes, msgs);
      obs::PushWireSpan("wire", r, steps_ended_, start_us, wire_s * 1e6, bytes,
                        msgs);
    }
    // Utilization counter tracks, one sample per rank per step: CPU busy
    // fraction and the fraction of the modeled link bandwidth in use. Both in
    // [0, 1] because step_time bounds every rank's compute and wire time.
    if (step_time > 0) {
      double compute = step_compute_[r].load(std::memory_order_relaxed);
      obs::PushCounterSample("cpu_util", r, steps_ended_, step_begin_us,
                             compute / step_time);
      obs::PushCounterSample("bw_util", r, steps_ended_, step_begin_us,
                             static_cast<double>(bytes) /
                                 (step_time * model_.bandwidth_bytes_per_sec));
    }
  }
  obs::GetHistogram("sim.step_micros")
      .Record(static_cast<uint64_t>(step_time * 1e6));
  if (wire_max > 0) {
    obs::GetHistogram("sim.step_wire_micros")
        .Record(static_cast<uint64_t>(wire_max * 1e6));
  }
}

void SimClock::InjectTransportFaults(int src, int dst, uint64_t bytes,
                                     uint64_t messages) {
  uint64_t seq = transport_seq_->Next(src, dst);
  fault::TransportOutcome outcome =
      fault::DecideTransport(faults_, src, dst, seq);
  if (outcome.retries == 0 && !outcome.duplicated) return;
  // Retransmitted and duplicated frames are real traffic: charge them through
  // the normal accounting so wire counters/histograms and the comm model see
  // them exactly like first-try sends.
  uint64_t extra_frames =
      static_cast<uint64_t>(outcome.retries) + (outcome.duplicated ? 1 : 0);
  RecordSendPreFaulted(src, dst, bytes * extra_frames, messages * extra_frames);
  NoteTransportFaults(src, static_cast<uint64_t>(outcome.retries),
                      outcome.duplicated ? 1 : 0);
}

void SimClock::NoteTransportFaults(int rank, uint64_t retries, uint64_t dups) {
  if (retries == 0 && dups == 0) return;
  MAZE_CHECK(rank >= 0 && rank < num_ranks_);
  if (retries > 0) {
    // Every retransmission was triggered by an ack timeout the sender sat out.
    step_fault_[rank].fetch_add(retries * faults_.retry_timeout_seconds,
                                std::memory_order_relaxed);
    retries_total_.fetch_add(retries, std::memory_order_relaxed);
    fault_retries_counter_->Add(retries);
  }
  if (dups > 0) {
    dups_total_.fetch_add(dups, std::memory_order_relaxed);
    fault_dups_counter_->Add(dups);
  }
  faults_injected_total_.fetch_add(retries + dups, std::memory_order_relaxed);
  fault_injected_counter_->Add(retries + dups);
}

void SimClock::ChargeRecovery(int rank, double seconds, uint64_t bytes,
                              const char* what) {
  MAZE_CHECK(rank >= 0 && rank < num_ranks_);
  MAZE_CHECK(seconds >= 0);
  step_fault_[rank].fetch_add(seconds, std::memory_order_relaxed);
  if (obs::Enabled()) {
    // Recovery lives in the simulated clock domain, next to the wire spans.
    obs::PushWireSpan(what, rank, steps_ended_,
                      metrics_.elapsed_seconds * 1e6, seconds * 1e6, bytes,
                      0);
  }
}

RunMetrics SimClock::Finish(double intra_rank_utilization) {
  MAZE_CHECK(intra_rank_utilization > 0 && intra_rank_utilization <= 1.0);
  // Harvest anything recorded after the last EndStep (it contributes to the
  // totals even though no simulated step time was charged for it).
  uint64_t leftover_bytes = 0;
  uint64_t leftover_msgs = 0;
  FoldStepTotals(&leftover_bytes, &leftover_msgs);
  for (int r = 0; r < num_ranks_; ++r) {
    metrics_.recovery_seconds +=
        step_fault_[r].load(std::memory_order_relaxed);
  }
  if (trace_enabled_ && (leftover_bytes > 0 || leftover_msgs > 0)) {
    // Fold post-final-EndStep traffic into a trailing zero-duration record so
    // UtilizationTimeline's bucket bytes partition bytes_sent unconditionally.
    // No simulated time was charged for these sends, so every time field (and
    // therefore StepSeconds) stays zero and obs::attrib's exact-sum invariant
    // against elapsed_seconds is untouched.
    StepRecord record{static_cast<int>(trace_.size()), 0.0, 0.0,
                      leftover_bytes, leftover_msgs, false, 0.0};
    record.rank_compute_seconds.assign(num_ranks_, 0.0);
    record.rank_wire_seconds.assign(num_ranks_, 0.0);
    record.rank_fault_seconds.assign(num_ranks_, 0.0);
    record.rank_bytes.resize(num_ranks_);
    for (int r = 0; r < num_ranks_; ++r) {
      record.rank_bytes[r] = step_bytes_[r].load(std::memory_order_relaxed);
    }
    trace_.push_back(std::move(record));
  }
  ResetStep();
  metrics_.faults_injected =
      faults_injected_total_.load(std::memory_order_relaxed);
  metrics_.transport_retries = retries_total_.load(std::memory_order_relaxed);
  metrics_.duplicated_frames = dups_total_.load(std::memory_order_relaxed);
  metrics_.checkpoints_written = checkpoints_;
  metrics_.crash_restarts = restarts_;
  // Footprint: the arena's per-rank watermark where the engine attributed
  // phases, max'd with the legacy unattributed RecordMemory path.
  metrics_.memory_peak_bytes =
      std::max({metrics_.memory_peak_bytes,
                memory_peak_.load(std::memory_order_relaxed),
                arena_.PeakFootprint()});
  metrics_.memory_graph_bytes = arena_.PhasePeak(obs::MemPhase::kGraph);
  metrics_.memory_state_bytes = arena_.PhasePeak(obs::MemPhase::kEngineState);
  metrics_.memory_msgbuf_bytes =
      arena_.PhasePeak(obs::MemPhase::kMessageBuffers);
  metrics_.modeled_peak_bw = model_.bandwidth_bytes_per_sec;
  if (trace_enabled_) metrics_.steps = trace_;
  if (metrics_.elapsed_seconds > 0) {
    double rank_busy_fraction =
        metrics_.total_compute_seconds /
        (static_cast<double>(num_ranks_) * metrics_.elapsed_seconds);
    metrics_.cpu_utilization =
        std::min(1.0, rank_busy_fraction) * intra_rank_utilization;
  }
  return metrics_;
}

}  // namespace maze::rt
