// SimClock: the measured-compute + modeled-wire-time accounting scheme.
//
// This is the repository's substitute for the paper's 64-node InfiniBand cluster
// (DESIGN.md Section 1). Algorithms run their per-rank compute for real inside one
// process and report the measured seconds here; they report every inter-rank
// transfer's byte/message counts here as well. The clock then charges simulated
// wall time per step:
//
//     step_time = max_r compute(r)  (+ or max-with)  max_r wire(bytes_r, msgs_r)
//
// where wire() comes from the CommModel, and "+ or max-with" depends on whether the
// engine overlaps computation with communication (Section 6.1.1, worth 1.2-2x in
// the paper's native code).
#ifndef MAZE_RT_SIM_CLOCK_H_
#define MAZE_RT_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/obs.h"
#include "obs/resource.h"
#include "rt/comm_model.h"
#include "rt/fault.h"
#include "rt/metrics.h"
#include "util/check.h"

namespace maze::rt {

// --- Modeled node width -------------------------------------------------------
// Per-rank compute is *measured* on this host but *charged* as if the rank were
// one modeled cluster node. When the modeled node is wider than the host (e.g.
// the paper's 48-hardware-thread Xeon nodes simulated on a small machine),
// measured seconds are rescaled by host_threads / node_threads so the
// compute:network balance matches the modeled platform instead of the host.
// Defaults to the host width (no rescaling); the benchmark harness sets 48.

// Sets the modeled node's hardware-thread count (0 restores the host default).
void SetModeledNodeThreads(int threads);
int ModeledNodeThreads();

namespace internal {
// host_threads / node_threads.
double HostToNodeScale();
}  // namespace internal

// node_threads / min(engine_threads, node_threads): the extra factor a
// worker-capped engine passes to RecordCompute's `scale` (the host/node factor
// itself is applied by the clock automatically). Engines using the whole node
// pass nothing.
double EngineComputeScale(int engine_threads);

// Accumulates one algorithm run over a simulated cluster of `num_ranks` nodes.
//
// Thread-safety: the per-step recorders (RecordCompute / RecordSend /
// RecordMemory) may be called concurrently from rank tasks — step state lives
// in per-rank atomic slots, and run totals are folded from the slots in rank
// order at EndStep, so the accounting is identical under the serial and
// rank-parallel schedules. EndStep/Finish/EnableTrace are orchestration-thread
// calls made between rank barriers.
class SimClock {
 public:
  // `faults` is the run's fault plan (defaults to the MAZE_FAULTS env plan,
  // which is disabled when the variable is unset). Straggler multipliers apply
  // inside RecordCompute; transport drop/duplication applies inside RecordSend;
  // recovery stalls extend the step barrier via ChargeRecovery.
  SimClock(int num_ranks, CommModel model, bool trace = false,
           fault::FaultSpec faults = fault::SpecFromEnv())
      : num_ranks_(num_ranks),
        model_(std::move(model)),
        faults_(std::move(faults)),
        step_compute_(num_ranks),
        step_bytes_(num_ranks),
        step_msgs_(num_ranks),
        step_fault_(num_ranks),
        straggler_scale_(static_cast<size_t>(num_ranks), 1.0),
        arena_(num_ranks),
        trace_enabled_(trace) {
    MAZE_CHECK(num_ranks >= 1);
    if (faults_.enabled) {
      for (int r = 0; r < num_ranks_; ++r) {
        straggler_scale_[r] = faults_.StragglerMultiplier(r);
      }
      if (faults_.TransportFaultsEnabled()) {
        transport_seq_ = std::make_unique<fault::TransportSequencer>(num_ranks);
      }
      fault_injected_counter_ = &obs::GetCounter("fault.injected");
      fault_retries_counter_ = &obs::GetCounter("fault.retries");
      fault_dups_counter_ = &obs::GetCounter("fault.dups");
    }
    ResetStep();
  }

  int num_ranks() const { return num_ranks_; }
  const CommModel& model() const { return model_; }

  // --- Per-step recording -------------------------------------------------

  // Adds measured compute seconds for `rank` in the current step, rescaled by
  // the host-to-modeled-node factor. `scale` models structural compute
  // handicaps on top of that (e.g. a BSP engine capped at 4 of the node's
  // workers passes EngineComputeScale(4)).
  void RecordCompute(int rank, double seconds, double scale = 1.0) {
    MAZE_CHECK(rank >= 0 && rank < num_ranks_);
    // straggler_scale_ is 1.0 everywhere unless the fault plan slows this rank.
    double charged =
        seconds * scale * host_to_node_scale_ * straggler_scale_[rank];
    step_compute_[rank].fetch_add(charged, std::memory_order_relaxed);
  }

  // Registers `bytes` leaving `src` for `dst` in the current step. Same-rank
  // traffic is free (it never crosses the network). With obs tracing enabled,
  // feeds the per-(src, dst) byte/message counters and the send-size histogram.
  // Under a transport fault plan the call is one frame: the plan may drop it
  // (charging retransmissions plus ack-timeout stall to `src`) or duplicate it
  // (charging one extra in-flight copy) — decided by a pure hash of
  // (seed, src, dst, frame sequence number), so the injected traffic is the
  // same under every schedule.
  void RecordSend(int src, int dst, uint64_t bytes, uint64_t messages = 1) {
    RecordSendPreFaulted(src, dst, bytes, messages);
    if (transport_seq_ != nullptr && src != dst) {
      InjectTransportFaults(src, dst, bytes, messages);
    }
  }

  // RecordSend without fault injection: for transports (rt::Exchange) that
  // make their own per-record fault decisions and report the already-faulted
  // frame totals — injecting again here would double-charge the plan.
  void RecordSendPreFaulted(int src, int dst, uint64_t bytes,
                            uint64_t messages = 1) {
    MAZE_CHECK(src >= 0 && src < num_ranks_);
    MAZE_CHECK(dst >= 0 && dst < num_ranks_);
    if (src == dst) return;
    step_bytes_[src].fetch_add(bytes, std::memory_order_relaxed);
    step_msgs_[src].fetch_add(messages, std::memory_order_relaxed);
    if (obs::Enabled()) ObserveSend(src, dst, bytes, messages);
  }

  // Records rank-resident memory (graph partition + engine buffers); the metric
  // keeps the max across ranks and steps. Legacy unattributed form — engines
  // report through ChargeMemory/ReleaseMemory so the footprint splits by phase.
  void RecordMemory(int rank, uint64_t bytes) {
    MAZE_CHECK(rank >= 0 && rank < num_ranks_);
    uint64_t seen = memory_peak_.load(std::memory_order_relaxed);
    while (bytes > seen &&
           !memory_peak_.compare_exchange_weak(seen, bytes,
                                               std::memory_order_relaxed)) {
    }
  }

  // Phase-attributed resident-memory accounting (obs::TrackingArena). Charges
  // to different ranks use independent slots; charges within a rank must be
  // sequenced (rank task or turnstile), which keeps the recorded watermarks
  // identical under the serial and rank-parallel schedules.
  void ChargeMemory(int rank, obs::MemPhase phase, uint64_t bytes) {
    arena_.Charge(rank, phase, bytes);
  }
  void ReleaseMemory(int rank, obs::MemPhase phase, uint64_t bytes) {
    arena_.Release(rank, phase, bytes);
  }
  obs::TrackingArena& arena() { return arena_; }

  // --- Fault & recovery accounting ------------------------------------------

  const fault::FaultSpec& fault_spec() const { return faults_; }

  // Per-(src, dst) frame sequencer; non-null only under a transport fault
  // plan. Record-granularity transports (rt::Exchange) draw sequence numbers
  // from here so their per-record decisions share the clock's streams.
  fault::TransportSequencer* transport_sequencer() {
    return transport_seq_.get();
  }

  // Charges `seconds` of fault/recovery stall to `rank` in the current step
  // (folded as max over ranks into the barrier, like compute). Emits a
  // recovery span named `what` ("checkpoint", "restore") on the rank's
  // simulated-time track while tracing. `what` must be a string literal.
  void ChargeRecovery(int rank, double seconds, uint64_t bytes,
                      const char* what);

  // Accounts transport faults decided outside the clock (rt::Exchange's
  // per-record path): `retries` retransmitted frames — each stalls `rank` one
  // retry timeout — and `dups` duplicate deliveries. The caller reports the
  // corresponding extra traffic via RecordSendPreFaulted.
  void NoteTransportFaults(int rank, uint64_t retries, uint64_t dups);

  // One checkpoint written / one crash recovered (BSP engine bookkeeping;
  // orchestration-thread calls between barriers).
  void NoteCheckpoint() {
    ++checkpoints_;
    obs::GetCounter("fault.checkpoints").Add(1);
  }
  void NoteRestart() {
    ++restarts_;
    obs::GetCounter("fault.restarts").Add(1);
  }

  // Closes the current step, charging simulated time. `overlap_comm` selects
  // max(compute, comm) instead of compute + comm; fault/recovery stalls add on
  // top of either combination.
  void EndStep(bool overlap_comm = false);

  // Enables per-step timeline recording (see StepRecord); call before the run.
  void EnableTrace() { trace_enabled_ = true; }
  const std::vector<StepRecord>& trace() const { return trace_; }

  // --- Results --------------------------------------------------------------

  // Finalizes derived metrics. `intra_rank_utilization` is the fraction of a
  // node's hardware threads the engine can actually keep busy (1.0 for native
  // code; ~4/24 for a worker-capped BSP engine), multiplied into CPU utilization.
  RunMetrics Finish(double intra_rank_utilization = 1.0);

  double elapsed_seconds() const { return metrics_.elapsed_seconds; }

 private:
  void ResetStep() {
    for (int r = 0; r < num_ranks_; ++r) {
      step_compute_[r].store(0.0, std::memory_order_relaxed);
      step_bytes_[r].store(0, std::memory_order_relaxed);
      step_msgs_[r].store(0, std::memory_order_relaxed);
      step_fault_[r].store(0.0, std::memory_order_relaxed);
    }
  }

  // Cold path of RecordSend under a transport plan: decides the frame's fate
  // and charges retransmissions/duplicates (sim_clock.cc).
  void InjectTransportFaults(int src, int dst, uint64_t bytes,
                             uint64_t messages);

  // Folds the current step's per-rank slots into the run totals (rank order, so
  // floating-point sums are schedule-invariant). Returns via out-params the
  // step's aggregate byte/message counts.
  void FoldStepTotals(uint64_t* step_total_bytes, uint64_t* step_total_msgs);

  // Cold paths of the obs hooks (sim_clock.cc), called only while tracing.
  void ObserveSend(int src, int dst, uint64_t bytes, uint64_t messages);
  void ObserveStep(double compute_max, double wire_max, double step_time,
                   bool overlap_comm);

  int num_ranks_;
  CommModel model_;
  fault::FaultSpec faults_;
  // Captured at construction so a run is internally consistent even if the
  // modeled width changes between runs.
  double host_to_node_scale_ = internal::HostToNodeScale();
  RunMetrics metrics_;
  // Per-rank slots for the step in flight; written concurrently by rank tasks.
  std::vector<std::atomic<double>> step_compute_;
  std::vector<std::atomic<uint64_t>> step_bytes_;
  std::vector<std::atomic<uint64_t>> step_msgs_;
  std::vector<std::atomic<double>> step_fault_;
  // 1.0 per rank unless the fault plan marks it a straggler (read-only after
  // construction, so the hot RecordCompute path pays one multiply).
  std::vector<double> straggler_scale_;
  std::unique_ptr<fault::TransportSequencer> transport_seq_;
  // Run totals for the fault plan; atomics because rank tasks inject
  // concurrently, folded into RunMetrics at Finish.
  std::atomic<uint64_t> faults_injected_total_{0};
  std::atomic<uint64_t> retries_total_{0};
  std::atomic<uint64_t> dups_total_{0};
  uint64_t checkpoints_ = 0;  // Orchestration-thread only.
  uint64_t restarts_ = 0;
  // Cached fault counter handles (resolved in the ctor when a plan is active).
  obs::Counter* fault_injected_counter_ = nullptr;
  obs::Counter* fault_retries_counter_ = nullptr;
  obs::Counter* fault_dups_counter_ = nullptr;
  obs::TrackingArena arena_;
  std::atomic<uint64_t> memory_peak_{0};
  bool trace_enabled_ = false;
  std::vector<StepRecord> trace_;
  int steps_ended_ = 0;
  // Cached per-(src, dst) wire counters, built on first traced send (avoids a
  // string build + registry lookup per send while tracing).
  struct WireHandles {
    obs::Counter* bytes = nullptr;
    obs::Counter* messages = nullptr;
  };
  std::once_flag wire_handles_once_;
  std::vector<WireHandles> wire_handles_;
  obs::Histogram* send_bytes_hist_ = nullptr;
};

}  // namespace maze::rt

#endif  // MAZE_RT_SIM_CLOCK_H_
