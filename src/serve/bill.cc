#include "serve/bill.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/attrib.h"
#include "obs/json.h"

namespace maze::serve {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// Doubles in artifacts render with %.17g: enough digits to round-trip, so
// equal doubles are equal bytes (the determinism contract).
std::string D(double v) { return Fmt("%.17g", v); }

std::string U(uint64_t v) { return std::to_string(v); }

// Replaces measured per-rank compute with a pure function of schedule-
// invariant inputs — the attrib_differential_test canonicalization, extended
// with the plan's straggler multiplier so a deliberately slowed rank dilates
// the canonical clock the way it dilates the measured one. Everything else in
// the records (wire seconds, bytes, fault stalls) is already modeled and
// schedule-invariant.
void CanonicalizeCompute(rt::RunMetrics* m, const rt::fault::FaultSpec& faults) {
  double elapsed = 0;
  for (rt::StepRecord& s : m->steps) {
    if (!s.rank_compute_seconds.empty() && s.StepSeconds() > 0) {
      double max = 0;
      for (size_t r = 0; r < s.rank_compute_seconds.size(); ++r) {
        uint64_t bytes = r < s.rank_bytes.size() ? s.rank_bytes[r] : 0;
        double fake = (1e-4 * (1 + (s.step * 31 + static_cast<int>(r) * 7) % 5) +
                       static_cast<double>(bytes) * 1e-12) *
                      faults.StragglerMultiplier(static_cast<int>(r));
        s.rank_compute_seconds[r] = fake;
        max = std::max(max, fake);
      }
      s.compute_seconds = max;
    }
    elapsed += s.StepSeconds();
  }
  m->elapsed_seconds = elapsed;
}

}  // namespace

FlightCost ComputeFlightCost(const rt::RunMetrics& metrics, int ranks,
                             const rt::fault::FaultSpec& faults) {
  FlightCost c;
  c.ranks = ranks;
  c.modeled_seconds = metrics.elapsed_seconds;
  obs::attrib::Attribution a = obs::attrib::Attribute(metrics);
  if (a.available) {
    c.compute_seconds = a.critical_compute_seconds;
    c.wire_seconds = a.critical_wire_seconds;
    c.imbalance_seconds = a.imbalance_idle_seconds;
    c.fault_seconds = a.fault_recovery_seconds;
  } else {
    // Untraced run: nothing to split, charge the whole clock as compute.
    c.compute_seconds = metrics.elapsed_seconds;
  }
  c.cpu_seconds = metrics.total_compute_seconds;

  rt::RunMetrics canon = metrics;
  CanonicalizeCompute(&canon, faults);
  obs::attrib::Attribution ca = obs::attrib::Attribute(canon);
  c.canon_modeled_seconds = canon.elapsed_seconds;
  if (ca.available) {
    c.canon_compute_seconds = ca.critical_compute_seconds;
    c.canon_wire_seconds = ca.critical_wire_seconds;
    c.canon_imbalance_seconds = ca.imbalance_idle_seconds;
    c.canon_fault_seconds = ca.fault_recovery_seconds;
  } else {
    c.canon_compute_seconds = canon.elapsed_seconds;
  }

  c.wire_bytes = metrics.bytes_sent;
  c.messages = metrics.messages_sent;
  c.state_bytes = metrics.memory_state_bytes;
  c.msgbuf_bytes = metrics.memory_msgbuf_bytes;
  c.peak_bytes = metrics.memory_peak_bytes;
  c.faults_injected = metrics.faults_injected;
  c.transport_retries = metrics.transport_retries;
  return c;
}

const char* BillPathName(BillPath path) {
  switch (path) {
    case BillPath::kFresh:
      return "fresh";
    case BillPath::kDedup:
      return "dedup";
    case BillPath::kCacheHit:
      return "cache_hit";
  }
  return "unknown";
}

void FillShare(const FlightCostPtr& flight, size_t i, size_t n,
               QueryBill* bill) {
  const FlightCost& c = *flight;
  const double dn = static_cast<double>(n);
  bill->share_count = static_cast<int>(n);
  bill->modeled_seconds = c.modeled_seconds / dn;
  bill->compute_seconds = c.compute_seconds / dn;
  bill->wire_seconds = c.wire_seconds / dn;
  bill->imbalance_seconds = c.imbalance_seconds / dn;
  bill->fault_seconds = c.fault_seconds / dn;
  bill->cpu_seconds = c.cpu_seconds / dn;
  bill->canon_modeled_seconds = c.canon_modeled_seconds / dn;
  bill->wire_bytes = IntegerShare(c.wire_bytes, i, n);
  bill->messages = IntegerShare(c.messages, i, n);
  bill->flight = flight;
}

void BillTotals::AddFlight(const FlightCost& cost) {
  ++entries;
  modeled_seconds += cost.modeled_seconds;
  compute_seconds += cost.compute_seconds;
  wire_seconds += cost.wire_seconds;
  imbalance_seconds += cost.imbalance_seconds;
  fault_seconds += cost.fault_seconds;
  cpu_seconds += cost.cpu_seconds;
  wire_bytes += cost.wire_bytes;
  messages += cost.messages;
}

void BillTotals::AddBill(const QueryBill& bill) {
  ++entries;
  modeled_seconds += bill.modeled_seconds;
  compute_seconds += bill.compute_seconds;
  wire_seconds += bill.wire_seconds;
  imbalance_seconds += bill.imbalance_seconds;
  fault_seconds += bill.fault_seconds;
  cpu_seconds += bill.cpu_seconds;
  wire_bytes += bill.wire_bytes;
  messages += bill.messages;
}

std::string BillTotals::ToJson() const {
  std::string out = "{";
  out += "\"entries\": " + U(entries);
  out += ", \"modeled_seconds\": " + D(modeled_seconds);
  out += ", \"compute_seconds\": " + D(compute_seconds);
  out += ", \"wire_seconds\": " + D(wire_seconds);
  out += ", \"imbalance_seconds\": " + D(imbalance_seconds);
  out += ", \"fault_seconds\": " + D(fault_seconds);
  out += ", \"cpu_seconds\": " + D(cpu_seconds);
  out += ", \"wire_bytes\": " + U(wire_bytes);
  out += ", \"messages\": " + U(messages);
  out += "}";
  return out;
}

namespace {
bool Close(double flight, double billed, double rel_tol) {
  double scale = std::max(1.0, std::abs(flight));
  return std::abs(flight - billed) <= rel_tol * scale;
}
}  // namespace

bool BillsConserve(const BillTotals& flights, const BillTotals& billed,
                   double rel_tol) {
  return flights.wire_bytes == billed.wire_bytes &&
         flights.messages == billed.messages &&
         Close(flights.modeled_seconds, billed.modeled_seconds, rel_tol) &&
         Close(flights.compute_seconds, billed.compute_seconds, rel_tol) &&
         Close(flights.wire_seconds, billed.wire_seconds, rel_tol) &&
         Close(flights.imbalance_seconds, billed.imbalance_seconds, rel_tol) &&
         Close(flights.fault_seconds, billed.fault_seconds, rel_tol) &&
         Close(flights.cpu_seconds, billed.cpu_seconds, rel_tol);
}

bool CostGreater(const QueryBill& a, const QueryBill& b) {
  if (a.canon_modeled_seconds != b.canon_modeled_seconds) {
    return a.canon_modeled_seconds > b.canon_modeled_seconds;
  }
  if (a.wire_bytes != b.wire_bytes) return a.wire_bytes > b.wire_bytes;
  return a.request_id < b.request_id;
}

std::vector<QueryBill> TopCostRanked(std::vector<QueryBill> bills, size_t k) {
  std::sort(bills.begin(), bills.end(), CostGreater);
  if (bills.size() > k) bills.resize(k);
  return bills;
}

std::string BillJson(const QueryBill& bill, bool canonical_only) {
  std::string out = "{";
  out += "\"request_id\": " + U(bill.request_id);
  out += ", \"key\": \"" + obs::JsonEscape(bill.key) + "\"";
  out += ", \"path\": \"" + std::string(BillPathName(bill.path)) + "\"";
  out += ", \"share_count\": " + std::to_string(bill.share_count);
  if (!canonical_only) {
    out += ", \"modeled_seconds\": " + D(bill.modeled_seconds);
    out += ", \"compute_seconds\": " + D(bill.compute_seconds);
    out += ", \"wire_seconds\": " + D(bill.wire_seconds);
    out += ", \"imbalance_seconds\": " + D(bill.imbalance_seconds);
    out += ", \"fault_seconds\": " + D(bill.fault_seconds);
    out += ", \"cpu_seconds\": " + D(bill.cpu_seconds);
    out += ", \"wall_seconds\": " + D(bill.wall_seconds);
  }
  out += ", \"canon_modeled_seconds\": " + D(bill.canon_modeled_seconds);
  out += ", \"wire_bytes\": " + U(bill.wire_bytes);
  out += ", \"messages\": " + U(bill.messages);
  if (bill.flight != nullptr) {
    const FlightCost& c = *bill.flight;
    out += ", \"flight\": {";
    out += "\"ranks\": " + std::to_string(c.ranks);
    if (!canonical_only) {
      out += ", \"modeled_seconds\": " + D(c.modeled_seconds);
      out += ", \"cpu_seconds\": " + D(c.cpu_seconds);
    }
    out += ", \"canon_modeled_seconds\": " + D(c.canon_modeled_seconds);
    out += ", \"canon_compute_seconds\": " + D(c.canon_compute_seconds);
    out += ", \"canon_wire_seconds\": " + D(c.canon_wire_seconds);
    out += ", \"canon_imbalance_seconds\": " + D(c.canon_imbalance_seconds);
    out += ", \"canon_fault_seconds\": " + D(c.canon_fault_seconds);
    out += ", \"wire_bytes\": " + U(c.wire_bytes);
    out += ", \"messages\": " + U(c.messages);
    out += ", \"state_bytes\": " + U(c.state_bytes);
    out += ", \"msgbuf_bytes\": " + U(c.msgbuf_bytes);
    out += ", \"peak_bytes\": " + U(c.peak_bytes);
    out += ", \"faults_injected\": " + U(c.faults_injected);
    out += ", \"transport_retries\": " + U(c.transport_retries);
    out += "}";
  }
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

uint64_t FlightRecorder::Push(QueryBill bill) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(bill));
  } else {
    ring_[seq % capacity_] = std::move(bill);
  }
  return seq;
}

uint64_t FlightRecorder::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::vector<QueryBill> FlightRecorder::Since(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t held = ring_.size();
  uint64_t oldest = next_seq_ - held;
  if (seq < oldest) seq = oldest;
  std::vector<QueryBill> out;
  out.reserve(next_seq_ - seq);
  for (uint64_t s = seq; s < next_seq_; ++s) {
    out.push_back(ring_[s % capacity_]);
  }
  return out;
}

std::vector<QueryBill> FlightRecorder::Snapshot() const { return Since(0); }

std::vector<QueryBill> FlightRecorder::TopK(size_t k) const {
  return TopCostRanked(Snapshot(), k);
}

std::string ForensicDumpJson(const SloTripInfo& trip,
                             const std::vector<QueryBill>& window,
                             const std::vector<QueryBill>& ring, size_t top_k) {
  auto bill_array = [](const std::vector<QueryBill>& bills) {
    std::string out = "[";
    for (size_t i = 0; i < bills.size(); ++i) {
      if (i != 0) out += ", ";
      out += BillJson(bills[i], /*canonical_only=*/true);
    }
    out += "]";
    return out;
  };
  std::string out = "{\n";
  out += "  \"event\": \"slo_trip\",\n";
  out += "  \"scrape\": " + U(trip.scrape) + ",\n";
  out += "  \"level\": " + std::to_string(trip.level) + ",\n";
  out += "  \"prev_level\": " + std::to_string(trip.prev_level) + ",\n";
  out += "  \"window\": " + bill_array(window) + ",\n";
  out += "  \"ring\": " + bill_array(ring) + ",\n";
  // The named culprits: the window's bills ranked by deterministic cost. An
  // idle tripping window (e.g. a burst that drained before the scrape) falls
  // back to ranking the ring.
  out += "  \"top\": " +
         bill_array(TopCostRanked(window.empty() ? ring : window, top_k)) +
         "\n";
  out += "}\n";
  return out;
}

Status WriteFlightsTrace(const std::string& path,
                         const std::vector<QueryBill>& bills) {
  std::string out = "{\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(kFlightsPid) +
         ",\"tid\":0,\"args\":{\"name\":\"query flights\"}}";
  for (const QueryBill& b : bills) {
    uint64_t dur = static_cast<uint64_t>(b.wall_seconds * 1e6);
    uint64_t ts = b.wall_end_us > dur ? b.wall_end_us - dur : 0;
    out += ",{\"name\":\"" + obs::JsonEscape(b.key) + "\",\"cat\":\"flight\"," +
           "\"ph\":\"X\",\"pid\":" + std::to_string(kFlightsPid) +
           ",\"tid\":0,\"ts\":" + U(ts) + ",\"dur\":" + U(dur) +
           ",\"args\":{\"request_id\":" + U(b.request_id) + ",\"path\":\"" +
           BillPathName(b.path) +
           "\",\"canon_modeled_us\":" + D(b.canon_modeled_seconds * 1e6) +
           ",\"wire_bytes\":" + U(b.wire_bytes) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) return Status::IoError("short write to " + path);
  return Status::OK();
}

}  // namespace maze::serve
