// maze::serve::bill — per-request resource attribution (query bills).
//
// PRs 3/5 decompose whole *runs* into compute/wire/imbalance/fault terms with
// memory and wire totals; this module carries that decomposition to query
// granularity. Every engine execution ("flight") produces one immutable
// FlightCost; every OK response carries a QueryBill that charges it a share of
// some flight with exact amortization semantics:
//
//   - a fresh execution with one requester is billed the whole flight;
//   - dedup joiners split the flight N ways: integer resources (wire bytes,
//     messages) split exactly — joiner i of N gets v/N + (i < v%N ? 1 : 0),
//     in submission order — and modeled seconds split evenly;
//   - cache hits carry the originating flight's cost for context at *zero*
//     marginal cost (the execution was already paid for; a fully-cached
//     service burns nothing per request).
//
// The load-bearing identity is conservation: after Drain(), the sum of all
// marginal bills equals the sum of all flight costs — exactly for integers,
// to <= 1e-9 relative for seconds (BillsConserve). The service keeps both
// sides of that ledger (BillTotals) and bench_serve exits non-zero if they
// ever diverge.
//
// Two decompositions ride on each cost:
//   - measured: obs::attrib over the run's real step records (host-timing
//     dependent, what you monitor);
//   - canonical: the same attribution over canonicalized records where each
//     per-rank compute sample is a pure function of (step, rank, bytes,
//     straggler multiplier) — byte-stable across the serial and rank-parallel
//     schedules (the attrib_differential_test idiom), so deterministic
//     artifacts (SLO-trip forensic dumps, cost rankings) use canonical fields
//     and stay byte-identical no matter how the host scheduled the run.
//
// FlightRecorder is a fixed-size ring of recent bills feeding the cost-ranked
// top-K table in ServiceReport and the SLO-trip forensics: when the watchdog
// escalates, the tripping window's bills plus the ring dump as a
// deterministic JSON artifact (ForensicDumpJson) and a Perfetto track of
// recent flights (WriteFlightsTrace), so a degradation event names the
// queries that caused it.
#ifndef MAZE_SERVE_BILL_H_
#define MAZE_SERVE_BILL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/fault.h"
#include "rt/metrics.h"
#include "util/status.h"

namespace maze::serve {

// What one engine execution cost, in the Figure 6 axes: modeled time (split
// by obs::attrib), host CPU, wire traffic, and memory high watermarks.
// Immutable once built; shared by every joiner and cache hit it backs.
struct FlightCost {
  int ranks = 1;

  // Measured modeled decomposition (obs::attrib over the real step records);
  // the four components sum to modeled_seconds to <= 1e-9 rel.
  double modeled_seconds = 0;
  double compute_seconds = 0;
  double wire_seconds = 0;
  double imbalance_seconds = 0;
  double fault_seconds = 0;

  // Host CPU actually burned across ranks (measured; never byte-stable).
  double cpu_seconds = 0;

  // Canonical decomposition: byte-stable across schedules (see file comment).
  double canon_modeled_seconds = 0;
  double canon_compute_seconds = 0;
  double canon_wire_seconds = 0;
  double canon_imbalance_seconds = 0;
  double canon_fault_seconds = 0;

  // Exact wire totals (schedule-invariant by the §4a SimClock argument).
  uint64_t wire_bytes = 0;
  uint64_t messages = 0;

  // Memory high watermarks (obs::resource arenas via RunMetrics). Watermarks
  // are not additive — bills carry the flight's watermark whole, and they are
  // excluded from the conservation ledger.
  uint64_t state_bytes = 0;
  uint64_t msgbuf_bytes = 0;
  uint64_t peak_bytes = 0;

  // Fault accounting for the flight.
  uint64_t faults_injected = 0;
  uint64_t transport_retries = 0;
};
using FlightCostPtr = std::shared_ptr<const FlightCost>;

// Builds a flight's cost from its traced run metrics (pure). `faults` is the
// plan the run executed under: the canonical decomposition applies its
// straggler multipliers so a straggle-spiked query still ranks top in
// deterministic artifacts.
FlightCost ComputeFlightCost(const rt::RunMetrics& metrics, int ranks,
                             const rt::fault::FaultSpec& faults);

// How a response was served (which amortization rule applied).
enum class BillPath {
  kFresh = 0,     // Sole requester of its execution.
  kDedup = 1,     // One of N joiners splitting a flight.
  kCacheHit = 2,  // Zero marginal cost; carries the originating flight.
};
const char* BillPathName(BillPath path);

// The itemized bill attached to one OK response. The marginal fields are this
// request's share and feed the conservation ledger; `flight` is the full
// originating execution for context (shared, never null for a billed
// response).
struct QueryBill {
  uint64_t request_id = 0;
  std::string key;  // Canonical ExecKey of the execution it rode.
  BillPath path = BillPath::kFresh;
  int share_count = 1;  // Joiners the flight was split across (0 = cache hit).

  // Marginal share (measured decomposition + CPU).
  double modeled_seconds = 0;
  double compute_seconds = 0;
  double wire_seconds = 0;
  double imbalance_seconds = 0;
  double fault_seconds = 0;
  double cpu_seconds = 0;
  // Marginal share of the canonical modeled time: the deterministic cost rank.
  double canon_modeled_seconds = 0;
  // Exact integer shares.
  uint64_t wire_bytes = 0;
  uint64_t messages = 0;

  // Wall-clock fields for the Perfetto flights track only; excluded from the
  // deterministic dump (they are host timing).
  uint64_t wall_end_us = 0;
  double wall_seconds = 0;

  FlightCostPtr flight;
};

// Exact integer amortization: element i of an N-way split of v.
inline uint64_t IntegerShare(uint64_t v, size_t i, size_t n) {
  return v / n + (i < v % n ? 1 : 0);
}

// Fills a bill's marginal fields with joiner i's share of an N-way split
// (i < n, n >= 1). Identity fields (request_id/key/path/wall) are the
// caller's.
void FillShare(const FlightCostPtr& flight, size_t i, size_t n,
               QueryBill* bill);

// One side of the conservation ledger: additive totals over flights (what
// executions cost) or over bills (what requests were charged).
struct BillTotals {
  uint64_t entries = 0;  // Flights executed, or responses billed.
  double modeled_seconds = 0;
  double compute_seconds = 0;
  double wire_seconds = 0;
  double imbalance_seconds = 0;
  double fault_seconds = 0;
  double cpu_seconds = 0;
  uint64_t wire_bytes = 0;
  uint64_t messages = 0;

  void AddFlight(const FlightCost& cost);
  void AddBill(const QueryBill& bill);
  std::string ToJson() const;
};

// Both sides of the service's ledger, as sampled by Service::Bills().
struct BillLedger {
  BillTotals flights;
  BillTotals billed;
};

// True when the two sides agree: integers exactly, seconds to rel_tol
// relative (scale = max(1, |flight value|)).
bool BillsConserve(const BillTotals& flights, const BillTotals& billed,
                   double rel_tol = 1e-9);

// Deterministic cost order: canonical marginal seconds descending, then wire
// bytes descending, then request id ascending.
bool CostGreater(const QueryBill& a, const QueryBill& b);
// The k most expensive bills of `bills` under CostGreater.
std::vector<QueryBill> TopCostRanked(std::vector<QueryBill> bills, size_t k);

// One bill as JSON. `canonical_only` renders exclusively schedule-invariant
// fields (ids, key, path, shares, canonical seconds, wire/memory/fault
// integers) for byte-stable artifacts; otherwise measured seconds, CPU, and
// wall latency ride along.
std::string BillJson(const QueryBill& bill, bool canonical_only);

// Fixed-size flight recorder: the last `capacity` bills, each stamped with a
// monotonic sequence number so a consumer (the SLO watchdog) can ask for
// "every bill since seq S" as its evaluation window.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity);

  // Records a bill; returns its sequence number.
  uint64_t Push(QueryBill bill);

  // Sequence number the next Push will get (== bills recorded so far).
  uint64_t next_seq() const;

  // Bills still held, oldest first.
  std::vector<QueryBill> Snapshot() const;
  // Bills with sequence >= seq still held, oldest first.
  std::vector<QueryBill> Since(uint64_t seq) const;
  // The k most expensive held bills (CostGreater order).
  std::vector<QueryBill> TopK(size_t k) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_seq_ = 0;
  std::vector<QueryBill> ring_;  // Slot seq % capacity_.
};

// What tripped: the scrape that escalated and the level transition.
struct SloTripInfo {
  uint64_t scrape = 0;
  int level = 0;
  int prev_level = 0;
};

// The forensic artifact written when the watchdog escalates: trip info, the
// tripping window's bills, the whole ring, and the top-k expensive queries.
// Canonical fields only — byte-stable across schedules for the same request
// sequence.
std::string ForensicDumpJson(const SloTripInfo& trip,
                             const std::vector<QueryBill>& window,
                             const std::vector<QueryBill>& ring, size_t top_k);

// Synthetic pid of the query-flights Perfetto track.
inline constexpr int kFlightsPid = 30000;

// Chrome-trace JSON of recent flights (one slice per bill, wall-clock
// timestamps — a companion artifact, not byte-stable).
Status WriteFlightsTrace(const std::string& path,
                         const std::vector<QueryBill>& bills);

}  // namespace maze::serve

#endif  // MAZE_SERVE_BILL_H_
