#include "serve/cache.h"

#include <utility>

namespace maze::serve {

ExecResultPtr ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::Insert(const std::string& key, ExecResultPtr result) {
  size_t cost = result->CacheBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(key) != 0) return;  // A concurrent execution published it.
  if (cost > byte_budget_) return;     // Never evict everything for one entry.
  while (bytes_ + cost > byte_budget_ && !lru_.empty()) {
    bytes_ -= lru_.back().result->CacheBytes();
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  bytes_ += cost;
  ++insertions_;
}

ResultCache::Stats ResultCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.byte_budget = byte_budget_;
  return s;
}

}  // namespace maze::serve
