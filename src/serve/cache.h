// Completed-result cache for the serving layer: LRU over canonical execution
// keys with a byte budget (DESIGN.md §4e).
//
// Values are shared immutable ExecResults — the same object a run's in-flight
// joiners received — so a cache hit costs one map lookup and one shared_ptr
// copy. Keys embed the snapshot epoch (see serve::ExecKey), which makes epoch
// bumps an implicit invalidation: entries for dead epochs simply stop being
// looked up and age out of the LRU under byte pressure.
#ifndef MAZE_SERVE_CACHE_H_
#define MAZE_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/bill.h"

namespace maze::serve {

// The outcome of one underlying engine execution, shared by the request that
// triggered it, every deduped joiner, and the cache. Immutable once published.
struct ExecResult {
  // One-line human summary ("pagerank: 5 iterations").
  std::string summary;
  // Canonical byte serialization of the full answer. Deterministic for a given
  // (snapshot, algo, engine, params), which is what makes "cached response is
  // byte-identical to a fresh run" a checkable invariant (bench_serve).
  std::string payload;
  // Vertex-indexed values backing point lookups and top-k extraction
  // (PageRank scores, BFS levels, CC labels). Empty when the algorithm has no
  // per-vertex answer (triangle counting).
  std::vector<double> per_vertex;
  // Modeled seconds of the execution that produced this result.
  double modeled_seconds = 0;
  // Full cost of the execution that produced this result. Cache hits attach it
  // to their (zero-marginal) bill, so a cached answer still names what its
  // original run cost. Never null for results published by the service.
  FlightCostPtr cost;

  // Approximate resident bytes, charged against the cache budget.
  size_t CacheBytes() const {
    return payload.size() + summary.size() +
           per_vertex.size() * sizeof(double) +
           (cost != nullptr ? sizeof(FlightCost) : 0);
  }
};

using ExecResultPtr = std::shared_ptr<const ExecResult>;

// Thread-safe LRU keyed by canonical execution key. Inserting past the byte
// budget evicts least-recently-used entries; a single result larger than the
// whole budget is not cached at all.
class ResultCache {
 public:
  explicit ResultCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  // Returns the cached result and marks it most-recently-used; null on miss.
  ExecResultPtr Lookup(const std::string& key);

  // Publishes `result` under `key` (no-op if the key is already present).
  void Insert(const std::string& key, ExecResultPtr result);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;        // Current resident bytes.
    uint64_t byte_budget = 0;  // Configured bound.
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::string key;
    ExecResultPtr result;
  };

  const size_t byte_budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0, misses_ = 0, insertions_ = 0, evictions_ = 0;
};

}  // namespace maze::serve

#endif  // MAZE_SERVE_CACHE_H_
