#include "serve/script.h"

#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/datasets.h"
#include "core/io.h"
#include "obs/openmetrics.h"
#include "obs/telemetry.h"
#include "serve/slo.h"

namespace maze::serve {
namespace {

struct ScriptLine {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> kv;
};

ScriptLine ParseLine(const std::string& line) {
  ScriptLine parsed;
  std::istringstream tokens(line.substr(0, line.find('#')));
  std::string token;
  while (tokens >> token) {
    if (parsed.command.empty()) {
      parsed.command = token;
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      parsed.positional.push_back(token);
    } else {
      parsed.kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return parsed;
}

StatusOr<long> ParseInt(const std::string& what, const std::string& text) {
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(what + " expects an integer, got '" + text +
                                   "'");
  }
  return value;
}

StatusOr<double> ParseDouble(const std::string& what, const std::string& text) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(what + " expects a number, got '" + text +
                                   "'");
  }
  return value;
}

// How a snapshot was first loaded, so `bump` can re-install the same source
// as a new epoch.
struct SnapshotSource {
  std::string dataset;  // Registry name, or
  std::string path;     // edge-list file.
  int scale_adjust = 0;
};

StatusOr<EdgeList> LoadSource(const SnapshotSource& source) {
  if (!source.path.empty()) {
    auto ends_with = [&](const char* suffix) {
      std::string s = suffix;
      return source.path.size() >= s.size() &&
             source.path.compare(source.path.size() - s.size(), s.size(), s) ==
                 0;
    };
    if (ends_with(".bin")) return ReadEdgeListBinary(source.path);
    if (ends_with(".mtx")) return ReadMatrixMarket(source.path);
    return ReadEdgeListText(source.path);
  }
  return TryLoadGraphDataset(source.dataset, source.scale_adjust);
}

std::string ResponseLine(size_t index, const Response& r) {
  std::string line = "[" + std::to_string(index) + "] ";
  if (!r.status.ok()) return line + r.status.ToString() + "\n";
  line += "ok " + r.summary + " epoch=" + std::to_string(r.epoch) +
          " hit=" + std::to_string(r.cache_hit) +
          " dedup=" + std::to_string(r.deduped);
  return line + "\n";
}

}  // namespace

Status RunServeScript(std::istream& script, const ScriptOptions& options,
                      std::ostream& out, ServiceReport* report_out) {
  Service service(options.service);
  return RunServeScript(service, script, options, out, report_out);
}

Status RunServeScript(Service& service, std::istream& script,
                      const ScriptOptions& options, std::ostream& out,
                      ServiceReport* report_out,
                      obs::TelemetryRegistry* telemetry) {
  std::map<std::string, SnapshotSource> sources;
  // Script-local telemetry when the caller provided none; manual scrapes
  // only, so single-threaded script execution stays deterministic. The
  // watchdog (if armed) must die before the registries it hooks.
  std::unique_ptr<obs::TelemetryRegistry> own_telemetry;
  std::unique_ptr<SloWatchdog> watchdog;
  auto scrape_target = [&]() -> obs::TelemetryRegistry* {
    if (telemetry != nullptr) return telemetry;
    if (own_telemetry == nullptr) {
      own_telemetry = std::make_unique<obs::TelemetryRegistry>();
    }
    return own_telemetry.get();
  };
  std::vector<std::shared_future<Response>> pending;
  size_t printed = 0;  // Responses are numbered in global submission order.

  std::string line;
  int line_no = 0;
  while (std::getline(script, line)) {
    ++line_no;
    ScriptLine cmd = ParseLine(line);
    auto error = [&](const std::string& message) {
      return Status::InvalidArgument("serve script line " +
                                     std::to_string(line_no) + ": " + message);
    };
    if (cmd.command.empty()) continue;

    if (cmd.command == "load" || cmd.command == "bump") {
      if (cmd.positional.size() != 1) {
        return error(cmd.command + " needs exactly one snapshot name");
      }
      const std::string& name = cmd.positional[0];
      if (cmd.command == "load") {
        SnapshotSource source;
        source.dataset = cmd.kv.count("dataset") ? cmd.kv["dataset"] : name;
        source.scale_adjust = options.default_scale_adjust;
        if (cmd.kv.count("path")) source.path = cmd.kv["path"];
        if (cmd.kv.count("scale_adjust")) {
          auto v = ParseInt("scale_adjust", cmd.kv["scale_adjust"]);
          if (!v.ok()) return error(v.status().message());
          source.scale_adjust = static_cast<int>(v.value());
        }
        sources[name] = source;
      } else if (sources.count(name) == 0) {
        return error("bump of never-loaded snapshot '" + name + "'");
      }
      auto edges = LoadSource(sources[name]);
      if (!edges.ok()) return error(edges.status().ToString());
      SnapshotPtr snap =
          service.registry().Install(name, std::move(edges).value());
      out << cmd.command << " " << name << ": epoch " << snap->epoch << ", "
          << snap->directed.num_vertices << " vertices, "
          << snap->directed.edges.size() << " edges\n";
    } else if (cmd.command == "pause") {
      service.Pause();
    } else if (cmd.command == "resume") {
      service.Resume();
    } else if (cmd.command == "sleep") {
      if (cmd.positional.size() != 1) return error("sleep needs MILLIS");
      auto ms = ParseInt("sleep", cmd.positional[0]);
      if (!ms.ok()) return error(ms.status().message());
      std::this_thread::sleep_for(std::chrono::milliseconds(ms.value()));
    } else if (cmd.command == "run" || cmd.command == "point" ||
               cmd.command == "topk") {
      Request request;
      request.kind = cmd.command == "run"     ? QueryKind::kRun
                     : cmd.command == "point" ? QueryKind::kPoint
                                              : QueryKind::kTopK;
      long repeat = 1;
      for (const auto& [key, value] : cmd.kv) {
        if (key == "algo") {
          request.algo = value;
        } else if (key == "engine") {
          request.engine = value;
        } else if (key == "snapshot") {
          request.snapshot = value;
        } else if (key == "faults") {
          // A fault spec is comma-separated without spaces, so the whole plan
          // arrives as this one token's value.
          request.faults = value;
        } else if (key == "deadline") {
          auto v = ParseDouble(key, value);
          if (!v.ok()) return error(v.status().message());
          request.deadline_seconds = v.value();
        } else {
          auto v = ParseInt(key, value);
          if (!v.ok()) return error(v.status().message());
          if (key == "ranks") {
            request.ranks = static_cast<int>(v.value());
          } else if (key == "iterations") {
            request.iterations = static_cast<int>(v.value());
          } else if (key == "source") {
            request.source = static_cast<VertexId>(v.value());
          } else if (key == "vertex") {
            request.vertex = static_cast<VertexId>(v.value());
          } else if (key == "k") {
            request.k = static_cast<int>(v.value());
          } else if (key == "repeat") {
            repeat = v.value();
          } else {
            return error("unknown parameter '" + key + "'");
          }
        }
      }
      if (request.snapshot.empty()) return error("missing snapshot=");
      for (long i = 0; i < repeat; ++i) pending.push_back(service.Submit(request));
    } else if (cmd.command == "wait") {
      service.Resume();
      service.Drain();
      for (size_t i = 0; i < pending.size(); ++i) {
        out << ResponseLine(printed + i, pending[i].get());
      }
      printed += pending.size();
      pending.clear();
    } else if (cmd.command == "report") {
      out << service.Report().ToMarkdown();
    } else if (cmd.command == "slo") {
      if (watchdog != nullptr) return error("slo watchdog already armed");
      SloOptions slo;
      if (cmd.kv.count("target_ms") == 0) return error("slo needs target_ms=");
      for (const auto& [key, value] : cmd.kv) {
        if (key == "target_ms" || key == "burn" || key == "budget") {
          auto v = ParseDouble(key, value);
          if (!v.ok()) return error(v.status().message());
          if (v.value() <= 0) return error(key + " must be positive");
          if (key == "target_ms") slo.p99_target_ms = v.value();
          if (key == "burn") slo.burn_threshold = v.value();
          if (key == "budget") slo.error_budget = v.value();
        } else if (key == "recover" || key == "min" || key == "log_windows" ||
                   key == "top") {
          auto v = ParseInt(key, value);
          if (!v.ok()) return error(v.status().message());
          if (key == "recover") slo.recover_windows = static_cast<int>(v.value());
          if (key == "min") slo.min_window_requests = static_cast<uint64_t>(v.value());
          if (key == "log_windows") slo.log_windows = v.value() != 0;
          if (key == "top") slo.dump_top_k = static_cast<size_t>(v.value());
        } else if (key == "dump") {
          slo.dump_path = value;
        } else if (key == "perfetto") {
          slo.perfetto_path = value;
        } else {
          return error("unknown slo parameter '" + key + "'");
        }
      }
      watchdog = std::make_unique<SloWatchdog>(slo, scrape_target(), &service,
                                               &out);
      out << "slo armed target_ms=" << slo.p99_target_ms
          << " burn=" << slo.burn_threshold << " budget=" << slo.error_budget
          << "\n";
    } else if (cmd.command == "scrape") {
      uint64_t scrape = scrape_target()->ScrapeOnce();
      out << "scrape " << scrape << "\n";
      if (cmd.kv.count("file") != 0) {
        std::ofstream sink(cmd.kv["file"], std::ios::trunc);
        if (!sink) return error("cannot write '" + cmd.kv["file"] + "'");
        sink << obs::OpenMetricsText(*scrape_target());
      }
    } else if (cmd.command == "bills") {
      size_t top = 5;
      for (const auto& [key, value] : cmd.kv) {
        if (key != "top") return error("unknown bills parameter '" + key + "'");
        auto v = ParseInt(key, value);
        if (!v.ok()) return error(v.status().message());
        if (v.value() < 1) return error("top must be >= 1");
        top = static_cast<size_t>(v.value());
      }
      BillLedger ledger = service.Bills();
      out << "bills flights=" << ledger.flights.entries
          << " billed=" << ledger.billed.entries << " conserved="
          << (BillsConserve(ledger.flights, ledger.billed) ? "yes" : "NO")
          << "\n";
      std::vector<QueryBill> ranked = service.TopBills(top);
      for (size_t i = 0; i < ranked.size(); ++i) {
        // Canonical fields only, so the listing is byte-stable across
        // schedules for the same request sequence.
        out << "bill[" << i << "] " << BillJson(ranked[i], true) << "\n";
      }
    } else if (cmd.command == "degrade") {
      if (cmd.positional.size() != 1) return error("degrade needs LEVEL");
      auto level = ParseInt("degrade", cmd.positional[0]);
      if (!level.ok()) return error(level.status().message());
      service.SetDegradation(static_cast<int>(level.value()));
      out << "degrade level=" << service.degradation() << "\n";
    } else {
      return error("unknown command '" + cmd.command + "'");
    }
  }

  service.Resume();
  service.Drain();
  for (size_t i = 0; i < pending.size(); ++i) {
    out << ResponseLine(printed + i, pending[i].get());
  }
  if (report_out != nullptr) *report_out = service.Report();
  return Status::OK();
}

}  // namespace maze::serve
