// Deterministic batch driver for the query service: a line-oriented request
// script that `maze_cli serve --script PATH` (and the serve tests) execute
// against a fresh Service. Scripts express an offered-load schedule — what is
// submitted, in what order, with explicit pause/resume choreography — so
// admission, dedup, and cache behavior are reproducible and unit-testable.
//
// Grammar (one command per line; '#' starts a comment; blank lines ignored):
//
//   load NAME [dataset=REG] [scale_adjust=K] [path=FILE]
//       Installs snapshot NAME: from the dataset registry stand-in REG
//       (default: NAME itself) at scale adjust K (default -4), or from an
//       edge-list file when path= is given.
//   bump NAME
//       Re-installs NAME from its original source: a new epoch sharing no
//       cached results with the old one.
//   pause | resume
//       Holds/releases the dispatchers (deterministic queue buildup).
//   run   algo=A engine=E snapshot=NAME [ranks=N] [iterations=N] [source=V]
//         [deadline=SECONDS] [repeat=N] [faults=SPEC]
//   point algo=A engine=E snapshot=NAME vertex=V [...]
//   topk  algo=A engine=E snapshot=NAME k=K [...]
//       Submit requests (repeat= submits N copies back-to-back; faults= is an
//       rt::fault::ParseFaultSpec plan, e.g. faults=seed=1,straggle=0x64 — it
//       parses as one token because fault specs are comma-separated).
//   sleep MILLIS
//       Wall-clock pacing between submissions (load scheduling).
//   wait
//       Resolves every outstanding future, printing one line per response in
//       submission order.
//   report
//       Prints the service report as markdown.
//   slo target_ms=F [burn=F] [budget=F] [recover=N] [min=N] [log_windows=0|1]
//       [dump=PATH] [perfetto=PATH] [top=N]
//       Arms the SLO watchdog (serve/slo.h) over the script's telemetry
//       registry; watchdog events print to the script output. dump=/perfetto=
//       write the SLO-trip forensic artifacts (bill.h) on every escalation;
//       top= bounds the culprit list in the dump.
//   bills [top=N]
//       Prints the conservation ledger ("bills flights=F billed=B
//       conserved=yes|NO") and the top-N bills by canonical cost, one
//       deterministic JSON object per line.
//   scrape [file=PATH]
//       Closes one telemetry window (runs watchdog evaluation) and prints
//       "scrape N"; with file=, also writes the OpenMetrics exposition there.
//   degrade LEVEL
//       Manually sets the degradation level (tests; the watchdog overrides it
//       on its next level change).
#ifndef MAZE_SERVE_SCRIPT_H_
#define MAZE_SERVE_SCRIPT_H_

#include <istream>
#include <ostream>

#include "serve/service.h"
#include "util/status.h"

namespace maze::obs {
class TelemetryRegistry;
}  // namespace maze::obs

namespace maze::serve {

struct ScriptOptions {
  ServiceOptions service;
  // Scale adjust applied to registry dataset loads without an explicit
  // scale_adjust= (negative = smaller stand-ins).
  int default_scale_adjust = -4;
};

// Runs `script` against a fresh Service, writing per-response lines and
// reports to `out`. Returns the first script error (unknown command, bad
// value, missing snapshot source); request-level failures (rejections,
// deadline expiries) are printed, not returned, since backpressure is
// expected behavior under offered load. When `report_out` is non-null, the
// final ServiceReport is stored there for machine-readable export.
Status RunServeScript(std::istream& script, const ScriptOptions& options,
                      std::ostream& out, ServiceReport* report_out = nullptr);

// Same, against a caller-owned Service — the CLI uses this to wire the HTTP
// endpoint and a --slo watchdog around the script run. When `telemetry` is
// null, the first slo/scrape command lazily creates a script-local registry
// (manual scrapes only, no background thread).
Status RunServeScript(Service& service, std::istream& script,
                      const ScriptOptions& options, std::ostream& out,
                      ServiceReport* report_out = nullptr,
                      obs::TelemetryRegistry* telemetry = nullptr);

}  // namespace maze::serve

#endif  // MAZE_SERVE_SCRIPT_H_
