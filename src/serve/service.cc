#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <utility>

#include "bench_support/runner.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "rt/fault.h"

namespace maze::serve {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Shortest round-trippable decimal form; integral doubles print as integers
// ("3", not "3.0000000000000000e+00"), so BFS levels and CC labels stay
// readable while PageRank scores keep full precision.
std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool AlgoHasPerVertexResult(const std::string& algo) {
  return algo == "pagerank" || algo == "bfs" || algo == "cc";
}

// Runs the request's algorithm on its pinned snapshot and serializes the
// answer canonically. The payload is a pure function of (snapshot, algo,
// engine, params): engine answers are schedule-invariant (PR 2), so a cached
// or deduped payload is byte-identical to a fresh run's.
StatusOr<ExecResultPtr> ExecuteRequest(const Request& request,
                                       const Snapshot& snap) {
  auto engine = bench::EngineByName(request.engine);
  MAZE_RETURN_IF_ERROR(engine.status());
  bench::RunConfig config;
  config.num_ranks = request.ranks;
  // Every serve execution is traced: the per-step records feed the bill's
  // attribution decomposition (ComputeFlightCost).
  config.trace = true;
  if (!request.faults.empty()) {
    auto faults = rt::fault::ParseFaultSpec(request.faults);
    MAZE_RETURN_IF_ERROR(faults.status());
    config.faults = std::move(faults).value();
  }

  auto result = std::make_shared<ExecResult>();
  rt::RunMetrics run_metrics;
  char head[160];
  if (request.algo == "pagerank") {
    rt::PageRankOptions opt;
    opt.iterations = request.iterations;
    auto r = bench::RunPageRank(engine.value(), snap.directed, opt, config);
    result->per_vertex.assign(r.ranks.begin(), r.ranks.end());
    result->summary = "pagerank: " + std::to_string(r.iterations) + " iterations";
    result->modeled_seconds = r.metrics.elapsed_seconds;
    run_metrics = std::move(r.metrics);
    std::snprintf(head, sizeof(head), "pagerank n=%zu iterations=%d\n",
                  r.ranks.size(), r.iterations);
  } else if (request.algo == "bfs") {
    rt::BfsOptions opt;
    opt.source = request.source;
    auto r = bench::RunBfs(engine.value(), snap.symmetric, opt, config);
    uint64_t reached = 0;
    result->per_vertex.reserve(r.distance.size());
    for (uint32_t d : r.distance) {
      bool hit = d != kInfiniteDistance;
      reached += hit;
      result->per_vertex.push_back(hit ? static_cast<double>(d) : -1.0);
    }
    result->summary = "bfs: reached " + std::to_string(reached) +
                      " vertices in " + std::to_string(r.levels) + " levels";
    result->modeled_seconds = r.metrics.elapsed_seconds;
    run_metrics = std::move(r.metrics);
    std::snprintf(head, sizeof(head), "bfs n=%zu source=%u levels=%d\n",
                  r.distance.size(), request.source, r.levels);
  } else if (request.algo == "cc") {
    auto r = bench::RunConnectedComponents(engine.value(), snap.symmetric, {},
                                           config);
    result->per_vertex.assign(r.label.begin(), r.label.end());
    result->summary =
        "cc: " + std::to_string(r.num_components) + " components";
    result->modeled_seconds = r.metrics.elapsed_seconds;
    run_metrics = std::move(r.metrics);
    std::snprintf(head, sizeof(head), "cc n=%zu components=%llu\n",
                  r.label.size(),
                  static_cast<unsigned long long>(r.num_components));
  } else if (request.algo == "triangles") {
    // §6.1.3: bspgraph triangle counting needs superstep splitting (as in the
    // CLI run command).
    if (engine.value() == bench::EngineKind::kBspgraph) config.bsp_phases = 100;
    auto r = bench::RunTriangleCount(engine.value(), snap.oriented, {}, config);
    result->summary = "triangles: " + std::to_string(r.triangles);
    result->modeled_seconds = r.metrics.elapsed_seconds;
    run_metrics = std::move(r.metrics);
    std::snprintf(head, sizeof(head), "triangles %llu\n",
                  static_cast<unsigned long long>(r.triangles));
  } else {
    return Status::InvalidArgument("unknown algo '" + request.algo + "'");
  }
  result->cost = std::make_shared<FlightCost>(
      ComputeFlightCost(run_metrics, config.num_ranks, config.faults));

  result->payload = head;
  for (double v : result->per_vertex) {
    result->payload += FormatValue(v);
    result->payload += '\n';
  }
  return ExecResultPtr(std::move(result));
}

// Extracts the per-request view of a shared execution result.
Response BuildResponse(const Request& request, const ExecResult& result,
                       uint64_t epoch) {
  Response r;
  r.epoch = epoch;
  r.summary = result.summary;
  r.modeled_seconds = result.modeled_seconds;
  switch (request.kind) {
    case QueryKind::kRun:
      r.payload = result.payload;
      break;
    case QueryKind::kPoint:
      r.payload = request.algo + " vertex " + std::to_string(request.vertex) +
                  " = " + FormatValue(result.per_vertex[request.vertex]) + "\n";
      break;
    case QueryKind::kTopK: {
      size_t k = std::min<size_t>(request.k, result.per_vertex.size());
      std::vector<uint32_t> order(result.per_vertex.size());
      std::iota(order.begin(), order.end(), 0u);
      std::partial_sort(order.begin(), order.begin() + k, order.end(),
                        [&](uint32_t a, uint32_t b) {
                          if (result.per_vertex[a] != result.per_vertex[b]) {
                            return result.per_vertex[a] > result.per_vertex[b];
                          }
                          return a < b;  // Deterministic tie-break.
                        });
      r.payload = request.algo + " top " + std::to_string(k) + "\n";
      for (size_t i = 0; i < k; ++i) {
        r.payload += std::to_string(order[i]) + " " +
                     FormatValue(result.per_vertex[order[i]]) + "\n";
      }
      break;
    }
  }
  return r;
}

// Every obs handle the dispatch path touches, resolved through the locked
// registry exactly once (the PR 2/7 Exchange::ObserveDeliver pattern). After
// the first request warms this struct, the serve hot path performs zero
// registry lookups per request — serve_stress_test pins that with
// obs::RegistryLookups().
struct ServeObs {
  obs::Counter& submitted = obs::GetCounter("serve.submitted");
  obs::Counter& invalid = obs::GetCounter("serve.invalid");
  obs::Counter& rejected = obs::GetCounter("serve.rejected");
  obs::Counter& shed = obs::GetCounter("serve.shed");
  obs::Counter& cache_hit = obs::GetCounter("serve.cache_hit");
  obs::Counter& dedup_joined = obs::GetCounter("serve.dedup_joined");
  obs::Counter& admitted = obs::GetCounter("serve.admitted");
  obs::Counter& executed = obs::GetCounter("serve.executed");
  obs::Counter& exec_failed = obs::GetCounter("serve.exec_failed");
  obs::Counter& completed = obs::GetCounter("serve.completed");
  obs::Counter& failed = obs::GetCounter("serve.failed");
  obs::Counter& expired = obs::GetCounter("serve.expired");
  obs::Counter& slo_requests = obs::GetCounter("serve.slo_requests");
  obs::Counter& slo_over_target = obs::GetCounter("serve.slo_over_target");
  obs::Histogram& latency_us = obs::GetHistogram("serve.latency_us");
  obs::Histogram& queue_wait_us = obs::GetHistogram("serve.queue_wait_us");
  obs::Histogram& modeled_us = obs::GetHistogram("serve.modeled_us");
  obs::ExemplarStore& latency_exemplars = obs::GetExemplars("serve.latency_us");
  obs::ExemplarStore& modeled_exemplars = obs::GetExemplars("serve.modeled_us");
  // Instantaneous service levels, exported as OpenMetrics gauges.
  obs::Gauge& queue_depth = obs::GetGauge("serve.queue_depth");
  obs::Gauge& inflight = obs::GetGauge("serve.inflight");
  obs::Gauge& degradation = obs::GetGauge("serve.degradation");
  // Per-request attribution (bill.h): flight/billed totals as counters plus
  // marginal-cost distributions with request-id exemplars, so a scrape can
  // walk from a maze_bill_* p99 bucket to the request that landed there.
  obs::Counter& bill_flights = obs::GetCounter("bill.flights");
  obs::Counter& bill_wire_bytes = obs::GetCounter("bill.wire_bytes");
  obs::Counter& bill_messages = obs::GetCounter("bill.messages");
  obs::Histogram& bill_modeled_us = obs::GetHistogram("bill.request_modeled_us");
  obs::Histogram& bill_wire = obs::GetHistogram("bill.request_wire_bytes");
  obs::ExemplarStore& bill_modeled_exemplars =
      obs::GetExemplars("bill.request_modeled_us");
  obs::ExemplarStore& bill_wire_exemplars =
      obs::GetExemplars("bill.request_wire_bytes");

  static ServeObs& Get() {
    static ServeObs* o = new ServeObs();
    return *o;
  }
};

uint64_t ToMicros(double seconds) {
  return static_cast<uint64_t>(seconds * 1e6);
}

obs::HistogramSnapshot SnapshotOf(const char* name, const obs::Histogram& h) {
  obs::HistogramSnapshot s;
  s.name = name;
  s.count = h.count();
  s.sum = h.sum();
  s.max = h.max();
  s.p50 = h.P50();
  s.p95 = h.P95();
  s.p99 = h.P99();
  return s;
}

}  // namespace

// One admitted execution: the canonical key, the pinned snapshot, the request
// whose parameters drive the engine, and everyone waiting on the answer.
struct Service::Flight {
  std::string key;
  SnapshotPtr snap;
  Request origin;
  uint64_t origin_id = 0;  // Request id of the joiner that opened the flight.

  struct Joiner {
    Request req;
    std::promise<Response> promise;
    Clock::time_point submitted;
    bool deduped = false;
    uint64_t request_id = 0;
  };
  // Guarded by Service::mu_ until the flight is retired from inflight_.
  std::vector<Joiner> joiners;
};

StatusOr<std::string> Service::ExecKey(const Request& request,
                                       const Snapshot& snap) {
  auto engine = bench::EngineByName(request.engine);
  MAZE_RETURN_IF_ERROR(engine.status());
  if (request.ranks < 1) {
    return Status::InvalidArgument("ranks must be >= 1");
  }
  const VertexId n = snap.directed.num_vertices;
  std::string key = snap.name + "@" + std::to_string(snap.epoch) + "/" +
                    request.algo + "/" + request.engine +
                    "/ranks=" + std::to_string(request.ranks);
  if (request.algo == "pagerank") {
    if (request.iterations < 1) {
      return Status::InvalidArgument("pagerank needs iterations >= 1");
    }
    key += "/iterations=" + std::to_string(request.iterations);
  } else if (request.algo == "bfs") {
    if (request.source >= n) {
      return Status::InvalidArgument("bfs source " +
                                     std::to_string(request.source) +
                                     " out of range (n=" + std::to_string(n) +
                                     ")");
    }
    key += "/source=" + std::to_string(request.source);
  } else if (request.algo != "cc" && request.algo != "triangles") {
    return Status::InvalidArgument("unknown algo '" + request.algo +
                                   "' (pagerank|bfs|cc|triangles)");
  }
  if (request.kind != QueryKind::kRun &&
      !AlgoHasPerVertexResult(request.algo)) {
    return Status::InvalidArgument("algo '" + request.algo +
                                   "' has no per-vertex result for "
                                   "point/top-k queries");
  }
  if (request.kind == QueryKind::kPoint && request.vertex >= n) {
    return Status::InvalidArgument(
        "point vertex " + std::to_string(request.vertex) + " out of range (n=" +
        std::to_string(n) + ")");
  }
  if (request.kind == QueryKind::kTopK && request.k < 1) {
    return Status::InvalidArgument("top-k needs k >= 1");
  }
  if (!request.faults.empty()) {
    auto spec = rt::fault::ParseFaultSpec(request.faults);
    MAZE_RETURN_IF_ERROR(spec.status());
    // Keyed by the spec text, not its parse: two spellings of one plan are
    // distinct keys, which errs toward re-executing rather than aliasing.
    key += "/faults=" + request.faults;
  }
  return key;
}

Service::Service(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_bytes),
      recorder_(options.bill_ring) {
  ServeObs::Get();  // Resolve every obs handle before the first request.
  int workers = std::max(1, options.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

Service::~Service() {
  Resume();
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_future<Response> Service::Submit(const Request& request) {
  const Clock::time_point submitted = Clock::now();
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  ServeObs& so = ServeObs::Get();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  so.submitted.Add(1);

  auto reply_now = [&](Response r) {
    r.latency_seconds = SecondsSince(submitted);
    r.request_id = request_id;
    std::promise<Response> p;
    p.set_value(std::move(r));
    return p.get_future().share();
  };
  auto fail_now = [&](Status status, uint64_t ServiceStats::*counter,
                      obs::Counter& obs_counter, bool shed = false) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++(stats_.*counter);
      if (shed) ++stats_.shed;
    }
    obs_counter.Add(1);
    if (shed) so.shed.Add(1);
    Response r;
    r.status = std::move(status);
    return reply_now(std::move(r));
  };

  auto snap_or = registry_.Get(request.snapshot);
  if (!snap_or.ok()) {
    return fail_now(snap_or.status(), &ServiceStats::invalid, so.invalid);
  }
  SnapshotPtr snap = std::move(snap_or).value();
  auto key_or = ExecKey(request, *snap);
  if (!key_or.ok()) {
    return fail_now(key_or.status(), &ServiceStats::invalid, so.invalid);
  }
  const std::string& key = key_or.value();

  if (ExecResultPtr hit = cache_.Lookup(key)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cache_hits;
      ++stats_.completed;
    }
    so.cache_hit.Add(1);
    so.completed.Add(1);
    Response r = BuildResponse(request, *hit, snap->epoch);
    r.cache_hit = true;
    // Zero-marginal bill: the execution was already paid for; the flight cost
    // rides along for context only (share_count 0 keeps it off the ledger's
    // additive fields).
    auto bill = std::make_shared<QueryBill>();
    bill->request_id = request_id;
    bill->key = key;
    bill->path = BillPath::kCacheHit;
    bill->share_count = 0;
    bill->flight = hit->cost;
    bill->wall_seconds = SecondsSince(submitted);
    bill->wall_end_us = static_cast<uint64_t>(obs::NowMicros());
    r.bill = bill;
    auto fut = reply_now(std::move(r));
    ObserveResponse(fut.get());
    RecordBill(bill);
    return fut;
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    Flight::Joiner joiner;
    joiner.req = request;
    joiner.submitted = submitted;
    joiner.deduped = true;
    joiner.request_id = request_id;
    auto fut = joiner.promise.get_future().share();
    it->second->joiners.push_back(std::move(joiner));
    lock.unlock();
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.dedup_joined;
    }
    so.dedup_joined.Add(1);
    return fut;
  }
  // Degradation gates only *new executions*: cache hits and dedup joins above
  // ride work that is already paid for. Level 2 sheds every miss; level 1
  // halves the effective queue depth so backpressure kicks in earlier.
  const int degradation = degradation_.load(std::memory_order_relaxed);
  if (degradation >= 2) {
    lock.unlock();
    return fail_now(
        Status::Unavailable("shedding new executions (degradation level 2)"),
        &ServiceStats::rejected, so.rejected, /*shed=*/true);
  }
  size_t effective_depth =
      degradation > 0 ? std::max<size_t>(1, options_.queue_depth >> degradation)
                      : options_.queue_depth;
  if (queue_.size() >= effective_depth) {
    const bool shed = queue_.size() < options_.queue_depth;
    lock.unlock();
    return fail_now(
        Status::Unavailable("admission queue full (depth " +
                            std::to_string(effective_depth) + ")"),
        &ServiceStats::rejected, so.rejected, shed);
  }

  auto flight = std::make_shared<Flight>();
  flight->key = key;
  flight->snap = std::move(snap);
  flight->origin = request;
  flight->origin_id = request_id;
  Flight::Joiner joiner;
  joiner.req = request;
  joiner.submitted = submitted;
  joiner.request_id = request_id;
  auto fut = joiner.promise.get_future().share();
  flight->joiners.push_back(std::move(joiner));
  inflight_.emplace(key, flight);
  queue_.push_back(std::move(flight));
  queue_peak_ = std::max<uint64_t>(queue_peak_, queue_.size());
  so.queue_depth.Set(static_cast<int64_t>(queue_.size()));
  lock.unlock();
  work_cv_.notify_one();
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.admitted;
  }
  so.admitted.Add(1);
  return fut;
}

void Service::SetDegradation(int level) {
  const int clamped = std::clamp(level, 0, 2);
  degradation_.store(clamped, std::memory_order_relaxed);
  ServeObs::Get().degradation.Set(clamped);
}

void Service::ObserveResponse(const Response& r) {
  ServeObs& so = ServeObs::Get();
  const uint64_t latency_us = ToMicros(r.latency_seconds);
  latency_us_.Record(latency_us);
  so.latency_us.Record(latency_us);
  so.latency_exemplars.Record(latency_us, r.request_id);
  // Modeled-time and SLO accounting cover paid work only: a cache hit's
  // modeled_seconds describes the execution it reused, not this response, and
  // counting it would keep the burn rate pinned high under full shedding
  // (cache-only traffic) so the watchdog could never recover.
  if (!r.status.ok() || r.cache_hit) return;
  const uint64_t modeled_us = ToMicros(r.modeled_seconds);
  modeled_us_.Record(modeled_us);
  so.modeled_us.Record(modeled_us);
  so.modeled_exemplars.Record(modeled_us, r.request_id);
  so.slo_requests.Add(1);
  const uint64_t target = slo_target_us_.load(std::memory_order_relaxed);
  if (target != 0 && modeled_us > target) so.slo_over_target.Add(1);
}

void Service::RecordBill(const std::shared_ptr<const QueryBill>& bill) {
  ServeObs& so = ServeObs::Get();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ledger_.billed.AddBill(*bill);
  }
  recorder_.Push(*bill);
  // Distributions use the canonical marginal cost — deterministic across
  // schedules, so the same request sequence fills the same buckets.
  const uint64_t modeled_us = ToMicros(bill->canon_modeled_seconds);
  so.bill_modeled_us.Record(modeled_us);
  so.bill_modeled_exemplars.Record(modeled_us, bill->request_id);
  so.bill_wire.Record(bill->wire_bytes);
  so.bill_wire_exemplars.Record(bill->wire_bytes, bill->request_id);
}

BillLedger Service::Bills() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return ledger_;
}

std::vector<QueryBill> Service::RecentBills() const {
  return recorder_.Snapshot();
}

std::vector<QueryBill> Service::TopBills(size_t k) const {
  return recorder_.TopK(k);
}

uint64_t Service::bill_seq() const { return recorder_.next_seq(); }

std::vector<QueryBill> Service::BillsSince(uint64_t seq) const {
  return recorder_.Since(seq);
}

Response Service::Call(const Request& request) {
  return Submit(request).get();
}

void Service::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Service::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void Service::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void Service::WorkerMain() {
  ServeObs& so = ServeObs::Get();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || (!paused_ && !queue_.empty()); });
    if (stop_) return;
    FlightPtr flight = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    so.queue_depth.Set(static_cast<int64_t>(queue_.size()));
    so.inflight.Set(active_);
    lock.unlock();
    ExecuteFlight(flight);
    lock.lock();
    --active_;
    so.inflight.Set(active_);
    if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
  }
}

void Service::ExecuteFlight(const FlightPtr& flight) {
  const Clock::time_point exec_start = Clock::now();

  // A flight expires only when *every* joined request's queue-wait budget has
  // passed: as long as one joiner is still willing to wait, executing serves
  // them all. Deadlines bound time in queue, not execution.
  bool expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    expired = !flight->joiners.empty();
    for (const Flight::Joiner& j : flight->joiners) {
      if (j.req.deadline_seconds <= 0 ||
          std::chrono::duration<double>(exec_start - j.submitted).count() <=
              j.req.deadline_seconds) {
        expired = false;
        break;
      }
    }
  }

  StatusOr<ExecResultPtr> result =
      Status::DeadlineExceeded("queue-wait deadline passed before dispatch");
  if (!expired) {
    // The span carries the opening joiner's request id, so a latency-exemplar
    // request_id finds this slice (and the engine spans nested under it on
    // this thread) in the Perfetto trace.
    const double span_start = obs::Enabled() ? obs::NowMicros() : 0;
    result = ExecuteRequest(flight->origin, *flight->snap);
    if (obs::Enabled()) {
      obs::PushSpanWithId("serve.execute", "serve", 0, -1, span_start,
                          obs::NowMicros() - span_start, flight->origin_id);
    }
    // Publish before retiring the flight: a submitter racing with retirement
    // either joins (fulfilled below) or finds the cache populated.
    if (result.ok()) cache_.Insert(flight->key, result.value());
  }

  std::vector<Flight::Joiner> joiners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(flight->key);
    joiners.swap(flight->joiners);
  }

  const uint64_t epoch = flight->snap->epoch;
  const size_t share_n = joiners.size();
  uint64_t completed = 0, failed = 0, expired_count = 0;
  std::vector<Response> responses;
  responses.reserve(joiners.size());
  std::vector<std::shared_ptr<const QueryBill>> bills;
  ServeObs& so = ServeObs::Get();
  for (size_t i = 0; i < joiners.size(); ++i) {
    Flight::Joiner& j = joiners[i];
    Response r;
    if (result.ok()) {
      r = BuildResponse(j.req, *result.value(), epoch);
      r.deduped = j.deduped;
      // Joiners that attached after dispatch have a negative wait: they never
      // queued, they boarded a flight already in the air.
      r.queue_seconds = std::max(
          0.0, std::chrono::duration<double>(exec_start - j.submitted).count());
      const uint64_t queue_us = ToMicros(r.queue_seconds);
      queue_wait_us_.Record(queue_us);
      so.queue_wait_us.Record(queue_us);
      ++completed;
    } else {
      r.status = result.status();
      r.epoch = epoch;
      if (r.status.code() == StatusCode::kDeadlineExceeded) {
        ++expired_count;
      } else {
        ++failed;
      }
    }
    r.latency_seconds = SecondsSince(j.submitted);
    r.request_id = j.request_id;
    if (result.ok()) {
      // Joiner i of N is billed the i-th share of the flight, in submission
      // order — exact for integers (IntegerShare), even for seconds.
      auto bill = std::make_shared<QueryBill>();
      bill->request_id = j.request_id;
      bill->key = flight->key;
      bill->path = share_n == 1 ? BillPath::kFresh : BillPath::kDedup;
      FillShare(result.value()->cost, i, share_n, bill.get());
      bill->wall_seconds = r.latency_seconds;
      bill->wall_end_us = static_cast<uint64_t>(obs::NowMicros());
      r.bill = bill;
      bills.push_back(std::move(bill));
    }
    ObserveResponse(r);
    responses.push_back(std::move(r));
  }

  // Publish the accounting BEFORE fulfilling any joiner: a client whose Call()
  // just returned must see stats that include its own request.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (expired) {
      stats_.expired += expired_count;
    } else if (result.ok()) {
      ++stats_.executed;
      // The flight side of the conservation ledger: one entry per execution,
      // added exactly once no matter how many joiners split it.
      ledger_.flights.AddFlight(*result.value()->cost);
    } else {
      ++stats_.exec_failed;
    }
    stats_.completed += completed;
    stats_.failed += failed;
  }
  if (!expired) {
    (result.ok() ? so.executed : so.exec_failed).Add(1);
  }
  if (result.ok()) {
    const FlightCost& cost = *result.value()->cost;
    so.bill_flights.Add(1);
    so.bill_wire_bytes.Add(cost.wire_bytes);
    so.bill_messages.Add(cost.messages);
  }
  so.completed.Add(completed);
  so.failed.Add(failed);
  so.expired.Add(expired_count);
  for (const auto& bill : bills) RecordBill(bill);

  for (size_t i = 0; i < joiners.size(); ++i) {
    joiners[i].promise.set_value(std::move(responses[i]));
  }
}

ServiceStats Service::Stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
    s.queue_peak = queue_peak_;
    s.inflight = static_cast<uint64_t>(active_);
  }
  s.cache = cache_.GetStats();
  return s;
}

ServiceReport Service::Report() const {
  ServiceReport report;
  report.options = options_;
  report.stats = Stats();
  report.degradation = degradation();
  report.latency = SnapshotOf("serve.latency_us", latency_us_);
  report.queue_wait = SnapshotOf("serve.queue_wait_us", queue_wait_us_);
  report.modeled = SnapshotOf("serve.modeled_us", modeled_us_);
  report.bills = Bills();
  report.top_bills = TopBills(5);
  for (const SnapshotPtr& snap : registry_.All()) {
    ServiceReport::SnapshotRow row;
    row.name = snap->name;
    row.epoch = snap->epoch;
    row.vertices = snap->directed.num_vertices;
    row.edges = snap->directed.edges.size();
    row.bytes = snap->MemoryBytes();
    report.snapshots.push_back(std::move(row));
  }
  return report;
}

std::string ServiceReport::ToJson() const {
  std::string out = "{\n";
  out += "\"options\": {\"workers\": " + std::to_string(options.workers) +
         ", \"queue_depth\": " + std::to_string(options.queue_depth) +
         ", \"cache_bytes\": " + std::to_string(options.cache_bytes) + "},\n";
  out += "\"stats\": {";
  auto field = [&](const char* name, uint64_t v, bool last = false) {
    out += std::string("\"") + name + "\": " + std::to_string(v) +
           (last ? "" : ", ");
  };
  field("submitted", stats.submitted);
  field("admitted", stats.admitted);
  field("rejected", stats.rejected);
  field("shed", stats.shed);
  field("invalid", stats.invalid);
  field("cache_hits", stats.cache_hits);
  field("dedup_joined", stats.dedup_joined);
  field("executed", stats.executed);
  field("exec_failed", stats.exec_failed);
  field("completed", stats.completed);
  field("failed", stats.failed);
  field("expired", stats.expired);
  field("queue_depth", stats.queue_depth);
  field("queue_peak", stats.queue_peak);
  field("inflight", stats.inflight, /*last=*/true);
  out += "},\n";
  out += "\"degradation\": " + std::to_string(degradation) + ",\n";
  auto hist = [&](const char* name, const obs::HistogramSnapshot& h) {
    out += std::string("\"") + name + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) +
           ", \"p50\": " + std::to_string(h.p50) +
           ", \"p95\": " + std::to_string(h.p95) +
           ", \"p99\": " + std::to_string(h.p99) + "},\n";
  };
  hist("latency_us", latency);
  hist("queue_wait_us", queue_wait);
  hist("modeled_us", modeled);
  out += "\"bills\": {\"flights\": " + bills.flights.ToJson() +
         ", \"billed\": " + bills.billed.ToJson() + ", \"conserved\": " +
         (BillsConserve(bills.flights, bills.billed) ? "true" : "false") +
         "},\n";
  out += "\"top_bills\": [";
  for (size_t i = 0; i < top_bills.size(); ++i) {
    if (i != 0) out += ", ";
    out += BillJson(top_bills[i], /*canonical_only=*/false);
  }
  out += "],\n";
  out += "\"cache\": {";
  field("hits", stats.cache.hits);
  field("misses", stats.cache.misses);
  field("insertions", stats.cache.insertions);
  field("evictions", stats.cache.evictions);
  field("entries", stats.cache.entries);
  field("bytes", stats.cache.bytes);
  field("byte_budget", stats.cache.byte_budget, /*last=*/true);
  out += "},\n";
  out += "\"snapshots\": [\n";
  for (size_t i = 0; i < snapshots.size(); ++i) {
    const SnapshotRow& s = snapshots[i];
    out += "  {\"name\": \"" + obs::JsonEscape(s.name) +
           "\", \"epoch\": " + std::to_string(s.epoch) +
           ", \"vertices\": " + std::to_string(s.vertices) +
           ", \"edges\": " + std::to_string(s.edges) +
           ", \"bytes\": " + std::to_string(s.bytes) + "}" +
           (i + 1 < snapshots.size() ? "," : "") + "\n";
  }
  out += "]\n}\n";
  return out;
}

std::string ServiceReport::ToMarkdown() const {
  std::string out = "# Service report\n\n";
  out += "workers=" + std::to_string(options.workers) +
         " queue_depth=" + std::to_string(options.queue_depth) +
         " cache_bytes=" + std::to_string(options.cache_bytes) + "\n\n";
  out += "## Requests\n\n| counter | value |\n|---|---|\n";
  auto row = [&](const char* name, uint64_t v) {
    out += std::string("| ") + name + " | " + std::to_string(v) + " |\n";
  };
  row("submitted", stats.submitted);
  row("admitted (new executions queued)", stats.admitted);
  row("rejected (queue full)", stats.rejected);
  row("shed (SLO degradation)", stats.shed);
  row("invalid", stats.invalid);
  row("cache hits", stats.cache_hits);
  row("dedup joins", stats.dedup_joined);
  row("executed", stats.executed);
  row("completed", stats.completed);
  row("failed", stats.failed + stats.exec_failed);
  row("expired (deadline)", stats.expired);
  row("queue peak", stats.queue_peak);
  out += "\n## Latency (microseconds)\n\n";
  out += "| series | count | p50 | p95 | p99 | max |\n|---|---|---|---|---|---|\n";
  auto hrow = [&](const char* name, const obs::HistogramSnapshot& h) {
    out += std::string("| ") + name + " | " + std::to_string(h.count) + " | " +
           std::to_string(h.p50) + " | " + std::to_string(h.p95) + " | " +
           std::to_string(h.p99) + " | " + std::to_string(h.max) + " |\n";
  };
  hrow("request latency", latency);
  hrow("queue wait", queue_wait);
  hrow("modeled run time", modeled);
  out += "\n## Query bills\n\n";
  out += "flights=" + std::to_string(bills.flights.entries) +
         " billed=" + std::to_string(bills.billed.entries) + " conserved=" +
         (BillsConserve(bills.flights, bills.billed) ? "yes" : "NO") + "\n\n";
  out += "| rank | request | path | share | canon modeled s | wire bytes | "
         "messages |\n|---|---|---|---|---|---|---|\n";
  for (size_t i = 0; i < top_bills.size(); ++i) {
    const QueryBill& b = top_bills[i];
    char canon[32];
    std::snprintf(canon, sizeof(canon), "%.6g", b.canon_modeled_seconds);
    out += "| " + std::to_string(i + 1) + " | " +
           std::to_string(b.request_id) + " | " + BillPathName(b.path) +
           " | " + std::to_string(b.share_count) + " | " + canon + " | " +
           std::to_string(b.wire_bytes) + " | " + std::to_string(b.messages) +
           " |\n";
  }
  out += "\n## Cache\n\n| hits | misses | insertions | evictions | entries | "
         "bytes | budget |\n|---|---|---|---|---|---|---|\n| " +
         std::to_string(stats.cache.hits) + " | " +
         std::to_string(stats.cache.misses) + " | " +
         std::to_string(stats.cache.insertions) + " | " +
         std::to_string(stats.cache.evictions) + " | " +
         std::to_string(stats.cache.entries) + " | " +
         std::to_string(stats.cache.bytes) + " | " +
         std::to_string(stats.cache.byte_budget) + " |\n";
  out += "\n## Snapshots\n\n| name | epoch | vertices | edges | bytes "
         "|\n|---|---|---|---|---|\n";
  for (const SnapshotRow& s : snapshots) {
    out += "| " + s.name + " | " + std::to_string(s.epoch) + " | " +
           std::to_string(s.vertices) + " | " + std::to_string(s.edges) +
           " | " + std::to_string(s.bytes) + " |\n";
  }
  return out;
}

}  // namespace maze::serve
