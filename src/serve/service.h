// maze::serve::Service — long-lived, in-process concurrent query service
// (DESIGN.md §4e).
//
// The paper benchmarks one process running one algorithm once; the serving
// layer is the "heavy concurrent traffic" story on top of the same engines.
// A Service owns:
//
//   admission  — a bounded FIFO queue with backpressure: Submit() never
//                blocks; when the queue is at its configured depth, the
//                request is rejected immediately with kUnavailable, which is
//                the contract a closed-loop client needs to shed load.
//                Per-request deadlines bound queue wait: a flight whose every
//                joiner's deadline has passed is answered kDeadlineExceeded
//                instead of executed.
//   dedup      — identical in-flight requests (same canonical execution key)
//                collapse onto one execution; joiners wait on the same flight
//                and receive the same shared immutable result.
//   cache      — completed results are published to an LRU byte-budget cache
//                keyed by (snapshot epoch, algo, engine, canonical params),
//                so repeats after completion are served without executing.
//   schedule   — admitted flights are executed by dispatcher threads; the
//                engine work itself fans out on the PR 2 task scheduler
//                (ThreadPool::Default()), which supports any number of
//                concurrent parallel regions, so several requests really do
//                compute at once on one shared pool.
//
// Point lookups ("PageRank of vertex v") and top-k queries share the full
// run's execution key: they ride the same dedup/cache machinery and only
// differ in response extraction.
//
// Per-request observability: every execution is wrapped in an obs span and
// the admit/reject/dedup/hit counters and latency histograms are mirrored
// into the process-wide obs registry under "serve.*"; Report() renders the
// service-local stats as JSON or markdown.
#ifndef MAZE_SERVE_SERVICE_H_
#define MAZE_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/types.h"
#include "obs/counters.h"
#include "serve/bill.h"
#include "serve/cache.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace maze::serve {

enum class QueryKind {
  kRun,    // Full algorithm run; payload is the canonical full answer.
  kPoint,  // One vertex's value from the underlying run.
  kTopK,   // The k highest-valued vertices from the underlying run.
};

// One client request. Unused parameter fields are ignored (and excluded from
// the canonical key) for algorithms that do not consume them.
struct Request {
  QueryKind kind = QueryKind::kRun;
  std::string snapshot;            // SnapshotRegistry name.
  std::string algo = "pagerank";   // pagerank|bfs|cc|triangles.
  std::string engine = "native";   // Any bench::EngineName.
  int ranks = 1;                   // Simulated cluster width.
  int iterations = 10;             // PageRank.
  VertexId source = 0;             // BFS source.
  VertexId vertex = 0;             // kPoint target.
  int k = 10;                      // kTopK size.
  // Admission budget in wall seconds from Submit(); 0 = no deadline. A flight
  // is expired (kDeadlineExceeded) only when every joined request's deadline
  // has passed before a dispatcher picks it up.
  double deadline_seconds = 0;
  // Fault plan for the underlying run (rt::fault::ParseFaultSpec grammar,
  // e.g. "seed=1,straggle=0x64"); empty = the process default (MAZE_FAULTS).
  // Part of the execution key: a faulted run never shares a cached clean
  // result. Engine payloads stay byte-identical under faults (the PR 4
  // differential guarantee); only modeled time changes, which is exactly what
  // the SLO-watchdog spike injection in bench_telemetry leans on.
  std::string faults;
};

struct Response {
  Status status = Status::OK();
  std::string payload;     // Canonical answer bytes; empty on error.
  std::string summary;     // One-line human summary.
  uint64_t epoch = 0;      // Snapshot epoch that produced the answer.
  bool cache_hit = false;  // Served from the completed-result cache.
  bool deduped = false;    // Joined another request's in-flight execution.
  double queue_seconds = 0;    // Submit -> execution start (0 for cache hits).
  double latency_seconds = 0;  // Submit -> response, wall clock.
  double modeled_seconds = 0;  // Simulated seconds of the underlying run.
  // Unique per Submit() (1-based, assigned at admission); recorded as an
  // exemplar on the serve.* histograms and tagged onto the execution's trace
  // span, so a latency outlier links back to its Perfetto slice.
  uint64_t request_id = 0;
  // Itemized resource bill: this request's marginal share of its execution
  // plus the full flight cost for context (bill.h amortization rules). Set on
  // every OK response — fresh, dedup-joined, or cache-hit — null on errors.
  std::shared_ptr<const QueryBill> bill;
};

// Monotonic service counters. After Drain(), the request-accounting identity
//   submitted == completed + failed + expired + rejected + invalid
// holds, as does
//   submitted == admitted_requests + dedup_joined + cache_hits
//                + rejected + invalid.
struct ServiceStats {
  uint64_t submitted = 0;      // Submit() calls.
  uint64_t rejected = 0;       // Backpressure: queue was at its bound.
  uint64_t shed = 0;           // Of rejected: due to SLO degradation, i.e.
                               // the full queue would have admitted them.
  uint64_t invalid = 0;        // Failed validation before admission.
  uint64_t cache_hits = 0;     // Served from the result cache.
  uint64_t dedup_joined = 0;   // Joined an in-flight identical execution.
  uint64_t admitted = 0;       // New flights enqueued.
  uint64_t executed = 0;       // Engine executions completed OK.
  uint64_t exec_failed = 0;    // Engine executions that returned an error.
  uint64_t completed = 0;      // Requests answered OK (all paths).
  uint64_t failed = 0;         // Requests answered with an execution error.
  uint64_t expired = 0;        // Requests answered kDeadlineExceeded.
  uint64_t queue_depth = 0;    // Current queue occupancy.
  uint64_t queue_peak = 0;     // High watermark of queue occupancy.
  uint64_t inflight = 0;       // Flights currently executing.
  ResultCache::Stats cache;
};

struct ServiceOptions {
  int workers = 2;               // Dispatcher threads.
  size_t queue_depth = 64;       // Admission bound (flights, not joiners).
  size_t cache_bytes = 64 << 20; // Result-cache byte budget.
  size_t bill_ring = 256;        // Flight-recorder capacity (recent bills).
};

// Rendered service-level statistics: counters, latency distributions, and the
// loaded snapshots. Produced by Service::Report().
struct ServiceReport {
  ServiceOptions options;
  ServiceStats stats;
  int degradation = 0;                // SLO degradation level at report time.
  obs::HistogramSnapshot latency;     // Request latency, microseconds.
  obs::HistogramSnapshot queue_wait;  // Admission-queue wait, microseconds.
  obs::HistogramSnapshot modeled;     // Modeled run time, microseconds.
  struct SnapshotRow {
    std::string name;
    uint64_t epoch = 0;
    uint64_t vertices = 0;
    uint64_t edges = 0;      // Directed-view edges.
    uint64_t bytes = 0;      // All prebuilt views.
  };
  std::vector<SnapshotRow> snapshots;
  // Both sides of the conservation ledger (flights executed vs. requests
  // billed) and the most expensive recent bills by canonical cost.
  BillLedger bills;
  std::vector<QueryBill> top_bills;

  std::string ToJson() const;
  std::string ToMarkdown() const;
};

class Service {
 public:
  explicit Service(const ServiceOptions& options = {});
  // Resumes if paused, drains outstanding work, and stops the dispatchers.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Graph generations this service executes against. Install/bump freely
  // while requests are in flight: admitted flights pin their snapshot.
  SnapshotRegistry& registry() { return registry_; }

  // Non-blocking admission. The returned future is fulfilled immediately for
  // cache hits and rejections, and by a dispatcher otherwise.
  std::shared_future<Response> Submit(const Request& request);

  // Submit and wait (closed-loop client helper).
  Response Call(const Request& request);

  // Holds dispatchers between flights: queued work accumulates while paused.
  // Makes admission-control behavior deterministic for tests — with dispatch
  // paused, the (queue_depth + 1)-th distinct submission must be rejected.
  void Pause();
  void Resume();

  // Blocks until the queue is empty and no flight is executing. Resume()
  // first if paused, or this never returns.
  void Drain();

  ServiceStats Stats() const;
  ServiceReport Report() const;

  // Per-request attribution surfaces (bill.h). Bills() returns both ledger
  // sides; after Drain(), BillsConserve(l.flights, l.billed) must hold —
  // bench_serve and the serve tests pin that. The recorder accessors expose
  // the flight-recorder ring: RecentBills (oldest first), TopBills (canonical
  // cost order), and the seq-window protocol the SLO watchdog uses to name
  // the bills that landed inside a tripping scrape window.
  BillLedger Bills() const;
  std::vector<QueryBill> RecentBills() const;
  std::vector<QueryBill> TopBills(size_t k) const;
  uint64_t bill_seq() const;
  std::vector<QueryBill> BillsSince(uint64_t seq) const;

  // Graceful degradation under SLO pressure (normally driven by SloWatchdog,
  // exposed for tests and the script driver's `degrade` command):
  //   0  normal admission.
  //   1  effective queue depth halves — new executions shed earlier, cache
  //      hits and dedup joins unaffected.
  //   2  every new execution is shed (kUnavailable); only cache hits and
  //      joins of already-admitted flights are served. This is "shed
  //      cache-miss-heavy queries first": misses are exactly the requests
  //      that would consume engine time.
  // Rejections caused by a level > 0 (that a full-depth queue would have
  // admitted) are additionally counted in ServiceStats::shed.
  void SetDegradation(int level);
  int degradation() const {
    return degradation_.load(std::memory_order_relaxed);
  }

  // SLO over-target accounting: when target_us > 0, every OK non-cache-hit
  // response bumps serve.slo_requests and, if its *modeled* run time exceeds
  // target_us, serve.slo_over_target. Cache hits are excluded — they reuse a
  // paid execution, and counting their inherited modeled time would keep the
  // burn rate pinned high under full shedding (cache-only traffic), blocking
  // recovery. Modeled time is schedule-invariant (PR 2), so the
  // watchdog's window arithmetic over these counters is deterministic where
  // wall-clock latency would not be. 0 disables the over-target test.
  void SetSloTargetUs(uint64_t target_us) {
    slo_target_us_.store(target_us, std::memory_order_relaxed);
  }
  uint64_t slo_target_us() const {
    return slo_target_us_.load(std::memory_order_relaxed);
  }

  // The canonical execution key for `request` against `snap`: snapshot name +
  // epoch, algo, engine, ranks, and exactly the parameters the algorithm
  // consumes. Query kind is deliberately excluded — point/top-k queries share
  // the full run's execution. Also validates the request (algo, engine,
  // vertex bounds); exposed for tests and the load-generator bench.
  static StatusOr<std::string> ExecKey(const Request& request,
                                       const Snapshot& snap);

 private:
  struct Flight;
  using FlightPtr = std::shared_ptr<Flight>;

  void WorkerMain();
  // Runs the flight's engine execution and fulfills every joiner.
  void ExecuteFlight(const FlightPtr& flight);
  // Records latency/modeled histograms, exemplars, and SLO counters for one
  // answered request (not called for rejected/invalid submissions).
  void ObserveResponse(const Response& r);
  // Feeds one bill to the billed ledger side, the flight recorder, and the
  // bill.* metrics (caller holds no locks).
  void RecordBill(const std::shared_ptr<const QueryBill>& bill);

  const ServiceOptions options_;
  SnapshotRegistry registry_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Dispatchers: queue non-empty/resumed.
  std::condition_variable drain_cv_;  // Drain(): queue empty and idle.
  std::deque<FlightPtr> queue_;
  std::unordered_map<std::string, FlightPtr> inflight_;  // key -> flight.
  bool paused_ = false;
  bool stop_ = false;
  int active_ = 0;  // Flights currently executing.
  uint64_t queue_peak_ = 0;

  // Service-local accounting (ServiceStats); mirrored into the process-wide
  // obs registry as serve.* counters for traces and --metrics dumps.
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  BillLedger ledger_;  // Guarded by stats_mu_.
  obs::Histogram latency_us_;
  obs::Histogram queue_wait_us_;
  obs::Histogram modeled_us_;

  FlightRecorder recorder_;  // Internally locked.

  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<int> degradation_{0};
  std::atomic<uint64_t> slo_target_us_{0};

  std::vector<std::thread> workers_;
};

}  // namespace maze::serve

#endif  // MAZE_SERVE_SERVICE_H_
