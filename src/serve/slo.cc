#include "serve/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace maze::serve {
namespace {

// %.6g of a double derived from exact integers is itself deterministic.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

SloWatchdog::SloWatchdog(const SloOptions& options,
                         obs::TelemetryRegistry* telemetry, Service* service,
                         std::ostream* log)
    : options_(options), telemetry_(telemetry), service_(service), log_(log) {
  service_->SetSloTargetUs(
      static_cast<uint64_t>(options_.p99_target_ms * 1000.0));
  window_start_seq_ = service_->bill_seq();
  hook_token_ =
      telemetry_->AddScrapeHook([this](uint64_t scrape) { OnScrape(scrape); });
}

SloWatchdog::~SloWatchdog() {
  telemetry_->RemoveScrapeHook(hook_token_);
  service_->SetSloTargetUs(0);
  service_->SetDegradation(0);
}

int SloWatchdog::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

uint64_t SloWatchdog::windows_evaluated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_;
}

std::vector<std::string> SloWatchdog::EventLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void SloWatchdog::Emit(const std::string& line) {
  events_.push_back(line);
  if (log_ != nullptr) *log_ << line << "\n";
}

void SloWatchdog::OnScrape(uint64_t scrape) {
  auto total = telemetry_->LatestCounter("serve.slo_requests");
  auto over_w = telemetry_->LatestCounter("serve.slo_over_target");
  const uint64_t requests = total ? total->delta : 0;
  const uint64_t over = over_w ? over_w->delta : 0;

  std::lock_guard<std::mutex> lock(mu_);
  ++windows_;

  const bool idle = requests < options_.min_window_requests;
  const double burn =
      idle ? 0.0
           : (static_cast<double>(over) / static_cast<double>(requests)) /
                 options_.error_budget;
  // Nearest-rank p99 exceeds the target iff the number of over-target values
  // is larger than the count of ranks above the p99 rank.
  const uint64_t allowed =
      requests == 0
          ? 0
          : requests - static_cast<uint64_t>(
                           std::ceil(0.99 * static_cast<double>(requests)));
  const bool p99_over = !idle && over > allowed;

  const int old_level = level_;
  if (!idle && burn >= options_.burn_threshold) {
    healthy_streak_ = 0;
    level_ = burn >= 2.0 * options_.burn_threshold ? 2
                                                   : std::min(2, level_ + 1);
  } else if (idle || burn < options_.burn_threshold / 2.0) {
    ++healthy_streak_;
    if (level_ > 0 && healthy_streak_ >= options_.recover_windows) {
      --level_;
      healthy_streak_ = 0;
    }
  } else {
    healthy_streak_ = 0;  // Hysteresis band: hold the current level.
  }

  auto fields = [&](const std::string& event) {
    return "{\"event\":\"" + event + "\",\"scrape\":" + std::to_string(scrape) +
           ",\"level\":" + std::to_string(level_) +
           ",\"requests\":" + std::to_string(requests) +
           ",\"over_target\":" + std::to_string(over) +
           ",\"burn\":" + FormatDouble(burn) +
           ",\"p99_over_target\":" + (p99_over ? "true" : "false") +
           ",\"target_ms\":" + FormatDouble(options_.p99_target_ms) + "}";
  };
  if (level_ != old_level) {
    service_->SetDegradation(level_);
    Emit(fields(level_ > old_level ? "slo_degrade" : "slo_recover"));
    if (level_ > old_level) {
      DumpForensics(scrape, level_, old_level, window_start_seq_);
    }
  }
  if (options_.log_windows) Emit(fields("slo_window"));
  // Close this evaluation window: bills recorded from here on belong to the
  // next scrape's window.
  window_start_seq_ = service_->bill_seq();
}

void SloWatchdog::DumpForensics(uint64_t scrape, int level, int prev_level,
                                uint64_t window_start) {
  if (options_.dump_path.empty() && options_.perfetto_path.empty()) return;
  std::vector<QueryBill> ring = service_->RecentBills();
  if (!options_.dump_path.empty()) {
    SloTripInfo trip;
    trip.scrape = scrape;
    trip.level = level;
    trip.prev_level = prev_level;
    std::string dump = ForensicDumpJson(trip, service_->BillsSince(window_start),
                                        ring, options_.dump_top_k);
    std::FILE* f = std::fopen(options_.dump_path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
    } else {
      Emit("{\"event\":\"slo_dump_error\",\"path\":\"" + options_.dump_path +
           "\"}");
    }
  }
  if (!options_.perfetto_path.empty()) {
    Status s = WriteFlightsTrace(options_.perfetto_path, ring);
    if (!s.ok()) {
      Emit("{\"event\":\"slo_dump_error\",\"path\":\"" +
           options_.perfetto_path + "\"}");
    }
  }
}

}  // namespace maze::serve
