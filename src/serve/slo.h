// SLO watchdog: error-budget burn over the telemetry rings, with hysteretic
// graceful degradation through the admission queue (DESIGN.md §4g).
//
// Each telemetry scrape closes one evaluation window. The watchdog judges the
// window on the serve.slo_requests / serve.slo_over_target counter deltas
// (Service::SetSloTargetUs): `over` counts OK non-cache-hit responses whose
// *modeled* run time exceeded the p99 target (cache hits reuse paid work and
// are excluded from SLO accounting). Judging modeled time through exact counters —
// rather than bucketed wall-clock percentiles — keeps every number the
// watchdog emits a pure function of the request sequence, so the bench can
// byte-compare the structured log across serial and rank-parallel schedules.
//
// Window math (all exact integer arithmetic):
//   burn            = (over / requests) / error_budget
//   p99_over_target = over > requests - ceil(0.99 * requests)
//     (the nearest-rank p99 exceeds the target iff more than 1% of the
//      window's requests did)
// State machine, evaluated per window:
//   burn >= burn_threshold          -> escalate one level (jump straight to 2
//                                      when burn >= 2x threshold)
//   burn <  burn_threshold / 2      -> healthy; recover_windows consecutive
//                                      healthy windows step one level down
//   otherwise                       -> hold (hysteresis band)
// Windows with fewer than min_window_requests requests are idle and count as
// healthy: a fully-shed service must be able to recover.
//
// Events are one-line JSON objects ("slo_degrade", "slo_recover", and — when
// log_windows is set — "slo_window") appended to the log stream and retained
// in EventLines() for tests.
//
// SLO-trip forensics: when dump_path is set, every escalation writes a
// deterministic JSON artifact (bill.h ForensicDumpJson) naming the bills that
// landed inside the tripping scrape window plus the flight-recorder ring and
// the top-cost culprits; perfetto_path additionally writes a Chrome-trace
// track of the recorder's recent flights. The window is delimited by the
// recorder sequence captured at the end of the previous scrape, so "the
// tripping window's bills" is exact, not time-based.
#ifndef MAZE_SERVE_SLO_H_
#define MAZE_SERVE_SLO_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "serve/service.h"

namespace maze::serve {

struct SloOptions {
  double p99_target_ms = 50.0;   // Modeled-time p99 target.
  double burn_threshold = 2.0;   // Degrade when burn reaches this.
  double error_budget = 0.01;    // Allowed over-target fraction (1%).
  int recover_windows = 2;       // Healthy windows per level step-down.
  uint64_t min_window_requests = 1;  // Below this a window is idle.
  bool log_windows = false;      // Emit slo_window lines for every scrape.
  // Forensics on escalation (empty = disabled). dump_path receives the
  // deterministic bills JSON; perfetto_path the wall-clock flights trace.
  std::string dump_path;
  std::string perfetto_path;
  size_t dump_top_k = 5;         // Culprits named in the dump's "top" array.
};

class SloWatchdog {
 public:
  // Arms the service (SetSloTargetUs) and hooks `telemetry`'s scrapes. The
  // watchdog must be destroyed before `telemetry` and `service`; destruction
  // unhooks, disarms the SLO target, and resets degradation to 0.
  SloWatchdog(const SloOptions& options, obs::TelemetryRegistry* telemetry,
              Service* service, std::ostream* log);
  ~SloWatchdog();

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  int level() const;
  uint64_t windows_evaluated() const;
  std::vector<std::string> EventLines() const;

 private:
  void OnScrape(uint64_t scrape);
  void Emit(const std::string& line);

  const SloOptions options_;
  obs::TelemetryRegistry* const telemetry_;
  Service* const service_;
  std::ostream* const log_;
  size_t hook_token_ = 0;

  // Writes the forensic artifacts for an escalation to `level` at `scrape`
  // (called with mu_ held; window_start is the recorder seq that opened the
  // tripping window).
  void DumpForensics(uint64_t scrape, int level, int prev_level,
                     uint64_t window_start);

  mutable std::mutex mu_;
  int level_ = 0;
  int healthy_streak_ = 0;
  uint64_t windows_ = 0;
  uint64_t window_start_seq_ = 0;  // Recorder seq at the last scrape's end.
  std::vector<std::string> events_;
};

}  // namespace maze::serve

#endif  // MAZE_SERVE_SLO_H_
