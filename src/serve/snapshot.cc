#include "serve/snapshot.h"

#include <utility>

namespace maze::serve {

size_t Snapshot::MemoryBytes() const {
  return (directed.edges.capacity() + symmetric.edges.capacity() +
          oriented.edges.capacity()) *
         sizeof(Edge);
}

SnapshotPtr SnapshotRegistry::Install(const std::string& name, EdgeList edges) {
  auto snap = std::make_shared<Snapshot>();
  snap->name = name;
  snap->directed = std::move(edges);
  snap->directed.Deduplicate();
  snap->symmetric = snap->directed;
  snap->symmetric.Symmetrize();
  snap->oriented = snap->directed;
  snap->oriented.OrientBySmallerId();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(name);
  snap->epoch = it == snapshots_.end() ? 1 : it->second->epoch + 1;
  snapshots_[name] = snap;
  return snap;
}

StatusOr<SnapshotPtr> SnapshotRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("no snapshot named '" + name + "' is loaded");
  }
  return it->second;
}

std::vector<SnapshotPtr> SnapshotRegistry::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotPtr> all;
  all.reserve(snapshots_.size());
  for (const auto& [name, snap] : snapshots_) all.push_back(snap);
  return all;
}

}  // namespace maze::serve
