// Snapshot registry: the serving layer's shared, immutable view of loaded
// graphs (DESIGN.md §4e).
//
// A long-lived service loads each graph once and lets every concurrent request
// read the same in-memory copy; updates install a whole new generation
// ("epoch") instead of mutating in place. Readers hold shared_ptrs, so a
// request admitted against epoch N keeps that snapshot alive even after epoch
// N+1 is installed — there are no read locks on the query path and no
// torn reads by construction. Result-cache keys embed the epoch, so bumping a
// graph implicitly invalidates every cached result for it.
#ifndef MAZE_SERVE_SNAPSHOT_H_
#define MAZE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/edge_list.h"
#include "util/status.h"

namespace maze::serve {

// One immutable generation of a named graph. The three edge-list views every
// algorithm family needs are prebuilt once at install time (matching the
// per-algorithm preprocessing the CLI `run` command applies), so admitted
// requests share them instead of re-deriving per query.
struct Snapshot {
  std::string name;
  uint64_t epoch = 0;
  EdgeList directed;   // Deduplicated, as loaded (PageRank).
  EdgeList symmetric;  // Symmetrized (BFS, connected components).
  EdgeList oriented;   // src < dst (triangle counting).

  // Resident bytes of the three views (service memory reporting).
  size_t MemoryBytes() const;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

// Name -> newest snapshot. Install() is the only writer; Get() hands out
// shared ownership of the current generation.
class SnapshotRegistry {
 public:
  // Installs `edges` (taken as the deduplicated directed list) as the newest
  // generation of `name`: epoch 1 for a new name, previous epoch + 1 on a
  // bump. Returns the installed snapshot.
  SnapshotPtr Install(const std::string& name, EdgeList edges);

  // Current generation of `name`; kNotFound when never installed.
  StatusOr<SnapshotPtr> Get(const std::string& name) const;

  // Current generations of every registered name, name-sorted.
  std::vector<SnapshotPtr> All() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SnapshotPtr> snapshots_;
};

}  // namespace maze::serve

#endif  // MAZE_SERVE_SNAPSHOT_H_
