#include "task/algorithms.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "native/cc.h"
#include "native/cf.h"
#include "obs/obs.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "task/priority_worklist.h"
#include "task/worklist.h"
#include "util/check.h"
#include "util/timer.h"

namespace maze::task {
namespace {

// Galois work items run close to native speed with small scheduler overhead;
// its engine keeps all cores busy.
constexpr double kIntraRankUtilization = 0.9;

}  // namespace

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config) {
  MAZE_CHECK_EQ(config.num_ranks, 1);
  MAZE_CHECK(g.has_in());
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  rt::SimClock clock(1, config.comm, config.trace, config.faults);

  std::vector<double> pr(n, 1.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> contrib(n, 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    rt::RankTimer t;
    // Each work item updates one vertex's pagerank from its in-neighbors
    // (the Galois program of §3.1: "each work item ... is a vertex program").
    DoAll(n, [&](uint64_t v) {
      EdgeId deg = g.OutDegree(static_cast<VertexId>(v));
      contrib[v] = deg > 0 ? pr[v] / static_cast<double>(deg) : 0.0;
    });
    DoAll(n, [&](uint64_t v) {
      double sum = 0;
      for (VertexId u : g.InNeighbors(static_cast<VertexId>(v))) {
        sum += contrib[u];
      }
      next[v] = options.jump + (1.0 - options.jump) * sum;
    });
    std::swap(pr, next);
    double seconds = t.Seconds();
    clock.RecordCompute(0, seconds);
    obs::EmitSpanEndingNow("pagerank_doall", "taskflow", 0, iter, seconds);
    clock.EndStep();
  }

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * 3 * sizeof(double));
  rt::PageRankResult result;
  result.ranks = std::move(pr);
  result.iterations = options.iterations;
  result.metrics = clock.Finish(kIntraRankUtilization);
  return result;
}

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config) {
  MAZE_CHECK_EQ(config.num_ranks, 1);
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  MAZE_CHECK(options.source < n);
  rt::SimClock clock(1, config.comm, config.trace, config.faults);

  // Algorithm 3: per-level worklists maintained by the BSP executor.
  std::vector<std::atomic<uint32_t>> level(n);
  for (auto& l : level) l.store(kInfiniteDistance, std::memory_order_relaxed);
  level[options.source].store(0, std::memory_order_relaxed);

  Worklist<VertexId> wl({options.source});
  rt::RankTimer t;
  int levels = BulkSyncExecute<VertexId>(
      &wl, [&](const VertexId& u, std::vector<VertexId>* pushed) {
        uint32_t next_level = level[u].load(std::memory_order_relaxed) + 1;
        for (VertexId dst : g.OutNeighbors(u)) {
          uint32_t inf = kInfiniteDistance;
          if (level[dst].compare_exchange_strong(inf, next_level,
                                                 std::memory_order_relaxed)) {
            pushed->push_back(dst);
          }
        }
      });
  double seconds = t.Seconds();
  clock.RecordCompute(0, seconds);
  obs::EmitSpanEndingNow("bfs_worklist", "taskflow", 0, levels, seconds);
  clock.EndStep();

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(uint32_t));
  rt::BfsResult result;
  result.distance.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.distance[v] = level[v].load(std::memory_order_relaxed);
  }
  result.levels = levels;
  result.metrics = clock.Finish(kIntraRankUtilization);
  return result;
}

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config) {
  MAZE_CHECK_EQ(config.num_ranks, 1);
  MAZE_CHECK(g.has_out());
  rt::SimClock clock(1, config.comm, config.trace, config.faults);

  // Algorithm 4: sorted adjacency lists allow linear-time set-intersections.
  // (No bitvector trick — that is why Galois lands ~2.5x off native on this
  // algorithm while being ~1.1x elsewhere.)
  std::atomic<uint64_t> triangles{0};
  rt::RankTimer t;
  DoAll(g.num_vertices(), [&](uint64_t un) {
    VertexId u = static_cast<VertexId>(un);
    const auto s1 = g.OutNeighbors(u);
    uint64_t local = 0;
    for (VertexId m : s1) {
      const auto s2 = g.OutNeighbors(m);
      size_t i = 0;
      size_t j = 0;
      while (i < s1.size() && j < s2.size()) {
        if (s1[i] < s2[j]) {
          ++i;
        } else if (s1[i] > s2[j]) {
          ++j;
        } else {
          ++local;
          ++i;
          ++j;
        }
      }
    }
    if (local > 0) triangles.fetch_add(local, std::memory_order_relaxed);
  });
  double seconds = t.Seconds();
  clock.RecordCompute(0, seconds);
  obs::EmitSpanEndingNow("intersect_doall", "taskflow", 0, /*step=*/0, seconds);
  clock.EndStep();

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  rt::TriangleCountResult result;
  result.triangles = triangles.load();
  result.metrics = clock.Finish(kIntraRankUtilization);
  return result;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config) {
  MAZE_CHECK_EQ(config.num_ranks, 1);
  // Galois expresses the same SGD (and GD) as native: flexible partitioning plus
  // single-node globally consistent state (§3.2). Work items are per-block SGD
  // updates; delegating to the native kernel models the ~1.1x gap via the
  // scheduler utilization factor only.
  rt::CfResult result = native::CollaborativeFiltering(
      g, options, config, native::NativeOptions::AllOn());
  // Re-scale the utilization to taskflow's engine figure.
  result.metrics.cpu_utilization *= kIntraRankUtilization / 0.85;
  return result;
}

rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config) {
  MAZE_CHECK_EQ(config.num_ranks, 1);
  MAZE_CHECK(g.has_out());
  const VertexId n = g.num_vertices();
  rt::SimClock clock(1, config.comm, config.trace, config.faults);

  std::vector<std::atomic<VertexId>> label(n);
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v].store(v, std::memory_order_relaxed);
    all[v] = v;
  }

  // Each work item relaxes one vertex\'s neighbors; improved neighbors are
  // re-queued for the next level (autonomous-style label propagation).
  Worklist<VertexId> wl(std::move(all));
  rt::RankTimer t;
  int levels = BulkSyncExecute<VertexId>(
      &wl, [&](const VertexId& u, std::vector<VertexId>* pushed) {
        VertexId lu = label[u].load(std::memory_order_relaxed);
        for (VertexId v : g.OutNeighbors(u)) {
          VertexId lv = label[v].load(std::memory_order_relaxed);
          while (lu < lv) {
            if (label[v].compare_exchange_weak(lv, lu,
                                               std::memory_order_relaxed)) {
              pushed->push_back(v);
              break;
            }
          }
        }
      });
  double seconds = t.Seconds();
  clock.RecordCompute(0, seconds);
  obs::EmitSpanEndingNow("labelprop_worklist", "taskflow", 0, levels, seconds);
  clock.EndStep();
  (void)options;

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(VertexId));
  rt::ConnectedComponentsResult result;
  result.label.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.label[v] = label[v].load(std::memory_order_relaxed);
  }
  result.num_components = native::CountComponents(result.label);
  result.iterations = levels;
  result.metrics = clock.Finish(0.9);
  return result;
}

rt::SsspResult Sssp(const WeightedGraph& g, const rt::SsspOptions& options,
                    rt::EngineConfig config) {
  MAZE_CHECK_EQ(config.num_ranks, 1);
  const VertexId n = g.num_vertices();
  MAZE_CHECK(options.source < n);
  rt::SimClock clock(1, config.comm, config.trace, config.faults);

  // Delta-stepping: bucket b holds vertices with tentative distance in
  // [b*delta, (b+1)*delta); buckets drain in priority order and relaxations
  // push into the bucket matching the new tentative distance.
  float delta = options.delta;
  if (delta <= 0) {
    double total_weight = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (const auto& arc : g.OutArcs(u)) total_weight += arc.weight;
    }
    delta = g.num_edges() > 0
                ? static_cast<float>(total_weight /
                                     static_cast<double>(g.num_edges()))
                : 1.0f;
  }

  std::vector<std::atomic<float>> dist(n);
  for (auto& d : dist) {
    d.store(rt::SsspResult::kUnreachable, std::memory_order_relaxed);
  }
  dist[options.source].store(0, std::memory_order_relaxed);

  PriorityWorklist<VertexId> wl;
  wl.Push(0, options.source);
  rt::RankTimer t;
  int drains = PriorityExecute<VertexId>(
      &wl, [&](const VertexId& u,
               std::vector<std::pair<uint32_t, VertexId>>* pushed) {
        float du = dist[u].load(std::memory_order_relaxed);
        for (const auto& arc : g.OutArcs(u)) {
          float candidate = du + arc.weight;
          float cur = dist[arc.dst].load(std::memory_order_relaxed);
          while (candidate < cur) {
            if (dist[arc.dst].compare_exchange_weak(
                    cur, candidate, std::memory_order_relaxed)) {
              pushed->emplace_back(static_cast<uint32_t>(candidate / delta),
                                   arc.dst);
              break;
            }
          }
        }
      });
  double seconds = t.Seconds();
  clock.RecordCompute(0, seconds);
  obs::EmitSpanEndingNow("delta_step_drain", "taskflow", 0, /*step=*/0, seconds);
  clock.EndStep();

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * sizeof(float));
  rt::SsspResult result;
  result.distance.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.distance[v] = dist[v].load(std::memory_order_relaxed);
  }
  result.rounds = drains;
  result.metrics = clock.Finish(0.9);
  return result;
}

}  // namespace maze::task
