// The four study algorithms as taskflow (Galois-like) programs: Algorithm 3
// (BFS over the bulk-synchronous executor), Algorithm 4 (triangle counting via
// sorted set-intersections), vertex work-items for PageRank, and — uniquely among
// the framework engines — true SGD for collaborative filtering, since Galois's
// flexible partitioning and shared-memory execution can express it (§3.2).
//
// Galois is single node: these entry points CHECK config.num_ranks == 1.
#ifndef MAZE_TASK_ALGORITHMS_H_
#define MAZE_TASK_ALGORITHMS_H_

#include "core/bipartite.h"
#include "core/graph.h"
#include "core/weighted_graph.h"
#include "rt/algo.h"

namespace maze::task {

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config);

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config);

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions& options,
                                      rt::EngineConfig config);

// Supports both kSgd (native-equivalent diagonal blocking) and kGd.
rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config);

// Connected components (extension algorithm): label-propagation work items
// over the bulk-synchronous executor.
rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config);

// Single-source shortest paths (extension algorithm) via delta-stepping over
// the priority worklist — the "application-defined priorities" scheduling mode
// of the task-based model, which none of the paper's four algorithms needs.
rt::SsspResult Sssp(const WeightedGraph& g, const rt::SsspOptions& options,
                    rt::EngineConfig config);

}  // namespace maze::task

#endif  // MAZE_TASK_ALGORITHMS_H_
