// Bucketed priority worklist: the "application-defined priorities" half of the
// Galois scheduling story (Section 3). Items carry an integer priority; the
// executor drains buckets in ascending order, and work pushed at a priority at
// or below the current bucket is processed within the same drain (the
// delta-stepping pattern).
#ifndef MAZE_TASK_PRIORITY_WORKLIST_H_
#define MAZE_TASK_PRIORITY_WORKLIST_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace maze::task {

// Thread-safe push; single-threaded bucket advancement (the executor drives).
template <typename T>
class PriorityWorklist {
 public:
  void Push(uint32_t priority, const T& item) {
    std::lock_guard<std::mutex> lock(mu_);
    PushLocked(priority, item);
  }

  void PushBatch(const std::vector<std::pair<uint32_t, T>>& items) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [priority, item] : items) PushLocked(priority, item);
  }

  // Index of the first non-empty bucket at or after `from`, or -1.
  int64_t NextBucket(uint64_t from) const {
    for (uint64_t b = from; b < buckets_.size(); ++b) {
      if (!buckets_[b].empty()) return static_cast<int64_t>(b);
    }
    return -1;
  }

  // Takes (moves out) the contents of bucket `b`.
  std::vector<T> Take(uint64_t b) {
    std::lock_guard<std::mutex> lock(mu_);
    if (b >= buckets_.size()) return {};
    std::vector<T> out = std::move(buckets_[b]);
    buckets_[b].clear();
    return out;
  }

  size_t TotalPending() const {
    size_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.size();
    return total;
  }

 private:
  void PushLocked(uint32_t priority, const T& item) {
    if (priority >= buckets_.size()) buckets_.resize(priority + 1);
    buckets_[priority].push_back(item);
  }

  mutable std::mutex mu_;
  std::vector<std::vector<T>> buckets_;
};

// Drains the worklist bucket by bucket in priority order, re-draining a bucket
// when the body pushes more work into it (items pushed below the current
// bucket are also honored by re-scanning from zero on advancement). The body
// receives the item and a (priority, item) push sink. Returns the number of
// bucket drains executed.
template <typename T>
int PriorityExecute(
    PriorityWorklist<T>* wl,
    const std::function<void(const T&,
                             std::vector<std::pair<uint32_t, T>>*)>& body) {
  int drains = 0;
  uint64_t bucket = 0;
  while (true) {
    int64_t next = wl->NextBucket(0);
    if (next < 0) break;
    bucket = static_cast<uint64_t>(next);
    std::vector<T> items = wl->Take(bucket);
    if (items.empty()) continue;
    ++drains;
    ParallelFor(items.size(), 32, [&](uint64_t lo, uint64_t hi) {
      std::vector<std::pair<uint32_t, T>> pushed;
      for (uint64_t i = lo; i < hi; ++i) body(items[i], &pushed);
      if (!pushed.empty()) wl->PushBatch(pushed);
    });
  }
  return drains;
}

}  // namespace maze::task

#endif  // MAZE_TASK_PRIORITY_WORKLIST_H_
