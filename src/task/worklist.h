// taskflow: the Galois-like task-based engine (Section 3, Table 2).
//
// Galois is "a work-item based parallelization framework ... with coordinated and
// autonomous scheduling" and is single-node only. This module provides the two
// schedulers the paper's Galois programs use:
//   - BulkSyncExecutor: the "bulk-synchronous parallel executor ... which
//     maintains the work lists for each level behind the scenes" (Algorithm 3,
//     used by BFS);
//   - DoAll: coordinated parallel iteration over a fixed item range (PageRank,
//     triangle counting, and the per-block SGD work items).
//
// Work items may push follow-up items into the next level's worklist from any
// thread.
#ifndef MAZE_TASK_WORKLIST_H_
#define MAZE_TASK_WORKLIST_H_

#include <functional>
#include <mutex>
#include <vector>

#include "util/thread_pool.h"

namespace maze::task {

// Thread-safe per-level worklist: items pushed during level i are processed in
// level i+1.
template <typename T>
class Worklist {
 public:
  explicit Worklist(std::vector<T> initial) : current_(std::move(initial)) {}

  bool Empty() const { return current_.empty(); }
  size_t CurrentSize() const { return current_.size(); }
  const std::vector<T>& Current() const { return current_; }

  // Pushes an item for the next level (thread-safe; chunk-buffered pushes via
  // PushBatch are cheaper).
  void Push(const T& item) {
    std::lock_guard<std::mutex> lock(mu_);
    next_.push_back(item);
  }

  void PushBatch(const std::vector<T>& items) {
    std::lock_guard<std::mutex> lock(mu_);
    next_.insert(next_.end(), items.begin(), items.end());
  }

  // Advances to the next level; returns false when it is empty.
  bool Advance() {
    current_ = std::move(next_);
    next_.clear();
    return !current_.empty();
  }

 private:
  std::vector<T> current_;
  std::vector<T> next_;
  std::mutex mu_;
};

// Coordinated parallel do-all over [0, n): Galois's basic loop operator.
inline void DoAll(uint64_t n, const std::function<void(uint64_t)>& fn) {
  ParallelFor(n, 64, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) fn(i);
  });
}

// Runs `body` over every item of every level until the worklist drains. The body
// receives the item and a batch-push sink for next-level items. Returns the
// number of levels executed.
template <typename T>
int BulkSyncExecute(Worklist<T>* wl,
                    const std::function<void(const T&, std::vector<T>*)>& body) {
  int levels = 0;
  while (!wl->Empty()) {
    ++levels;
    const std::vector<T>& items = wl->Current();
    ParallelFor(items.size(), 32, [&](uint64_t lo, uint64_t hi) {
      std::vector<T> pushed;
      for (uint64_t i = lo; i < hi; ++i) body(items[i], &pushed);
      if (!pushed.empty()) wl->PushBatch(pushed);
    });
    wl->Advance();
  }
  return levels;
}

}  // namespace maze::task

#endif  // MAZE_TASK_WORKLIST_H_
