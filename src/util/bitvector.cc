#include "util/bitvector.h"

#include <bit>

namespace maze {

size_t Bitvector::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t Bitvector::IntersectCount(const Bitvector& other) const {
  MAZE_CHECK_EQ(size_, other.size_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

void Bitvector::AppendSetBits(std::vector<uint32_t>* out) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out->push_back(static_cast<uint32_t>((w << 6) + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
}

}  // namespace maze
