// Bitvector: the data-structure optimization the paper credits with ~2x speedups in
// native BFS and Triangle Counting (Section 6.1.1). Provides O(1) membership tests
// over a dense id space with one bit per element, plus atomic set operations for
// concurrent frontier construction.
#ifndef MAZE_UTIL_BITVECTOR_H_
#define MAZE_UTIL_BITVECTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace maze {

// Fixed-capacity bit set over ids [0, size). Thread-safe for concurrent SetAtomic /
// Test; non-atomic mutators require external synchronization.
class Bitvector {
 public:
  Bitvector() = default;
  explicit Bitvector(size_t size) { Resize(size); }

  // Resizes to hold `size` bits, clearing all of them.
  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  size_t size() const { return size_; }

  // Number of bytes of backing storage (used for memory accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  bool Test(size_t i) const {
    MAZE_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(size_t i) {
    MAZE_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    MAZE_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  // Atomically sets bit i; returns true if this call changed it from 0 to 1.
  // This is the BFS "claim a vertex" primitive.
  bool TestAndSetAtomic(size_t i) {
    MAZE_DCHECK(i < size_);
    uint64_t mask = uint64_t{1} << (i & 63);
    auto* word = reinterpret_cast<std::atomic<uint64_t>*>(&words_[i >> 6]);
    uint64_t prev = word->fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  void SetAtomic(size_t i) { (void)TestAndSetAtomic(i); }

  // Zeroes every bit, keeping capacity.
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  // Population count over the whole vector.
  size_t Count() const;

  // Bitwise-AND population count with another vector of the same size: the core of
  // bitvector-based triangle counting (|N(u) AND N(v)|).
  size_t IntersectCount(const Bitvector& other) const;

  // Appends the indices of all set bits to `out` in increasing order.
  void AppendSetBits(std::vector<uint32_t>* out) const;

  const uint64_t* words() const { return words_.data(); }
  size_t word_count() const { return words_.size(); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace maze

#endif  // MAZE_UTIL_BITVECTOR_H_
