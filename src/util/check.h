// Invariant-checking macros in the RocksDB/Google spirit: fail fast and loudly on
// broken internal invariants instead of limping along with corrupt state.
//
// MAZE_CHECK*: always on, used for invariants whose cost is trivial next to the
// surrounding work. MAZE_DCHECK*: compiled out in release builds, used on hot paths.
#ifndef MAZE_UTIL_CHECK_H_
#define MAZE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace maze::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "MAZE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace maze::internal

#define MAZE_CHECK(expr)                                          \
  do {                                                            \
    if (!(expr)) {                                                \
      ::maze::internal::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                             \
  } while (0)

#define MAZE_CHECK_EQ(a, b) MAZE_CHECK((a) == (b))
#define MAZE_CHECK_NE(a, b) MAZE_CHECK((a) != (b))
#define MAZE_CHECK_LT(a, b) MAZE_CHECK((a) < (b))
#define MAZE_CHECK_LE(a, b) MAZE_CHECK((a) <= (b))
#define MAZE_CHECK_GT(a, b) MAZE_CHECK((a) > (b))
#define MAZE_CHECK_GE(a, b) MAZE_CHECK((a) >= (b))

#ifdef NDEBUG
#define MAZE_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define MAZE_DCHECK(expr) MAZE_CHECK(expr)
#endif

#define MAZE_DCHECK_LT(a, b) MAZE_DCHECK((a) < (b))
#define MAZE_DCHECK_LE(a, b) MAZE_DCHECK((a) <= (b))

#endif  // MAZE_UTIL_CHECK_H_
