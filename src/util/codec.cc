#include "util/codec.h"

#include <algorithm>

#include "util/check.h"

namespace maze {

void PutVarint32(std::vector<uint8_t>* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

uint32_t GetVarint32(const std::vector<uint8_t>& buf, size_t* pos) {
  uint32_t value = 0;
  int shift = 0;
  while (true) {
    MAZE_DCHECK(*pos < buf.size());
    uint8_t byte = buf[(*pos)++];
    value |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    MAZE_DCHECK(shift < 35);
  }
  return value;
}

void DeltaEncodeIds(const std::vector<uint32_t>& ids, std::vector<uint8_t>* out) {
  std::vector<uint32_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  PutVarint32(out, static_cast<uint32_t>(sorted.size()));
  uint32_t prev = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    uint32_t delta = (i == 0) ? sorted[0] : sorted[i] - prev;
    PutVarint32(out, delta);
    prev = sorted[i];
  }
}

void DeltaDecodeIds(const std::vector<uint8_t>& buf, std::vector<uint32_t>* out) {
  size_t pos = 0;
  uint32_t count = GetVarint32(buf, &pos);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = GetVarint32(buf, &pos);
    prev = (i == 0) ? delta : prev + delta;
    out->push_back(prev);
  }
}

namespace {

constexpr uint8_t kTagDelta = 0;
constexpr uint8_t kTagBitvector = 1;

}  // namespace

namespace {

void EmitBitvector(const std::vector<uint32_t>& ids, uint32_t lo, uint32_t hi,
                   std::vector<uint8_t>* out) {
  size_t range_bytes = (static_cast<size_t>(hi) - lo + 8) / 8;
  out->push_back(kTagBitvector);
  PutVarint32(out, lo);
  PutVarint32(out, hi - lo + 1);
  size_t payload_start = out->size();
  out->resize(payload_start + range_bytes, 0);
  for (uint32_t id : ids) {
    uint32_t off = id - lo;
    (*out)[payload_start + (off >> 3)] |= static_cast<uint8_t>(1u << (off & 7));
  }
}

}  // namespace

void EncodeIdsBest(const std::vector<uint32_t>& ids, std::vector<uint8_t>* out) {
  if (ids.empty()) {
    out->push_back(kTagDelta);
    DeltaEncodeIds(ids, out);
    return;
  }

  auto [lo_it, hi_it] = std::minmax_element(ids.begin(), ids.end());
  uint32_t lo = *lo_it;
  uint32_t hi = *hi_it;
  size_t range_bytes = (static_cast<size_t>(hi) - lo + 8) / 8;
  size_t bitvec_size = range_bytes + 10;  // header: lo + range varints.

  // Dense fast path: when the ids clearly saturate their range, the bitvector
  // wins no matter how well deltas compress (a sorted unique list costs >= 1
  // byte per id), so skip the delta encoder — and its O(n log n) sort —
  // entirely. This is the frontier-compression regime of BFS's big levels.
  if (range_bytes + 10 < ids.size()) {
    EmitBitvector(ids, lo, hi, out);
    return;
  }

  std::vector<uint8_t> delta;
  DeltaEncodeIds(ids, &delta);
  if (bitvec_size < delta.size()) {
    EmitBitvector(ids, lo, hi, out);
  } else {
    out->push_back(kTagDelta);
    out->insert(out->end(), delta.begin(), delta.end());
  }
}

void DecodeIdsBest(const std::vector<uint8_t>& buf, std::vector<uint32_t>* out) {
  MAZE_CHECK(!buf.empty());
  if (buf[0] == kTagDelta) {
    std::vector<uint8_t> body(buf.begin() + 1, buf.end());
    DeltaDecodeIds(body, out);
    return;
  }
  MAZE_CHECK_EQ(buf[0], kTagBitvector);
  size_t pos = 1;
  uint32_t lo = GetVarint32(buf, &pos);
  uint32_t range = GetVarint32(buf, &pos);
  for (uint32_t off = 0; off < range; ++off) {
    if (buf[pos + (off >> 3)] & (1u << (off & 7))) {
      out->push_back(lo + off);
    }
  }
}

}  // namespace maze
