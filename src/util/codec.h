// Message compression codecs (Section 6.1.1, "Data Compression").
//
// Multi-node graph traversal mostly ships lists of destination-vertex ids. The paper
// reports ~3.2x (BFS) and ~2.2x (PageRank) end-to-end gains from compressing those
// lists with delta + variable-length coding and with bitvectors. Both codecs are
// implemented here; the communication layer charges wire time for the *encoded* size,
// so compression directly reduces modeled network cost exactly as in the paper.
#ifndef MAZE_UTIL_CODEC_H_
#define MAZE_UTIL_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace maze {

// Appends `value` to `out` as a LEB128 varint (7 bits per byte).
void PutVarint32(std::vector<uint8_t>* out, uint32_t value);

// Decodes one varint starting at out[*pos]; advances *pos. Returns the value.
uint32_t GetVarint32(const std::vector<uint8_t>& buf, size_t* pos);

// Delta+varint encodes a list of vertex ids. The list is sorted internally (ids on
// the wire are order-insensitive destinations). Typical compressed size for
// power-law frontiers is 1-2 bytes/id vs 4 raw.
void DeltaEncodeIds(const std::vector<uint32_t>& ids, std::vector<uint8_t>* out);

// Inverse of DeltaEncodeIds. Appends decoded (sorted) ids to `out`.
void DeltaDecodeIds(const std::vector<uint8_t>& buf, std::vector<uint32_t>* out);

// Chooses the denser of delta+varint and a [lo, hi) range bitvector encoding, as
// native BFS does for very dense frontiers. Format: 1 tag byte, then payload.
void EncodeIdsBest(const std::vector<uint32_t>& ids, std::vector<uint8_t>* out);
void DecodeIdsBest(const std::vector<uint8_t>& buf, std::vector<uint32_t>* out);

}  // namespace maze

#endif  // MAZE_UTIL_CODEC_H_
