// CuckooSet: open-addressing cuckoo-hash set of 32-bit ids.
//
// GraphLab's triangle-counting implementation keeps each vertex's neighborhood in a
// cuckoo hash for O(1) membership during neighbor-list intersection (Section 5.3(4)
// of the paper). The vertexlab engine uses this structure for the same purpose; the
// native kernels use Bitvector for hub vertices and sorted intersection otherwise.
#ifndef MAZE_UTIL_CUCKOO_SET_H_
#define MAZE_UTIL_CUCKOO_SET_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace maze {

// Fixed-element-type cuckoo set with two hash functions and stash-free relocation.
// Not thread-safe; build once per vertex, then probe.
class CuckooSet {
 public:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  CuckooSet() { Rehash(8); }
  explicit CuckooSet(size_t expected) {
    size_t cap = 8;
    while (cap < expected * 2 + 2) cap <<= 1;
    Rehash(cap);
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  size_t MemoryBytes() const { return slots_.size() * sizeof(uint32_t); }

  // Inserts `key` (which must not be kEmpty). Returns true if newly inserted.
  bool Insert(uint32_t key) {
    MAZE_DCHECK(key != kEmpty);
    if (Contains(key)) return false;
    if ((size_ + 1) * 10 > slots_.size() * 9) Rehash(slots_.size() * 2);
    InsertNoCheck(key);
    ++size_;
    return true;
  }

  bool Contains(uint32_t key) const {
    return slots_[Hash1(key)] == key || slots_[Hash2(key)] == key;
  }

 private:
  size_t Hash1(uint32_t key) const {
    uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h >> 32) & mask_;
  }
  size_t Hash2(uint32_t key) const {
    uint64_t h = (key ^ 0xDEADBEEFu) * 0xC2B2AE3D27D4EB4Full;
    return static_cast<size_t>(h >> 32) & mask_;
  }

  void InsertNoCheck(uint32_t key) {
    uint32_t cur = key;
    size_t pos = Hash1(cur);
    // Bounded displacement chain; rehash on failure (classic cuckoo insertion).
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (slots_[pos] == kEmpty) {
        slots_[pos] = cur;
        return;
      }
      std::swap(cur, slots_[pos]);
      pos = (pos == Hash1(cur)) ? Hash2(cur) : Hash1(cur);
    }
    Rehash(slots_.size() * 2);
    InsertNoCheck(cur);
  }

  void Rehash(size_t new_cap) {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(new_cap, kEmpty);
    mask_ = new_cap - 1;
    for (uint32_t key : old) {
      if (key != kEmpty) InsertNoCheck(key);
    }
  }

  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace maze

#endif  // MAZE_UTIL_CUCKOO_SET_H_
