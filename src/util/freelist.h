// Free-list arena for small fixed-size objects: the bsp engine's boxed-message
// allocator (ROADMAP item 5, cf. the FreeList/FreeListVector exemplars in
// SNIPPETS.md).
//
// The Giraph-like engine really pays one heap allocation per message — that is
// the modeled pathology, and the modeled BoxedBytes() costs stay exactly as
// they are. What this pool removes is the *host-side* malloc/free per message:
// blocks are carved from geometrically growing slabs and recycled through an
// intrusive free list, so a run of S supersteps over E edges does O(slabs)
// heap allocations instead of O(S * E).
//
// Concurrency: rank tasks allocate and free concurrently (a rank's ParallelFor
// workers box messages in parallel, and a message allocated by its sender is
// freed by whichever rank folds it). The free list is striped: each thread
// pushes/pops on its own stripe under a spinlock, so the uncontended hot path
// is one CAS + one store per operation. Stripes refill from a central bump
// region in batches, stealing another stripe's list before growing a new slab
// so producer/consumer thread patterns cannot grow memory without bound.
//
// PoolPtr<T> is a unique_ptr whose deleter knows the owning pool; a null pool
// falls back to operator delete, so arena-on and arena-off code paths share
// one box type (the MAZE_BSP_ARENA differential toggle).
#ifndef MAZE_UTIL_FREELIST_H_
#define MAZE_UTIL_FREELIST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace maze::util {

namespace internal {

// Dense thread ids for stripe selection: threads are numbered on first use, so
// a pool of worker threads maps onto distinct stripes instead of hashing
// std::thread::id per operation.
inline unsigned ThreadStripeId() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Minimal spinlock; critical sections below are a handful of instructions.
// Yields while spinning so a 1-core host cannot livelock against the holder.
struct SpinLock {
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
  void lock() {
    while (flag.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void unlock() { flag.clear(std::memory_order_release); }
};

}  // namespace internal

template <typename T>
class FreeListPool;

// Deleter carried by PoolPtr: destroys the object and returns its block to the
// owning pool, or plain-deletes when no pool is bound (heap-boxed fallback).
template <typename T>
struct PoolDeleter {
  FreeListPool<T>* pool = nullptr;
  void operator()(T* p) const;
};

template <typename T>
using PoolPtr = std::unique_ptr<T, PoolDeleter<T>>;

// Heap-allocated box sharing PoolPtr's type: the arena-off path.
template <typename T, typename... Args>
PoolPtr<T> HeapBoxed(Args&&... args) {
  return PoolPtr<T>(new T(std::forward<Args>(args)...), PoolDeleter<T>{nullptr});
}

template <typename T>
class FreeListPool {
 public:
  // Blocks double as intrusive free-list nodes, so they are at least
  // pointer-sized and pointer-aligned even for tiny message types.
  static constexpr size_t kBlockSize =
      sizeof(T) < sizeof(void*) ? sizeof(void*) : sizeof(T);
  static constexpr size_t kBlockAlign =
      alignof(T) < alignof(void*) ? alignof(void*) : alignof(T);

  struct Stats {
    uint64_t requests = 0;          // New/Make calls served.
    uint64_t reused = 0;            // Served from a free list (not fresh carve).
    uint64_t freed = 0;             // Delete calls.
    uint64_t slab_allocations = 0;  // Heap allocations backing the pool.
    uint64_t slab_bytes = 0;
    uint64_t live() const { return requests - freed; }
  };

  FreeListPool() = default;
  FreeListPool(const FreeListPool&) = delete;
  FreeListPool& operator=(const FreeListPool&) = delete;

  ~FreeListPool() {
    // Every block must be dead (its T destructed) before the slabs go away;
    // PoolPtr guarantees this for anything it owned.
    MAZE_DCHECK(GetStats().live() == 0);
    for (void* slab : slabs_) {
      ::operator delete(slab, std::align_val_t{kBlockAlign});
    }
  }

  // Constructs a T in a pooled block.
  template <typename... Args>
  T* New(Args&&... args) {
    void* block = AllocateBlock();
    try {
      return new (block) T(std::forward<Args>(args)...);
    } catch (...) {
      DeallocateBlock(block);
      throw;
    }
  }

  // Destroys a pool-owned T and recycles its block.
  void Delete(T* p) {
    p->~T();
    DeallocateBlock(p);
  }

  // New, wrapped so destruction returns the block here automatically.
  template <typename... Args>
  PoolPtr<T> Make(Args&&... args) {
    return PoolPtr<T>(New(std::forward<Args>(args)...), PoolDeleter<T>{this});
  }

  // Folds per-stripe counters; a consistent snapshot only when no concurrent
  // allocation is in flight (how the engine and tests use it).
  Stats GetStats() const {
    Stats s;
    for (const Stripe& stripe : stripes_) {
      stripe.lock.lock();
      s.requests += stripe.requests;
      s.reused += stripe.reused;
      s.freed += stripe.freed;
      stripe.lock.unlock();
    }
    central_lock_.lock();
    s.slab_allocations = slab_allocations_;
    s.slab_bytes = slab_bytes_;
    central_lock_.unlock();
    return s;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr int kStripes = 8;  // Power of two.
  static constexpr size_t kRefillBlocks = 64;
  static constexpr size_t kMinSlabBlocks = 256;
  static constexpr size_t kMaxSlabBlocks = 1 << 16;

  struct alignas(64) Stripe {
    mutable internal::SpinLock lock;
    FreeNode* head = nullptr;
    uint64_t requests = 0;
    uint64_t reused = 0;
    uint64_t freed = 0;
  };

  void* AllocateBlock() {
    Stripe& stripe = stripes_[internal::ThreadStripeId() & (kStripes - 1)];
    stripe.lock.lock();
    ++stripe.requests;
    if (FreeNode* node = stripe.head; node != nullptr) {
      stripe.head = node->next;
      ++stripe.reused;
      stripe.lock.unlock();
      return node;
    }
    stripe.lock.unlock();
    return RefillAndTake(stripe);
  }

  void DeallocateBlock(void* p) {
    Stripe& stripe = stripes_[internal::ThreadStripeId() & (kStripes - 1)];
    FreeNode* node = static_cast<FreeNode*>(p);
    stripe.lock.lock();
    node->next = stripe.head;
    stripe.head = node;
    ++stripe.freed;
    stripe.lock.unlock();
  }

  // Slow path: carve a batch from the central bump region (growing a slab if
  // needed), keep one block, and park the rest on the caller's stripe. Before
  // growing, adopt another stripe's free list wholesale — blocks freed by
  // consumer threads flow back to producer threads instead of forcing growth.
  void* RefillAndTake(Stripe& stripe) {
    central_lock_.lock();
    if (bump_ == bump_end_) {
      // Try stealing before paying for a new slab.
      for (Stripe& other : stripes_) {
        if (&other == &stripe) continue;
        other.lock.lock();
        FreeNode* chain = other.head;
        other.head = nullptr;
        other.lock.unlock();
        if (chain != nullptr) {
          central_lock_.unlock();
          FreeNode* taken = chain;
          stripe.lock.lock();
          ++stripe.reused;  // Adopted blocks are recycled, not fresh carves.
          stripe.lock.unlock();
          InstallChain(stripe, taken->next);
          return taken;
        }
      }
      GrowSlabLocked();
    }
    size_t avail = static_cast<size_t>(bump_end_ - bump_) / kBlockSize;
    size_t take = avail < kRefillBlocks ? avail : kRefillBlocks;
    char* base = bump_;
    bump_ += take * kBlockSize;
    central_lock_.unlock();

    // Link blocks [1, take) into the stripe; block 0 is the caller's.
    FreeNode* chain = nullptr;
    for (size_t i = take; i > 1; --i) {
      FreeNode* node = reinterpret_cast<FreeNode*>(base + (i - 1) * kBlockSize);
      node->next = chain;
      chain = node;
    }
    InstallChain(stripe, chain);
    return base;
  }

  void InstallChain(Stripe& stripe, FreeNode* chain) {
    if (chain == nullptr) return;
    FreeNode* tail = chain;
    while (tail->next != nullptr) tail = tail->next;
    stripe.lock.lock();
    tail->next = stripe.head;
    stripe.head = chain;
    stripe.lock.unlock();
  }

  void GrowSlabLocked() {
    size_t blocks = next_slab_blocks_;
    next_slab_blocks_ =
        next_slab_blocks_ * 2 < kMaxSlabBlocks ? next_slab_blocks_ * 2
                                               : kMaxSlabBlocks;
    size_t bytes = blocks * kBlockSize;
    void* slab = ::operator new(bytes, std::align_val_t{kBlockAlign});
    slabs_.push_back(slab);
    ++slab_allocations_;
    slab_bytes_ += bytes;
    bump_ = static_cast<char*>(slab);
    bump_end_ = bump_ + bytes;
  }

  Stripe stripes_[kStripes];
  mutable internal::SpinLock central_lock_;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  std::vector<void*> slabs_;
  size_t next_slab_blocks_ = kMinSlabBlocks;
  uint64_t slab_allocations_ = 0;
  uint64_t slab_bytes_ = 0;
};

template <typename T>
void PoolDeleter<T>::operator()(T* p) const {
  if (pool != nullptr) {
    pool->Delete(p);
  } else {
    delete p;
  }
}

}  // namespace maze::util

#endif  // MAZE_UTIL_FREELIST_H_
