// Software prefetching (Section 6.1.2): the single largest native-code optimization
// for PageRank/BFS in the paper, hiding the latency of irregular gather accesses.
#ifndef MAZE_UTIL_PREFETCH_H_
#define MAZE_UTIL_PREFETCH_H_

namespace maze {

// Hints the cache hierarchy to load the line containing `addr` for reading.
// No-ops on compilers without __builtin_prefetch.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

inline void PrefetchWrite(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

// How far ahead (in elements) the native kernels issue prefetches; chosen to cover
// DRAM latency at typical per-element work.
inline constexpr int kPrefetchDistance = 16;

}  // namespace maze

#endif  // MAZE_UTIL_PREFETCH_H_
