// Deterministic, seedable pseudo-random number generation.
//
// Everything in this repository that needs randomness (RMAT generation, SGD edge
// shuffling, sampled workloads) goes through Xorshift64Star so that runs are exactly
// reproducible from a seed, independent of the standard library implementation.
#ifndef MAZE_UTIL_PRNG_H_
#define MAZE_UTIL_PRNG_H_

#include <cstdint>

#include "util/check.h"

namespace maze {

// xorshift64* generator: tiny state, good statistical quality for workload
// generation, and identical output on every platform.
class Xorshift64Star {
 public:
  explicit Xorshift64Star(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    MAZE_DCHECK(bound > 0);
    // Multiply-shift reduction avoids the modulo bias for our bound sizes.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Approximately standard-normal value (sum of uniforms; adequate for
  // initializing latent factors, not for statistics).
  double NextGaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return sum - 6.0;
  }

 private:
  uint64_t state_;
};

// SplitMix64: used to derive independent per-thread / per-partition seeds from a
// master seed without correlation.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace maze

#endif  // MAZE_UTIL_PRNG_H_
