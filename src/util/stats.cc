#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace maze {

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    MAZE_CHECK(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double ArithmeticMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  MAZE_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  if (rank > 0) --rank;
  return values[rank];
}

double PowerLawExponent(const std::vector<uint64_t>& degree_histogram) {
  // Fit log(count) = a + b*log(degree) over non-empty buckets with degree >= 1;
  // return -b so a power law p(d) ~ d^-alpha yields alpha > 0.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t d = 1; d < degree_histogram.size(); ++d) {
    if (degree_histogram[d] == 0) continue;
    double x = std::log(static_cast<double>(d));
    double y = std::log(static_cast<double>(degree_histogram[d]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  return -slope;
}

}  // namespace maze
