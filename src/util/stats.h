// Small statistics helpers for the benchmark harness (geomeans of slowdowns,
// degree-distribution summaries, percentiles).
#ifndef MAZE_UTIL_STATS_H_
#define MAZE_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace maze {

// Geometric mean of strictly positive values; the paper's Tables 5/6 aggregate
// per-dataset slowdowns this way. Returns 0 for an empty input.
double GeometricMean(const std::vector<double>& values);

double ArithmeticMean(const std::vector<double>& values);

// p in [0, 100]; nearest-rank on a sorted copy.
double Percentile(std::vector<double> values, double p);

// Log-log linear-regression slope of a degree histogram: the power-law exponent
// estimate used to validate that generated graphs are skewed like the target
// real-world datasets (Section 4.1.2).
double PowerLawExponent(const std::vector<uint64_t>& degree_histogram);

}  // namespace maze

#endif  // MAZE_UTIL_STATS_H_
