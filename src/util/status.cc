#include "util/status.h"

namespace maze {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace maze
