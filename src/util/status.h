// Status / StatusOr: exception-free error propagation for fallible operations
// (I/O, parsing, configuration). Internal invariant violations use MAZE_CHECK
// instead; Status is reserved for errors a caller can meaningfully handle.
#ifndef MAZE_UTIL_STATUS_H_
#define MAZE_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace maze {

// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kUnimplemented,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,        // Transient: the caller may retry later (backpressure).
  kDeadlineExceeded,   // The request's deadline passed before completion.
};

// Value-semantic result of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or the Status describing why it is absent.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work,
  // matching the absl::StatusOr idiom.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MAZE_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MAZE_CHECK(ok());
    return value_;
  }
  T& value() & {
    MAZE_CHECK(ok());
    return value_;
  }
  T&& value() && {
    MAZE_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace maze

// Propagates a non-OK Status to the caller.
#define MAZE_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::maze::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

#endif  // MAZE_UTIL_STATUS_H_
