#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace maze {

std::string FormatDouble(double value, int digits) {
  char buf[64];
  if (value != 0.0 && (std::fabs(value) >= 1e6 || std::fabs(value) < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.*g", digits + 2, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  }
  return buf;
}

std::string TextTable::Render() const {
  std::vector<size_t> widths;
  auto account = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::RenderCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace maze
