// Plain-text table rendering for the benchmark harness: every bench binary prints
// the same rows/series as the corresponding paper table or figure.
#ifndef MAZE_UTIL_TABLE_H_
#define MAZE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace maze {

// Column-aligned ASCII table with an optional title, built row by row.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders with padded columns; missing cells render empty.
  std::string Render() const;

  // Comma-separated rendering for downstream plotting.
  std::string RenderCsv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `digits` significant decimal places (e.g. 3 -> "1.23e-05"
// style never used; plain fixed/auto formatting for table cells).
std::string FormatDouble(double value, int digits = 3);

}  // namespace maze

#endif  // MAZE_UTIL_TABLE_H_
