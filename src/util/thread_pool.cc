#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace maze {

namespace {
thread_local bool tls_inside_pool = false;
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned hw = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = hw != 0 ? hw : 4;
  // The calling thread participates in every loop, so spawn one fewer worker.
  for (unsigned i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerMain() {
  tls_inside_pool = true;
  uint64_t seen_epoch = 0;
  while (true) {
    Loop* loop = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      loop = current_;
    }
    if (loop != nullptr) {
      RunLoopShare(loop);
      if (loop->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::RunLoopShare(Loop* loop) {
  while (true) {
    uint64_t begin = loop->cursor.fetch_add(loop->grain, std::memory_order_relaxed);
    if (begin >= loop->n) break;
    uint64_t end = std::min(loop->n, begin + loop->grain);
    (*loop->body)(begin, end);
  }
}

void ThreadPool::ParallelFor(uint64_t n, uint64_t grain,
                             const std::function<void(uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  MAZE_CHECK(grain > 0);
  // Run inline when there are no workers, when the range is tiny, or when any
  // loop is already in flight (a nested call — from a worker or from the caller
  // thread mid-loop — must not clobber the active loop's bookkeeping).
  if (threads_.empty() || tls_inside_pool || n <= grain ||
      loop_in_flight_.exchange(true, std::memory_order_acquire)) {
    body(0, n);
    return;
  }

  Loop loop;
  loop.n = n;
  loop.grain = grain;
  loop.body = &body;
  loop.remaining.store(static_cast<unsigned>(threads_.size()),
                       std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &loop;
    ++epoch_;
  }
  cv_.notify_all();

  RunLoopShare(&loop);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return loop.remaining.load() == 0; });
  current_ = nullptr;
  loop_in_flight_.store(false, std::memory_order_release);
}

void ThreadPool::ParallelForEach(uint64_t n, const std::function<void(uint64_t)>& fn) {
  ParallelFor(n, 64, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::Default() {
  // Function-local static reference: intentional leak per style rules for objects
  // with static storage duration and non-trivial destructors.
  static ThreadPool& pool = *new ThreadPool();
  return pool;
}

void ParallelFor(uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  ThreadPool::Default().ParallelFor(n, grain, body);
}

}  // namespace maze
