#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/timer.h"

namespace maze {

namespace {

// Innermost live RegionCpuMeter owned by this thread; chunks launched from here
// charge to it.
thread_local RegionCpuMeter* tls_meter = nullptr;
// CPU nanoseconds this thread has spent executing loop chunks (its own share
// only — nested chunk time is accounted by the inner frame). Lets a meter
// compute its serial share as total thread CPU minus chunk CPU.
thread_local uint64_t tls_chunk_ns = 0;

unsigned EnvThreads() {
  const char* s = std::getenv("MAZE_THREADS");
  if (s == nullptr) return 0;
  int v = std::atoi(s);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

}  // namespace

RegionCpuMeter::RegionCpuMeter()
    : prev_(tls_meter),
      thread_cpu_start_ns_(ThreadCpuTimer::NowNanos()),
      chunk_ns_start_(tls_chunk_ns) {
  tls_meter = this;
}

RegionCpuMeter::~RegionCpuMeter() { tls_meter = prev_; }

double RegionCpuMeter::serial_seconds() const {
  uint64_t cpu = ThreadCpuTimer::NowNanos() - thread_cpu_start_ns_;
  uint64_t chunk = tls_chunk_ns - chunk_ns_start_;
  return chunk >= cpu ? 0.0 : static_cast<double>(cpu - chunk) * 1e-9;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = EnvThreads();
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw != 0 ? hw : 4;
  }
  // The calling thread participates in every loop it opens, so spawn one fewer
  // worker.
  for (unsigned i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void ThreadPool::Resize(unsigned num_threads) {
  if (num_threads == 0) num_threads = EnvThreads();
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw != 0 ? hw : 4;
  }
  if (num_threads == this->num_threads()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MAZE_CHECK(loops_.empty() && "ThreadPool::Resize requires quiescence");
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }
  for (unsigned i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Loop* loop = nullptr;
    work_cv_.wait(lock, [&] {
      if (shutdown_) return true;
      // Newest-first: drain inner (nested) regions before claiming fresh work
      // from an outer one, so threads blocked in an outer region's ordered
      // sections are unblocked as quickly as possible.
      for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
        if ((*it)->cursor.load(std::memory_order_relaxed) < (*it)->n) {
          loop = *it;
          return true;
        }
      }
      return false;
    });
    if (shutdown_) return;
    ++loop->active_workers;
    lock.unlock();
    RunLoopShare(loop);
    lock.lock();
    if (--loop->active_workers == 0 &&
        loop->cursor.load(std::memory_order_relaxed) >= loop->n) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunLoopShare(Loop* loop) {
  // Chunks execute under the loop's meter so regions nested inside the body
  // attribute to the right place regardless of which thread runs them.
  RegionCpuMeter* saved = tls_meter;
  tls_meter = loop->meter;
  while (true) {
    uint64_t begin =
        loop->cursor.fetch_add(loop->grain, std::memory_order_relaxed);
    if (begin >= loop->n) break;
    uint64_t end = std::min(loop->n, begin + loop->grain);
    uint64_t cpu0 = ThreadCpuTimer::NowNanos();
    uint64_t nested0 = tls_chunk_ns;
    (*loop->body)(begin, end);
    uint64_t elapsed = ThreadCpuTimer::NowNanos() - cpu0;
    uint64_t nested = tls_chunk_ns - nested0;
    uint64_t own = elapsed > nested ? elapsed - nested : 0;
    tls_chunk_ns += own;
    if (loop->meter != nullptr) loop->meter->AddWorkerNanos(own);
  }
  tls_meter = saved;
}

void ThreadPool::ParallelFor(uint64_t n, uint64_t grain,
                             const std::function<void(uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  MAZE_CHECK(grain > 0);
  // Inline fast path: single-chunk loops (and worker-less pools) never touch the
  // scheduler. The time is genuinely serial, so it lands in the enclosing
  // meter's serial share rather than its worker share.
  if (threads_.empty() || n <= grain) {
    body(0, n);
    return;
  }

  Loop loop;
  loop.n = n;
  loop.grain = grain;
  loop.body = &body;
  loop.meter = tls_meter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    loops_.push_back(&loop);
  }
  work_cv_.notify_all();

  // The caller claims chunks of its own loop only; it never steals foreign work
  // while waiting, which keeps its enclosing region's CPU attribution pure.
  RunLoopShare(&loop);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return loop.active_workers == 0; });
  loops_.erase(std::find(loops_.begin(), loops_.end(), &loop));
}

void ThreadPool::ParallelForEach(uint64_t n, const std::function<void(uint64_t)>& fn) {
  ParallelFor(n, 64, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::Default() {
  // Function-local static reference: intentional leak per style rules for objects
  // with static storage duration and non-trivial destructors.
  static ThreadPool& pool = *new ThreadPool();
  return pool;
}

void ParallelFor(uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  ThreadPool::Default().ParallelFor(n, grain, body);
}

}  // namespace maze
