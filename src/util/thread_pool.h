// Shared-memory parallelism primitives.
//
// The paper's native code parallelizes within a node via OpenMP; this repository
// uses a persistent ThreadPool with a blocked parallel-for so the library has no
// compiler-extension dependency and can meter per-thread busy time (needed for the
// Figure 6 CPU-utilization metric).
//
// The pool is a task scheduler, not a single fork-join barrier: any number of
// parallel regions may be in flight at once (the rank-parallel engine schedule
// runs one region per simulated rank), and regions nest — a loop body may launch
// further loops. Workers pull fixed-grain chunks from whichever active region has
// work, preferring the most recently opened region so inner loops drain before
// new outer work is started. A region's caller only executes chunks of its own
// region and then blocks, which keeps per-region CPU attribution exact (see
// RegionCpuMeter) and makes the scheduler deadlock-free: every region can always
// be driven to completion by its own caller.
#ifndef MAZE_UTIL_THREAD_POOL_H_
#define MAZE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace maze {

// Attributes CPU time to a code region that may fan work out across the pool.
//
// Construct on the thread that owns the region (e.g. at the top of a rank task);
// while the meter is the thread's innermost live meter, every ParallelFor chunk
// spawned from the region — on any pool thread, at any nesting depth — adds its
// per-thread CPU time to worker_nanos(). serial_seconds() is the owning thread's
// CPU time spent in the region *outside* chunk execution. Both readings exclude
// blocked/descheduled time, so they are independent of how many other regions
// the host is running concurrently — this is what makes modeled compute
// schedule-invariant (DESIGN.md "Execution model").
class RegionCpuMeter {
 public:
  RegionCpuMeter();
  ~RegionCpuMeter();

  RegionCpuMeter(const RegionCpuMeter&) = delete;
  RegionCpuMeter& operator=(const RegionCpuMeter&) = delete;

  // CPU nanoseconds spent inside ParallelFor chunks of this region, summed over
  // all executing threads. Stable once the region's loops have completed.
  uint64_t worker_nanos() const {
    return worker_ns_.load(std::memory_order_relaxed);
  }
  double worker_seconds() const {
    return static_cast<double>(worker_nanos()) * 1e-9;
  }

  // CPU seconds the owning thread has spent since construction, excluding chunk
  // execution (which is counted in worker_seconds). Call from the owning thread.
  double serial_seconds() const;

 private:
  friend class ThreadPool;

  void AddWorkerNanos(uint64_t ns) {
    worker_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  RegionCpuMeter* prev_;          // enclosing meter on the owning thread
  uint64_t thread_cpu_start_ns_;  // owner's thread-CPU clock at construction
  uint64_t chunk_ns_start_;       // owner's chunk-time accumulator at construction
  std::atomic<uint64_t> worker_ns_{0};
};

// Persistent pool of worker threads executing blocked range-parallel loops.
// ParallelFor blocks the caller until its loop completes; concurrent calls from
// different threads and nested calls from inside loop bodies all schedule onto
// the same workers.
class ThreadPool {
 public:
  // `num_threads` == 0 means the MAZE_THREADS environment variable if set, else
  // std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(threads_.size()) + 1; }

  // Re-sizes the pool to `num_threads` workers (0 = the MAZE_THREADS/hardware
  // default, as in the constructor). Must be called at quiescence: no parallel
  // region may be active and no other thread may be submitting work. The CLI
  // uses this to honor --threads on the process-wide Default() pool before any
  // engine work is scheduled.
  void Resize(unsigned num_threads);

  // Runs body(begin, end) over [0, n) split into `grain`-sized chunks claimed
  // dynamically by the caller and the pool's workers. Chunks are claimed in
  // increasing range order. Loops with n <= grain (or on a worker-less pool) run
  // inline on the caller with no scheduler interaction.
  void ParallelFor(uint64_t n, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& body);

  // Convenience: per-index variant.
  void ParallelForEach(uint64_t n, const std::function<void(uint64_t)>& fn);

  // Process-wide default pool, sized to the machine (or MAZE_THREADS).
  static ThreadPool& Default();

 private:
  struct Loop {
    std::atomic<uint64_t> cursor{0};
    uint64_t n = 0;
    uint64_t grain = 1;
    const std::function<void(uint64_t, uint64_t)>* body = nullptr;
    // The meter chunks of this loop charge to (the spawning thread's innermost
    // meter at launch); null when the region is unmetered.
    RegionCpuMeter* meter = nullptr;
    // Workers currently inside RunLoopShare for this loop. Guarded by mu_.
    unsigned active_workers = 0;
  };

  void WorkerMain();
  // Claims and runs chunks until the loop's range is exhausted.
  void RunLoopShare(Loop* loop);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a loop was opened
  std::condition_variable done_cv_;  // callers: a loop may have completed
  // Active loops in open order; workers scan newest-first. Guarded by mu_.
  std::vector<Loop*> loops_;
  bool shutdown_ = false;
};

// Sugar over ThreadPool::Default().ParallelFor.
void ParallelFor(uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)>& body);

}  // namespace maze

#endif  // MAZE_UTIL_THREAD_POOL_H_
