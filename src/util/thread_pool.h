// Shared-memory parallelism primitives.
//
// The paper's native code parallelizes within a node via OpenMP; this repository
// uses a persistent ThreadPool with a blocked parallel-for so the library has no
// compiler-extension dependency and can meter per-thread busy time (needed for the
// Figure 6 CPU-utilization metric).
#ifndef MAZE_UTIL_THREAD_POOL_H_
#define MAZE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace maze {

// Persistent pool of worker threads executing blocked range-parallel loops.
// ParallelFor blocks the caller until the loop completes. Reentrant calls from
// inside a worker are executed inline (sequentially) to avoid deadlock.
class ThreadPool {
 public:
  // `num_threads` == 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(threads_.size()) + 1; }

  // Runs body(begin, end) over [0, n) split into contiguous blocks, one block per
  // worker plus dynamic chunk stealing via a shared cursor. `grain` is the minimum
  // chunk size.
  void ParallelFor(uint64_t n, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& body);

  // Convenience: per-index variant.
  void ParallelForEach(uint64_t n, const std::function<void(uint64_t)>& fn);

  // Process-wide default pool, sized to the machine.
  static ThreadPool& Default();

 private:
  struct Loop {
    std::atomic<uint64_t> cursor{0};
    uint64_t n = 0;
    uint64_t grain = 1;
    const std::function<void(uint64_t, uint64_t)>* body = nullptr;
    std::atomic<unsigned> remaining{0};
  };

  void WorkerMain();
  void RunLoopShare(Loop* loop);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Loop* current_ = nullptr;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  // True while a loop is executing; nested launches run inline instead.
  std::atomic<bool> loop_in_flight_{false};
};

// Sugar over ThreadPool::Default().ParallelFor.
void ParallelFor(uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)>& body);

}  // namespace maze

#endif  // MAZE_UTIL_THREAD_POOL_H_
