// Wall-clock timers used for kernel timing and CPU-utilization accounting.
#ifndef MAZE_UTIL_TIMER_H_
#define MAZE_UTIL_TIMER_H_

#include <chrono>

namespace maze {

// Monotonic stopwatch. Start() resets the origin; Seconds() reads elapsed time.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates busy time across disjoint intervals; used per worker thread to
// compute the Figure 6 CPU-utilization metric (busy / wall).
class BusyClock {
 public:
  void BeginWork() { timer_.Start(); }
  void EndWork() { busy_seconds_ += timer_.Seconds(); }

  double busy_seconds() const { return busy_seconds_; }
  void Reset() { busy_seconds_ = 0; }

 private:
  Timer timer_;
  double busy_seconds_ = 0;
};

}  // namespace maze

#endif  // MAZE_UTIL_TIMER_H_
