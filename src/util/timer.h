// Wall-clock and per-thread CPU timers used for kernel timing and
// CPU-utilization accounting.
#ifndef MAZE_UTIL_TIMER_H_
#define MAZE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define MAZE_HAS_THREAD_CPUTIME 1
#endif

namespace maze {

// Monotonic stopwatch. Start() resets the origin; Seconds() reads elapsed time.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Per-thread CPU stopwatch (CLOCK_THREAD_CPUTIME_ID where available, wall time
// otherwise). Unlike Timer, the reading excludes time the thread spends blocked
// or descheduled, so compute measured under an oversubscribed rank-parallel
// schedule matches what the same code costs when ranks run one at a time.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Start(); }

  void Start() { start_ns_ = NowNanos(); }

  uint64_t Nanos() const { return NowNanos() - start_ns_; }
  double Seconds() const { return static_cast<double>(Nanos()) * 1e-9; }

  // CPU time consumed by the calling thread since an arbitrary origin.
  static uint64_t NowNanos() {
#if defined(MAZE_HAS_THREAD_CPUTIME)
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
             static_cast<uint64_t>(ts.tv_nsec);
    }
#endif
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  uint64_t start_ns_ = 0;
};

// Accumulates busy time across disjoint intervals; used per worker thread to
// compute the Figure 6 CPU-utilization metric (busy / wall).
class BusyClock {
 public:
  void BeginWork() { timer_.Start(); }
  void EndWork() { busy_seconds_ += timer_.Seconds(); }

  double busy_seconds() const { return busy_seconds_; }
  void Reset() { busy_seconds_ = 0; }

 private:
  Timer timer_;
  double busy_seconds_ = 0;
};

}  // namespace maze

#endif  // MAZE_UTIL_TIMER_H_
