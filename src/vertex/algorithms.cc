#include "vertex/algorithms.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <cmath>
#include <utility>
#include <vector>

#include "native/cc.h"
#include "native/cf.h"
#include "util/check.h"
#include "util/cuckoo_set.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/timer.h"
#include "vertex/async_engine.h"
#include "vertex/engine.h"

namespace maze::vertex {
namespace {

// --- PageRank: Algorithm 1 of the paper --------------------------------------

struct PageRankProgram {
  using Value = double;
  using Message = double;
  static constexpr bool kCombinable = true;
  static constexpr bool kAllActive = true;

  const Graph* graph = nullptr;
  int iterations = 0;
  double jump = 0.3;

  void Init(VertexId, const Graph&, Value* value) { *value = 1.0; }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() > 0) {
      double sum = count > 0 ? msgs[0] : 0.0;
      *value = jump + (1.0 - jump) * sum;
    }
    if (ctx->superstep() < iterations) {
      EdgeId deg = graph->OutDegree(v);
      if (deg > 0) ctx->SendToOutNeighbors(*value / static_cast<double>(deg));
      return true;
    }
    return false;
  }

  static Message Combine(const Message& a, const Message& b) { return a + b; }
  static size_t MessageWireBytes(const Message&) { return sizeof(Message); }
};

// --- BFS: Algorithm 2 ---------------------------------------------------------

struct BfsProgram {
  using Value = uint32_t;
  using Message = uint32_t;
  static constexpr bool kCombinable = true;
  static constexpr bool kAllActive = false;

  VertexId source = 0;

  void Init(VertexId v, const Graph&, Value* value) {
    *value = (v == source) ? 0 : kInfiniteDistance;
  }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() == 0) {
      if (v == source) ctx->SendToOutNeighbors(0);
      return false;
    }
    if (count > 0) {
      uint32_t candidate = msgs[0] + 1;
      if (candidate < *value) {
        *value = candidate;
        ctx->SendToOutNeighbors(*value);
      }
    }
    return false;
  }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }
  static size_t MessageWireBytes(const Message&) { return sizeof(Message); }
};

// --- Triangle Counting --------------------------------------------------------
// Superstep 0: each vertex ships its out-neighborhood to its out-neighbors.
// Superstep 1: each vertex intersects received lists against its own
// neighborhood, held in a cuckoo hash (the GraphLab data-structure optimization
// the paper credits in §5.3(4)).

struct TriangleProgram {
  using Value = uint64_t;
  using Message = std::vector<VertexId>;
  static constexpr bool kCombinable = false;
  static constexpr bool kAllActive = true;

  const Graph* graph = nullptr;

  void Init(VertexId, const Graph&, Value* value) { *value = 0; }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() == 0) {
      const auto neighbors = graph->OutNeighbors(v);
      if (!neighbors.empty()) {
        ctx->SendToOutNeighbors(Message(neighbors.begin(), neighbors.end()));
      }
      return true;
    }
    if (count > 0) {
      const auto own = graph->OutNeighbors(v);
      CuckooSet own_set(own.size());
      for (VertexId w : own) own_set.Insert(w);
      uint64_t found = 0;
      for (size_t i = 0; i < count; ++i) {
        for (VertexId w : msgs[i]) {
          if (own_set.Contains(w)) ++found;
        }
      }
      *value += found;
    }
    return false;
  }

  static size_t MessageWireBytes(const Message& m) {
    return 4 + m.size() * sizeof(VertexId);
  }
};

// --- Collaborative Filtering (Gradient Descent) --------------------------------
// Users and items share one vertex space: users [0, U), items [U, U + I). Every
// superstep each vertex broadcasts its factor vector (Table 1's 8K-byte messages)
// and integrates the factors received from the opposite side using equations
// (11)/(12).

struct CfGdProgram {
  using Value = std::vector<double>;
  // (sender id, sender factor) — the receiver looks up the edge's rating.
  using Message = std::pair<VertexId, std::vector<double>>;
  static constexpr bool kCombinable = false;
  static constexpr bool kAllActive = true;

  const BipartiteGraph* ratings = nullptr;
  rt::CfOptions options;
  VertexId user_count = 0;
  double gamma = 0.0;
  // Shared deterministic initialization (same arrays native uses), row-major.
  const std::vector<double>* init_users = nullptr;
  const std::vector<double>* init_items = nullptr;

  void Init(VertexId v, const Graph&, Value* value) {
    const std::vector<double>& src = v < user_count ? *init_users : *init_items;
    size_t row = v < user_count ? v : v - user_count;
    value->assign(src.begin() + static_cast<ptrdiff_t>(row * options.k),
                  src.begin() + static_cast<ptrdiff_t>((row + 1) * options.k));
  }

  float RatingFor(VertexId me, VertexId other) const {
    // Adjacency lists are sorted by id, so the edge lookup is a binary search.
    auto adj = me < user_count ? ratings->UserRatings(me)
                               : ratings->ItemRatings(me - user_count);
    VertexId key = me < user_count ? other - user_count : other;
    auto it = std::lower_bound(
        adj.begin(), adj.end(), key,
        [](const BipartiteGraph::Entry& e, VertexId id) { return e.id < id; });
    MAZE_CHECK(it != adj.end() && it->id == key);
    return it->rating;
  }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    bool is_user = v < user_count;
    double lambda = is_user ? options.lambda_p : options.lambda_q;
    if (ctx->superstep() > 0 && count > 0) {
      std::vector<double> grad(options.k, 0.0);
      for (size_t i = 0; i < count; ++i) {
        const auto& [sender, factor] = msgs[i];
        double rating = RatingFor(v, sender);
        double dot = 0;
        for (int d = 0; d < options.k; ++d) dot += (*value)[d] * factor[d];
        double err = rating - dot;
        for (int d = 0; d < options.k; ++d) {
          grad[d] += err * factor[d] - lambda * (*value)[d];
        }
      }
      for (int d = 0; d < options.k; ++d) (*value)[d] += gamma * grad[d];
    }
    if (ctx->superstep() < options.iterations) {
      ctx->SendToOutNeighbors(Message{v, *value});
      return true;
    }
    return false;
  }

  static size_t MessageWireBytes(const Message& m) {
    return 4 + m.second.size() * sizeof(double);
  }
};

// --- Connected Components (extension) -------------------------------------------
// Min-label propagation: superstep 0 broadcasts every vertex's own id; later
// supersteps shrink labels from combined ($MIN) messages and re-broadcast on
// improvement, exactly the BFS activity pattern.

struct CcProgram {
  using Value = VertexId;
  using Message = VertexId;
  static constexpr bool kCombinable = true;
  static constexpr bool kAllActive = false;

  void Init(VertexId v, const Graph&, Value* value) { *value = v; }

  bool Compute(Context<Message>* ctx, VertexId, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() == 0) {
      ctx->SendToOutNeighbors(*value);
      return false;
    }
    if (count > 0 && msgs[0] < *value) {
      *value = msgs[0];
      ctx->SendToOutNeighbors(*value);
    }
    return false;
  }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }
  static size_t MessageWireBytes(const Message&) { return sizeof(Message); }
};

}  // namespace

rt::CommModel DefaultComm() { return rt::CommModel::Socket(); }

rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  CcProgram program;
  SyncEngine<CcProgram> engine(g, config);
  int supersteps = engine.Run(&program, options.max_iterations);
  rt::ConnectedComponentsResult result;
  result.label = engine.values();
  result.num_components = native::CountComponents(result.label);
  result.iterations = supersteps;
  result.metrics = engine.Finish();
  return result;
}

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  PageRankProgram program;
  program.graph = &g;
  program.iterations = options.iterations;
  program.jump = options.jump;
  SyncEngine<PageRankProgram> engine(g, config);
  engine.Run(&program, options.iterations + 1);
  rt::PageRankResult result;
  result.ranks = engine.values();
  result.iterations = options.iterations;
  result.metrics = engine.Finish();
  return result;
}

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  BfsProgram program;
  program.source = options.source;
  SyncEngine<BfsProgram> engine(g, config);
  int supersteps = engine.Run(&program, static_cast<int>(g.num_vertices()) + 2);
  rt::BfsResult result;
  result.distance = engine.values();
  result.levels = std::max(0, supersteps - 1);
  result.metrics = engine.Finish();
  return result;
}

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  TriangleProgram program;
  program.graph = &g;
  SyncEngine<TriangleProgram> engine(g, config);
  engine.Run(&program, 2);
  rt::TriangleCountResult result;
  for (uint64_t v : engine.values()) result.triangles += v;
  result.metrics = engine.Finish();
  return result;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config) {
  MAZE_CHECK(options.method == rt::CfMethod::kGd);
  // Combined vertex space with edges in both directions.
  EdgeList edges;
  edges.num_vertices = g.num_users() + g.num_items();
  edges.edges.reserve(g.num_ratings() * 2);
  for (VertexId u = 0; u < g.num_users(); ++u) {
    for (const auto& e : g.UserRatings(u)) {
      edges.edges.push_back({u, g.num_users() + e.id});
      edges.edges.push_back({g.num_users() + e.id, u});
    }
  }
  Graph combined = Graph::FromEdges(edges, GraphDirections::kOutOnly);

  rt::CfResult result;
  result.k = options.k;
  native::CfInitFactors(g.num_users(), options.k, options.seed,
                        &result.user_factors);
  native::CfInitFactors(g.num_items(), options.k, options.seed ^ 0x1234567ull,
                        &result.item_factors);

  CfGdProgram program;
  program.ratings = &g;
  program.options = options;
  program.user_count = g.num_users();
  // The engine has no per-iteration hook, so the learning rate stays fixed for
  // the run (step decay over the few benchmark iterations is negligible).
  program.gamma = options.learning_rate;
  program.init_users = &result.user_factors;
  program.init_items = &result.item_factors;

  SyncEngine<CfGdProgram> engine(combined, config);
  engine.Run(&program, options.iterations + 1);

  const auto& values = engine.values();
  for (VertexId u = 0; u < g.num_users(); ++u) {
    std::copy(values[u].begin(), values[u].end(),
              result.user_factors.begin() + static_cast<ptrdiff_t>(u) * options.k);
  }
  for (VertexId v = 0; v < g.num_items(); ++v) {
    std::copy(values[g.num_users() + v].begin(),
              values[g.num_users() + v].end(),
              result.item_factors.begin() + static_cast<ptrdiff_t>(v) * options.k);
  }
  result.iterations = options.iterations;
  result.final_rmse = native::CfRmse(g, result.user_factors,
                                     result.item_factors, options.k);
  result.rmse_per_iteration.push_back(result.final_rmse);
  result.metrics = engine.Finish();
  return result;
}

rt::PageRankResult AsyncPageRank(const Graph& g, double jump, double epsilon) {
  MAZE_CHECK(g.has_out());
  MAZE_CHECK(epsilon > 0);
  const VertexId n = g.num_vertices();
  rt::SimClock clock(1, DefaultComm());

  // Push-based residual PageRank: invariant p_true = p + (I - M)^-1 r with
  // M = (1-jump) A^T D^-1; pushing a vertex moves its residual into p and
  // spreads (1-jump)/deg of it to each out-neighbor. Residuals start at `jump`
  // so p converges to the same unnormalized fixpoint the iterative engines
  // approach.
  std::vector<double> p(n, 0.0);
  std::vector<std::atomic<double>> residual(n);
  for (VertexId v = 0; v < n; ++v) {
    residual[v].store(jump, std::memory_order_relaxed);
  }

  AsyncScheduler scheduler(n);
  for (VertexId v = 0; v < n; ++v) scheduler.Schedule(v);

  rt::RankTimer t;
  uint64_t updates = scheduler.Run([&](VertexId v, AsyncScheduler* sched) {
    double delta = residual[v].exchange(0.0, std::memory_order_relaxed);
    if (delta <= 0) return;
    p[v] += delta;
    EdgeId deg = g.OutDegree(v);
    if (deg == 0) return;  // Dangling mass is dropped, as in the sync engines.
    double share = (1.0 - jump) * delta / static_cast<double>(deg);
    for (VertexId w : g.OutNeighbors(v)) {
      double before = residual[w].fetch_add(share, std::memory_order_relaxed);
      if (before < epsilon && before + share >= epsilon) sched->Schedule(w);
    }
  });
  clock.RecordCompute(0, t.Seconds());
  clock.EndStep();

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * 2 * sizeof(double));
  rt::PageRankResult result;
  result.ranks = std::move(p);
  result.iterations = static_cast<int>(std::min<uint64_t>(
      updates, static_cast<uint64_t>(std::numeric_limits<int>::max())));
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.8);
  return result;
}

}  // namespace maze::vertex
