#include "vertex/algorithms.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <cmath>
#include <utility>
#include <vector>

#include "native/cc.h"
#include "native/cf.h"
#include "util/check.h"
#include "util/cuckoo_set.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/timer.h"
#include "vertex/async_engine.h"
#include "vertex/engine.h"
#include "vertex/programs.h"

namespace maze::vertex {
// The Program structs live in vertex/programs.h, shared with the gmat
// compiling engine.

rt::CommModel DefaultComm() { return rt::CommModel::Socket(); }

rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  CcProgram program;
  SyncEngine<CcProgram> engine(g, config);
  int supersteps = engine.Run(&program, options.max_iterations);
  rt::ConnectedComponentsResult result;
  result.label = engine.values();
  result.num_components = native::CountComponents(result.label);
  result.iterations = supersteps;
  result.metrics = engine.Finish();
  return result;
}

rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  PageRankProgram program;
  program.graph = &g;
  program.iterations = options.iterations;
  program.jump = options.jump;
  SyncEngine<PageRankProgram> engine(g, config);
  engine.Run(&program, options.iterations + 1);
  rt::PageRankResult result;
  result.ranks = engine.values();
  result.iterations = options.iterations;
  result.metrics = engine.Finish();
  return result;
}

rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  BfsProgram program;
  program.source = options.source;
  SyncEngine<BfsProgram> engine(g, config);
  int supersteps = engine.Run(&program, static_cast<int>(g.num_vertices()) + 2);
  rt::BfsResult result;
  result.distance = engine.values();
  result.levels = std::max(0, supersteps - 1);
  result.metrics = engine.Finish();
  return result;
}

rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions&,
                                      rt::EngineConfig config) {
  MAZE_CHECK(g.has_out());
  TriangleProgram program;
  program.graph = &g;
  SyncEngine<TriangleProgram> engine(g, config);
  engine.Run(&program, 2);
  rt::TriangleCountResult result;
  for (uint64_t v : engine.values()) result.triangles += v;
  result.metrics = engine.Finish();
  return result;
}

rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config) {
  MAZE_CHECK(options.method == rt::CfMethod::kGd);
  // Combined vertex space with edges in both directions.
  EdgeList edges;
  edges.num_vertices = g.num_users() + g.num_items();
  edges.edges.reserve(g.num_ratings() * 2);
  for (VertexId u = 0; u < g.num_users(); ++u) {
    for (const auto& e : g.UserRatings(u)) {
      edges.edges.push_back({u, g.num_users() + e.id});
      edges.edges.push_back({g.num_users() + e.id, u});
    }
  }
  Graph combined = Graph::FromEdges(edges, GraphDirections::kOutOnly);

  rt::CfResult result;
  result.k = options.k;
  native::CfInitFactors(g.num_users(), options.k, options.seed,
                        &result.user_factors);
  native::CfInitFactors(g.num_items(), options.k, options.seed ^ 0x1234567ull,
                        &result.item_factors);

  CfGdProgram program;
  program.ratings = &g;
  program.options = options;
  program.user_count = g.num_users();
  // The engine has no per-iteration hook, so the learning rate stays fixed for
  // the run (step decay over the few benchmark iterations is negligible).
  program.gamma = options.learning_rate;
  program.init_users = &result.user_factors;
  program.init_items = &result.item_factors;

  SyncEngine<CfGdProgram> engine(combined, config);
  engine.Run(&program, options.iterations + 1);

  const auto& values = engine.values();
  for (VertexId u = 0; u < g.num_users(); ++u) {
    std::copy(values[u].begin(), values[u].end(),
              result.user_factors.begin() + static_cast<ptrdiff_t>(u) * options.k);
  }
  for (VertexId v = 0; v < g.num_items(); ++v) {
    std::copy(values[g.num_users() + v].begin(),
              values[g.num_users() + v].end(),
              result.item_factors.begin() + static_cast<ptrdiff_t>(v) * options.k);
  }
  result.iterations = options.iterations;
  result.final_rmse = native::CfRmse(g, result.user_factors,
                                     result.item_factors, options.k);
  result.rmse_per_iteration.push_back(result.final_rmse);
  result.metrics = engine.Finish();
  return result;
}

rt::PageRankResult AsyncPageRank(const Graph& g, double jump, double epsilon) {
  MAZE_CHECK(g.has_out());
  MAZE_CHECK(epsilon > 0);
  const VertexId n = g.num_vertices();
  rt::SimClock clock(1, DefaultComm());

  // Push-based residual PageRank: invariant p_true = p + (I - M)^-1 r with
  // M = (1-jump) A^T D^-1; pushing a vertex moves its residual into p and
  // spreads (1-jump)/deg of it to each out-neighbor. Residuals start at `jump`
  // so p converges to the same unnormalized fixpoint the iterative engines
  // approach.
  std::vector<double> p(n, 0.0);
  std::vector<std::atomic<double>> residual(n);
  for (VertexId v = 0; v < n; ++v) {
    residual[v].store(jump, std::memory_order_relaxed);
  }

  AsyncScheduler scheduler(n);
  for (VertexId v = 0; v < n; ++v) scheduler.Schedule(v);

  rt::RankTimer t;
  uint64_t updates = scheduler.Run([&](VertexId v, AsyncScheduler* sched) {
    double delta = residual[v].exchange(0.0, std::memory_order_relaxed);
    if (delta <= 0) return;
    p[v] += delta;
    EdgeId deg = g.OutDegree(v);
    if (deg == 0) return;  // Dangling mass is dropped, as in the sync engines.
    double share = (1.0 - jump) * delta / static_cast<double>(deg);
    for (VertexId w : g.OutNeighbors(v)) {
      double before = residual[w].fetch_add(share, std::memory_order_relaxed);
      if (before < epsilon && before + share >= epsilon) sched->Schedule(w);
    }
  });
  clock.RecordCompute(0, t.Seconds());
  clock.EndStep();

  clock.ChargeMemory(0, obs::MemPhase::kGraph, g.MemoryBytes());
  clock.ChargeMemory(0, obs::MemPhase::kEngineState,
                     static_cast<uint64_t>(n) * 2 * sizeof(double));
  rt::PageRankResult result;
  result.ranks = std::move(p);
  result.iterations = static_cast<int>(std::min<uint64_t>(
      updates, static_cast<uint64_t>(std::numeric_limits<int>::max())));
  result.metrics = clock.Finish(/*intra_rank_utilization=*/0.8);
  return result;
}

}  // namespace maze::vertex
