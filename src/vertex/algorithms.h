// The four study algorithms expressed as vertexlab (GraphLab-like) vertex
// programs, matching the paper's §3.1/§3.2 descriptions: Algorithm 1 (PageRank),
// Algorithm 2 (BFS), neighborhood-exchange triangle counting with cuckoo-hash
// intersection, and message-passing Gradient Descent for collaborative filtering.
#ifndef MAZE_VERTEX_ALGORITHMS_H_
#define MAZE_VERTEX_ALGORITHMS_H_

#include "core/bipartite.h"
#include "core/graph.h"
#include "rt/algo.h"

namespace maze::vertex {

// GraphLab's transport: TCP sockets (Table 2) — used when callers do not override.
rt::CommModel DefaultComm();

// PageRank over a directed graph (needs out-CSR; in-CSR unused).
rt::PageRankResult PageRank(const Graph& g, const rt::PageRankOptions& options,
                            rt::EngineConfig config);

// BFS over a symmetric graph.
rt::BfsResult Bfs(const Graph& g, const rt::BfsOptions& options,
                  rt::EngineConfig config);

// Triangle counting over an oriented (src < dst) graph.
rt::TriangleCountResult TriangleCount(const Graph& g,
                                      const rt::TriangleCountOptions& options,
                                      rt::EngineConfig config);

// Collaborative filtering via Gradient Descent (vertex programs cannot express
// SGD: writes to remote vertices are not visible within an iteration, §3.2).
rt::CfResult CollaborativeFiltering(const BipartiteGraph& g,
                                    const rt::CfOptions& options,
                                    rt::EngineConfig config);

// Connected components via min-label propagation (extension algorithm) over a
// symmetric graph.
rt::ConnectedComponentsResult ConnectedComponents(
    const Graph& g, const rt::ConnectedComponentsOptions& options,
    rt::EngineConfig config);

// Asynchronous (autonomous-scheduling) PageRank to a fixpoint (extension):
// push-based residual propagation on the AsyncScheduler, single node. Runs
// until every residual is below `epsilon`; result.iterations carries the
// number of vertex updates executed (the autonomous engine's work measure).
rt::PageRankResult AsyncPageRank(const Graph& g, double jump, double epsilon);

}  // namespace maze::vertex

#endif  // MAZE_VERTEX_ALGORITHMS_H_
