// vertexlab's asynchronous engine (extension): GraphLab's second execution mode.
//
// The paper benchmarks the synchronous engines, but GraphLab's signature feature
// — and the axis its successor papers compare on (the paper's reference [24],
// "Bulk synchronous vs autonomous") — is autonomous scheduling: vertices are
// updated from a dynamic worklist with updates immediately visible, no global
// barriers. This module provides the scheduler and the classic autonomous
// algorithm, push-based residual PageRank, which reaches a fixpoint touching far
// fewer edges than barriered iteration.
//
// Single node only, like GraphLab's shared-memory async engine (the distributed
// async engine needs distributed locking the paper never exercises).
#ifndef MAZE_VERTEX_ASYNC_ENGINE_H_
#define MAZE_VERTEX_ASYNC_ENGINE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/types.h"
#include "util/bitvector.h"
#include "util/thread_pool.h"

namespace maze::vertex {

// Dynamic vertex scheduler with duplicate suppression: a vertex scheduled while
// already pending is not enqueued twice (GraphLab's scheduler semantics).
// Updates run in parallel waves; state changes are immediately visible to later
// updates through the caller's shared (atomic) state.
class AsyncScheduler {
 public:
  explicit AsyncScheduler(VertexId num_vertices)
      : pending_(num_vertices) {}

  // Thread-safe; returns true if v was newly enqueued.
  bool Schedule(VertexId v) {
    if (!pending_.TestAndSetAtomic(v)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(v);
    return true;
  }

  // Drains the worklist. `update` runs once per dequeued vertex and may
  // Schedule() more vertices (including re-scheduling v itself). Returns the
  // number of updates executed.
  uint64_t Run(const std::function<void(VertexId, AsyncScheduler*)>& update) {
    uint64_t executed = 0;
    while (true) {
      std::vector<VertexId> wave;
      {
        std::lock_guard<std::mutex> lock(mu_);
        wave = std::move(queue_);
        queue_.clear();
      }
      if (wave.empty()) break;
      // Clear pending bits before running so an update can re-schedule.
      for (VertexId v : wave) pending_.Clear(v);
      executed += wave.size();
      ParallelFor(wave.size(), 32, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) update(wave[i], this);
      });
    }
    return executed;
  }

 private:
  Bitvector pending_;
  std::mutex mu_;
  std::vector<VertexId> queue_;
};

}  // namespace maze::vertex

#endif  // MAZE_VERTEX_ASYNC_ENGINE_H_
