// vertexlab: the GraphLab-like vertex-programming engine (Section 3, Table 2).
//
// Characteristics reproduced from the paper's description of GraphLab v2.2:
//   - "vertex programs": all computation is expressed per vertex, reading incoming
//     messages and sending messages along out-edges (Algorithm 1/2 style);
//   - 1-D vertex partitioning;
//   - sockets as the communication layer (CommModel::Socket by default);
//   - "a limited form of compression that takes advantage of local reductions":
//     combinable messages are merged into a per-rank dense accumulator before they
//     cross the wire, so each (vertex, target-rank) pair costs one wire record;
//   - communication is blocked/overlapped rather than buffered whole (unlike the
//     BSP engine), keeping memory footprints moderate.
//
// The engine is synchronous (supersteps); vertices activated by a message run in
// the next superstep, or every vertex runs when the program declares itself
// all-active (PageRank, CF-GD).
//
// Program concept (duck-typed):
//   struct P {
//     using Value = ...;                    // per-vertex state
//     using Message = ...;                  // message payload
//     static constexpr bool kCombinable;    // dense-accumulator reduction?
//     static constexpr bool kAllActive;     // run all vertices every superstep?
//     void Init(VertexId v, const Graph& g, Value* value);
//     // Returns true while the program wants more supersteps (checked globally;
//     // only meaningful for all-active programs).
//     bool Compute(Context<Message>* ctx, VertexId v, Value* value,
//                  const Message* messages, size_t count);
//     static Message Combine(const Message& a, const Message& b);  // if combinable
//     static size_t MessageWireBytes(const Message& m);
//   };
#ifndef MAZE_VERTEX_ENGINE_H_
#define MAZE_VERTEX_ENGINE_H_

#include <algorithm>
#include <mutex>
#include <vector>

#include "core/graph.h"
#include "obs/obs.h"
#include "rt/algo.h"
#include "rt/partition.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "util/bitvector.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace maze::gmat {
template <typename P>
class Engine;
}  // namespace maze::gmat

namespace maze::vertex {

// Handed to Program::Compute; collects outgoing messages for one vertex.
template <typename Message>
class Context {
 public:
  // Sends `m` along every out-edge of the current vertex.
  void SendToOutNeighbors(const Message& m) {
    send_all_ = true;
    payload_ = m;
  }

  // Sends `m` to one explicit target vertex.
  void SendTo(VertexId target, const Message& m) {
    targeted_.emplace_back(target, m);
  }

  // Superstep index, starting at 0.
  int superstep() const { return superstep_; }

 private:
  template <typename P>
  friend class SyncEngine;
  // The gmat engine executes the same Program concept by lowering supersteps to
  // semiring SpMV; it drives Context identically to SyncEngine.
  template <typename P>
  friend class ::maze::gmat::Engine;

  void Reset() {
    send_all_ = false;
    targeted_.clear();
  }

  bool send_all_ = false;
  Message payload_{};
  std::vector<std::pair<VertexId, Message>> targeted_;
  int superstep_ = 0;
};

// Synchronous vertex-program executor over the simulated cluster.
template <typename P>
class SyncEngine {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  SyncEngine(const Graph& g, const rt::EngineConfig& config)
      : g_(g),
        config_(config),
        clock_(config.num_ranks, config.comm, config.trace, config.faults),
        part_(rt::Partition1D::VertexBalanced(g.num_vertices(),
                                              config.num_ranks)) {}

  // Runs `program` for at most `max_supersteps`. Returns executed supersteps.
  int Run(P* program, int max_supersteps);

  const std::vector<Value>& values() const { return values_; }
  rt::RunMetrics Finish() { return clock_.Finish(kIntraRankUtilization); }
  rt::SimClock* clock() { return &clock_; }

 private:
  // GraphLab keeps most cores busy; slightly below native due to engine overhead.
  static constexpr double kIntraRankUtilization = 0.8;

  const Graph& g_;
  rt::EngineConfig config_;
  rt::SimClock clock_;
  rt::Partition1D part_;
  std::vector<Value> values_;
};

template <typename P>
int SyncEngine<P>::Run(P* program, int max_supersteps) {
  const VertexId n = g_.num_vertices();
  const int ranks = config_.num_ranks;

  values_.resize(n);
  for (VertexId v = 0; v < n; ++v) program->Init(v, g_, &values_[v]);

  // Double-buffered inboxes: Compute reads `cur`, routing writes `next`.
  // Combinable programs use one accumulator slot per vertex + a has-message bit;
  // others keep a message list per vertex.
  constexpr bool kCombinable = P::kCombinable;
  std::vector<Message> cur_acc(kCombinable ? n : 0);
  std::vector<Message> next_acc(kCombinable ? n : 0);
  Bitvector cur_has(n);
  Bitvector next_has(n);
  std::vector<std::vector<Message>> cur_list(kCombinable ? 0 : n);
  std::vector<std::vector<Message>> next_list(kCombinable ? 0 : n);

  // Every vertex runs in superstep 0 so sparse programs can seed themselves.
  Bitvector active(n);
  for (VertexId v = 0; v < n; ++v) active.Set(v);

  uint64_t wire_buffer_peak = 0;
  int superstep = 0;
  for (; superstep < max_supersteps; ++superstep) {
    bool any_compute_wants_more = false;
    Bitvector next_active(n);

    // Rank tasks run concurrently (serially under MAZE_SERIAL_RANKS): each
    // computes against `cur` (which is read-only during the superstep), then
    // routes into `next` inside an ordered turnstile section so the shared
    // next-superstep state is mutated in exactly the serial schedule's order.
    // Programs must therefore tolerate concurrent Compute calls from different
    // ranks (all in-tree programs only read shared state in Compute).
    rt::RankTurns turns;
    rt::ForEachRank(ranks, [&](int p) {
      MAZE_OBS_SPAN("superstep", "vertexlab", p, superstep);
      rt::RankTimer compute_timer;
      // Per-rank outbound state, local to this rank's turn (bounds memory to
      // O(n) regardless of rank count).
      std::vector<Message> out_acc(kCombinable ? n : 0);
      Bitvector out_has(kCombinable ? n : 0);
      std::vector<std::pair<VertexId, Message>> out_raw;
      // Broadcast deliveries are kept apart from targeted sends: GraphLab's
      // vertex mirroring means a broadcast crosses the wire once per (vertex,
      // remote rank with a mirror), not once per edge, so their wire bytes are
      // accumulated here while the per-edge copies below are delivery-only.
      std::vector<std::pair<VertexId, Message>> out_bcast;
      std::vector<uint64_t> broadcast_bytes_to(ranks, 0);

      std::mutex merge_mu;
      bool rank_wants_more = false;
      ParallelFor(part_.Size(p), 128, [&](uint64_t lo, uint64_t hi) {
        Context<Message> ctx;
        ctx.superstep_ = superstep;
        std::vector<std::pair<VertexId, Message>> local_out;
        std::vector<std::pair<VertexId, Message>> local_bcast;
        std::vector<uint64_t> local_broadcast(ranks, 0);
        // Which ranks the current broadcasting vertex has already hit; stamped
        // per vertex so one buffer serves the whole chunk.
        std::vector<uint64_t> rank_seen(ranks, 0);
        uint64_t seen_stamp = 0;
        bool local_wants_more = false;
        for (VertexId v = part_.Begin(p) + static_cast<VertexId>(lo);
             v < part_.Begin(p) + static_cast<VertexId>(hi); ++v) {
          if (!active.Test(v)) continue;
          const Message* msgs = nullptr;
          size_t count = 0;
          if constexpr (kCombinable) {
            if (cur_has.Test(v)) {
              msgs = &cur_acc[v];
              count = 1;
            }
          } else {
            msgs = cur_list[v].data();
            count = cur_list[v].size();
          }
          ctx.Reset();
          bool more = program->Compute(&ctx, v, &values_[v], msgs, count);
          local_wants_more = local_wants_more || more;
          if (ctx.send_all_) {
            if constexpr (kCombinable) {
              for (VertexId dst : g_.OutNeighbors(v)) {
                local_out.emplace_back(dst, ctx.payload_);
              }
            } else {
              // One wire copy per destination rank that hosts a mirror; the
              // per-edge copies are local delivery.
              ++seen_stamp;
              size_t wire = 4 + P::MessageWireBytes(ctx.payload_);
              for (VertexId dst : g_.OutNeighbors(v)) {
                int q = ranks == 1 ? 0 : part_.OwnerOf(dst);
                if (rank_seen[q] != seen_stamp) {
                  rank_seen[q] = seen_stamp;
                  local_broadcast[q] += wire;
                }
                local_bcast.emplace_back(dst, ctx.payload_);
              }
            }
          }
          for (auto& [dst, m] : ctx.targeted_) {
            local_out.emplace_back(dst, std::move(m));
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        rank_wants_more = rank_wants_more || local_wants_more;
        if constexpr (kCombinable) {
          for (auto& [dst, m] : local_out) {
            if (out_has.Test(dst)) {
              out_acc[dst] = P::Combine(out_acc[dst], m);
            } else {
              out_has.Set(dst);
              out_acc[dst] = m;
            }
          }
        } else {
          out_raw.insert(out_raw.end(),
                         std::make_move_iterator(local_out.begin()),
                         std::make_move_iterator(local_out.end()));
          out_bcast.insert(out_bcast.end(),
                           std::make_move_iterator(local_bcast.begin()),
                           std::make_move_iterator(local_bcast.end()));
          for (int q = 0; q < ranks; ++q) {
            broadcast_bytes_to[q] += local_broadcast[q];
          }
        }
      });
      double compute_seconds = compute_timer.Seconds();
      clock_.RecordCompute(p, compute_seconds);
      obs::EmitSpanEndingNow("compute", "vertexlab", p, superstep,
                             compute_seconds);

      // Routing ("serialization + send" cost is also charged to the sender).
      // Runs in rank order under the turnstile: it mutates next-superstep
      // state shared by all ranks.
      turns.Run(p, [&] {
        any_compute_wants_more = any_compute_wants_more || rank_wants_more;
        rt::RankTimer route_timer;
        std::vector<uint64_t> bytes_to(ranks, 0);
        uint64_t rank_wire_bytes = 0;
        if constexpr (kCombinable) {
          std::vector<uint32_t> touched;
          out_has.AppendSetBits(&touched);
          for (VertexId dst : touched) {
            int q = ranks == 1 ? 0 : part_.OwnerOf(dst);
            bytes_to[q] += 4 + P::MessageWireBytes(out_acc[dst]);
            if (next_has.Test(dst)) {
              next_acc[dst] = P::Combine(next_acc[dst], out_acc[dst]);
            } else {
              next_has.Set(dst);
              next_acc[dst] = out_acc[dst];
            }
            next_active.Set(dst);
          }
        } else {
          for (auto& [dst, m] : out_raw) {
            int q = ranks == 1 ? 0 : part_.OwnerOf(dst);
            bytes_to[q] += 4 + P::MessageWireBytes(m);
            next_active.Set(dst);
            next_list[dst].push_back(std::move(m));
          }
          // Broadcast deliveries: wire already accounted per (vertex, rank).
          for (auto& [dst, m] : out_bcast) {
            next_active.Set(dst);
            next_list[dst].push_back(std::move(m));
          }
          for (int q = 0; q < ranks; ++q) bytes_to[q] += broadcast_bytes_to[q];
        }
        for (int q = 0; q < ranks; ++q) {
          if (q != p && bytes_to[q] > 0) {
            clock_.RecordSend(p, q, bytes_to[q], 1);
            rank_wire_bytes += bytes_to[q];
          }
        }
        wire_buffer_peak = std::max(wire_buffer_peak, rank_wire_bytes);
        // Transient wire-buffer charge: visible in the per-step message-buffer
        // watermark, released once the superstep's messages are handed off.
        clock_.ChargeMemory(p, obs::MemPhase::kMessageBuffers, rank_wire_bytes);
        clock_.ReleaseMemory(p, obs::MemPhase::kMessageBuffers,
                             rank_wire_bytes);
        double route_seconds = route_timer.Seconds();
        clock_.RecordCompute(p, route_seconds);
        obs::EmitSpanEndingNow("route", "vertexlab", p, superstep,
                               route_seconds);
      });
    });
    // GraphLab streams messages in blocks, overlapping with computation.
    clock_.EndStep(/*overlap_comm=*/true);

    // Swap inboxes.
    if constexpr (kCombinable) {
      std::swap(cur_acc, next_acc);
      std::swap(cur_has, next_has);
      next_has.Reset();
    } else {
      std::swap(cur_list, next_list);
      for (auto& l : next_list) l.clear();
    }

    if (P::kAllActive) {
      if (!any_compute_wants_more) {
        ++superstep;
        break;
      }
      // All-active programs keep everything live.
      for (VertexId v = 0; v < n; ++v) next_active.Set(v);
    } else if (next_active.Count() == 0) {
      ++superstep;
      break;
    }
    active = std::move(next_active);
  }

  // Footprint: per-rank value slice + the whole-vertex-set accumulator a rank
  // keeps (GraphLab mirrors remote vertices) + wire buffers + graph slice.
  uint64_t state_bytes = static_cast<uint64_t>(n) * sizeof(Value);
  uint64_t acc_bytes = kCombinable ? static_cast<uint64_t>(n) * sizeof(Message) * 2
                                   : wire_buffer_peak * 2;
  clock_.ChargeMemory(0, obs::MemPhase::kGraph,
                      g_.MemoryBytes() / std::max(1, ranks));
  clock_.ChargeMemory(0, obs::MemPhase::kEngineState, state_bytes);
  clock_.ChargeMemory(0, obs::MemPhase::kMessageBuffers,
                      acc_bytes + wire_buffer_peak);
  return superstep;
}

}  // namespace maze::vertex

#endif  // MAZE_VERTEX_ENGINE_H_
