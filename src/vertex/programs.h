// The in-tree vertex programs, shared by the interpreting engine (SyncEngine,
// vertex/algorithms.cc) and the compiling engine (gmat, which lowers the same
// Program structs to semiring SpMV). Keeping one definition per algorithm is
// what makes the gmat differential tests meaningful: both engines execute the
// *identical* Compute/Combine functions, so any divergence is the engine's.
#ifndef MAZE_VERTEX_PROGRAMS_H_
#define MAZE_VERTEX_PROGRAMS_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/bipartite.h"
#include "core/graph.h"
#include "core/types.h"
#include "rt/algo.h"
#include "util/check.h"
#include "util/cuckoo_set.h"
#include "vertex/engine.h"

namespace maze::vertex {

// --- PageRank: Algorithm 1 of the paper --------------------------------------

struct PageRankProgram {
  using Value = double;
  using Message = double;
  static constexpr bool kCombinable = true;
  static constexpr bool kAllActive = true;

  const Graph* graph = nullptr;
  int iterations = 0;
  double jump = 0.3;

  void Init(VertexId, const Graph&, Value* value) { *value = 1.0; }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() > 0) {
      double sum = count > 0 ? msgs[0] : 0.0;
      *value = jump + (1.0 - jump) * sum;
    }
    if (ctx->superstep() < iterations) {
      EdgeId deg = graph->OutDegree(v);
      if (deg > 0) ctx->SendToOutNeighbors(*value / static_cast<double>(deg));
      return true;
    }
    return false;
  }

  static Message Combine(const Message& a, const Message& b) { return a + b; }
  static size_t MessageWireBytes(const Message&) { return sizeof(Message); }
};

// --- BFS: Algorithm 2 ---------------------------------------------------------

struct BfsProgram {
  using Value = uint32_t;
  using Message = uint32_t;
  static constexpr bool kCombinable = true;
  static constexpr bool kAllActive = false;
  // Level-synchronous: every frontier member broadcasts the same distance, so
  // any one message equals the min-fold of all of them. Licenses the gmat
  // engine's pull-style early-exit kernel (GraphBLAS's ANY operator).
  static constexpr bool kAnyCombine = true;
  // GraphBLAS-style complemented mask (Ligra's `cond`): once a vertex holds a
  // finite distance it can never improve — later supersteps only carry larger
  // candidates — so Compute is a no-op there forever (and the property is
  // monotone: a converged vertex stays converged). Licenses the gmat engine's
  // fused kernel to skip converged rows outright, native's visited-skip.
  static constexpr bool kConvergedSkip = true;
  static bool Converged(const Value& value) {
    return value != kInfiniteDistance;
  }

  VertexId source = 0;

  void Init(VertexId v, const Graph&, Value* value) {
    *value = (v == source) ? 0 : kInfiniteDistance;
  }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() == 0) {
      if (v == source) ctx->SendToOutNeighbors(0);
      return false;
    }
    if (count > 0) {
      uint32_t candidate = msgs[0] + 1;
      if (candidate < *value) {
        *value = candidate;
        ctx->SendToOutNeighbors(*value);
      }
    }
    return false;
  }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }
  static size_t MessageWireBytes(const Message&) { return sizeof(Message); }
};

// --- Triangle Counting --------------------------------------------------------
// Superstep 0: each vertex ships its out-neighborhood to its out-neighbors.
// Superstep 1: each vertex intersects received lists against its own
// neighborhood, held in a cuckoo hash (the GraphLab data-structure optimization
// the paper credits in §5.3(4)).

struct TriangleProgram {
  using Value = uint64_t;
  using Message = std::vector<VertexId>;
  static constexpr bool kCombinable = false;
  static constexpr bool kAllActive = true;

  const Graph* graph = nullptr;

  void Init(VertexId, const Graph&, Value* value) { *value = 0; }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() == 0) {
      const auto neighbors = graph->OutNeighbors(v);
      if (!neighbors.empty()) {
        ctx->SendToOutNeighbors(Message(neighbors.begin(), neighbors.end()));
      }
      return true;
    }
    if (count > 0) {
      const auto own = graph->OutNeighbors(v);
      CuckooSet own_set(own.size());
      for (VertexId w : own) own_set.Insert(w);
      uint64_t found = 0;
      for (size_t i = 0; i < count; ++i) {
        for (VertexId w : msgs[i]) {
          if (own_set.Contains(w)) ++found;
        }
      }
      *value += found;
    }
    return false;
  }

  static size_t MessageWireBytes(const Message& m) {
    return 4 + m.size() * sizeof(VertexId);
  }
};

// --- Collaborative Filtering (Gradient Descent) --------------------------------
// Users and items share one vertex space: users [0, U), items [U, U + I). Every
// superstep each vertex broadcasts its factor vector (Table 1's 8K-byte messages)
// and integrates the factors received from the opposite side using equations
// (11)/(12).

struct CfGdProgram {
  using Value = std::vector<double>;
  // (sender id, sender factor) — the receiver looks up the edge's rating.
  using Message = std::pair<VertexId, std::vector<double>>;
  static constexpr bool kCombinable = false;
  static constexpr bool kAllActive = true;

  const BipartiteGraph* ratings = nullptr;
  rt::CfOptions options;
  VertexId user_count = 0;
  double gamma = 0.0;
  // Shared deterministic initialization (same arrays native uses), row-major.
  const std::vector<double>* init_users = nullptr;
  const std::vector<double>* init_items = nullptr;

  void Init(VertexId v, const Graph&, Value* value) {
    const std::vector<double>& src = v < user_count ? *init_users : *init_items;
    size_t row = v < user_count ? v : v - user_count;
    value->assign(src.begin() + static_cast<ptrdiff_t>(row * options.k),
                  src.begin() + static_cast<ptrdiff_t>((row + 1) * options.k));
  }

  float RatingFor(VertexId me, VertexId other) const {
    // Adjacency lists are sorted by id, so the edge lookup is a binary search.
    auto adj = me < user_count ? ratings->UserRatings(me)
                               : ratings->ItemRatings(me - user_count);
    VertexId key = me < user_count ? other - user_count : other;
    auto it = std::lower_bound(
        adj.begin(), adj.end(), key,
        [](const BipartiteGraph::Entry& e, VertexId id) { return e.id < id; });
    MAZE_CHECK(it != adj.end() && it->id == key);
    return it->rating;
  }

  bool Compute(Context<Message>* ctx, VertexId v, Value* value,
               const Message* msgs, size_t count) {
    bool is_user = v < user_count;
    double lambda = is_user ? options.lambda_p : options.lambda_q;
    if (ctx->superstep() > 0 && count > 0) {
      std::vector<double> grad(options.k, 0.0);
      for (size_t i = 0; i < count; ++i) {
        const auto& [sender, factor] = msgs[i];
        double rating = RatingFor(v, sender);
        double dot = 0;
        for (int d = 0; d < options.k; ++d) dot += (*value)[d] * factor[d];
        double err = rating - dot;
        for (int d = 0; d < options.k; ++d) {
          grad[d] += err * factor[d] - lambda * (*value)[d];
        }
      }
      for (int d = 0; d < options.k; ++d) (*value)[d] += gamma * grad[d];
    }
    if (ctx->superstep() < options.iterations) {
      ctx->SendToOutNeighbors(Message{v, *value});
      return true;
    }
    return false;
  }

  static size_t MessageWireBytes(const Message& m) {
    return 4 + m.second.size() * sizeof(double);
  }
};

// --- Connected Components (extension) -------------------------------------------
// Min-label propagation: superstep 0 broadcasts every vertex's own id; later
// supersteps shrink labels from combined ($MIN) messages and re-broadcast on
// improvement, exactly the BFS activity pattern.

struct CcProgram {
  using Value = VertexId;
  using Message = VertexId;
  static constexpr bool kCombinable = true;
  static constexpr bool kAllActive = false;

  void Init(VertexId v, const Graph&, Value* value) { *value = v; }

  bool Compute(Context<Message>* ctx, VertexId, Value* value,
               const Message* msgs, size_t count) {
    if (ctx->superstep() == 0) {
      ctx->SendToOutNeighbors(*value);
      return false;
    }
    if (count > 0 && msgs[0] < *value) {
      *value = msgs[0];
      ctx->SendToOutNeighbors(*value);
    }
    return false;
  }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }
  static size_t MessageWireBytes(const Message&) { return sizeof(Message); }
};

}  // namespace maze::vertex

#endif  // MAZE_VERTEX_PROGRAMS_H_
