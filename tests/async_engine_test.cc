// Asynchronous vertexlab engine (extension) tests: scheduler semantics and the
// push-based residual PageRank's fixpoint agreement with iterated PageRank.
#include <atomic>

#include <gtest/gtest.h>

#include "native/reference.h"
#include "tests/test_graphs.h"
#include "vertex/algorithms.h"
#include "vertex/async_engine.h"

namespace maze::vertex {
namespace {

TEST(AsyncSchedulerTest, DuplicateSuppression) {
  AsyncScheduler sched(10);
  EXPECT_TRUE(sched.Schedule(3));
  EXPECT_FALSE(sched.Schedule(3));  // Already pending.
  std::atomic<int> runs{0};
  sched.Run([&](VertexId v, AsyncScheduler*) {
    EXPECT_EQ(v, 3u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(AsyncSchedulerTest, ReschedulingFromUpdateRuns) {
  AsyncScheduler sched(4);
  sched.Schedule(0);
  std::atomic<int> total{0};
  uint64_t updates = sched.Run([&](VertexId v, AsyncScheduler* s) {
    total.fetch_add(1);
    if (v + 1 < 4) s->Schedule(v + 1);
  });
  EXPECT_EQ(updates, 4u);
  EXPECT_EQ(total.load(), 4);
}

TEST(AsyncSchedulerTest, SelfRescheduleTerminatesWhenStopped) {
  AsyncScheduler sched(1);
  sched.Schedule(0);
  int countdown = 5;
  uint64_t updates = sched.Run([&](VertexId, AsyncScheduler* s) {
    if (--countdown > 0) s->Schedule(0);
  });
  EXPECT_EQ(updates, 5u);
}

TEST(AsyncPageRankTest, ReachesTheIterativeFixpoint) {
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(9, 6), GraphDirections::kBoth);
  auto async = AsyncPageRank(g, 0.3, /*epsilon=*/1e-10);
  // The fixpoint the iterative engines approach after many rounds.
  auto fixpoint = native::ReferencePageRank(g, 150, 0.3);
  ASSERT_EQ(async.ranks.size(), fixpoint.size());
  for (size_t v = 0; v < fixpoint.size(); ++v) {
    ASSERT_NEAR(async.ranks[v], fixpoint[v], 1e-5) << "vertex " << v;
  }
}

TEST(AsyncPageRankTest, UpdateCountBeatsBarrieredEdgeWork) {
  // The autonomous advantage: to reach fixpoint accuracy, async touches far
  // fewer vertex updates than (rounds x all-vertices) barriered iteration.
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(10, 8),
                             GraphDirections::kBoth);
  auto async = AsyncPageRank(g, 0.3, 1e-8);
  // Sync needs ~log(1/eps)/log(1/(1-jump)) ~ 52 rounds x n updates for 1e-8.
  uint64_t sync_updates = static_cast<uint64_t>(g.num_vertices()) * 52;
  EXPECT_LT(static_cast<uint64_t>(async.iterations), sync_updates);
  EXPECT_GT(async.iterations, 0);
}

TEST(AsyncPageRankTest, LooseEpsilonDoesLessWork) {
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(9, 6), GraphDirections::kBoth);
  auto tight = AsyncPageRank(g, 0.3, 1e-10);
  auto loose = AsyncPageRank(g, 0.3, 1e-3);
  EXPECT_LT(loose.iterations, tight.iterations);
}

}  // namespace
}  // namespace maze::vertex
