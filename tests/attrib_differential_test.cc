// Differential attribution harness: obs::attrib output must be byte-identical
// under the serial and rank-parallel schedules, with and without injected
// transport faults, for every engine on PageRank and BFS.
//
// Step structure, per-rank bytes, modeled wire seconds, and fault stalls are
// schedule-invariant by construction (rank-ordered slot folding). Per-rank
// *compute* seconds are measured host CPU time and therefore noisy, so both
// sides are canonicalized first: compute is replaced by a deterministic
// function of (step, rank, rank bytes) — inputs that ARE schedule-invariant —
// and the aggregates re-derived. After that, Attribute().ToJson() comparing
// equal proves (a) everything else the decomposition consumes is
// schedule-invariant end to end, and (b) attribution itself is a pure
// function of the records.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "obs/attrib.h"
#include "rt/fault.h"
#include "rt/metrics.h"
#include "rt/rank_exec.h"
#include "tests/test_graphs.h"

namespace maze::bench {
namespace {

// Force a real pool before first use so the parallel schedule is exercised
// even on a single-core host (mirrors rank_parallel_test).
const bool kForcePoolSize = [] {
  setenv("MAZE_THREADS", "4", /*overwrite=*/0);
  return true;
}();

int RanksFor(EngineKind engine) {
  return engine == EngineKind::kTaskflow ? 1 : 16;
}

rt::fault::FaultSpec Plan(const std::string& text) {
  auto spec = rt::fault::ParseFaultSpec(text);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return spec.value();
}

// Transport-fault plans only: stragglers/crashes perturb measured compute by
// design, and the point here is schedule invariance of everything modeled.
struct PlanCase {
  const char* name;
  const char* spec;  // Empty = fault-free.
};
const PlanCase kPlans[] = {
    {"clean", ""},
    {"drop", "seed=11,drop=0.05,retries=64,timeout=1e-4"},
    {"dup", "seed=12,dup=0.08"},
    {"dropdup", "seed=15,drop=0.03,dup=0.05,retries=64,timeout=1e-4"},
};

// Replaces measured per-rank compute with a deterministic function of
// schedule-invariant inputs and re-derives the aggregates, so the byte
// comparison below is not at the mercy of host timer noise.
void CanonicalizeCompute(rt::RunMetrics* m) {
  double elapsed = 0;
  for (rt::StepRecord& s : m->steps) {
    if (!s.rank_compute_seconds.empty() && s.StepSeconds() > 0) {
      double max = 0;
      for (size_t r = 0; r < s.rank_compute_seconds.size(); ++r) {
        uint64_t bytes = r < s.rank_bytes.size() ? s.rank_bytes[r] : 0;
        double fake = 1e-4 * (1 + (s.step * 31 + static_cast<int>(r) * 7) % 5) +
                      static_cast<double>(bytes) * 1e-12;
        s.rank_compute_seconds[r] = fake;
        max = std::max(max, fake);
      }
      s.compute_seconds = max;
    }
    elapsed += s.StepSeconds();
  }
  m->elapsed_seconds = elapsed;
}

// The bench-grade invariants, checked on the *real* (uncanonicalized) run.
void CheckDecomposition(const rt::RunMetrics& metrics, const std::string& tag) {
  obs::attrib::Attribution a = obs::attrib::Attribute(metrics);
  ASSERT_TRUE(a.available) << tag;
  double scale = std::max(1e-30, metrics.elapsed_seconds);
  EXPECT_LE(std::abs(a.ComponentSum() - metrics.elapsed_seconds), 1e-9 * scale)
      << tag;
  EXPECT_LE(std::abs(a.elapsed_seconds - metrics.elapsed_seconds), 1e-9 * scale)
      << tag;
  double actual = a.elapsed_seconds * (1.0 + 1e-9) + 1e-30;
  EXPECT_LE(a.bounds.infinite_bandwidth_seconds, actual) << tag;
  EXPECT_LE(a.bounds.perfect_balance_seconds, actual) << tag;
  EXPECT_LE(a.bounds.zero_fault_seconds, actual) << tag;
  EXPECT_LE(a.bounds.best_case_seconds, actual) << tag;
  EXPECT_GE(a.max_imbalance_factor, 1.0) << tag;
  for (double s : a.rank_slack_seconds) EXPECT_GE(s, 0.0) << tag;
}

class AttribDifferentialTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void TearDown() override { rt::SetSerialRanks(-1); }
};

std::string EngineCaseName(const ::testing::TestParamInfo<EngineKind>& info) {
  return EngineName(info.param);
}

TEST_P(AttribDifferentialTest, PageRankAttributionIsScheduleInvariant) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;

  for (const PlanCase& plan : kPlans) {
    RunConfig config;
    config.num_ranks = RanksFor(engine);
    config.trace = true;
    if (plan.spec[0] != '\0') config.faults = Plan(plan.spec);

    rt::SetSerialRanks(1);
    auto serial = RunPageRank(engine, el, opt, config);
    rt::SetSerialRanks(0);
    auto parallel = RunPageRank(engine, el, opt, config);

    std::string tag =
        std::string(EngineName(engine)) + "/pagerank/" + plan.name;
    CheckDecomposition(serial.metrics, tag + "/serial");
    CheckDecomposition(parallel.metrics, tag + "/parallel");

    CanonicalizeCompute(&serial.metrics);
    CanonicalizeCompute(&parallel.metrics);
    EXPECT_EQ(obs::attrib::Attribute(serial.metrics).ToJson(),
              obs::attrib::Attribute(parallel.metrics).ToJson())
        << tag;
  }
}

TEST_P(AttribDifferentialTest, BfsAttributionIsScheduleInvariant) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  rt::BfsOptions opt{3};

  for (const PlanCase& plan : kPlans) {
    RunConfig config;
    config.num_ranks = RanksFor(engine);
    config.trace = true;
    if (plan.spec[0] != '\0') config.faults = Plan(plan.spec);

    rt::SetSerialRanks(1);
    auto serial = RunBfs(engine, el, opt, config);
    rt::SetSerialRanks(0);
    auto parallel = RunBfs(engine, el, opt, config);

    std::string tag = std::string(EngineName(engine)) + "/bfs/" + plan.name;
    CheckDecomposition(serial.metrics, tag + "/serial");
    CheckDecomposition(parallel.metrics, tag + "/parallel");

    CanonicalizeCompute(&serial.metrics);
    CanonicalizeCompute(&parallel.metrics);
    EXPECT_EQ(obs::attrib::Attribute(serial.metrics).ToJson(),
              obs::attrib::Attribute(parallel.metrics).ToJson())
        << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, AttribDifferentialTest,
                         ::testing::ValuesIn(AllEngines()), EngineCaseName);

}  // namespace
}  // namespace maze::bench
